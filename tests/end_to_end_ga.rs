//! End-to-end tests of the full AUDIT generation pipeline
//! (resonance sweep → hierarchical GA → stressmark), in the fast-demo
//! configuration.

use audit_core::audit::{Audit, AuditOptions};
use audit_core::ga::CostFunction;
use audit_core::harness::{MeasureSpec, Rig};
use audit_stressmark::{manual, nasm};

#[test]
fn full_pipeline_produces_competitive_resonant_stressmark() {
    let audit = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
    let run = audit.generate_resonant(2);

    // It must comfortably beat a plain NOP loop and reach at least the
    // ballpark of the hand-tuned SM-Res even in the demo configuration.
    let rig = audit.rig();
    let sm_res = rig
        .measure_aligned(&vec![manual::sm_res(); 2], MeasureSpec::ga_eval())
        .max_droop();
    assert!(
        run.best_droop > 0.5 * sm_res,
        "generated {} vs hand-tuned {sm_res}",
        run.best_droop
    );

    // Structure: HP region then NOP LP region, loop near the detected
    // resonance.
    assert!(run.kernel.lp_nops() > 0);
    assert_eq!(run.program.len(), run.kernel.len());
    assert!(run.resonance.period_cycles >= 16);

    // The evidence trail is complete.
    assert!(!run.ga.history.is_empty());
    assert!(run.ga.evaluations > 0);
    assert!(run.name.contains("A-Res"));
}

#[test]
fn generated_stressmark_emits_valid_nasm() {
    let audit = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
    let run = audit.generate_resonant(2);
    let asm = nasm::emit(&run.program, 1_000_000);
    assert!(asm.contains("section .text"));
    assert!(asm.contains(".loop:"));
    assert!(asm.lines().count() > run.program.len());
}

#[test]
fn pipeline_is_deterministic_per_seed() {
    let audit = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
    let a = audit.generate_resonant(2);
    let b = audit.generate_resonant(2);
    assert_eq!(a.ga.best, b.ga.best);

    // The seed must actually steer the search. Any *single* pair of
    // seeds may legitimately converge to the same strong genome in the
    // demo configuration (both stall on the hand-crafted seed kernel),
    // so require divergence from at least one of a small set.
    let diverged = [101u64, 777, 2024].iter().any(|&seed| {
        let other = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo().with_seed(seed));
        let c = other.generate_resonant(2);
        c.ga.best != a.ga.best || c.ga.history != a.ga.history
    });
    assert!(diverged, "different seeds should explore differently");
}

#[test]
fn parallel_pipeline_is_bit_identical_to_sequential() {
    // The tentpole regression: the full pipeline (resonance sweep →
    // hierarchical GA over the real chip + PDN fitness → stressmark)
    // must produce the same artifact whether fitness evaluation runs on
    // one worker or several, and whether or not the cache is in play.
    let sequential = Audit::new(
        Rig::bulldozer(),
        AuditOptions::fast_demo().with_eval_threads(1),
    )
    .generate_resonant(2);
    let parallel = Audit::new(
        Rig::bulldozer(),
        AuditOptions::fast_demo().with_eval_threads(4),
    )
    .generate_resonant(2);

    assert_eq!(sequential.ga.best, parallel.ga.best);
    assert_eq!(sequential.ga.best_fitness, parallel.ga.best_fitness);
    assert_eq!(sequential.ga.history, parallel.ga.history);
    assert_eq!(sequential.best_droop, parallel.best_droop);
    assert_eq!(
        sequential.program.body(),
        parallel.program.body(),
        "emitted stressmarks must be identical instruction-for-instruction"
    );

    // Memoization did real work yet changed nothing.
    assert!(sequential.ga.cache_hits > 0);
    assert_eq!(sequential.ga.cache_hits, parallel.ga.cache_hits);
    assert_eq!(sequential.ga.evaluations, parallel.ga.evaluations);

    // An uncached run still agrees on the search trajectory.
    let mut uncached_opts = AuditOptions::fast_demo().with_eval_threads(2);
    uncached_opts.ga.cache_capacity = 0;
    let uncached = Audit::new(Rig::bulldozer(), uncached_opts).generate_resonant(2);
    assert_eq!(uncached.ga.best, sequential.ga.best);
    assert_eq!(uncached.ga.history, sequential.ga.history);
    assert_eq!(uncached.ga.cache_hits, 0);
    assert_eq!(
        uncached.ga.evaluations,
        sequential.ga.evaluations + sequential.ga.cache_hits
    );
}

#[test]
fn throttled_regeneration_beats_throttled_hand_stressmark() {
    // §5.B: A-Res-Th, generated with the throttle on, out-droops the
    // throttled hand-tuned resonant stressmark.
    let throttled = Rig::bulldozer().with_fpu_throttle(1);
    let sm_res_th = throttled
        .measure_aligned(&vec![manual::sm_res(); 2], MeasureSpec::ga_eval())
        .max_droop();

    let audit = Audit::new(throttled, AuditOptions::fast_demo());
    let a_res_th = audit.generate_resonant(2);
    assert!(
        a_res_th.best_droop > sm_res_th,
        "A-Res-Th {} vs throttled SM-Res {sm_res_th}",
        a_res_th.best_droop
    );
}

#[test]
fn phenom_generation_uses_reduced_menu_and_runs() {
    let audit = Audit::new(Rig::phenom(), AuditOptions::fast_demo());
    let menu = audit.opcode_menu();
    assert!(menu.iter().all(|op| !op.props().needs_fma));

    let run = audit.generate_resonant(2);
    assert!(
        run.program.avoids_fma(),
        "generated program must run on the part"
    );
    assert!(run.best_droop > 0.0);
}

#[test]
fn cost_function_changes_the_winner() {
    let droop = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
    let efficient = Audit::new(
        Rig::bulldozer(),
        AuditOptions::fast_demo().with_cost(CostFunction::DroopPerAmp),
    );
    let a = droop.generate_resonant(2);
    let b = efficient.generate_resonant(2);
    // The objectives rank differently, so each winner must score at
    // least as well as the other under its *own* objective. (In the
    // demo configuration both may legitimately converge to the same
    // strong genome.)
    let rig = Rig::bulldozer();
    let spec = MeasureSpec::ga_eval();
    let ma = rig.measure_aligned(&vec![a.program.clone(); 2], spec);
    let mb = rig.measure_aligned(&vec![b.program.clone(); 2], spec);
    assert!(
        CostFunction::MaxDroop.score(&ma) >= CostFunction::MaxDroop.score(&mb) * 0.95,
        "droop specialist lost its own game"
    );
    assert!(
        CostFunction::DroopPerAmp.score(&mb) >= CostFunction::DroopPerAmp.score(&ma) * 0.95,
        "efficiency specialist lost its own game"
    );
}

#[test]
fn excitation_and_resonant_runs_differ_structurally() {
    let audit = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
    let ex = audit.generate_excitation(2);
    let res = audit.generate_resonant(2);
    // Excitation: quiet region much longer than the resonant period.
    assert!(
        ex.kernel.lp_nops() > 3 * res.kernel.lp_nops(),
        "A-Ex LP {} vs A-Res LP {}",
        ex.kernel.lp_nops(),
        res.kernel.lp_nops()
    );
    assert!(ex.name.contains("A-Ex"));
}
