//! Cross-crate integration tests: stressmarks, workloads, chips, and the
//! measurement harness working together.

use audit_core::harness::{MeasureSpec, Rig};
use audit_core::report::Table;
use audit_cpu::{ChipConfig, ChipSim, Program};
use audit_stressmark::{manual, nasm, workloads};

fn fast() -> MeasureSpec {
    MeasureSpec::ga_eval()
}

#[test]
fn stressmarks_out_droop_benchmarks_at_4t() {
    // The paper's headline comparison (Fig. 9): engineered resonant
    // stressmarks sit far above standard benchmarks.
    let rig = Rig::bulldozer();
    let sm_res = rig
        .measure_aligned(&vec![manual::sm_res(); 4], fast())
        .max_droop();

    for name in ["zeusmp", "gcc", "swaptions"] {
        let program = workloads::by_name(name).unwrap().synthesize(2_000, 1);
        let offsets: Vec<u64> = (0..4u64).map(|i| i * 37 + 11).collect();
        let bench = rig
            .measure_with_offsets(&vec![program; 4], &offsets, fast())
            .max_droop();
        assert!(
            sm_res > 1.4 * bench,
            "{name}: SM-Res {sm_res} vs benchmark {bench}"
        );
    }
}

#[test]
fn sm2_has_modest_droop_but_high_failure_point() {
    // §5.A.4: droop magnitude is not the only failure indicator.
    let rig = Rig::bulldozer();
    let sm2 = vec![manual::sm2(); 4];
    let zeusmp_prog = workloads::by_name("zeusmp").unwrap().synthesize(2_000, 1);
    let offsets: Vec<u64> = (0..4u64).map(|i| i * 37 + 11).collect();
    let zeusmp = vec![zeusmp_prog; 4];

    let sm2_droop = rig.measure_aligned(&sm2, fast()).max_droop();
    let zeusmp_droop = rig
        .measure_with_offsets(&zeusmp, &offsets, fast())
        .max_droop();
    assert!(
        sm2_droop < zeusmp_droop,
        "SM2 should droop less: {sm2_droop} vs {zeusmp_droop}"
    );

    let sm2_vf = rig
        .voltage_at_failure(&sm2, fast())
        .expect("SM2 fails in range");
    let zeusmp_vf = rig
        .voltage_at_failure_with_offsets(&zeusmp, &offsets, fast())
        .expect("zeusmp fails in range");
    assert!(
        sm2_vf > zeusmp_vf,
        "SM2 must fail at higher voltage: {sm2_vf} vs {zeusmp_vf}"
    );
}

#[test]
fn fpu_throttling_suppresses_resonant_stressmark() {
    let base = Rig::bulldozer();
    let throttled = base.clone().with_fpu_throttle(1);
    let programs = vec![manual::sm_res(); 4];
    let before = base.measure_aligned(&programs, fast()).max_droop();
    let after = throttled.measure_aligned(&programs, fast()).max_droop();
    assert!(after < 0.75 * before, "throttle: {before} → {after}");
}

#[test]
fn sm1_rejected_on_phenom_and_accepted_on_bulldozer() {
    let phenom = ChipConfig::phenom();
    let err = ChipSim::new(&phenom, &phenom.spread_placement(1).unwrap(), &[manual::sm1()]);
    assert!(err.is_err(), "SM1 must not run on the Phenom-class part");

    let bd = ChipConfig::bulldozer();
    assert!(ChipSim::new(&bd, &bd.spread_placement(1).unwrap(), &[manual::sm1()]).is_ok());
}

#[test]
fn phenom_runs_sm2_and_workloads() {
    let rig = Rig::phenom();
    let d = rig
        .measure_aligned(&vec![manual::sm2(); 4], fast())
        .max_droop();
    assert!(d > 0.005, "SM2 droop on Phenom {d}");
    let z = workloads::by_name("zeusmp").unwrap().synthesize(2_000, 1);
    let dz = rig.measure_aligned(&vec![z; 4], fast()).max_droop();
    assert!(dz > 0.005, "zeusmp droop on Phenom {dz}");
}

#[test]
fn nasm_emission_round_trips_every_stressmark() {
    for program in [
        manual::sm1(),
        manual::sm2(),
        manual::sm_res(),
        manual::barrier_burst(),
    ] {
        let asm = nasm::emit(&program, 1_000);
        // One line per body instruction plus the fixed scaffold.
        let body_lines = asm.lines().filter(|l| l.starts_with("    ")).count();
        assert!(
            body_lines >= program.len(),
            "{}: {} lines for {} instructions",
            program.name(),
            body_lines,
            program.len()
        );
        assert!(asm.contains(".loop:"));
    }
}

#[test]
fn all_workloads_run_and_draw_distinct_power() {
    let rig = Rig::bulldozer();
    let mut currents = Vec::new();
    for profile in workloads::spec2006().into_iter().chain(workloads::parsec()) {
        let program = profile.synthesize(1_500, 1);
        let m = rig.measure_aligned(&[program], fast());
        assert!(m.ipc > 0.1, "{} wedged (ipc {})", profile.name, m.ipc);
        currents.push(m.mean_amps);
    }
    assert_eq!(currents.len(), 34);
    let lo = currents.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = currents.iter().copied().fold(0.0f64, f64::max);
    assert!(hi > lo + 1.0, "workloads indistinguishable: {lo}..{hi}");
}

#[test]
fn eight_thread_placement_reaches_every_module_core() {
    let cfg = ChipConfig::bulldozer();
    let placement = cfg.spread_placement(8).unwrap();
    let mut seen = std::collections::HashSet::new();
    for slot in placement.slots() {
        seen.insert(*slot);
    }
    assert_eq!(seen.len(), 8);
}

#[test]
fn report_tables_render_experiment_style_rows() {
    let mut t = Table::new(vec!["workload", "1T", "2T", "4T", "8T"]);
    t.row(vec![
        "SM-Res".into(),
        "0.45".into(),
        "0.82".into(),
        "1.57".into(),
        "0.48".into(),
    ]);
    let text = t.to_string();
    assert!(text.contains("SM-Res"));
    let csv = t.to_csv();
    assert_eq!(csv.lines().count(), 2);
}

#[test]
fn lower_voltage_never_unfails_a_workload() {
    // Failure must be monotone in nominal voltage for a deterministic
    // workload: if it fails at v, it fails at v - step.
    let rig = Rig::bulldozer();
    let programs = vec![manual::sm_res(); 2];
    let spec = MeasureSpec {
        check_failure: true,
        ..fast()
    };
    let vf = rig.voltage_at_failure(&programs, spec).expect("must fail");
    for dv in [0.0125, 0.025, 0.05] {
        let m = rig.at_voltage(vf - dv).measure_aligned(&programs, spec);
        assert!(m.failed, "unfailed at {} below first failure", dv);
    }
}

#[test]
fn load_line_reduces_reported_dc_level_not_relative_droop_logic() {
    // The paper disables the load line; verify enabling it changes the
    // measured minimum (sanity for the §5.A methodology note).
    let base = Rig::bulldozer();
    let mut with_ll = base.clone();
    with_ll.pdn = with_ll
        .pdn
        .with_load_line(audit_pdn::LoadLine::with_slope(1.0e-3));
    let programs = vec![manual::sm_res(); 4];
    let v_base = base.measure_aligned(&programs, fast()).stats.v_min();
    let v_ll = with_ll.measure_aligned(&programs, fast()).stats.v_min();
    assert!(
        v_ll < v_base - 0.01,
        "load line should sag the rail: {v_ll} vs {v_base}"
    );
}

#[test]
fn program_name_survives_pipeline() {
    let p = Program::new(
        "my-kernel",
        vec![audit_cpu::Inst::new(audit_cpu::Opcode::Nop)],
    );
    assert_eq!(p.name(), "my-kernel");
    let padded = p.with_nop_padding(4);
    assert!(padded.name().contains("my-kernel"));
}
