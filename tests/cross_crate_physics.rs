//! Physics-level cross-crate tests: the claims the paper's analysis
//! sections make must hold through the whole stack (chip model → PDN →
//! measurement).

use audit_core::dither::{dithered_droop, DitherPlan};
use audit_core::harness::{MeasureSpec, Rig};
use audit_core::patterns::{excitation_kernel, ActivityPattern};
use audit_core::resonance;
use audit_cpu::{Inst, Opcode, Program};
use audit_os::{BarrierRelease, OsConfig};
use audit_pdn::ImpedanceSweep;
use audit_stressmark::manual;

fn fast() -> MeasureSpec {
    MeasureSpec::ga_eval()
}

#[test]
fn loop_length_sweep_agrees_with_ac_analysis() {
    // AUDIT's resonance sweep must land near the PDN's first-droop peak
    // on both platforms (it has no knowledge of the circuit).
    for rig in [Rig::bulldozer(), Rig::phenom()] {
        let ac = ImpedanceSweep::new(rig.pdn.clone()).first_droop().unwrap();
        let sweep = resonance::find_resonance(&rig, 2, (16..=64).step_by(2), fast());
        let ratio = sweep.frequency_hz / ac.frequency_hz;
        assert!(
            (0.7..1.4).contains(&ratio),
            "{}: sweep {} Hz vs AC {} Hz",
            rig.chip.name,
            sweep.frequency_hz,
            ac.frequency_hz
        );
    }
}

#[test]
fn resonant_pattern_out_droops_single_excitation() {
    // Fig. 4 through the full stack.
    let rig = Rig::bulldozer();
    let res = resonance::find_resonance(&rig, 4, [24, 28, 30, 32, 36], fast());
    let period = res.period_cycles;

    let resonant = ActivityPattern::square(period, 0)
        .to_kernel(&rig.chip)
        .to_program();
    let excitation = excitation_kernel(&rig.chip, period / 2, period * 10).to_program();

    let d_res = rig.measure_aligned(&vec![resonant; 4], fast()).max_droop();
    let d_ex = rig
        .measure_aligned(&vec![excitation; 4], fast())
        .max_droop();
    assert!(d_res > 1.5 * d_ex, "resonant {d_res} vs excitation {d_ex}");
}

#[test]
fn dithering_recovers_worst_case_from_any_skew() {
    // §3.B: the sweep must reach ≈ the aligned droop from arbitrary
    // initial misalignments.
    let rig = Rig::bulldozer();
    let program = manual::sm_res();
    let aligned = rig
        .measure_aligned(&vec![program.clone(); 2], fast())
        .max_droop();

    for skew in [5u64, 13, 22] {
        let plan = DitherPlan::exact(2, 30, 600);
        let outcome = dithered_droop(&rig, &program, plan, &[0, skew], 200_000);
        assert!(
            outcome.max_droop() > 0.88 * aligned,
            "skew {skew}: dithered {} vs aligned {aligned}",
            outcome.max_droop()
        );
    }
}

#[test]
fn approximate_dithering_trades_accuracy_for_speed() {
    let rig = Rig::bulldozer();
    let program = manual::sm_res();
    let exact = DitherPlan::exact(2, 30, 600);
    let approx = DitherPlan::approximate(2, 30, 600, 4);
    assert!(approx.sweep_cycles() < exact.sweep_cycles() / 4);

    let aligned = rig
        .measure_aligned(&vec![program.clone(); 2], fast())
        .max_droop();
    let outcome = dithered_droop(&rig, &program, approx, &[0, 13], 200_000);
    // With δ = 4 the guarantee weakens but must stay close.
    assert!(
        outcome.max_droop() > 0.75 * aligned,
        "approx dithered {} vs aligned {aligned}",
        outcome.max_droop()
    );
}

#[test]
fn natural_dithering_walks_alignment_over_time() {
    // §3.A / Fig. 6: with OS ticks enabled, the droop envelope varies
    // tick to tick; with them disabled and a fixed skew it does not.
    let program = manual::sm_res();
    let spec = MeasureSpec {
        record_cycles: 48_000,
        envelope_decimation: 3_000,
        ..fast()
    };

    let quiet = Rig::bulldozer();
    let m_quiet = quiet.measure_with_offsets(&vec![program.clone(); 4], &[0, 13, 22, 7], spec);

    let noisy = Rig::bulldozer().with_os(OsConfig::compressed(4_000).with_seed(17));
    let m_noisy = noisy.measure_with_offsets(&vec![program.clone(); 4], &[0, 13, 22, 7], spec);

    let spread = |env: &[f64]| {
        let lo = env.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = env.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    };
    // Skip the first window (startup transient) in both.
    let quiet_spread = spread(&m_quiet.envelope[1..]);
    let noisy_spread = spread(&m_noisy.envelope[1..]);
    assert!(
        noisy_spread > 2.0 * quiet_spread + 1e-4,
        "noisy {noisy_spread} vs quiet {quiet_spread}"
    );
}

#[test]
fn data_toggle_effect_is_about_ten_percent() {
    // §3: worst-case vs best-case operand data ≈ 10 % droop difference.
    let rig = Rig::bulldozer();
    let retoggled = |t: f64| {
        Program::new(
            "sm-res-toggled",
            manual::sm_res()
                .body()
                .iter()
                .map(|i| {
                    let mut i = *i;
                    i.toggle = t;
                    i
                })
                .collect(),
        )
    };
    let lo = rig
        .measure_aligned(&vec![retoggled(0.0); 4], fast())
        .max_droop();
    let hi = rig
        .measure_aligned(&vec![retoggled(1.0); 4], fast())
        .max_droop();
    let gain = hi / lo - 1.0;
    assert!((0.04..0.20).contains(&gain), "toggle gain {gain}");
}

#[test]
fn nop_to_add_substitution_reduces_droop() {
    // §5.A.5 on the hand-resonant kernel: replacing HP NOPs with
    // independent ADDs must not increase the droop (the writeback-port
    // hazard stretches the loop off resonance).
    let rig = Rig::bulldozer();
    let kernel = manual::sm_res_kernel();
    let with_adds =
        kernel.with_hp_nops_replaced(Inst::new(Opcode::IAdd).int_dst(7).int_srcs(12, 13));
    let orig = rig.measure_aligned(&vec![kernel.to_program(); 4], fast());
    let modified = rig.measure_aligned(&vec![with_adds.to_program(); 4], fast());
    assert!(
        modified.max_droop() < orig.max_droop(),
        "ADDs should hurt: {} vs {}",
        modified.max_droop(),
        orig.max_droop()
    );
    // …even though they draw at least as much average current.
    assert!(modified.mean_amps > 0.95 * orig.mean_amps);
}

#[test]
fn barrier_release_skew_damps_the_synchronized_burst() {
    // §5.A.1: the realistic skewed release produces a smaller burst
    // droop than the idealized synchronous release.
    let rig = Rig::bulldozer();
    let burst = manual::barrier_burst();
    let spec = MeasureSpec {
        record_cycles: 4_000,
        ..fast()
    };

    let run = |mut release: BarrierRelease, episodes: usize| {
        let mut sum = 0.0;
        for _ in 0..episodes {
            let offsets = release.draw_offsets(4);
            sum += rig
                .measure_with_offsets(&vec![burst.clone(); 4], &offsets, spec)
                .max_droop();
        }
        sum / episodes as f64
    };
    let ideal = run(BarrierRelease::ideal(), 2);
    let skewed = run(BarrierRelease::bulldozer_like(7), 6);
    assert!(skewed < ideal, "skewed {skewed} vs ideal {ideal}");
}

#[test]
fn shared_fpu_makes_8t_worse_than_4t_for_resonant_marks() {
    // §5.A.2: FP-heavy stressmarks lose droop going 4T → 8T.
    let rig = Rig::bulldozer();
    let d4 = rig
        .measure_aligned(&vec![manual::sm_res(); 4], fast())
        .max_droop();
    let d8 = rig
        .measure_aligned(&vec![manual::sm_res(); 8], fast())
        .max_droop();
    assert!(d8 < d4, "8T {d8} should be below 4T {d4}");
}

#[test]
fn paper_dithering_cost_arithmetic() {
    // §3.B numbers at 4 GHz, L+H = 24, M = 960.
    let clock = 4.0e9;
    assert!((DitherPlan::exact(4, 24, 960).sweep_seconds(clock) - 3.3e-3).abs() < 2e-4);
    assert!((DitherPlan::exact(8, 24, 960).sweep_seconds(clock) / 60.0 - 18.35).abs() < 0.3);
    assert!((DitherPlan::approximate(8, 24, 960, 3).sweep_seconds(clock) * 1e3 - 67.0).abs() < 3.0);
}
