#!/usr/bin/env bash
# Documentation and lint gate, run locally and in CI (.github/workflows/ci.yml).
#
# Fails on:
#   - any rustdoc warning (missing docs are warnings in every crate, so
#     RUSTDOCFLAGS turns them fatal),
#   - any clippy lint across all targets.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --document-private-items

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "OK"
