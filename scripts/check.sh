#!/usr/bin/env bash
# Documentation and lint gate, run locally and in CI (.github/workflows/ci.yml).
#
# Fails on:
#   - any rustdoc warning (missing docs are warnings in every crate, so
#     RUSTDOCFLAGS turns them fatal),
#   - any clippy lint across all targets,
#   - any drift of the public API surface from the checked-in
#     api-surface.txt snapshot (run `scripts/check.sh --bless-api`
#     after an *intentional* API change and commit the diff).
set -euo pipefail
cd "$(dirname "$0")/.."

# One line per `pub` item across the workspace's library sources,
# normalized (signatures truncated at the line break — this is a drift
# detector, not a parser) and sorted deterministically.
api_surface() {
    grep -rE '^[[:space:]]*pub (fn|struct|enum|trait|mod|const|type|use|static)' \
        crates/*/src --include='*.rs' \
        | sed -E 's/:[[:space:]]+/: /; s/[[:space:]]+/ /g; s/ \{.*$//; s/;.*$//; s/ ->.*$//; s/[[:space:]]+$//' \
        | LC_ALL=C sort
}

if [[ "${1:-}" == "--bless-api" ]]; then
    api_surface > api-surface.txt
    echo "blessed $(wc -l < api-surface.txt) public items into api-surface.txt"
    exit 0
fi

echo "==> public API surface (vs api-surface.txt)"
if ! diff -u api-surface.txt <(api_surface); then
    echo "public API surface drifted; review the diff above and run" >&2
    echo "  scripts/check.sh --bless-api" >&2
    echo "if the change is intentional." >&2
    exit 1
fi

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --document-private-items

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> self-lint (every built-in program must be clean)"
cargo run --release -q -p audit-cli --bin audit -- lint --all-builtins --deny-warnings

echo "OK"
