#!/usr/bin/env bash
# Documentation and lint gate, run locally and in CI (.github/workflows/ci.yml).
#
# Fails on:
#   - any rustdoc warning (missing docs are warnings in every crate, so
#     RUSTDOCFLAGS turns them fatal),
#   - any clippy lint across all targets,
#   - any drift of the public API surface from the checked-in
#     api-surface.txt snapshot (run `scripts/check.sh --bless-api`
#     after an *intentional* API change and commit the diff).
set -euo pipefail
cd "$(dirname "$0")/.."

# One line per `pub` item across the workspace's library sources,
# normalized (signatures truncated at the line break — this is a drift
# detector, not a parser) and sorted deterministically.
api_surface() {
    grep -rE '^[[:space:]]*pub (fn|struct|enum|trait|mod|const|type|use|static)' \
        crates/*/src --include='*.rs' \
        | sed -E 's/:[[:space:]]+/: /; s/[[:space:]]+/ /g; s/ \{.*$//; s/;.*$//; s/ ->.*$//; s/[[:space:]]+$//' \
        | LC_ALL=C sort
}

if [[ "${1:-}" == "--bless-api" ]]; then
    api_surface > api-surface.txt
    echo "blessed $(wc -l < api-surface.txt) public items into api-surface.txt"
    exit 0
fi

echo "==> public API surface (vs api-surface.txt)"
if ! diff -u api-surface.txt <(api_surface); then
    echo "public API surface drifted; review the diff above and run" >&2
    echo "  scripts/check.sh --bless-api" >&2
    echo "if the change is intentional." >&2
    exit 1
fi

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --document-private-items

echo "==> cargo clippy (warnings are errors; deprecated calls are errors)"
# `-D deprecated` keeps the workspace off the deprecated scalar
# `FitnessSpec::evaluate`/`evaluate_batch` wrappers (and anything else
# we deprecate later): internal callers must migrate, only the pinned
# `#[allow(deprecated)]` equivalence test may touch them.
cargo clippy --workspace --all-targets -- -D warnings -D deprecated

echo "==> self-lint (every built-in program must be clean)"
cargo run --release -q -p audit-cli --bin audit -- lint --all-builtins --deny-warnings

echo "==> minimized-corpus re-lint (checked-in kernels stay publishable)"
# The regression corpus under tests/fixtures/minimized/ was produced by
# `audit minimize`; every witness and kernel must survive the strictest
# lint gate, so a lint-catalog change that poisons the corpus fails
# here (minimized_corpus.rs pins the same contract in-process).
for f in crates/stressmark/tests/fixtures/minimized/*.prog; do
    cargo run --release -q -p audit-cli --bin audit -- lint "$f" --deny-warnings > /dev/null \
        || { echo "minimized corpus file $f is not lint-clean" >&2; exit 1; }
done

echo "==> cascade perf gate (≥2x candidate throughput at a fixed sim budget)"
# The ext_cascade_scaling bin asserts the thresholds itself — ≥2x
# candidates/sec over full-sim-only, equal-or-better final droop on the
# pinned study, bit-identical across GA thread counts — and writes the
# BENCH_cascade.json artifact (docs/SIMULATION.md). A non-zero exit
# here means the cascade's performance model regressed.
AUDIT_FAST=1 cargo run --release -q -p audit-bench --bin ext_cascade_scaling
[[ -s BENCH_cascade.json ]] \
    || { echo "ext_cascade_scaling did not write BENCH_cascade.json" >&2; exit 1; }

echo "==> shmoo gate (3x3 V/F surface, mid-plane kill/resume byte-identity)"
# The ext_shmoo bin sweeps the 3x3 grid around the Bulldozer nominal
# point, simulates a mid-plane kill by truncating its journal at a
# terminal record boundary, and asserts the resumed sweep settles the
# same surface with a byte-identical journal (docs/PARETO.md). It
# writes the BENCH_shmoo.json artifact + the gnuplot heatmap.
AUDIT_FAST=1 cargo run --release -q -p audit-bench --bin ext_shmoo
[[ -s BENCH_shmoo.json ]] \
    || { echo "ext_shmoo did not write BENCH_shmoo.json" >&2; exit 1; }

echo "==> minimize gate (ddmin strips freeloaders, mid-search kill/resume byte-identity)"
# The ext_minimize bin minimizes a padded witness (dense SimdFma core +
# NOP freeloaders), asserts the kernel is strictly smaller with ≥90% of
# the baseline droop and that only core instructions survive, simulates
# a mid-search kill at a terminal probe boundary, and asserts the
# resumed search settles the same kernel with a byte-identical journal
# (docs/ANALYSIS.md). It writes the BENCH_minimize.json artifact.
AUDIT_FAST=1 cargo run --release -q -p audit-bench --bin ext_minimize
[[ -s BENCH_minimize.json ]] \
    || { echo "ext_minimize did not write BENCH_minimize.json" >&2; exit 1; }

echo "==> fault-injection smoke (Vmin checkpoint survives a kill)"
# A crash-prone checkpointed Vmin search, killed after its first settled
# probe, must resume to the same answer and a byte-identical journal
# (docs/ROBUSTNESS.md). Exercises the full CLI path end to end.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
audit=(cargo run --release -q -p audit-cli --bin audit --)
"${audit[@]}" failure --stressmark sm-res --fast --threads 2 \
    --faults 5:crash=0.2 --retries 4 \
    --checkpoint "$smoke_dir/full.ndjson" > "$smoke_dir/full.out"
cut=$(grep -nE '"kind":"vmin_step".*"outcome":"(passed|failed)"' \
    "$smoke_dir/full.ndjson" | head -1 | cut -d: -f1)
head -n "$cut" "$smoke_dir/full.ndjson" > "$smoke_dir/killed.ndjson"
"${audit[@]}" failure --resume "$smoke_dir/killed.ndjson" > "$smoke_dir/resumed.out"
grep -F "$(grep 'fails at' "$smoke_dir/full.out")" "$smoke_dir/resumed.out" > /dev/null \
    || { echo "resumed Vmin answer drifted from the uninterrupted run" >&2; exit 1; }
cmp "$smoke_dir/full.ndjson" "$smoke_dir/killed.ndjson" \
    || { echo "resumed Vmin journal is not byte-identical" >&2; exit 1; }
# Same discipline for a checkpointed shmoo sweep through the CLI,
# killed right after its first settled operating point: the resumed
# sweep must replay that point, finish the plane, and rebuild the
# byte-identical journal (docs/PARETO.md).
"${audit[@]}" shmoo --stressmark sm-res --fast --threads 2 \
    --checkpoint "$smoke_dir/shmoo.ndjson" > "$smoke_dir/shmoo.out"
cut=$(grep -n '"kind":"shmoo_point".*"outcome":"done"' \
    "$smoke_dir/shmoo.ndjson" | head -1 | cut -d: -f1)
head -n "$cut" "$smoke_dir/shmoo.ndjson" > "$smoke_dir/shmoo-killed.ndjson"
"${audit[@]}" shmoo --resume "$smoke_dir/shmoo-killed.ndjson" > "$smoke_dir/shmoo-resumed.out"
cmp "$smoke_dir/shmoo.ndjson" "$smoke_dir/shmoo-killed.ndjson" \
    || { echo "resumed shmoo journal is not byte-identical" >&2; exit 1; }
# Same discipline for a checkpointed witness minimization through the
# CLI, killed right after its first terminal probe: the resumed search
# must replay that probe, settle the same kernel, and rebuild the
# byte-identical journal (docs/ANALYSIS.md). Minimize records carry no
# wall-clock telemetry, so a plain cmp is the contract.
{
    echo "# name: smoke-witness"
    for i in 0 1 2 3; do echo "simdfma f$i f12 f13 t=1.00"; done
    for _ in $(seq 1 8); do echo "nop"; done
} > "$smoke_dir/witness.prog"
"${audit[@]}" minimize "$smoke_dir/witness.prog" --fast --threads 2 \
    --checkpoint "$smoke_dir/min.ndjson" --out "$smoke_dir/kernel.prog" \
    > "$smoke_dir/min.out"
cut=$(grep -nE '"kind":"minimize_step".*"droop"' "$smoke_dir/min.ndjson" \
    | head -1 | cut -d: -f1)
head -n "$cut" "$smoke_dir/min.ndjson" > "$smoke_dir/min-killed.ndjson"
"${audit[@]}" minimize --resume "$smoke_dir/min-killed.ndjson" \
    --out "$smoke_dir/kernel-resumed.prog" > "$smoke_dir/min-resumed.out"
cmp "$smoke_dir/min.ndjson" "$smoke_dir/min-killed.ndjson" \
    || { echo "resumed minimize journal is not byte-identical" >&2; exit 1; }
cmp "$smoke_dir/kernel.prog" "$smoke_dir/kernel-resumed.prog" \
    || { echo "resumed minimize kernel drifted from the uninterrupted run" >&2; exit 1; }
"${audit[@]}" lint "$smoke_dir/kernel.prog" --deny-warnings > /dev/null \
    || { echo "minimized kernel is not lint-clean" >&2; exit 1; }
# Same discipline for a faulty checkpointed GA run, killed after its
# first completed generation. Journals are compared modulo `wall_s`
# (wall-clock telemetry legitimately differs on resume, RUN_JOURNAL.md);
# the printed result must match exactly.
"${audit[@]}" generate --fast --threads 2 \
    --faults 7:noise=0.002,hang=0.05 --repeat 2 --retries 3 \
    --checkpoint "$smoke_dir/gen.ndjson" > "$smoke_dir/gen.out"
cut=$(grep -n '"kind":"generation"' "$smoke_dir/gen.ndjson" | head -1 | cut -d: -f1)
head -n "$cut" "$smoke_dir/gen.ndjson" > "$smoke_dir/gen-killed.ndjson"
"${audit[@]}" generate --resume "$smoke_dir/gen-killed.ndjson" > "$smoke_dir/gen-resumed.out"
strip_wall() { sed -E 's/"wall_s":[0-9.eE+-]+/"wall_s":0/g' "$1"; }
cmp <(strip_wall "$smoke_dir/gen.ndjson") <(strip_wall "$smoke_dir/gen-killed.ndjson") \
    || { echo "resumed faulty GA journal drifted (beyond wall_s)" >&2; exit 1; }
# (The `resilience` counters are *not* compared: replayed generations
# re-simulate nothing, so the resumed run legitimately executes fewer
# evaluations.)
grep -F "$(grep 'best droop' "$smoke_dir/gen.out")" "$smoke_dir/gen-resumed.out" > /dev/null \
    || { echo "resumed faulty GA result drifted from the uninterrupted run" >&2; exit 1; }

echo "==> distributed smoke (broker + 2 workers, byte-identical journal)"
# The same tiny generate, once in-process and once through the
# audit-net broker with two worker processes over a Unix socket. The
# determinism contract (docs/DISTRIBUTED.md): identical journal bytes
# modulo wall-clock telemetry.
sock="$smoke_dir/broker.sock"
( sleep 0.3; "${audit[@]}" work --connect "unix:$sock" > "$smoke_dir/w1.out" 2>&1 ) &
w1=$!
( sleep 0.3; "${audit[@]}" work --connect "unix:$sock" > "$smoke_dir/w2.out" 2>&1 ) &
w2=$!
"${audit[@]}" serve --fast --threads 2 --seed 3 --listen "unix:$sock" \
    --min-workers 2 --checkpoint "$smoke_dir/dist.ndjson" > "$smoke_dir/dist.out"
wait "$w1" "$w2" \
    || { echo "a distributed worker exited non-zero" >&2; exit 1; }
"${audit[@]}" generate --fast --threads 2 --seed 3 \
    --checkpoint "$smoke_dir/dist-local.ndjson" > "$smoke_dir/dist-local.out"
cmp <(strip_wall "$smoke_dir/dist.ndjson") <(strip_wall "$smoke_dir/dist-local.ndjson") \
    || { echo "distributed journal drifted from the in-process run (beyond wall_s)" >&2; exit 1; }
[[ -e "$smoke_dir/dist.ndjson.wal" ]] \
    && { echo "broker left its write-ahead log behind after a clean finish" >&2; exit 1; }

echo "==> chaos gate (2 workers under net faults + cross-validation, byte-identical journal)"
# The same campaign with the full threat model injected at the broker's
# wire boundary — drops, duplicates, bit-flips, stalls, byzantine lies —
# and every defense engaged (docs/ROBUSTNESS.md). The journal must still
# match the in-process run byte for byte modulo wall-clock telemetry.
csock="$smoke_dir/chaos.sock"
( sleep 0.3; "${audit[@]}" work --connect "unix:$csock" --connect-retry 25 \
    > "$smoke_dir/cw1.out" 2>&1 ) &
cw1=$!
( sleep 0.3; "${audit[@]}" work --connect "unix:$csock" --connect-retry 25 \
    > "$smoke_dir/cw2.out" 2>&1 ) &
cw2=$!
"${audit[@]}" serve --fast --threads 2 --seed 3 --listen "unix:$csock" \
    --min-workers 2 --heartbeat 100 --dead-after 2000 --verify-fraction 1.0 \
    --net-faults 3:drop=0.02,dup=0.05,corrupt=0.02,stall=0.01,lie=0.05 \
    --checkpoint "$smoke_dir/chaos.ndjson" > "$smoke_dir/chaos.out"
wait "$cw1" "$cw2" \
    || { echo "a chaos worker exited non-zero" >&2; exit 1; }
cmp <(strip_wall "$smoke_dir/chaos.ndjson") <(strip_wall "$smoke_dir/dist-local.ndjson") \
    || { echo "chaos journal drifted from the in-process run (beyond wall_s)" >&2; exit 1; }
[[ -e "$smoke_dir/chaos.ndjson.wal" ]] \
    && { echo "broker left its write-ahead log behind after a chaos finish" >&2; exit 1; }

echo "==> journal fsck smoke (corrupt interior -> repair -> resume byte-identity)"
# A checkpoint with a bit-rotted interior line must be flagged
# non-resumable, repaired to its valid prefix atomically, and then
# resume to the uninterrupted run's bytes (docs/ROBUSTNESS.md).
cp "$smoke_dir/gen.ndjson" "$smoke_dir/sick.ndjson"
rot=$(grep -n '"kind":"generation"' "$smoke_dir/sick.ndjson" | head -1 | cut -d: -f1)
sed -i "${rot}s/.*/{\"kind\":\"gene<BITROT>/" "$smoke_dir/sick.ndjson"
if "${audit[@]}" journal fsck "$smoke_dir/sick.ndjson" > "$smoke_dir/fsck.out" 2>&1; then
    echo "fsck exited zero on a corrupt-interior journal" >&2; exit 1
fi
grep -q "corrupt interior" "$smoke_dir/fsck.out" \
    || { echo "fsck missed the corrupt interior" >&2; exit 1; }
"${audit[@]}" journal fsck "$smoke_dir/sick.ndjson" --repair > "$smoke_dir/fsck-repair.out"
grep -q "repaired: truncated" "$smoke_dir/fsck-repair.out" \
    || { echo "fsck --repair did not truncate" >&2; exit 1; }
"${audit[@]}" journal fsck "$smoke_dir/sick.ndjson" > "$smoke_dir/fsck-clean.out"
grep -q ": clean" "$smoke_dir/fsck-clean.out" \
    || { echo "repaired journal is not fsck-clean" >&2; exit 1; }
"${audit[@]}" generate --resume "$smoke_dir/sick.ndjson" > "$smoke_dir/sick-resumed.out"
cmp <(strip_wall "$smoke_dir/gen.ndjson") <(strip_wall "$smoke_dir/sick.ndjson") \
    || { echo "repair+resume journal drifted (beyond wall_s)" >&2; exit 1; }
grep -F "$(grep 'best droop' "$smoke_dir/gen.out")" "$smoke_dir/sick-resumed.out" > /dev/null \
    || { echo "repair+resume result drifted from the uninterrupted run" >&2; exit 1; }
# A torn tail (kill mid-append) is the benign case: fsck classifies it
# and exits zero, because --resume already drops a torn final line.
printf '{"kind":"generation","ind' >> "$smoke_dir/sick.ndjson"
"${audit[@]}" journal fsck "$smoke_dir/sick.ndjson" > "$smoke_dir/fsck-torn.out" \
    || { echo "fsck refused a benign torn tail" >&2; exit 1; }
grep -q "torn tail" "$smoke_dir/fsck-torn.out" \
    || { echo "fsck missed the torn tail" >&2; exit 1; }

echo "==> fleet bench gate (shared pool beats serial brokers, bit-identical)"
# The ext_fleet bin runs two identical campaigns serially on dedicated
# brokers and concurrently on one fleet pool, asserts both schedules
# produce bit-identical runs and journals, that the twin hit the
# cross-campaign eval cache, and that the shared pool's makespan beats
# serial by the floor margin (docs/FLEET.md). Writes BENCH_fleet.json.
AUDIT_FAST=1 cargo run --release -q -p audit-bench --bin ext_fleet
[[ -s BENCH_fleet.json ]] \
    || { echo "ext_fleet did not write BENCH_fleet.json" >&2; exit 1; }

echo "==> fleet smoke (2 tenants on a shared pool, manager kill -9 + resume)"
# Two campaigns with different seeds and fitness kinds, submitted
# concurrently to one `audit fleet serve` manager sharing two Unix-socket
# workers. The multi-tenant determinism contract (docs/FLEET.md): each
# campaign's journal is byte-identical (modulo wall-clock telemetry) to
# its solo `audit generate` run — including across a SIGKILL of the
# manager mid-campaign and a `--resume` resubmission of every tenant,
# which prefills from the per-campaign dispatch WALs.
fsock="$smoke_dir/fleet.sock"
"${audit[@]}" fleet serve --listen "unix:$fsock" --min-workers 2 --campaigns 2 \
    > "$smoke_dir/fleet.out" 2>&1 &
fleet_pid=$!
( sleep 0.3; "${audit[@]}" work --connect "unix:$fsock" > "$smoke_dir/fw1.out" 2>&1 ) &
( sleep 0.3; "${audit[@]}" work --connect "unix:$fsock" > "$smoke_dir/fw2.out" 2>&1 ) &
( sleep 0.6; "${audit[@]}" fleet submit --connect "unix:$fsock" --fast --threads 2 \
    --seed 5 --checkpoint "$smoke_dir/tenant-a.ndjson" \
    > "$smoke_dir/sub-a.out" 2>&1 ) &
( sleep 0.6; "${audit[@]}" fleet submit --connect "unix:$fsock" --fast --threads 2 \
    --seed 9 --kind ex --checkpoint "$smoke_dir/tenant-b.ndjson" \
    > "$smoke_dir/sub-b.out" 2>&1 ) &
# Kill the manager the moment both campaigns are confirmed started:
# mid-resonance or mid-GA, with dispatch WALs on disk.
for _ in $(seq 1 200); do
    started=$(grep -c "started:" "$smoke_dir/fleet.out" 2>/dev/null) || started=0
    [[ "$started" -ge 2 ]] && break
    sleep 0.05
done
[[ "$started" -ge 2 ]] \
    || { echo "fleet manager never started both campaigns" >&2; exit 1; }
kill -9 "$fleet_pid" 2>/dev/null || true
wait > /dev/null 2>&1 || true
# Second manager lineage: resume both tenants to completion.
fsock2="$smoke_dir/fleet2.sock"
"${audit[@]}" fleet serve --listen "unix:$fsock2" --min-workers 2 --campaigns 2 \
    > "$smoke_dir/fleet2.out" 2>&1 &
( sleep 0.3; "${audit[@]}" work --connect "unix:$fsock2" > "$smoke_dir/fw3.out" 2>&1 ) &
fw3=$!
( sleep 0.3; "${audit[@]}" work --connect "unix:$fsock2" > "$smoke_dir/fw4.out" 2>&1 ) &
fw4=$!
( sleep 0.6; "${audit[@]}" fleet submit --connect "unix:$fsock2" \
    --resume "$smoke_dir/tenant-a.ndjson" > "$smoke_dir/res-a.out" 2>&1 ) &
ra=$!
( sleep 0.6; "${audit[@]}" fleet submit --connect "unix:$fsock2" \
    --resume "$smoke_dir/tenant-b.ndjson" > "$smoke_dir/res-b.out" 2>&1 ) &
rb=$!
wait "$ra" "$rb" \
    || { echo "a resumed fleet submission failed" >&2; exit 1; }
wait "$fw3" "$fw4" \
    || { echo "a fleet worker exited non-zero" >&2; exit 1; }
# Each tenant's journal matches its solo run, byte for byte mod wall_s.
"${audit[@]}" generate --fast --threads 2 --seed 5 \
    --checkpoint "$smoke_dir/solo-a.ndjson" > "$smoke_dir/solo-a.out"
"${audit[@]}" generate --fast --threads 2 --seed 9 --kind ex \
    --checkpoint "$smoke_dir/solo-b.ndjson" > "$smoke_dir/solo-b.out"
cmp <(strip_wall "$smoke_dir/tenant-a.ndjson") <(strip_wall "$smoke_dir/solo-a.ndjson") \
    || { echo "tenant A journal drifted from its solo run (beyond wall_s)" >&2; exit 1; }
cmp <(strip_wall "$smoke_dir/tenant-b.ndjson") <(strip_wall "$smoke_dir/solo-b.ndjson") \
    || { echo "tenant B journal drifted from its solo run (beyond wall_s)" >&2; exit 1; }
# Completed campaigns leave no dispatch WALs behind.
leftover=$(ls "$smoke_dir"/*.wal 2>/dev/null || true)
[[ -n "$leftover" ]] \
    && { echo "fleet resume left dispatch WALs behind: $leftover" >&2; exit 1; }

echo "OK"
