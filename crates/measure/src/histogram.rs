//! Fixed-range histograms of voltage samples (paper Fig. 10).

use serde::{Deserialize, Serialize};

/// A fixed-range, fixed-bin histogram of `f64` samples.
///
/// Finite samples outside the range are clamped into the edge bins, so
/// the total count always equals the number of finite recorded samples
/// — matching how a scope bins its full capture. Non-finite samples are
/// ignored (see [`Histogram::record`]).
///
/// # Example
///
/// ```
/// use audit_measure::Histogram;
///
/// let mut h = Histogram::new(1.0, 1.3, 30);
/// for v in [1.05, 1.11, 1.20, 1.21] {
///     h.record(v);
/// }
/// assert_eq!(h.total(), 4);
/// assert!(h.quantile(0.0) <= 1.06);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, the bounds are not finite, or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid histogram range"
        );
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Records one sample. Non-finite samples are ignored: a NaN casts
    /// to bin 0 under `as isize` and would silently masquerade as a
    /// deep-droop event, and infinities carry no bin information — so
    /// `total()` counts *finite* samples only.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let bins = self.counts.len();
        let t = (v - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64) as isize).clamp(0, bins as isize - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Center voltage of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Approximate `q`-quantile of the recorded distribution (`q` in
    /// `[0, 1]`), computed from bin centers. Returns the low edge for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return self.lo;
        }
        let target = (q.clamp(0.0, 1.0) * (total - 1) as f64) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > target {
                return self.bin_center(i);
            }
        }
        self.bin_center(self.counts.len() - 1)
    }

    /// Fraction of samples at or below `v`.
    pub fn fraction_at_or_below(&self, v: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let below: u64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|(i, _)| self.bin_center(*i) <= v)
            .map(|(_, &c)| c)
            .sum();
        below as f64 / total as f64
    }

    /// Merges another histogram's counts into this one.
    ///
    /// # Panics
    ///
    /// Panics if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram ranges differ");
        assert_eq!(self.hi, other.hi, "histogram ranges differ");
        assert_eq!(self.counts.len(), other.counts.len(), "bin counts differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Rows of `(bin center, count)` for report emission.
    pub fn rows(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_center(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.record(0.05);
        h.record(0.95);
        h.record(0.95);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_clamps_to_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn quantiles_bracket_distribution() {
        let mut h = Histogram::new(0.0, 1.0, 100);
        for i in 0..1000 {
            h.record(i as f64 / 1000.0);
        }
        assert!((h.quantile(0.5) - 0.5).abs() < 0.02);
        assert!(h.quantile(0.0) < 0.02);
        assert!(h.quantile(1.0) > 0.98);
    }

    #[test]
    fn empty_quantile_returns_low_edge() {
        let h = Histogram::new(1.0, 2.0, 5);
        assert_eq!(h.quantile(0.5), 1.0);
        assert_eq!(h.fraction_at_or_below(1.5), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let mut b = Histogram::new(0.0, 1.0, 4);
        a.record(0.1);
        b.record(0.1);
        b.record(0.9);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.counts()[0], 2);
    }

    #[test]
    #[should_panic(expected = "ranges differ")]
    fn merge_rejects_mismatched_ranges() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let b = Histogram::new(0.0, 2.0, 4);
        a.merge(&b);
    }

    #[test]
    fn fraction_at_or_below_counts_tail() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for v in [0.1, 0.2, 0.8, 0.9] {
            h.record(v);
        }
        let f = h.fraction_at_or_below(0.5);
        assert!((f - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn rejects_inverted_range() {
        let _ = Histogram::new(2.0, 1.0, 4);
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.record(0.55);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            h.record(bad);
        }
        assert_eq!(h.total(), 1);
        // A NaN must not be silently counted as a bin-0 (deep droop) event.
        assert_eq!(h.counts()[0], 0);
        assert_eq!(h.counts()[5], 1);
    }
}
