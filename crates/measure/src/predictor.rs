//! Signature-based voltage-emergency prediction (Reddi et al.,
//! HPCA 2009 — the paper's reference \[22\]).
//!
//! The idea: voltage emergencies are preceded by recognizable activity
//! patterns; learn signatures of the cycles leading up to an emergency
//! and fire a prediction whenever the signature recurs, early enough for
//! a mitigation (rollback, throttle) to act. The signature here is the
//! quantized recent current-slew history — a microarchitecture-neutral
//! proxy for the event patterns the original used.
//!
//! Deterministic resonant stressmarks are the predictor's best case
//! (their pre-droop pattern repeats exactly); irregular benchmarks are
//! the hard case. The `ext_emergency_prediction` experiment quantifies
//! both.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Cycles of slew history per signature.
    pub history: usize,
    /// Quantization step for the current slew, amps.
    pub quantum: f64,
    /// Emergency threshold: voltage below this is an emergency.
    pub v_emergency: f64,
    /// Lead time: a prediction fired at cycle `t` covers an emergency in
    /// `(t, t + lead]`.
    pub lead_cycles: usize,
}

impl PredictorConfig {
    /// A Reddi-like default: 8-cycle signatures, 2 A slew bins, 16-cycle
    /// lead time.
    pub fn default_tuning(v_emergency: f64) -> Self {
        PredictorConfig {
            history: 8,
            quantum: 2.0,
            v_emergency,
            lead_cycles: 16,
        }
    }
}

/// Outcome counts of an evaluation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictionStats {
    /// Emergencies that had a prediction within the lead window.
    pub covered: u64,
    /// Emergencies with no preceding prediction.
    pub missed: u64,
    /// Predictions with no emergency in their lead window.
    pub false_alarms: u64,
    /// Predictions confirmed by an emergency.
    pub confirmed: u64,
}

impl PredictionStats {
    /// Fraction of emergencies predicted in time (recall).
    pub fn coverage(&self) -> f64 {
        let total = self.covered + self.missed;
        if total == 0 {
            1.0
        } else {
            self.covered as f64 / total as f64
        }
    }

    /// Fraction of predictions that were right (precision).
    pub fn precision(&self) -> f64 {
        let total = self.confirmed + self.false_alarms;
        if total == 0 {
            1.0
        } else {
            self.confirmed as f64 / total as f64
        }
    }
}

/// The signature predictor: train on one capture, evaluate on another.
#[derive(Debug, Clone)]
pub struct SignaturePredictor {
    cfg: PredictorConfig,
    /// Signatures observed to precede an emergency.
    emergency_signatures: HashMap<u64, u64>,
}

impl SignaturePredictor {
    /// Creates an untrained predictor.
    pub fn new(cfg: PredictorConfig) -> Self {
        SignaturePredictor {
            cfg,
            emergency_signatures: HashMap::new(),
        }
    }

    /// Number of distinct signatures learned.
    pub fn signature_count(&self) -> usize {
        self.emergency_signatures.len()
    }

    fn signatures(&self, current: &[f64]) -> Vec<(usize, u64)> {
        // Signature at cycle t hashes quantized slews over
        // [t-history, t).
        let h = self.cfg.history;
        let mut out = Vec::new();
        if current.len() <= h + 1 {
            return out;
        }
        for t in (h + 1)..current.len() {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for k in (t - h)..t {
                let slew = current[k] - current[k - 1];
                let q = (slew / self.cfg.quantum).round() as i64;
                hash ^= q as u64;
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
            out.push((t, hash));
        }
        out
    }

    /// Learns emergency-preceding signatures from paired current and
    /// voltage traces.
    ///
    /// # Panics
    ///
    /// Panics if the traces differ in length.
    pub fn train(&mut self, current: &[f64], voltage: &[f64]) {
        assert_eq!(current.len(), voltage.len(), "trace length mismatch");
        for (t, sig) in self.signatures(current) {
            let window_end = (t + self.cfg.lead_cycles).min(voltage.len());
            let emergency = voltage[t..window_end]
                .iter()
                .any(|&v| v < self.cfg.v_emergency);
            if emergency {
                *self.emergency_signatures.entry(sig).or_insert(0) += 1;
            }
        }
    }

    /// Evaluates on (typically held-out) traces.
    ///
    /// # Panics
    ///
    /// Panics if the traces differ in length.
    pub fn evaluate(&self, current: &[f64], voltage: &[f64]) -> PredictionStats {
        assert_eq!(current.len(), voltage.len(), "trace length mismatch");
        let mut stats = PredictionStats::default();
        let n = voltage.len();
        // For each cycle, did we predict, and was there an emergency?
        let mut covered = vec![false; n];
        for (t, sig) in self.signatures(current) {
            if self.emergency_signatures.contains_key(&sig) {
                let end = (t + self.cfg.lead_cycles).min(n);
                let hit = voltage[t..end].iter().any(|&v| v < self.cfg.v_emergency);
                if hit {
                    stats.confirmed += 1;
                    for c in covered.iter_mut().take(end).skip(t) {
                        *c = true;
                    }
                } else {
                    stats.false_alarms += 1;
                }
            }
        }
        // Count emergency *onsets* (downward crossings) and whether each
        // was covered by a prediction window.
        let mut below = false;
        for t in 0..n {
            let b = voltage[t] < self.cfg.v_emergency;
            if b && !below {
                if covered[t] {
                    stats.covered += 1;
                } else {
                    stats.missed += 1;
                }
            }
            below = b;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic deterministic "resonant" pair of traces: current
    /// square wave, voltage dipping a fixed delay after each rising
    /// edge.
    fn resonant_traces(n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut current = Vec::with_capacity(n);
        let mut voltage = Vec::with_capacity(n);
        for t in 0..n {
            let hi = (t / 15) % 2 == 0;
            current.push(if hi { 50.0 } else { 10.0 });
            // Emergency 5 cycles into each high phase.
            let phase = t % 30;
            voltage.push(if (5..9).contains(&phase) { 1.05 } else { 1.18 });
        }
        (current, voltage)
    }

    fn noise_traces(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut x = seed | 1;
        let mut rnd = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let current: Vec<f64> = (0..n).map(|_| 10.0 + 40.0 * rnd()).collect();
        let voltage: Vec<f64> = (0..n)
            .map(|_| if rnd() < 0.01 { 1.05 } else { 1.18 })
            .collect();
        (current, voltage)
    }

    #[test]
    fn periodic_emergencies_are_fully_predicted() {
        let cfg = PredictorConfig::default_tuning(1.10);
        let mut p = SignaturePredictor::new(cfg);
        let (ci, vi) = resonant_traces(3_000);
        p.train(&ci, &vi);
        assert!(p.signature_count() > 0);
        let (ct, vt) = resonant_traces(3_000);
        let stats = p.evaluate(&ct, &vt);
        assert!(stats.coverage() > 0.95, "coverage {}", stats.coverage());
        // Flat-slew signatures recur off-phase, so precision is good but
        // not perfect even on a deterministic trace.
        assert!(stats.precision() > 0.6, "precision {}", stats.precision());
    }

    #[test]
    fn random_emergencies_are_hard() {
        let cfg = PredictorConfig::default_tuning(1.10);
        let mut p = SignaturePredictor::new(cfg);
        let (ci, vi) = noise_traces(3_000, 1);
        p.train(&ci, &vi);
        let (ct, vt) = noise_traces(3_000, 999);
        let stats = p.evaluate(&ct, &vt);
        // Random slews never produce matching signatures on held-out
        // data: the emergencies go unpredicted.
        assert!(
            stats.coverage() < 0.5,
            "noise should not be predictable: coverage {}",
            stats.coverage()
        );
        assert!(stats.missed > 0);
    }

    #[test]
    fn untrained_predictor_never_fires() {
        let cfg = PredictorConfig::default_tuning(1.10);
        let p = SignaturePredictor::new(cfg);
        let (ct, vt) = resonant_traces(1_000);
        let stats = p.evaluate(&ct, &vt);
        assert_eq!(stats.confirmed + stats.false_alarms, 0);
        assert_eq!(stats.covered, 0);
        assert!(stats.missed > 0);
    }

    #[test]
    fn quiet_traces_have_perfect_vacuous_scores() {
        let cfg = PredictorConfig::default_tuning(1.10);
        let p = SignaturePredictor::new(cfg);
        let current = vec![20.0; 500];
        let voltage = vec![1.18; 500];
        let stats = p.evaluate(&current, &voltage);
        assert_eq!(stats.coverage(), 1.0);
        assert_eq!(stats.precision(), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_traces_panic() {
        let cfg = PredictorConfig::default_tuning(1.10);
        let mut p = SignaturePredictor::new(cfg);
        p.train(&[1.0, 2.0], &[1.0]);
    }
}
