//! Voltage measurement and failure analysis.
//!
//! The reproduction's stand-in for the paper's lab bench (Fig. 8): a
//! Tektronix oscilloscope with a differential probe at the package/die
//! connection, triggering on large droops, plus the *failure* side of the
//! methodology — lowering Vdd in 12.5 mV decrements until the part
//! malfunctions (§5.A.4).
//!
//! Components:
//!
//! * [`Oscilloscope`] — streaming envelope sampler with droop trigger and
//!   event histogram (Figs. 6, 9, 10),
//! * [`DroopStats`] — min/max/mean and droop summary of a capture,
//! * [`Histogram`] — the droop-event frequency plots of Fig. 10,
//! * [`failure`] — critical-path failure model and the voltage-at-failure
//!   stepping search of Table I, capturing the paper's insight that droop
//!   magnitude alone does not determine the failure point,
//! * [`fault`] — seeded, deterministic fault injection (scope noise,
//!   outlier spikes, hangs, machine crashes) for exercising the
//!   resilience layer in `audit_core::resilient`,
//! * [`spectrum`] — FFT-based power spectra of captured traces, for
//!   locating resonant energy in measurements,
//! * [`traceio`] — CSV persistence for captured waveforms and the
//!   [`traceio::JournalReader`] for offline run-journal inspection,
//! * [`json`] — the dependency-free JSON codec the run journal is
//!   written with,
//! * [`predictor`] — signature-based voltage-emergency prediction
//!   (Reddi et al., the paper's reference \[22\]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod failure;
pub mod fault;
pub mod histogram;
pub mod json;
pub mod predictor;
pub mod scope;
pub mod spectrum;
pub mod stats;
pub mod traceio;

pub use failure::{FailureModel, VoltageAtFailure};
pub use fault::{FaultInjector, FaultPlan, FaultRates};
pub use histogram::Histogram;
pub use json::{JsonError, JsonValue};
pub use scope::Oscilloscope;
pub use spectrum::SpectralLine;
pub use stats::DroopStats;
pub use traceio::{JournalReader, TailOutcome};
