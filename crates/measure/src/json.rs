//! A small, dependency-free JSON value type with an exact `f64`
//! round-trip — the wire format of the run journal.
//!
//! The offline build pins `serde` to a no-op stub (see
//! `.verify-stubs/README.md`), so the journal cannot rely on derive
//! macros: records are encoded and decoded by hand through [`JsonValue`].
//! Two properties matter for the journal's bit-identical-resume
//! guarantee:
//!
//! * **Exact floats.** Numbers are written with Rust's shortest-repr
//!   formatting (`{:?}`), which round-trips every finite `f64` exactly.
//!   Non-finite values, which JSON cannot express as numbers, are
//!   encoded as the strings `"NaN"`, `"inf"`, and `"-inf"` and revived
//!   by [`JsonValue::as_f64`].
//! * **Deterministic output.** Object keys are kept in insertion order,
//!   so encoding the same record twice yields byte-identical lines.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`; integers up to 2^53
    /// survive exactly).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, keys in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from key/value pairs (insertion order kept).
    pub fn object(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Encodes a float, mapping non-finite values to marker strings.
    pub fn from_f64(v: f64) -> JsonValue {
        if v.is_finite() {
            JsonValue::Number(v)
        } else if v.is_nan() {
            JsonValue::String("NaN".into())
        } else if v > 0.0 {
            JsonValue::String("inf".into())
        } else {
            JsonValue::String("-inf".into())
        }
    }

    /// Encodes an unsigned integer (exact up to 2^53).
    pub fn from_u64(v: u64) -> JsonValue {
        JsonValue::Number(v as f64)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, reviving the non-finite markers written by
    /// [`JsonValue::from_f64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            JsonValue::String(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a single-line JSON string (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(v) => {
                // {:?} is Rust's shortest round-trip repr; integers get a
                // trailing `.0` stripped so counters stay readable.
                let s = format!("{v:?}");
                out.push_str(s.strip_suffix(".0").unwrap_or(&s));
            }
            JsonValue::String(s) => write_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document. Trailing content is an error.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                offset: pos,
                message: "trailing content after document".into(),
            });
        }
        Ok(value)
    }
}

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(bytes, pos, b"null", JsonValue::Null),
        Some(b't') => parse_lit(bytes, pos, b"true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected `:` after object key"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(pairs));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}` in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &[u8],
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogates are not produced by our writer; map
                        // them (and any invalid scalar) to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar at a time.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "invalid utf-8 in string"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| err(start, format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.25", "\"hi\""] {
            let v = JsonValue::parse(text).unwrap();
            assert_eq!(v.encode(), text);
        }
    }

    #[test]
    fn f64_round_trip_is_exact() {
        for v in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -2.2250738585072014e-308,
            1.2345678901234567,
            -0.0,
        ] {
            let encoded = JsonValue::from_f64(v).encode();
            let back = JsonValue::parse(&encoded).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} -> {encoded} -> {back}");
        }
    }

    #[test]
    fn non_finite_floats_use_markers() {
        assert_eq!(JsonValue::from_f64(f64::NAN).encode(), "\"NaN\"");
        assert_eq!(JsonValue::from_f64(f64::INFINITY).encode(), "\"inf\"");
        assert_eq!(JsonValue::from_f64(f64::NEG_INFINITY).encode(), "\"-inf\"");
        assert!(JsonValue::parse("\"NaN\"").unwrap().as_f64().unwrap().is_nan());
        assert_eq!(
            JsonValue::parse("\"-inf\"").unwrap().as_f64(),
            Some(f64::NEG_INFINITY)
        );
    }

    #[test]
    fn objects_keep_insertion_order() {
        let v = JsonValue::object(vec![
            ("zebra", JsonValue::from_u64(1)),
            ("alpha", JsonValue::from_u64(2)),
        ]);
        assert_eq!(v.encode(), "{\"zebra\":1,\"alpha\":2}");
        let back = JsonValue::parse(&v.encode()).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("alpha").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"kind":"generation","pop":[["SimdFma",3,12,13,false],["IAdd",1,2,3,true]],"scores":[0.081,-0.5],"n":42}"#;
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(v.encode(), text);
        assert_eq!(v.get("kind").unwrap().as_str(), Some("generation"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        let pop = v.get("pop").unwrap().as_array().unwrap();
        assert_eq!(pop.len(), 2);
        assert_eq!(pop[0].as_array().unwrap()[0].as_str(), Some("SimdFma"));
        assert_eq!(pop[1].as_array().unwrap()[4].as_bool(), Some(true));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line1\nline2\t\"quoted\" \\ back \u{1}";
        let encoded = JsonValue::String(s.into()).encode();
        let back = JsonValue::parse(&encoded).unwrap();
        assert_eq!(back.as_str(), Some(s));
    }

    #[test]
    fn unicode_survives() {
        let s = "π ≈ 3.14159 — μarch";
        let encoded = JsonValue::String(s.into()).encode();
        assert_eq!(JsonValue::parse(&encoded).unwrap().as_str(), Some(s));
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{\"a\":}").is_err());
        assert!(JsonValue::parse("[1,2").is_err());
        assert!(JsonValue::parse("{\"a\":1} trailing").is_err());
        let e = JsonValue::parse("nul").unwrap_err();
        assert!(e.to_string().contains("byte"));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(JsonValue::Number(1.5).as_u64(), None);
        assert_eq!(JsonValue::Number(-3.0).as_u64(), None);
        assert_eq!(JsonValue::Number(7.0).as_u64(), Some(7));
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.encode(), "{\"a\":[1,2],\"b\":null}");
    }
}
