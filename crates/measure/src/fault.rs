//! Deterministic fault injection for the measurement stack.
//!
//! The paper's closed loop runs on real silicon where scope captures are
//! noisy, workloads hang, and the voltage-at-failure methodology
//! (§5.A.4) deliberately crashes the machine. The simulator is perfect,
//! so this module injects those imperfections *on purpose*, as a seeded,
//! reproducible test input — the chaos-testing tradition of treating a
//! fault schedule as part of the experiment configuration rather than an
//! act of nature.
//!
//! Everything here is a pure function of `(plan seed, evaluation key,
//! attempt index)`. There is no shared RNG state: two workers evaluating
//! the same candidate draw identical faults, and a killed-and-resumed
//! run replays the exact fault schedule it would have seen uninterrupted.
//! That property is what makes the resilience layer in
//! `audit_core::resilient` testable bit-for-bit.
//!
//! Fault taxonomy (see `docs/ROBUSTNESS.md`):
//!
//! * **Gaussian scope noise** — every voltage sample observed by the
//!   oscilloscope is perturbed by `N(0, noise_sigma²)`. The physics is
//!   untouched; only the *observation* is noisy.
//! * **Outlier spikes** — with probability `outlier_rate` per sample, a
//!   transient downward spike of `outlier_volts` is added on top of the
//!   Gaussian noise (a probe glitch).
//! * **Hangs** — with probability `hang_rate` per harness run, the
//!   co-simulation never completes; the harness reports it as
//!   cycle-budget exhaustion (`AuditError::Timeout`).
//! * **Machine crashes** — with probability `crash_rate` per harness run,
//!   a run executed with `check_failure` enabled kills the simulated
//!   machine mid-capture (`AuditError::InjectedFault`), the case the
//!   crash-tolerant Vmin search exists to survive.
//!
//! A [`FaultPlan`] with all rates zero is a guaranteed no-op: the
//! injector hands back every sample bit-identically and never trips.

use audit_error::{AuditError, AuditResult};

/// Per-fault-class probabilities and magnitudes. All rates are
/// probabilities in `[0, 1]`; magnitudes are volts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Standard deviation of Gaussian noise added to every scope sample,
    /// in volts. `0.0` disables sample noise.
    pub noise_sigma: f64,
    /// Per-sample probability of a transient outlier spike.
    pub outlier_rate: f64,
    /// Magnitude of an outlier spike, in volts (subtracted from the
    /// sample — a glitch reads as a phantom droop).
    pub outlier_volts: f64,
    /// Per-run probability that the evaluation hangs (reported as
    /// cycle-budget exhaustion).
    pub hang_rate: f64,
    /// Per-run probability that a `check_failure` run crashes the
    /// simulated machine mid-capture.
    pub crash_rate: f64,
}

impl FaultRates {
    /// All-zero rates: injection disabled.
    pub fn none() -> Self {
        FaultRates::default()
    }

    /// True when every rate and magnitude is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.noise_sigma == 0.0
            && self.outlier_rate == 0.0
            && self.hang_rate == 0.0
            && self.crash_rate == 0.0
    }

    fn validate(&self) -> AuditResult<()> {
        let probs = [
            ("outlier_rate", self.outlier_rate),
            ("hang_rate", self.hang_rate),
            ("crash_rate", self.crash_rate),
        ];
        for (field, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(AuditError::invalid(
                    "FaultRates",
                    field,
                    format!("must be a probability in [0, 1] (got {p})"),
                ));
            }
        }
        if !self.noise_sigma.is_finite() || self.noise_sigma < 0.0 {
            return Err(AuditError::invalid(
                "FaultRates",
                "noise_sigma",
                format!("must be finite and non-negative (got {})", self.noise_sigma),
            ));
        }
        if !self.outlier_volts.is_finite() || self.outlier_volts < 0.0 {
            return Err(AuditError::invalid(
                "FaultRates",
                "outlier_volts",
                format!(
                    "must be finite and non-negative (got {})",
                    self.outlier_volts
                ),
            ));
        }
        Ok(())
    }
}

/// A seeded fault schedule: the seed plus the per-class rates.
///
/// The plan itself holds no mutable state. Call [`FaultPlan::injector`]
/// with an evaluation key and attempt index to get the concrete fault
/// decisions for one harness run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
}

impl FaultPlan {
    /// A plan that injects nothing. [`FaultPlan::is_enabled`] is false.
    pub fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            rates: FaultRates::none(),
        }
    }

    /// Builds a plan after validating the rates.
    pub fn new(seed: u64, rates: FaultRates) -> AuditResult<Self> {
        rates.validate()?;
        Ok(FaultPlan { seed, rates })
    }

    /// True when at least one fault class can fire.
    pub fn is_enabled(&self) -> bool {
        !self.rates.is_zero()
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's rates.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// Parses the CLI spec `SEED:KEY=VALUE[,KEY=VALUE...]`.
    ///
    /// Keys: `noise` (Gaussian σ, volts), `outlier` (rate), `spike`
    /// (outlier magnitude, volts; defaults to 0.05 when `outlier` is
    /// set), `hang` (rate), `crash` (rate). Example:
    ///
    /// ```
    /// use audit_measure::fault::FaultPlan;
    /// let plan = FaultPlan::parse("7:noise=0.002,hang=0.1").unwrap();
    /// assert!(plan.is_enabled());
    /// assert_eq!(plan.seed(), 7);
    /// assert_eq!(plan.rates().hang_rate, 0.1);
    /// ```
    pub fn parse(spec: &str) -> AuditResult<Self> {
        let bad = |msg: String| AuditError::invalid("FaultPlan", "spec", msg);
        let (seed_str, rates_str) = spec
            .split_once(':')
            .ok_or_else(|| bad(format!("expected `SEED:KEY=VALUE,...` (got `{spec}`)")))?;
        let seed: u64 = seed_str
            .trim()
            .parse()
            .map_err(|_| bad(format!("seed must be a u64 (got `{seed_str}`)")))?;
        let mut rates = FaultRates::none();
        let mut spike_set = false;
        for part in rates_str.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| bad(format!("expected `KEY=VALUE` (got `{part}`)")))?;
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|_| bad(format!("`{key}` value must be a number (got `{value}`)")))?;
            match key.trim() {
                "noise" => rates.noise_sigma = value,
                "outlier" => rates.outlier_rate = value,
                "spike" => {
                    rates.outlier_volts = value;
                    spike_set = true;
                }
                "hang" => rates.hang_rate = value,
                "crash" => rates.crash_rate = value,
                other => {
                    return Err(bad(format!(
                        "unknown fault key `{other}` (expected noise/outlier/spike/hang/crash)"
                    )))
                }
            }
        }
        if rates.outlier_rate > 0.0 && !spike_set {
            rates.outlier_volts = 0.05;
        }
        FaultPlan::new(seed, rates)
    }

    /// Renders the plan back into the `SEED:KEY=VALUE,...` spec form
    /// accepted by [`FaultPlan::parse`] (used to record the plan in a
    /// journal's `run_start` meta so `--resume` restores it).
    pub fn spec_string(&self) -> String {
        let r = &self.rates;
        let mut parts = Vec::new();
        if r.noise_sigma > 0.0 {
            parts.push(format!("noise={}", r.noise_sigma));
        }
        if r.outlier_rate > 0.0 {
            parts.push(format!("outlier={}", r.outlier_rate));
            parts.push(format!("spike={}", r.outlier_volts));
        }
        if r.hang_rate > 0.0 {
            parts.push(format!("hang={}", r.hang_rate));
        }
        if r.crash_rate > 0.0 {
            parts.push(format!("crash={}", r.crash_rate));
        }
        format!("{}:{}", self.seed, parts.join(","))
    }

    /// The concrete fault decisions for one harness run, identified by
    /// `(key, attempt)`. Pure: the same arguments always produce the
    /// same injector, regardless of thread or call order.
    pub fn injector(&self, key: u64, attempt: u32) -> FaultInjector {
        if !self.is_enabled() {
            return FaultInjector::noop();
        }
        let base = mix(mix(self.seed, key), attempt as u64);
        let hang = uniform(mix(base, STREAM_HANG)) < self.rates.hang_rate;
        let crash = uniform(mix(base, STREAM_CRASH)) < self.rates.crash_rate;
        let noise = if self.rates.noise_sigma > 0.0 || self.rates.outlier_rate > 0.0 {
            Some(NoiseStream::new(mix(base, STREAM_NOISE), self.rates))
        } else {
            None
        };
        FaultInjector { hang, crash, noise }
    }
}

/// The resolved fault decisions for a single harness run.
///
/// `hangs`/`crashes` are fixed at construction; `perturb` advances the
/// run's private noise stream. A no-op injector (from a disabled plan)
/// returns every sample bit-identically.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    hang: bool,
    crash: bool,
    noise: Option<NoiseStream>,
}

impl FaultInjector {
    /// An injector that never fires; `perturb` is the identity.
    pub fn noop() -> Self {
        FaultInjector {
            hang: false,
            crash: false,
            noise: None,
        }
    }

    /// True when this run was scheduled to hang.
    pub fn hangs(&self) -> bool {
        self.hang
    }

    /// True when this run was scheduled to crash the machine (only
    /// honoured by `check_failure` runs — a crash needs a failure path).
    pub fn crashes(&self) -> bool {
        self.crash
    }

    /// True when no fault class can fire for this run.
    pub fn is_noop(&self) -> bool {
        !self.hang && !self.crash && self.noise.is_none()
    }

    /// Perturbs one observed voltage sample. Identity when the plan has
    /// no sample-level faults.
    pub fn perturb(&mut self, v: f64) -> f64 {
        match &mut self.noise {
            Some(stream) => stream.perturb(v),
            None => v,
        }
    }

    /// The run's noise stream, when sample-level faults are active —
    /// lets the harness thread the stream into its capture loop.
    pub fn noise_mut(&mut self) -> Option<&mut NoiseStream> {
        self.noise.as_mut()
    }
}

/// A deterministic Gaussian noise stream with outlier spikes, seeded
/// per-run. SplitMix64 underneath, Box–Muller on top.
#[derive(Debug, Clone)]
pub struct NoiseStream {
    state: u64,
    sigma: f64,
    outlier_rate: f64,
    outlier_volts: f64,
    spare: Option<f64>,
}

impl NoiseStream {
    /// A stream seeded directly; most callers go through
    /// [`FaultPlan::injector`] instead.
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        NoiseStream {
            state: seed,
            sigma: rates.noise_sigma,
            outlier_rate: rates.outlier_rate,
            outlier_volts: rates.outlier_volts,
            spare: None,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix(self.state)
    }

    /// A uniform draw in `[0, 1)`.
    fn next_uniform(&mut self) -> f64 {
        uniform(self.next_u64())
    }

    /// A standard-normal draw (Box–Muller; caches the second deviate).
    fn next_gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Uniforms in (0, 1]: flip so ln() never sees zero.
        let u1 = 1.0 - self.next_uniform();
        let u2 = self.next_uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Applies noise and (possibly) an outlier spike to one sample.
    pub fn perturb(&mut self, v: f64) -> f64 {
        let mut out = v;
        if self.sigma > 0.0 {
            out += self.sigma * self.next_gaussian();
        }
        if self.outlier_rate > 0.0 && self.next_uniform() < self.outlier_rate {
            out -= self.outlier_volts;
        }
        out
    }
}

// Per-class stream discriminators, mixed into the per-run base seed so
// the hang decision, crash decision, and noise stream are independent.
const STREAM_HANG: u64 = 0x48414E47; // "HANG"
const STREAM_CRASH: u64 = 0x43524153; // "CRAS"
const STREAM_NOISE: u64 = 0x4E4F4953; // "NOIS"

/// SplitMix64 finalizer — the same mixer the GA uses for per-generation
/// RNG streams, so fault schedules inherit its avalanche behaviour.
/// Public so other deterministic fault layers (e.g. the network chaos
/// plan in `audit-net`) draw from the identical mixing discipline.
pub fn splitmix(z: u64) -> u64 {
    let z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines two words into one well-mixed word.
pub fn mix(a: u64, b: u64) -> u64 {
    splitmix(a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Converts random bits into a uniform draw in `[0, 1)`.
pub fn uniform(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// An incremental FNV-1a hasher for deriving stable evaluation keys
/// from candidate content (genomes, programs, probe voltages).
///
/// Not a cryptographic hash — just a stable, dependency-free way to
/// name an evaluation so its fault schedule survives resume and is
/// independent of worker scheduling.
#[derive(Debug, Clone)]
pub struct KeyHasher {
    state: u64,
}

impl Default for KeyHasher {
    fn default() -> Self {
        KeyHasher::new()
    }
}

impl KeyHasher {
    /// FNV-1a offset basis.
    pub fn new() -> Self {
        KeyHasher {
            state: 0xCBF2_9CE4_8422_2325,
        }
    }

    /// Folds raw bytes into the key.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self
    }

    /// Folds a word into the key (little-endian bytes).
    pub fn write_u64(&mut self, word: u64) -> &mut Self {
        self.write_bytes(&word.to_le_bytes())
    }

    /// The final key.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_plan() -> FaultPlan {
        FaultPlan::new(
            42,
            FaultRates {
                noise_sigma: 0.002,
                outlier_rate: 0.01,
                outlier_volts: 0.05,
                hang_rate: 0.3,
                crash_rate: 0.2,
            },
        )
        .unwrap()
    }

    #[test]
    fn disabled_plan_is_a_noop() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_enabled());
        let mut inj = plan.injector(123, 0);
        assert!(inj.is_noop());
        assert!(!inj.hangs());
        assert!(!inj.crashes());
        for v in [1.25, 0.0, -0.3, f64::MIN_POSITIVE] {
            assert_eq!(inj.perturb(v).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn injector_is_a_pure_function_of_key_and_attempt() {
        let plan = noisy_plan();
        for key in [0u64, 1, 0xDEAD_BEEF] {
            for attempt in 0..4 {
                let mut a = plan.injector(key, attempt);
                let mut b = plan.injector(key, attempt);
                assert_eq!(a.hangs(), b.hangs());
                assert_eq!(a.crashes(), b.crashes());
                for i in 0..64 {
                    let v = 1.2 - i as f64 * 1e-3;
                    assert_eq!(a.perturb(v).to_bits(), b.perturb(v).to_bits());
                }
            }
        }
    }

    #[test]
    fn attempts_draw_different_schedules() {
        // With hang_rate 0.5 the chance that 32 attempts all agree is
        // 2^-31 per direction; any disagreement proves the attempt
        // index feeds the schedule (hangs can clear on retry).
        let plan = FaultPlan::new(
            9,
            FaultRates {
                hang_rate: 0.5,
                ..FaultRates::none()
            },
        )
        .unwrap();
        let hangs: Vec<bool> = (0..32).map(|a| plan.injector(7, a).hangs()).collect();
        assert!(hangs.iter().any(|&h| h));
        assert!(hangs.iter().any(|&h| !h));
    }

    #[test]
    fn hang_rate_one_always_hangs() {
        let plan = FaultPlan::new(
            5,
            FaultRates {
                hang_rate: 1.0,
                ..FaultRates::none()
            },
        )
        .unwrap();
        for key in 0..16u64 {
            for attempt in 0..8 {
                assert!(plan.injector(key, attempt).hangs());
            }
        }
    }

    #[test]
    fn gaussian_noise_is_roughly_centred() {
        let mut stream = NoiseStream::new(
            splitmix(1),
            FaultRates {
                noise_sigma: 1.0,
                ..FaultRates::none()
            },
        );
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| stream.perturb(0.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn outliers_fire_at_roughly_their_rate() {
        let mut stream = NoiseStream::new(
            splitmix(2),
            FaultRates {
                outlier_rate: 0.1,
                outlier_volts: 1.0,
                ..FaultRates::none()
            },
        );
        let n = 20_000;
        let spikes = (0..n).filter(|_| stream.perturb(0.0) < -0.5).count();
        let rate = spikes as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.02, "observed outlier rate {rate}");
    }

    #[test]
    fn parse_round_trips_through_spec_string() {
        for spec in [
            "7:noise=0.002,hang=0.1",
            "0:crash=1",
            "123:noise=0.001,outlier=0.05,spike=0.02,hang=0.25,crash=0.5",
        ] {
            let plan = FaultPlan::parse(spec).unwrap();
            let again = FaultPlan::parse(&plan.spec_string()).unwrap();
            assert_eq!(plan, again, "spec `{spec}`");
        }
    }

    #[test]
    fn parse_defaults_spike_magnitude() {
        let plan = FaultPlan::parse("1:outlier=0.01").unwrap();
        assert_eq!(plan.rates().outlier_volts, 0.05);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "no-colon",
            "x:noise=1e-3",
            "1:noise",
            "1:noise=abc",
            "1:warp=0.5",
            "1:hang=1.5",
            "1:noise=-0.1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn key_hasher_is_stable_and_content_sensitive() {
        let key = |words: &[u64]| {
            let mut h = KeyHasher::new();
            for &w in words {
                h.write_u64(w);
            }
            h.finish()
        };
        assert_eq!(key(&[1, 2, 3]), key(&[1, 2, 3]));
        assert_ne!(key(&[1, 2, 3]), key(&[1, 2, 4]));
        assert_ne!(key(&[1, 2]), key(&[2, 1]));
        // Pinned: the fault schedule of a journaled run must not shift
        // under refactors of the hasher.
        assert_eq!(key(&[]), 0xCBF2_9CE4_8422_2325);
    }
}
