//! The oscilloscope model.
//!
//! The paper's scope records at 5 GS/s with a droop trigger, and Fig. 6's
//! 100 ms natural-dithering shot uses a 100 MS/s envelope view. This
//! model does both: every simulation-cycle voltage is folded into summary
//! statistics and a histogram, while a decimated min-envelope trace is
//! kept for waveform output, and droop-trigger crossings are counted.

use serde::{Deserialize, Serialize};

use crate::histogram::Histogram;
use crate::stats::DroopStats;

/// A streaming scope capture.
///
/// # Example
///
/// ```
/// use audit_measure::Oscilloscope;
///
/// let mut scope = Oscilloscope::new(1.2)
///     .with_trigger(1.10)
///     .with_envelope_decimation(4);
/// for v in [1.19, 1.05, 1.18, 1.2, 1.21, 1.17, 1.19, 1.2] {
///     scope.sample(v);
/// }
/// assert_eq!(scope.trigger_events(), 1);
/// assert_eq!(scope.envelope().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Oscilloscope {
    stats: DroopStats,
    histogram: Histogram,
    trigger_level: Option<f64>,
    trigger_events: u64,
    below_trigger: bool,
    decimation: u64,
    window_min: f64,
    window_max: f64,
    window_fill: u64,
    envelope_min: Vec<f64>,
    envelope_max: Vec<f64>,
}

impl Oscilloscope {
    /// Default histogram span around nominal: −0.35 V .. +0.15 V.
    const HIST_BELOW: f64 = 0.35;
    const HIST_ABOVE: f64 = 0.15;
    /// Default histogram resolution.
    const HIST_BINS: usize = 200;

    /// Creates a scope referenced to `nominal` volts, with no trigger
    /// and no envelope decimation (envelope records every sample).
    ///
    /// # Panics
    ///
    /// Panics if `nominal` is not positive and finite.
    pub fn new(nominal: f64) -> Self {
        Oscilloscope {
            stats: DroopStats::new(nominal),
            histogram: Histogram::new(
                nominal - Self::HIST_BELOW,
                nominal + Self::HIST_ABOVE,
                Self::HIST_BINS,
            ),
            trigger_level: None,
            trigger_events: 0,
            below_trigger: false,
            decimation: 1,
            window_min: f64::INFINITY,
            window_max: f64::NEG_INFINITY,
            window_fill: 0,
            envelope_min: Vec::new(),
            envelope_max: Vec::new(),
        }
    }

    /// Arms a droop trigger: each *downward crossing* of `level` counts
    /// as one droop event.
    pub fn with_trigger(mut self, level: f64) -> Self {
        self.trigger_level = Some(level);
        self
    }

    /// Sets envelope decimation: one min/max pair is kept per `n`
    /// samples (the 100 MS/s view of Fig. 6 at a 3.2 GHz sim rate is
    /// `n = 32`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_envelope_decimation(mut self, n: u64) -> Self {
        assert!(n > 0, "decimation must be at least 1");
        self.decimation = n;
        self
    }

    /// Feeds one per-cycle voltage sample.
    ///
    /// Non-finite samples (a glitched probe reading) are rejected before
    /// touching any capture state: they would otherwise pin the envelope
    /// extremes, poison the mean, and count as phantom trigger events.
    /// Rejections are tallied in [`DroopStats::rejected`] via
    /// [`Oscilloscope::stats`].
    pub fn sample(&mut self, v: f64) {
        if !v.is_finite() {
            self.stats.record(v); // counts the rejection, records nothing
            return;
        }
        self.stats.record(v);
        self.histogram.record(v);
        if let Some(level) = self.trigger_level {
            let below = v < level;
            if below && !self.below_trigger {
                self.trigger_events += 1;
            }
            self.below_trigger = below;
        }
        self.window_min = self.window_min.min(v);
        self.window_max = self.window_max.max(v);
        self.window_fill += 1;
        if self.window_fill >= self.decimation {
            self.envelope_min.push(self.window_min);
            self.envelope_max.push(self.window_max);
            self.window_min = f64::INFINITY;
            self.window_max = f64::NEG_INFINITY;
            self.window_fill = 0;
        }
    }

    /// Capture statistics so far.
    pub fn stats(&self) -> &DroopStats {
        &self.stats
    }

    /// Full-capture voltage histogram (Fig. 10).
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// Number of distinct droop-trigger events.
    pub fn trigger_events(&self) -> u64 {
        self.trigger_events
    }

    /// The decimated min-envelope (one point per decimation window).
    pub fn envelope(&self) -> &[f64] {
        &self.envelope_min
    }

    /// The decimated max-envelope.
    pub fn envelope_max(&self) -> &[f64] {
        &self.envelope_max
    }

    /// Convenience: the capture's maximum droop below nominal.
    pub fn max_droop(&self) -> f64 {
        self.stats.max_droop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_counts_distinct_crossings() {
        let mut s = Oscilloscope::new(1.2).with_trigger(1.1);
        for v in [1.2, 1.05, 1.04, 1.2, 1.05, 1.2] {
            s.sample(v);
        }
        assert_eq!(s.trigger_events(), 2);
    }

    #[test]
    fn trigger_ignores_sustained_low() {
        let mut s = Oscilloscope::new(1.2).with_trigger(1.1);
        for _ in 0..100 {
            s.sample(1.0);
        }
        assert_eq!(s.trigger_events(), 1);
    }

    #[test]
    fn envelope_keeps_window_extremes() {
        let mut s = Oscilloscope::new(1.2).with_envelope_decimation(2);
        for v in [1.2, 1.0, 1.3, 1.1] {
            s.sample(v);
        }
        assert_eq!(s.envelope(), &[1.0, 1.1]);
        assert_eq!(s.envelope_max(), &[1.2, 1.3]);
    }

    #[test]
    fn incomplete_window_is_not_emitted() {
        let mut s = Oscilloscope::new(1.2).with_envelope_decimation(4);
        for _ in 0..7 {
            s.sample(1.15);
        }
        assert_eq!(s.envelope().len(), 1);
    }

    #[test]
    fn stats_and_histogram_agree_on_count() {
        let mut s = Oscilloscope::new(1.2);
        for i in 0..500 {
            s.sample(1.1 + (i % 10) as f64 * 0.01);
        }
        assert_eq!(s.stats().count(), 500);
        assert_eq!(s.histogram().total(), 500);
    }

    #[test]
    fn max_droop_passthrough() {
        let mut s = Oscilloscope::new(1.2);
        s.sample(1.07);
        assert!((s.max_droop() - 0.13).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "decimation")]
    fn zero_decimation_rejected() {
        let _ = Oscilloscope::new(1.2).with_envelope_decimation(0);
    }

    #[test]
    fn non_finite_samples_leave_capture_state_untouched() {
        let mut clean = Oscilloscope::new(1.2)
            .with_trigger(1.1)
            .with_envelope_decimation(2);
        let mut dirty = clean.clone();
        let vs = [1.19, 1.05, 1.18, 1.2];
        for (i, &v) in vs.iter().enumerate() {
            clean.sample(v);
            dirty.sample(v);
            // Interleave garbage between every real sample.
            dirty.sample([f64::NAN, f64::INFINITY, f64::NEG_INFINITY][i % 3]);
        }
        assert_eq!(dirty.stats().count(), clean.stats().count());
        assert_eq!(dirty.stats().rejected(), 4);
        assert_eq!(dirty.trigger_events(), clean.trigger_events());
        assert_eq!(dirty.envelope(), clean.envelope());
        assert_eq!(dirty.envelope_max(), clean.envelope_max());
        assert_eq!(dirty.histogram().total(), clean.histogram().total());
        assert_eq!(dirty.max_droop().to_bits(), clean.max_droop().to_bits());
    }
}
