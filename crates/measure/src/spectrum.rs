//! Spectral analysis of measured traces.
//!
//! The paper's frequency-domain views (Fig. 3 left) come from network
//! analysis; a measurement-side spectrum is the complementary tool: given
//! a voltage or current capture, find the frequencies where the energy
//! concentrates. A resonant stressmark shows a sharp line at the PDN's
//! first droop; a benchmark shows broadband noise. This module provides a
//! dependency-free radix-2 FFT and a small power-spectrum wrapper.

use serde::{Deserialize, Serialize};

/// One spectral line of a power spectrum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectralLine {
    /// Frequency in Hz.
    pub frequency_hz: f64,
    /// Power (arbitrary units, |X(f)|² normalized by length).
    pub power: f64,
}

/// In-place radix-2 decimation-in-time FFT.
///
/// `re`/`im` hold the signal on input and the transform on output.
///
/// # Panics
///
/// Panics if the lengths differ or are not a power of two.
pub fn fft(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im length mismatch");
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }

    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (w_re, w_im) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut cur_re = 1.0;
            let mut cur_im = 0.0;
            for k in 0..len / 2 {
                let a = start + k;
                let b = start + k + len / 2;
                let t_re = re[b] * cur_re - im[b] * cur_im;
                let t_im = re[b] * cur_im + im[b] * cur_re;
                re[b] = re[a] - t_re;
                im[b] = im[a] - t_im;
                re[a] += t_re;
                im[a] += t_im;
                let next_re = cur_re * w_re - cur_im * w_im;
                cur_im = cur_re * w_im + cur_im * w_re;
                cur_re = next_re;
            }
        }
        len <<= 1;
    }
}

/// Power spectrum of a real trace sampled at `sample_hz`.
///
/// The trace is mean-removed, Hann-windowed, zero-padded to the next
/// power of two, and transformed; only the positive-frequency half is
/// returned (DC excluded).
///
/// # Example
///
/// ```
/// use audit_measure::spectrum::power_spectrum;
///
/// let fs = 1000.0;
/// let trace: Vec<f64> =
///     (0..1024).map(|i| (2.0 * std::f64::consts::PI * 100.0 * i as f64 / fs).sin()).collect();
/// let spec = power_spectrum(&trace, fs);
/// let peak = spec.iter().max_by(|a, b| a.power.total_cmp(&b.power)).unwrap();
/// assert!((peak.frequency_hz - 100.0).abs() < 2.0);
/// ```
pub fn power_spectrum(trace: &[f64], sample_hz: f64) -> Vec<SpectralLine> {
    assert!(sample_hz > 0.0, "sample rate must be positive");
    if trace.len() < 2 {
        return Vec::new();
    }
    let mean = trace.iter().sum::<f64>() / trace.len() as f64;
    let n = trace.len().next_power_of_two();
    let mut re = vec![0.0; n];
    let mut im = vec![0.0; n];
    let m = trace.len() as f64;
    for (i, &x) in trace.iter().enumerate() {
        // Hann window over the original (pre-padding) length.
        let w = 0.5 - 0.5 * (2.0 * std::f64::consts::PI * i as f64 / (m - 1.0)).cos();
        re[i] = (x - mean) * w;
    }
    fft(&mut re, &mut im);
    let scale = 1.0 / (n as f64);
    (1..n / 2)
        .map(|k| SpectralLine {
            frequency_hz: k as f64 * sample_hz / n as f64,
            power: (re[k] * re[k] + im[k] * im[k]) * scale,
        })
        .collect()
}

/// The dominant spectral line of a trace, if any.
pub fn dominant_line(trace: &[f64], sample_hz: f64) -> Option<SpectralLine> {
    power_spectrum(trace, sample_hz)
        .into_iter()
        .max_by(|a, b| a.power.total_cmp(&b.power))
}

/// Fraction of total spectral power within `±band_hz` of `center_hz` —
/// a resonance-concentration metric (≈1 for a resonant stressmark,
/// small for broadband benchmark noise).
pub fn band_power_fraction(trace: &[f64], sample_hz: f64, center_hz: f64, band_hz: f64) -> f64 {
    let spec = power_spectrum(trace, sample_hz);
    let total: f64 = spec.iter().map(|l| l.power).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let band: f64 = spec
        .iter()
        .filter(|l| (l.frequency_hz - center_hz).abs() <= band_hz)
        .map(|l| l.power)
        .sum();
    band / total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        re[0] = 1.0;
        fft(&mut re, &mut im);
        for k in 0..8 {
            assert!((re[k] - 1.0).abs() < 1e-12, "re[{k}] = {}", re[k]);
            assert!(im[k].abs() < 1e-12);
        }
    }

    #[test]
    fn fft_parseval_energy_is_conserved() {
        let fs = 256.0;
        let sig = sine(13.0, fs, 64);
        let mut re = sig.clone();
        let mut im = vec![0.0; 64];
        fft(&mut re, &mut im);
        let time_energy: f64 = sig.iter().map(|x| x * x).sum();
        let freq_energy: f64 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn spectrum_finds_sine_frequency() {
        let fs = 3.2e9;
        let trace = sine(1.0e8, fs, 4096);
        let peak = dominant_line(&trace, fs).unwrap();
        assert!(
            (peak.frequency_hz - 1.0e8).abs() < 2e6,
            "peak at {}",
            peak.frequency_hz
        );
    }

    #[test]
    fn spectrum_handles_non_power_of_two() {
        let fs = 1000.0;
        let trace = sine(100.0, fs, 3000); // padded to 4096
        let peak = dominant_line(&trace, fs).unwrap();
        assert!((peak.frequency_hz - 100.0).abs() < 3.0);
    }

    #[test]
    fn dc_is_excluded() {
        let trace = vec![5.0; 1024]; // pure DC
        let spec = power_spectrum(&trace, 1000.0);
        let total: f64 = spec.iter().map(|l| l.power).sum();
        assert!(total < 1e-12, "DC leaked: {total}");
    }

    #[test]
    fn band_power_concentrates_for_tones() {
        let fs = 3.2e9;
        let tone = sine(1.0e8, fs, 8192);
        let frac = band_power_fraction(&tone, fs, 1.0e8, 5e6);
        assert!(frac > 0.9, "tone band fraction {frac}");

        // White-ish noise (deterministic pseudo-random).
        let mut x: u64 = 0x12345678;
        let noise: Vec<f64> = (0..8192)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        let frac = band_power_fraction(&noise, fs, 1.0e8, 5e6);
        assert!(frac < 0.1, "noise band fraction {frac}");
    }

    #[test]
    fn tiny_traces_are_benign() {
        assert!(power_spectrum(&[], 1.0).is_empty());
        assert!(power_spectrum(&[1.0], 1.0).is_empty());
        assert!(dominant_line(&[], 1.0).is_none());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn raw_fft_rejects_odd_lengths() {
        let mut re = vec![0.0; 6];
        let mut im = vec![0.0; 6];
        fft(&mut re, &mut im);
    }
}
