//! Critical-path failure model and the voltage-at-failure search.
//!
//! Paper §5.A.4's central insight: the maximum droop is *one* indicator
//! of failure risk, but not the only one — SM2 droops no more than
//! standard benchmarks yet fails at a much higher voltage because it
//! exercises the processor's sensitive paths. A path only causes a
//! timing failure if the supply is low *while that path is switching*.
//!
//! The model gives every executed operation a path sensitivity in
//! `[0, 1]` (see [`audit_cpu::OpProps::path_sensitivity`]); an operation
//! fails when the instantaneous die voltage is below that path's critical
//! voltage. High-sensitivity paths (multiplier carry chains, L1 access)
//! fail first as Vdd is lowered.

use serde::{Deserialize, Serialize};

/// Voltage thresholds for timing failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Voltage below which the *most* sensitive path (sensitivity 1.0)
    /// fails.
    pub v_crit_max: f64,
    /// Additional headroom of the *least* sensitive path (sensitivity
    /// 0.0): it fails only below `v_crit_max − spread`.
    pub spread: f64,
}

impl FailureModel {
    /// A Bulldozer-like model on a 1.2 V rail: the most sensitive path
    /// fails below 0.98 V, the least sensitive below 0.80 V.
    pub const fn bulldozer() -> Self {
        FailureModel {
            v_crit_max: 0.98,
            spread: 0.18,
        }
    }

    /// A Phenom-like model on a 1.25 V rail (45 nm: higher threshold
    /// voltages, higher critical voltage).
    pub const fn phenom() -> Self {
        FailureModel {
            v_crit_max: 1.04,
            spread: 0.17,
        }
    }

    /// Critical voltage of a path with the given sensitivity.
    #[inline]
    pub fn v_crit(&self, sensitivity: f64) -> f64 {
        self.v_crit_max - (1.0 - sensitivity.clamp(0.0, 1.0)) * self.spread
    }

    /// True if an op exercising `sensitivity`-class paths fails at die
    /// voltage `v`. Sensitivity 0 (NOPs, idle) never fails.
    #[inline]
    pub fn fails(&self, v: f64, sensitivity: f64) -> bool {
        sensitivity > 0.0 && v < self.v_crit(sensitivity)
    }
}

impl Default for FailureModel {
    /// Defaults to the primary platform, [`FailureModel::bulldozer`].
    fn default() -> Self {
        Self::bulldozer()
    }
}

/// The voltage-at-failure stepping search (paper Table I).
///
/// Starting from `v_start`, lowers the operating voltage in fixed
/// decrements (the paper uses 12.5 mV) and asks the provided runner
/// whether the workload fails at each setting; stops at the first
/// failure.
///
/// # Example
///
/// ```
/// use audit_measure::VoltageAtFailure;
///
/// // A toy part that fails below 1.0 V.
/// let search = VoltageAtFailure::new(1.2, 0.0125);
/// let vf = search.run(|v| v < 1.0).expect("must fail eventually");
/// assert!(vf < 1.0 && vf > 0.98);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageAtFailure {
    v_start: f64,
    step: f64,
    v_floor: f64,
}

impl VoltageAtFailure {
    /// Creates a search from `v_start` downward in `step`-volt
    /// decrements. The search gives up below 50 % of `v_start`.
    ///
    /// # Panics
    ///
    /// Panics if the inputs are not positive and finite.
    pub fn new(v_start: f64, step: f64) -> Self {
        assert!(
            v_start.is_finite() && v_start > 0.0,
            "v_start must be positive"
        );
        assert!(step.is_finite() && step > 0.0, "step must be positive");
        VoltageAtFailure {
            v_start,
            step,
            v_floor: v_start * 0.5,
        }
    }

    /// The paper's configuration: 12.5 mV decrements.
    pub fn paper(v_start: f64) -> Self {
        Self::new(v_start, 0.0125)
    }

    /// Runs the search. `fails_at(v)` must run the workload at nominal
    /// voltage `v` and report whether a failure occurred.
    ///
    /// Returns the first (highest) failing voltage, or `None` if the
    /// floor is reached without failure. Higher returned voltage ⇒ the
    /// workload is a better stressor (paper §5.A.4).
    pub fn run(&self, mut fails_at: impl FnMut(f64) -> bool) -> Option<f64> {
        let mut v = self.v_start;
        while v > self.v_floor {
            if fails_at(v) {
                return Some(v);
            }
            v -= self.step;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitive_paths_fail_first() {
        let m = FailureModel::bulldozer();
        assert!(m.v_crit(1.0) > m.v_crit(0.3));
        // Voltage between the two thresholds: only the sensitive path
        // fails.
        let v = (m.v_crit(1.0) + m.v_crit(0.3)) / 2.0;
        assert!(m.fails(v, 1.0));
        assert!(!m.fails(v, 0.3));
    }

    #[test]
    fn zero_sensitivity_never_fails() {
        let m = FailureModel::bulldozer();
        assert!(!m.fails(0.0, 0.0));
        assert!(!m.fails(-1.0, 0.0));
    }

    #[test]
    fn sensitivity_is_clamped() {
        let m = FailureModel::bulldozer();
        assert_eq!(m.v_crit(2.0), m.v_crit(1.0));
        assert_eq!(m.v_crit(-2.0), m.v_crit(0.0));
    }

    #[test]
    fn search_returns_first_failing_step() {
        let search = VoltageAtFailure::new(1.2, 0.0125);
        let vf = search.run(|v| v < 1.1).unwrap();
        assert!(vf < 1.1);
        assert!(vf > 1.1 - 0.0126, "overshot the failure point: {vf}");
    }

    #[test]
    fn search_gives_up_at_floor() {
        let search = VoltageAtFailure::new(1.0, 0.1);
        assert_eq!(search.run(|_| false), None);
    }

    #[test]
    fn stronger_stressor_fails_higher() {
        // Two synthetic workloads: one failing below 1.05, one below 0.95.
        let search = VoltageAtFailure::paper(1.2);
        let strong = search.run(|v| v < 1.05).unwrap();
        let weak = search.run(|v| v < 0.95).unwrap();
        assert!(strong > weak);
    }

    #[test]
    #[should_panic(expected = "step")]
    fn rejects_zero_step() {
        let _ = VoltageAtFailure::new(1.2, 0.0);
    }
}
