//! Capture summary statistics.

use serde::{Deserialize, Serialize};

/// Streaming summary of a voltage capture.
///
/// Matches what the paper reports per run: the maximum droop (relative
/// to nominal), overshoot, and the AC-only droop below the capture mean
/// (useful because the paper disables the VRM load line to exclude DC
/// effects, §5.A).
///
/// # Example
///
/// ```
/// use audit_measure::DroopStats;
///
/// let mut s = DroopStats::new(1.2);
/// for v in [1.19, 1.15, 1.21, 1.18] {
///     s.record(v);
/// }
/// assert!((s.max_droop() - 0.05).abs() < 1e-12);
/// assert!((s.overshoot() - 0.01).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DroopStats {
    nominal: f64,
    v_min: f64,
    v_max: f64,
    sum: f64,
    count: u64,
    rejected: u64,
}

impl DroopStats {
    /// Creates an empty summary against the given nominal voltage.
    ///
    /// # Panics
    ///
    /// Panics if `nominal` is not positive and finite.
    pub fn new(nominal: f64) -> Self {
        assert!(
            nominal.is_finite() && nominal > 0.0,
            "nominal voltage must be positive"
        );
        DroopStats {
            nominal,
            v_min: f64::INFINITY,
            v_max: f64::NEG_INFINITY,
            sum: 0.0,
            count: 0,
            rejected: 0,
        }
    }

    /// Records one voltage sample.
    ///
    /// Non-finite samples (NaN or ±∞ — a dead probe, a divide blowing
    /// up upstream) are rejected rather than recorded: a NaN would
    /// poison `sum`/`mean` forever and an infinity would pin the
    /// extremes. Rejections are counted in [`DroopStats::rejected`].
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.rejected += 1;
            return;
        }
        self.v_min = self.v_min.min(v);
        self.v_max = self.v_max.max(v);
        self.sum += v;
        self.count += 1;
    }

    /// Nominal voltage the capture was taken against.
    pub fn nominal(&self) -> f64 {
        self.nominal
    }

    /// Minimum sampled voltage. `NaN`-free only once a sample exists.
    pub fn v_min(&self) -> f64 {
        self.v_min
    }

    /// Maximum sampled voltage.
    pub fn v_max(&self) -> f64 {
        self.v_max
    }

    /// Mean of all samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of non-finite samples rejected by [`DroopStats::record`].
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Maximum droop below nominal, in volts (the paper's headline
    /// metric, Fig. 9). Zero when nothing dipped below nominal.
    pub fn max_droop(&self) -> f64 {
        (self.nominal - self.v_min).max(0.0)
    }

    /// Maximum overshoot above nominal, in volts.
    pub fn overshoot(&self) -> f64 {
        (self.v_max - self.nominal).max(0.0)
    }

    /// Maximum droop below the capture mean — the AC-only component.
    pub fn max_droop_below_mean(&self) -> f64 {
        (self.mean() - self.v_min).max(0.0)
    }

    /// Peak-to-peak swing of the capture.
    pub fn peak_to_peak(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.v_max - self.v_min
        }
    }
}

/// The scale factor relating the median absolute deviation of a normal
/// distribution to its standard deviation (1/Φ⁻¹(3/4)).
pub const MAD_TO_SIGMA: f64 = 1.4826;

/// Median of a slice; `None` when empty. Even-length inputs average the
/// two central values. Deterministic: ties sort by original index via a
/// stable sort, and NaNs must be filtered by the caller (they are
/// ordered last, not rejected).
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Less));
    let mid = sorted.len() / 2;
    Some(if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    })
}

/// Index (into the original slice) of the element closest to the
/// median from below: the lower-central element of the sorted order.
/// `None` when empty. Ties break toward the earliest original index,
/// so the choice is deterministic for repeated values.
pub fn median_index(xs: &[f64]) -> Option<usize> {
    if xs.is_empty() {
        return None;
    }
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    Some(order[(xs.len() - 1) / 2])
}

/// Median absolute deviation of a slice; `None` when empty.
pub fn mad(xs: &[f64]) -> Option<f64> {
    let m = median(xs)?;
    let deviations: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&deviations)
}

/// Indices of the elements that survive MAD outlier rejection: those
/// whose modified z-score `|x − median| / (MAD_TO_SIGMA · MAD)` is at
/// most `threshold` (3.5 is the conventional cut). When the MAD is zero
/// (half or more of the samples identical) every sample survives —
/// there is no spread to reject against.
pub fn mad_filter(xs: &[f64], threshold: f64) -> Vec<usize> {
    let Some(m) = median(xs) else {
        return Vec::new();
    };
    let spread = mad(xs).unwrap_or(0.0) * MAD_TO_SIGMA;
    if spread == 0.0 {
        return (0..xs.len()).collect();
    }
    (0..xs.len())
        .filter(|&i| ((xs[i] - m).abs() / spread) <= threshold)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_extremes_and_mean() {
        let mut s = DroopStats::new(1.2);
        for v in [1.1, 1.2, 1.3] {
            s.record(v);
        }
        assert_eq!(s.v_min(), 1.1);
        assert_eq!(s.v_max(), 1.3);
        assert!((s.mean() - 1.2).abs() < 1e-12);
        assert_eq!(s.count(), 3);
        assert!((s.peak_to_peak() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn droop_clamps_at_zero_when_above_nominal() {
        let mut s = DroopStats::new(1.0);
        s.record(1.05);
        assert_eq!(s.max_droop(), 0.0);
        assert!((s.overshoot() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = DroopStats::new(1.2);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.count(), 0);
        assert_eq!(s.peak_to_peak(), 0.0);
    }

    #[test]
    fn droop_below_mean_removes_dc() {
        // A capture with a DC offset: min 1.0, mean 1.1, nominal 1.3.
        let mut s = DroopStats::new(1.3);
        for v in [1.0, 1.1, 1.2] {
            s.record(v);
        }
        assert!((s.max_droop() - 0.3).abs() < 1e-12);
        assert!((s.max_droop_below_mean() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nominal")]
    fn rejects_bad_nominal() {
        let _ = DroopStats::new(-1.0);
    }

    #[test]
    fn non_finite_samples_are_rejected_not_recorded() {
        let mut s = DroopStats::new(1.2);
        s.record(1.1);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            s.record(bad);
        }
        s.record(1.3);
        assert_eq!(s.count(), 2);
        assert_eq!(s.rejected(), 3);
        assert_eq!(s.v_min(), 1.1);
        assert_eq!(s.v_max(), 1.3);
        assert!((s.mean() - 1.2).abs() < 1e-12);
        assert!(s.max_droop().is_finite());
    }

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0]), Some(3.0));
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
    }

    #[test]
    fn median_index_points_at_an_original_element() {
        assert_eq!(median_index(&[]), None);
        assert_eq!(median_index(&[5.0]), Some(0));
        assert_eq!(median_index(&[3.0, 1.0, 2.0]), Some(2)); // value 2.0
        // Even length: lower-central element.
        assert_eq!(median_index(&[4.0, 1.0, 3.0, 2.0]), Some(3)); // value 2.0
        // Ties break to the earliest index.
        assert_eq!(median_index(&[7.0, 7.0, 7.0]), Some(1));
    }

    #[test]
    fn mad_filter_drops_gross_outliers_only() {
        let xs = [1.00, 1.01, 0.99, 1.02, 0.98, 5.0];
        let kept = mad_filter(&xs, 3.5);
        assert_eq!(kept, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn mad_filter_keeps_everything_when_spread_is_zero() {
        let xs = [2.0, 2.0, 2.0, 9.0];
        // Median 2, MAD 0 → no rejection basis.
        assert_eq!(mad_filter(&xs, 3.5), vec![0, 1, 2, 3]);
        assert!(mad_filter(&[], 3.5).is_empty());
    }
}
