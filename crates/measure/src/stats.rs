//! Capture summary statistics.

use serde::{Deserialize, Serialize};

/// Streaming summary of a voltage capture.
///
/// Matches what the paper reports per run: the maximum droop (relative
/// to nominal), overshoot, and the AC-only droop below the capture mean
/// (useful because the paper disables the VRM load line to exclude DC
/// effects, §5.A).
///
/// # Example
///
/// ```
/// use audit_measure::DroopStats;
///
/// let mut s = DroopStats::new(1.2);
/// for v in [1.19, 1.15, 1.21, 1.18] {
///     s.record(v);
/// }
/// assert!((s.max_droop() - 0.05).abs() < 1e-12);
/// assert!((s.overshoot() - 0.01).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DroopStats {
    nominal: f64,
    v_min: f64,
    v_max: f64,
    sum: f64,
    count: u64,
}

impl DroopStats {
    /// Creates an empty summary against the given nominal voltage.
    ///
    /// # Panics
    ///
    /// Panics if `nominal` is not positive and finite.
    pub fn new(nominal: f64) -> Self {
        assert!(
            nominal.is_finite() && nominal > 0.0,
            "nominal voltage must be positive"
        );
        DroopStats {
            nominal,
            v_min: f64::INFINITY,
            v_max: f64::NEG_INFINITY,
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one voltage sample.
    pub fn record(&mut self, v: f64) {
        self.v_min = self.v_min.min(v);
        self.v_max = self.v_max.max(v);
        self.sum += v;
        self.count += 1;
    }

    /// Nominal voltage the capture was taken against.
    pub fn nominal(&self) -> f64 {
        self.nominal
    }

    /// Minimum sampled voltage. `NaN`-free only once a sample exists.
    pub fn v_min(&self) -> f64 {
        self.v_min
    }

    /// Maximum sampled voltage.
    pub fn v_max(&self) -> f64 {
        self.v_max
    }

    /// Mean of all samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Maximum droop below nominal, in volts (the paper's headline
    /// metric, Fig. 9). Zero when nothing dipped below nominal.
    pub fn max_droop(&self) -> f64 {
        (self.nominal - self.v_min).max(0.0)
    }

    /// Maximum overshoot above nominal, in volts.
    pub fn overshoot(&self) -> f64 {
        (self.v_max - self.nominal).max(0.0)
    }

    /// Maximum droop below the capture mean — the AC-only component.
    pub fn max_droop_below_mean(&self) -> f64 {
        (self.mean() - self.v_min).max(0.0)
    }

    /// Peak-to-peak swing of the capture.
    pub fn peak_to_peak(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.v_max - self.v_min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_extremes_and_mean() {
        let mut s = DroopStats::new(1.2);
        for v in [1.1, 1.2, 1.3] {
            s.record(v);
        }
        assert_eq!(s.v_min(), 1.1);
        assert_eq!(s.v_max(), 1.3);
        assert!((s.mean() - 1.2).abs() < 1e-12);
        assert_eq!(s.count(), 3);
        assert!((s.peak_to_peak() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn droop_clamps_at_zero_when_above_nominal() {
        let mut s = DroopStats::new(1.0);
        s.record(1.05);
        assert_eq!(s.max_droop(), 0.0);
        assert!((s.overshoot() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = DroopStats::new(1.2);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.count(), 0);
        assert_eq!(s.peak_to_peak(), 0.0);
    }

    #[test]
    fn droop_below_mean_removes_dc() {
        // A capture with a DC offset: min 1.0, mean 1.1, nominal 1.3.
        let mut s = DroopStats::new(1.3);
        for v in [1.0, 1.1, 1.2] {
            s.record(v);
        }
        assert!((s.max_droop() - 0.3).abs() < 1e-12);
        assert!((s.max_droop_below_mean() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nominal")]
    fn rejects_bad_nominal() {
        let _ = DroopStats::new(-1.0);
    }
}
