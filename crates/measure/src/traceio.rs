//! Trace persistence: CSV export/import for captured waveforms, plus an
//! offline reader for NDJSON run journals.
//!
//! Lab workflows archive scope captures; the reproduction does the same
//! so traces can be post-processed outside the simulator (plotted,
//! diffed across runs, or replayed through alternative PDN models). The
//! CSV format is deliberately plain: a header line, then one row per
//! sample. Run journals (see `docs/RUN_JOURNAL.md`) are newline-delimited
//! JSON; [`JournalReader`] iterates their records without interpreting
//! them, tolerating the torn final line a crash can leave behind.

use std::io::{self, BufRead, Write};
use std::path::Path;

use audit_error::AuditError;

use crate::json::JsonValue;

/// Writes a trace as two-column CSV (`cycle,value`).
///
/// # Errors
///
/// Propagates any I/O error from the writer.
///
/// # Example
///
/// ```
/// use audit_measure::traceio;
///
/// let mut buf = Vec::new();
/// traceio::write_csv(&mut buf, "v_die", &[1.2, 1.19]).unwrap();
/// let text = String::from_utf8(buf).unwrap();
/// assert!(text.starts_with("cycle,v_die\n"));
/// ```
pub fn write_csv<W: Write>(mut w: W, column: &str, trace: &[f64]) -> io::Result<()> {
    writeln!(w, "cycle,{column}")?;
    for (i, v) in trace.iter().enumerate() {
        writeln!(w, "{i},{v:.9}")?;
    }
    Ok(())
}

/// Error from [`read_csv`].
#[derive(Debug)]
pub enum TraceReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A data row did not parse.
    Malformed {
        /// 1-based line number of the offending row.
        line: usize,
    },
}

impl std::fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "trace read failed: {e}"),
            TraceReadError::Malformed { line } => write!(f, "malformed trace row at line {line}"),
        }
    }
}

impl std::error::Error for TraceReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceReadError::Io(e) => Some(e),
            TraceReadError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for TraceReadError {
    fn from(e: io::Error) -> Self {
        TraceReadError::Io(e)
    }
}

/// Reads a trace written by [`write_csv`] (header skipped; the value is
/// the last comma-separated field of each row).
///
/// # Errors
///
/// Returns [`TraceReadError::Malformed`] with the offending line number
/// on parse failure, or [`TraceReadError::Io`] on read failure.
pub fn read_csv<R: BufRead>(r: R) -> Result<Vec<f64>, TraceReadError> {
    let mut out = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        if idx == 0 || line.trim().is_empty() {
            continue; // header / trailing newline
        }
        let value = line
            .rsplit(',')
            .next()
            .and_then(|f| f.trim().parse::<f64>().ok())
            .ok_or(TraceReadError::Malformed { line: idx + 1 })?;
        out.push(value);
    }
    Ok(out)
}

/// How the final line of a journal read ended.
///
/// Crash recovery is the whole reason the journal exists, so a torn
/// final line is a first-class *outcome*, not an error: resuming code
/// branches on it (replay everything complete, re-run the torn step)
/// instead of unwrapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailOutcome {
    /// Every line parsed as a complete record.
    Clean,
    /// The final line was torn by a crash mid-append: either it failed
    /// to parse, or it parsed as JSON that is not a record (a partial
    /// write can coincidentally be valid JSON — `{}` is a prefix of
    /// many records). The line is dropped; all prior records stand.
    TruncatedTail,
}

/// Offline reader for NDJSON run journals.
///
/// Each journal line is one JSON object with a `"kind"` field. The
/// reader is schema-agnostic: it hands back [`JsonValue`]s so tools can
/// inspect journals written by newer builds. A torn final line (the
/// signature of a crash mid-append under non-atomic writers) is *not* an
/// error — it is dropped and reported as a clean
/// [`TailOutcome::TruncatedTail`] via [`JournalReader::tail`].
///
/// # Example
///
/// ```
/// use audit_measure::traceio::{JournalReader, TailOutcome};
///
/// let text = "{\"kind\":\"run_start\",\"schema\":1}\n{\"kind\":\"gener";
/// let reader = JournalReader::parse(text).unwrap();
/// assert_eq!(reader.records().len(), 1);
/// assert_eq!(reader.tail(), TailOutcome::TruncatedTail);
/// assert_eq!(reader.kinds(), vec!["run_start"]);
/// ```
#[derive(Debug, Clone)]
pub struct JournalReader {
    records: Vec<JsonValue>,
    tail: TailOutcome,
}

impl JournalReader {
    /// Reads a journal file from disk.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Io`] if the file cannot be read, or
    /// [`AuditError::Journal`] if a non-final line is malformed.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, AuditError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| AuditError::io(path.display(), &e))?;
        Self::parse(&text)
    }

    /// Parses journal text (one JSON object per line).
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Journal`] naming the 1-based line if any
    /// line other than the last fails to parse, or if a parsed record is
    /// not an object with a string `"kind"`.
    pub fn parse(text: &str) -> Result<Self, AuditError> {
        let lines: Vec<&str> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        let mut records = Vec::with_capacity(lines.len());
        let mut tail = TailOutcome::Clean;
        for (idx, line) in lines.iter().enumerate() {
            let last = idx + 1 == lines.len();
            match JsonValue::parse(line) {
                Ok(record) => {
                    if record.get("kind").and_then(JsonValue::as_str).is_none() {
                        if last {
                            // A partial write can still be valid JSON
                            // (`{}` is a prefix of many records) — the
                            // same crash tail, just luckier truncation.
                            tail = TailOutcome::TruncatedTail;
                            continue;
                        }
                        return Err(AuditError::journal(
                            idx + 1,
                            "record is not an object with a string `kind`",
                        ));
                    }
                    records.push(record);
                }
                Err(_) if last => {
                    // Crash tail: an interrupted append leaves a partial
                    // final line. Recoverable by construction.
                    tail = TailOutcome::TruncatedTail;
                }
                Err(e) => return Err(AuditError::journal(idx + 1, e.to_string())),
            }
        }
        Ok(JournalReader { records, tail })
    }

    /// All complete records, in journal order.
    pub fn records(&self) -> &[JsonValue] {
        &self.records
    }

    /// How the final line ended: [`TailOutcome::TruncatedTail`] if it
    /// was torn by a crash mid-append (and dropped), else
    /// [`TailOutcome::Clean`].
    pub fn tail(&self) -> TailOutcome {
        self.tail
    }

    /// True if the final line was torn (partial write before a crash).
    /// Shorthand for `tail() == TailOutcome::TruncatedTail`.
    pub fn torn_tail(&self) -> bool {
        self.tail == TailOutcome::TruncatedTail
    }

    /// The `"kind"` of every record, in order — the quickest way to see
    /// a run's shape (`run_start`, phases, generations, `run_end`).
    pub fn kinds(&self) -> Vec<&str> {
        self.records
            .iter()
            .filter_map(|r| r.get("kind").and_then(JsonValue::as_str))
            .collect()
    }

    /// Records of one kind, in order (e.g. `"generation"`).
    pub fn of_kind(&self, kind: &str) -> Vec<&JsonValue> {
        self.records
            .iter()
            .filter(|r| r.get("kind").and_then(JsonValue::as_str) == Some(kind))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_values() {
        let trace = vec![1.2, 1.199999, 1.05, 0.987654321];
        let mut buf = Vec::new();
        write_csv(&mut buf, "v", &trace).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), trace.len());
        for (a, b) in trace.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_csv(&mut buf, "v", &[]).unwrap();
        assert!(read_csv(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn malformed_row_is_located() {
        let text = "cycle,v\n0,1.2\n1,not-a-number\n";
        let err = read_csv(text.as_bytes()).unwrap_err();
        match err {
            TraceReadError::Malformed { line } => assert_eq!(line, 3),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn header_and_blank_lines_are_skipped() {
        let text = "cycle,v\n0,1.0\n\n1,2.0\n";
        let back = read_csv(text.as_bytes()).unwrap();
        assert_eq!(back, vec![1.0, 2.0]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = TraceReadError::Malformed { line: 7 };
        assert_eq!(e.to_string(), "malformed trace row at line 7");
    }

    #[test]
    fn journal_reader_iterates_records() {
        let text = concat!(
            "{\"kind\":\"run_start\",\"schema\":1,\"mode\":\"ga\"}\n",
            "{\"kind\":\"generation\",\"index\":0}\n",
            "{\"kind\":\"generation\",\"index\":1}\n",
            "{\"kind\":\"run_end\"}\n",
        );
        let r = JournalReader::parse(text).unwrap();
        assert!(!r.torn_tail());
        assert_eq!(
            r.kinds(),
            vec!["run_start", "generation", "generation", "run_end"]
        );
        let gens = r.of_kind("generation");
        assert_eq!(gens.len(), 2);
        assert_eq!(gens[1].get("index").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn journal_reader_tolerates_torn_tail_only() {
        let torn = "{\"kind\":\"run_start\",\"schema\":1}\n{\"kind\":\"gen";
        let r = JournalReader::parse(torn).unwrap();
        assert!(r.torn_tail());
        assert_eq!(r.records().len(), 1);

        // A malformed line in the *middle* is a real error.
        let bad = "{\"kind\":\"run_start\"}\n{broken\n{\"kind\":\"run_end\"}\n";
        let err = JournalReader::parse(bad).unwrap_err();
        assert!(err.to_string().contains("record 2"), "{err}");
    }

    #[test]
    fn journal_reader_rejects_kindless_records() {
        let err = JournalReader::parse("{\"schema\":1}\n{\"kind\":\"x\"}\n").unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
    }

    #[test]
    fn valid_json_kindless_tail_is_truncation_not_error() {
        // A torn write can coincidentally be valid JSON: `{}` is the
        // prefix of `{"kind":...}` truncated after one byte plus the
        // closing brace an editor or filesystem might leave. Must be a
        // clean TruncatedTail outcome, not a parse error.
        for tail in ["{}", "{\"kin\":1}", "[1,2]", "42"] {
            let text = format!("{{\"kind\":\"run_start\",\"schema\":1}}\n{tail}");
            let r = JournalReader::parse(&text)
                .unwrap_or_else(|e| panic!("tail `{tail}` errored: {e}"));
            assert_eq!(r.tail(), TailOutcome::TruncatedTail, "tail `{tail}`");
            assert!(r.torn_tail());
            assert_eq!(r.records().len(), 1);
        }
    }

    #[test]
    fn clean_journal_reports_clean_tail() {
        let r = JournalReader::parse("{\"kind\":\"run_start\",\"schema\":1}\n").unwrap();
        assert_eq!(r.tail(), TailOutcome::Clean);
        assert!(!r.torn_tail());
    }

    #[test]
    fn journal_reader_open_reports_missing_file() {
        let err = JournalReader::open("/nonexistent/journal.ndjson").unwrap_err();
        assert!(err.to_string().contains("/nonexistent/journal.ndjson"));
    }

    #[test]
    fn empty_journal_is_empty_not_an_error() {
        let r = JournalReader::parse("").unwrap();
        assert!(r.records().is_empty());
        assert!(!r.torn_tail());
    }
}
