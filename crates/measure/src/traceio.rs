//! Trace persistence: CSV export/import for captured waveforms, plus an
//! offline reader for NDJSON run journals.
//!
//! Lab workflows archive scope captures; the reproduction does the same
//! so traces can be post-processed outside the simulator (plotted,
//! diffed across runs, or replayed through alternative PDN models). The
//! CSV format is deliberately plain: a header line, then one row per
//! sample. Run journals (see `docs/RUN_JOURNAL.md`) are newline-delimited
//! JSON; [`JournalReader`] iterates their records without interpreting
//! them, tolerating the torn final line a crash can leave behind.
//!
//! [`fsck`] / [`fsck_repair`] go further: they classify a journal or
//! dispatch WAL as clean, torn-tail, or corrupt-interior (bit rot that
//! resume would refuse), report the longest valid prefix with a
//! per-kind record census, and can atomically truncate the file back to
//! that prefix so `--resume` accepts a previously dead checkpoint. This
//! backs `audit journal fsck`.

use std::io::{self, BufRead, Write};
use std::path::Path;

use audit_error::AuditError;

use crate::json::JsonValue;

/// Writes a trace as two-column CSV (`cycle,value`).
///
/// # Errors
///
/// Propagates any I/O error from the writer.
///
/// # Example
///
/// ```
/// use audit_measure::traceio;
///
/// let mut buf = Vec::new();
/// traceio::write_csv(&mut buf, "v_die", &[1.2, 1.19]).unwrap();
/// let text = String::from_utf8(buf).unwrap();
/// assert!(text.starts_with("cycle,v_die\n"));
/// ```
pub fn write_csv<W: Write>(mut w: W, column: &str, trace: &[f64]) -> io::Result<()> {
    writeln!(w, "cycle,{column}")?;
    for (i, v) in trace.iter().enumerate() {
        writeln!(w, "{i},{v:.9}")?;
    }
    Ok(())
}

/// Error from [`read_csv`].
#[derive(Debug)]
pub enum TraceReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A data row did not parse.
    Malformed {
        /// 1-based line number of the offending row.
        line: usize,
    },
}

impl std::fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "trace read failed: {e}"),
            TraceReadError::Malformed { line } => write!(f, "malformed trace row at line {line}"),
        }
    }
}

impl std::error::Error for TraceReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceReadError::Io(e) => Some(e),
            TraceReadError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for TraceReadError {
    fn from(e: io::Error) -> Self {
        TraceReadError::Io(e)
    }
}

/// Reads a trace written by [`write_csv`] (header skipped; the value is
/// the last comma-separated field of each row).
///
/// # Errors
///
/// Returns [`TraceReadError::Malformed`] with the offending line number
/// on parse failure, or [`TraceReadError::Io`] on read failure.
pub fn read_csv<R: BufRead>(r: R) -> Result<Vec<f64>, TraceReadError> {
    let mut out = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        if idx == 0 || line.trim().is_empty() {
            continue; // header / trailing newline
        }
        let value = line
            .rsplit(',')
            .next()
            .and_then(|f| f.trim().parse::<f64>().ok())
            .ok_or(TraceReadError::Malformed { line: idx + 1 })?;
        out.push(value);
    }
    Ok(out)
}

/// How the final line of a journal read ended.
///
/// Crash recovery is the whole reason the journal exists, so a torn
/// final line is a first-class *outcome*, not an error: resuming code
/// branches on it (replay everything complete, re-run the torn step)
/// instead of unwrapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailOutcome {
    /// Every line parsed as a complete record.
    Clean,
    /// The final line was torn by a crash mid-append: either it failed
    /// to parse, or it parsed as JSON that is not a record (a partial
    /// write can coincidentally be valid JSON — `{}` is a prefix of
    /// many records). The line is dropped; all prior records stand.
    TruncatedTail,
}

/// Offline reader for NDJSON run journals.
///
/// Each journal line is one JSON object with a `"kind"` field. The
/// reader is schema-agnostic: it hands back [`JsonValue`]s so tools can
/// inspect journals written by newer builds. A torn final line (the
/// signature of a crash mid-append under non-atomic writers) is *not* an
/// error — it is dropped and reported as a clean
/// [`TailOutcome::TruncatedTail`] via [`JournalReader::tail`].
///
/// # Example
///
/// ```
/// use audit_measure::traceio::{JournalReader, TailOutcome};
///
/// let text = "{\"kind\":\"run_start\",\"schema\":1}\n{\"kind\":\"gener";
/// let reader = JournalReader::parse(text).unwrap();
/// assert_eq!(reader.records().len(), 1);
/// assert_eq!(reader.tail(), TailOutcome::TruncatedTail);
/// assert_eq!(reader.kinds(), vec!["run_start"]);
/// ```
#[derive(Debug, Clone)]
pub struct JournalReader {
    records: Vec<JsonValue>,
    tail: TailOutcome,
}

impl JournalReader {
    /// Reads a journal file from disk.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Io`] if the file cannot be read, or
    /// [`AuditError::Journal`] if a non-final line is malformed.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, AuditError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| AuditError::io(path.display(), &e))?;
        Self::parse(&text)
    }

    /// Parses journal text (one JSON object per line).
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Journal`] naming the 1-based line if any
    /// line other than the last fails to parse, or if a parsed record is
    /// not an object with a string `"kind"`.
    pub fn parse(text: &str) -> Result<Self, AuditError> {
        let lines: Vec<&str> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        let mut records = Vec::with_capacity(lines.len());
        let mut tail = TailOutcome::Clean;
        for (idx, line) in lines.iter().enumerate() {
            let last = idx + 1 == lines.len();
            match JsonValue::parse(line) {
                Ok(record) => {
                    if record.get("kind").and_then(JsonValue::as_str).is_none() {
                        if last {
                            // A partial write can still be valid JSON
                            // (`{}` is a prefix of many records) — the
                            // same crash tail, just luckier truncation.
                            tail = TailOutcome::TruncatedTail;
                            continue;
                        }
                        return Err(AuditError::journal(
                            idx + 1,
                            "record is not an object with a string `kind`",
                        ));
                    }
                    records.push(record);
                }
                Err(_) if last => {
                    // Crash tail: an interrupted append leaves a partial
                    // final line. Recoverable by construction.
                    tail = TailOutcome::TruncatedTail;
                }
                Err(e) => return Err(AuditError::journal(idx + 1, e.to_string())),
            }
        }
        Ok(JournalReader { records, tail })
    }

    /// All complete records, in journal order.
    pub fn records(&self) -> &[JsonValue] {
        &self.records
    }

    /// How the final line ended: [`TailOutcome::TruncatedTail`] if it
    /// was torn by a crash mid-append (and dropped), else
    /// [`TailOutcome::Clean`].
    pub fn tail(&self) -> TailOutcome {
        self.tail
    }

    /// True if the final line was torn (partial write before a crash).
    /// Shorthand for `tail() == TailOutcome::TruncatedTail`.
    pub fn torn_tail(&self) -> bool {
        self.tail == TailOutcome::TruncatedTail
    }

    /// The `"kind"` of every record, in order — the quickest way to see
    /// a run's shape (`run_start`, phases, generations, `run_end`).
    pub fn kinds(&self) -> Vec<&str> {
        self.records
            .iter()
            .filter_map(|r| r.get("kind").and_then(JsonValue::as_str))
            .collect()
    }

    /// Records of one kind, in order (e.g. `"generation"`).
    pub fn of_kind(&self, kind: &str) -> Vec<&JsonValue> {
        self.records
            .iter()
            .filter(|r| r.get("kind").and_then(JsonValue::as_str) == Some(kind))
            .collect()
    }
}

/// How `fsck` classified an NDJSON journal (or dispatch WAL).
///
/// The classification is deliberately three-way because the recovery
/// story differs: a [`FsckVerdict::TornTail`] is the ordinary signature
/// of a crash mid-append and resume already tolerates it; a
/// [`FsckVerdict::CorruptInterior`] (bit rot, a bad sector, a chaos
/// campaign's bit-flip landing in storage) would make resume refuse the
/// whole file — until [`fsck_repair`] truncates it back to the longest
/// valid prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsckVerdict {
    /// Every line is a complete record; nothing to repair.
    Clean,
    /// Only the final line is damaged — the crash-tail pattern that
    /// resume already drops on its own.
    TornTail,
    /// A damaged line has complete lines *after* it; resume would
    /// error. `line` is the 1-based number of the first bad line.
    CorruptInterior {
        /// 1-based line number of the first damaged line.
        line: usize,
    },
}

/// What `fsck` found: the verdict, the longest valid prefix, and a
/// per-kind census of the records inside that prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// The classification (see [`FsckVerdict`]).
    pub verdict: FsckVerdict,
    /// Byte length of the longest valid prefix — what [`fsck_repair`]
    /// truncates the file to.
    pub valid_bytes: u64,
    /// Total byte length of the file as found.
    pub total_bytes: u64,
    /// Complete records inside the valid prefix.
    pub records: usize,
    /// `(kind, count)` census of the valid prefix, in first-seen order.
    pub kind_counts: Vec<(String, usize)>,
}

impl FsckReport {
    /// True when resume would accept the file as-is (clean, or the
    /// torn tail resume already tolerates).
    pub fn resumable(&self) -> bool {
        !matches!(self.verdict, FsckVerdict::CorruptInterior { .. })
    }
}

/// Classifies raw journal bytes. See [`fsck`] for the file wrapper.
///
/// Operates on bytes, not `str`: a corrupted journal (the whole reason
/// to fsck one) need not be valid UTF-8. A line is *valid* when it is
/// UTF-8, parses as JSON, and is an object with a string `"kind"`;
/// whitespace-only lines are tolerated as filler. The valid prefix ends
/// just after the last valid line before the first damaged one.
pub fn fsck_bytes(bytes: &[u8]) -> FsckReport {
    let mut report = FsckReport {
        verdict: FsckVerdict::Clean,
        valid_bytes: 0,
        total_bytes: bytes.len() as u64,
        records: 0,
        kind_counts: Vec::new(),
    };
    let mut offset = 0usize;
    let mut line_no = 0usize;
    let mut first_bad: Option<usize> = None;
    let mut lines_after_bad = false;
    while offset < bytes.len() {
        let end = bytes[offset..]
            .iter()
            .position(|&b| b == b'\n')
            .map_or(bytes.len(), |nl| offset + nl + 1);
        let line = &bytes[offset..end];
        line_no += 1;
        let text = std::str::from_utf8(line).ok().map(str::trim);
        let record = match text {
            Some("") => None, // whitespace filler: valid, not a record
            Some(t) => match JsonValue::parse(t) {
                Ok(v) if v.get("kind").and_then(JsonValue::as_str).is_some() => Some(v),
                _ => {
                    if first_bad.is_none() {
                        first_bad = Some(line_no);
                    } else {
                        lines_after_bad = true;
                    }
                    offset = end;
                    continue;
                }
            },
            None => {
                if first_bad.is_none() {
                    first_bad = Some(line_no);
                } else {
                    lines_after_bad = true;
                }
                offset = end;
                continue;
            }
        };
        if first_bad.is_some() {
            // A complete line after damage: the damage is interior.
            lines_after_bad = true;
            offset = end;
            continue;
        }
        if let Some(v) = record {
            let kind = v
                .get("kind")
                .and_then(JsonValue::as_str)
                .expect("validated above")
                .to_string();
            match report.kind_counts.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, n)) => *n += 1,
                None => report.kind_counts.push((kind, 1)),
            }
            report.records += 1;
        }
        report.valid_bytes = end as u64;
        offset = end;
    }
    report.verdict = match first_bad {
        None => FsckVerdict::Clean,
        Some(line) if lines_after_bad => FsckVerdict::CorruptInterior { line },
        Some(_) => FsckVerdict::TornTail,
    };
    report
}

/// Classifies a journal (or dispatch WAL) file on disk: clean, torn
/// tail, or corrupt interior, with the longest valid prefix and a
/// per-kind record census. Never modifies the file — see
/// [`fsck_repair`] for the truncating variant.
///
/// # Errors
///
/// Returns [`AuditError::Io`] if the file cannot be read.
pub fn fsck(path: impl AsRef<Path>) -> Result<FsckReport, AuditError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| AuditError::io(path.display(), &e))?;
    Ok(fsck_bytes(&bytes))
}

/// Runs [`fsck`] and, when the file is damaged, atomically truncates it
/// to its longest valid prefix: the prefix is staged in a `.fsck.tmp`
/// sibling, fsynced, and renamed over the original, so a crash during
/// repair leaves either the damaged original or the repaired file —
/// never a third state. A clean file is left byte-untouched.
///
/// Returns the pre-repair report (so callers can print what was cut).
///
/// # Errors
///
/// Returns [`AuditError::Io`] if the file cannot be read or the
/// repaired prefix cannot be staged and renamed into place.
pub fn fsck_repair(path: impl AsRef<Path>) -> Result<FsckReport, AuditError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| AuditError::io(path.display(), &e))?;
    let report = fsck_bytes(&bytes);
    if report.verdict == FsckVerdict::Clean {
        return Ok(report);
    }
    let io_err = |e: &io::Error| AuditError::io(path.display(), e);
    let tmp = path.with_extension("fsck.tmp");
    {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&e))?;
        f.write_all(&bytes[..report.valid_bytes as usize])
            .map_err(|e| io_err(&e))?;
        f.sync_all().map_err(|e| io_err(&e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(&e))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_values() {
        let trace = vec![1.2, 1.199999, 1.05, 0.987654321];
        let mut buf = Vec::new();
        write_csv(&mut buf, "v", &trace).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), trace.len());
        for (a, b) in trace.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_csv(&mut buf, "v", &[]).unwrap();
        assert!(read_csv(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn malformed_row_is_located() {
        let text = "cycle,v\n0,1.2\n1,not-a-number\n";
        let err = read_csv(text.as_bytes()).unwrap_err();
        match err {
            TraceReadError::Malformed { line } => assert_eq!(line, 3),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn header_and_blank_lines_are_skipped() {
        let text = "cycle,v\n0,1.0\n\n1,2.0\n";
        let back = read_csv(text.as_bytes()).unwrap();
        assert_eq!(back, vec![1.0, 2.0]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = TraceReadError::Malformed { line: 7 };
        assert_eq!(e.to_string(), "malformed trace row at line 7");
    }

    #[test]
    fn journal_reader_iterates_records() {
        let text = concat!(
            "{\"kind\":\"run_start\",\"schema\":1,\"mode\":\"ga\"}\n",
            "{\"kind\":\"generation\",\"index\":0}\n",
            "{\"kind\":\"generation\",\"index\":1}\n",
            "{\"kind\":\"run_end\"}\n",
        );
        let r = JournalReader::parse(text).unwrap();
        assert!(!r.torn_tail());
        assert_eq!(
            r.kinds(),
            vec!["run_start", "generation", "generation", "run_end"]
        );
        let gens = r.of_kind("generation");
        assert_eq!(gens.len(), 2);
        assert_eq!(gens[1].get("index").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn journal_reader_tolerates_torn_tail_only() {
        let torn = "{\"kind\":\"run_start\",\"schema\":1}\n{\"kind\":\"gen";
        let r = JournalReader::parse(torn).unwrap();
        assert!(r.torn_tail());
        assert_eq!(r.records().len(), 1);

        // A malformed line in the *middle* is a real error.
        let bad = "{\"kind\":\"run_start\"}\n{broken\n{\"kind\":\"run_end\"}\n";
        let err = JournalReader::parse(bad).unwrap_err();
        assert!(err.to_string().contains("record 2"), "{err}");
    }

    #[test]
    fn journal_reader_rejects_kindless_records() {
        let err = JournalReader::parse("{\"schema\":1}\n{\"kind\":\"x\"}\n").unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
    }

    #[test]
    fn valid_json_kindless_tail_is_truncation_not_error() {
        // A torn write can coincidentally be valid JSON: `{}` is the
        // prefix of `{"kind":...}` truncated after one byte plus the
        // closing brace an editor or filesystem might leave. Must be a
        // clean TruncatedTail outcome, not a parse error.
        for tail in ["{}", "{\"kin\":1}", "[1,2]", "42"] {
            let text = format!("{{\"kind\":\"run_start\",\"schema\":1}}\n{tail}");
            let r = JournalReader::parse(&text)
                .unwrap_or_else(|e| panic!("tail `{tail}` errored: {e}"));
            assert_eq!(r.tail(), TailOutcome::TruncatedTail, "tail `{tail}`");
            assert!(r.torn_tail());
            assert_eq!(r.records().len(), 1);
        }
    }

    #[test]
    fn clean_journal_reports_clean_tail() {
        let r = JournalReader::parse("{\"kind\":\"run_start\",\"schema\":1}\n").unwrap();
        assert_eq!(r.tail(), TailOutcome::Clean);
        assert!(!r.torn_tail());
    }

    #[test]
    fn journal_reader_open_reports_missing_file() {
        let err = JournalReader::open("/nonexistent/journal.ndjson").unwrap_err();
        assert!(err.to_string().contains("/nonexistent/journal.ndjson"));
    }

    #[test]
    fn empty_journal_is_empty_not_an_error() {
        let r = JournalReader::parse("").unwrap();
        assert!(r.records().is_empty());
        assert!(!r.torn_tail());
    }

    #[test]
    fn fsck_classifies_a_clean_journal() {
        let text = concat!(
            "{\"kind\":\"run_start\",\"schema\":1}\n",
            "{\"kind\":\"generation\",\"index\":0}\n",
            "{\"kind\":\"generation\",\"index\":1}\n",
            "{\"kind\":\"run_end\"}\n",
        );
        let r = fsck_bytes(text.as_bytes());
        assert_eq!(r.verdict, FsckVerdict::Clean);
        assert!(r.resumable());
        assert_eq!(r.valid_bytes, r.total_bytes);
        assert_eq!(r.records, 4);
        assert_eq!(
            r.kind_counts,
            vec![
                ("run_start".to_string(), 1),
                ("generation".to_string(), 2),
                ("run_end".to_string(), 1),
            ]
        );
        // Empty files are vacuously clean.
        assert_eq!(fsck_bytes(b"").verdict, FsckVerdict::Clean);
    }

    #[test]
    fn fsck_classifies_a_torn_tail() {
        let good = b"{\"kind\":\"run_start\",\"schema\":1}\n";
        for tail in [
            b"{\"kind\":\"gener".as_slice(),
            b"{}".as_slice(),
            b"\xff\xfe garbage".as_slice(), // not even UTF-8
        ] {
            let mut text = good.to_vec();
            text.extend_from_slice(tail);
            let r = fsck_bytes(&text);
            assert_eq!(r.verdict, FsckVerdict::TornTail, "tail `{tail:?}`");
            assert!(r.resumable(), "resume already drops a torn tail");
            assert_eq!(r.valid_bytes as usize, good.len());
            assert_eq!(r.records, 1);
        }
    }

    #[test]
    fn fsck_classifies_a_corrupt_interior() {
        let mut text = Vec::new();
        text.extend_from_slice(b"{\"kind\":\"run_start\",\"schema\":1}\n");
        text.extend_from_slice(b"{\"kind\":\"generation\",\"index\":0}\n");
        // Bit rot: raw non-UTF-8 bytes torn through a record's middle.
        text.extend_from_slice(b"{\"kind\":\"gene\xaa\xbbation\",\"index\":1}\n");
        text.extend_from_slice(b"{\"kind\":\"run_end\"}\n");
        let r = fsck_bytes(&text);
        assert_eq!(r.verdict, FsckVerdict::CorruptInterior { line: 3 });
        assert!(!r.resumable());
        // The prefix stops before the damage; the valid line after it
        // is unreachable by an append-only reader and stays excluded.
        assert_eq!(r.records, 2);
        assert_eq!(
            r.kind_counts,
            vec![("run_start".to_string(), 1), ("generation".to_string(), 1)]
        );
        let prefix = &text[..r.valid_bytes as usize];
        assert!(prefix.ends_with(b"\"index\":0}\n"));
    }

    #[test]
    fn fsck_repair_truncates_atomically_and_is_idempotent() {
        let dir = std::env::temp_dir().join(format!(
            "audit-fsck-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ndjson");
        let good = concat!(
            "{\"kind\":\"run_start\",\"schema\":1}\n",
            "{\"kind\":\"generation\",\"index\":0}\n",
        );
        std::fs::write(&path, format!("{good}{{\"kind\":\"broken\n{{\"kind\":\"run_end\"}}\n"))
            .unwrap();

        let before = fsck(&path).unwrap();
        assert_eq!(before.verdict, FsckVerdict::CorruptInterior { line: 3 });

        let repaired = fsck_repair(&path).unwrap();
        assert_eq!(repaired.verdict, before.verdict, "reports the pre-repair state");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), good);
        assert!(!dir.join("run.fsck.tmp").exists());

        // Now clean: repair is a no-op that leaves the bytes alone.
        let again = fsck_repair(&path).unwrap();
        assert_eq!(again.verdict, FsckVerdict::Clean);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), good);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
