//! Trace persistence: CSV export/import for captured waveforms.
//!
//! Lab workflows archive scope captures; the reproduction does the same
//! so traces can be post-processed outside the simulator (plotted,
//! diffed across runs, or replayed through alternative PDN models). The
//! format is deliberately plain: a header line, then one row per sample.

use std::io::{self, BufRead, Write};

/// Writes a trace as two-column CSV (`cycle,value`).
///
/// # Errors
///
/// Propagates any I/O error from the writer.
///
/// # Example
///
/// ```
/// use audit_measure::traceio;
///
/// let mut buf = Vec::new();
/// traceio::write_csv(&mut buf, "v_die", &[1.2, 1.19]).unwrap();
/// let text = String::from_utf8(buf).unwrap();
/// assert!(text.starts_with("cycle,v_die\n"));
/// ```
pub fn write_csv<W: Write>(mut w: W, column: &str, trace: &[f64]) -> io::Result<()> {
    writeln!(w, "cycle,{column}")?;
    for (i, v) in trace.iter().enumerate() {
        writeln!(w, "{i},{v:.9}")?;
    }
    Ok(())
}

/// Error from [`read_csv`].
#[derive(Debug)]
pub enum TraceReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A data row did not parse.
    Malformed {
        /// 1-based line number of the offending row.
        line: usize,
    },
}

impl std::fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "trace read failed: {e}"),
            TraceReadError::Malformed { line } => write!(f, "malformed trace row at line {line}"),
        }
    }
}

impl std::error::Error for TraceReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceReadError::Io(e) => Some(e),
            TraceReadError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for TraceReadError {
    fn from(e: io::Error) -> Self {
        TraceReadError::Io(e)
    }
}

/// Reads a trace written by [`write_csv`] (header skipped; the value is
/// the last comma-separated field of each row).
///
/// # Errors
///
/// Returns [`TraceReadError::Malformed`] with the offending line number
/// on parse failure, or [`TraceReadError::Io`] on read failure.
pub fn read_csv<R: BufRead>(r: R) -> Result<Vec<f64>, TraceReadError> {
    let mut out = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        if idx == 0 || line.trim().is_empty() {
            continue; // header / trailing newline
        }
        let value = line
            .rsplit(',')
            .next()
            .and_then(|f| f.trim().parse::<f64>().ok())
            .ok_or(TraceReadError::Malformed { line: idx + 1 })?;
        out.push(value);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_values() {
        let trace = vec![1.2, 1.199999, 1.05, 0.987654321];
        let mut buf = Vec::new();
        write_csv(&mut buf, "v", &trace).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), trace.len());
        for (a, b) in trace.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_csv(&mut buf, "v", &[]).unwrap();
        assert!(read_csv(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn malformed_row_is_located() {
        let text = "cycle,v\n0,1.2\n1,not-a-number\n";
        let err = read_csv(text.as_bytes()).unwrap_err();
        match err {
            TraceReadError::Malformed { line } => assert_eq!(line, 3),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn header_and_blank_lines_are_skipped() {
        let text = "cycle,v\n0,1.0\n\n1,2.0\n";
        let back = read_csv(text.as_bytes()).unwrap();
        assert_eq!(back, vec![1.0, 2.0]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = TraceReadError::Malformed { line: 7 };
        assert_eq!(e.to_string(), "malformed trace row at line 7");
    }
}
