//! Property-based tests for the measurement substrate.

use audit_measure::{spectrum, traceio, DroopStats, Histogram, Oscilloscope, VoltageAtFailure};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The histogram never loses samples, whatever the values.
    #[test]
    fn histogram_conserves_count(values in prop::collection::vec(-10.0f64..10.0, 0..500)) {
        let mut h = Histogram::new(0.0, 2.0, 40);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
    }

    /// Quantiles are monotone in q and bounded by the bin range.
    #[test]
    fn histogram_quantiles_monotone(values in prop::collection::vec(0.0f64..2.0, 1..500)) {
        let mut h = Histogram::new(0.0, 2.0, 64);
        for &v in &values {
            h.record(v);
        }
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let x = h.quantile(q);
            prop_assert!(x >= prev, "quantile({q}) = {x} < {prev}");
            prop_assert!((0.0..=2.0).contains(&x));
            prev = x;
        }
    }

    /// DroopStats equals the brute-force fold over any sample sequence.
    #[test]
    fn stats_match_brute_force(values in prop::collection::vec(0.5f64..1.5, 1..300)) {
        let mut s = DroopStats::new(1.2);
        for &v in &values {
            s.record(v);
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert_eq!(s.v_min(), min);
        prop_assert_eq!(s.v_max(), max);
        prop_assert!((s.mean() - mean).abs() < 1e-12);
        prop_assert!((s.max_droop() - (1.2 - min).max(0.0)).abs() < 1e-12);
    }

    /// The scope's envelope min is always ≤ every sample in its window,
    /// and the global min of the envelope equals the stats min (once a
    /// whole number of windows has been consumed).
    #[test]
    fn scope_envelope_bounds_samples(values in prop::collection::vec(0.5f64..1.5, 8..256)) {
        let decim = 8u64;
        let full = values.len() - values.len() % decim as usize;
        let mut scope = Oscilloscope::new(1.2).with_envelope_decimation(decim);
        for &v in &values[..full] {
            scope.sample(v);
        }
        let env_min = scope.envelope().iter().copied().fold(f64::INFINITY, f64::min);
        let true_min = values[..full].iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(env_min, true_min);
    }

    /// Trigger counts equal the number of downward crossings.
    #[test]
    fn trigger_counts_crossings(values in prop::collection::vec(0.9f64..1.5, 2..300)) {
        let level = 1.1;
        let mut scope = Oscilloscope::new(1.2).with_trigger(level);
        for &v in &values {
            scope.sample(v);
        }
        let mut expected = 0;
        let mut below = false;
        for &v in &values {
            let b = v < level;
            if b && !below {
                expected += 1;
            }
            below = b;
        }
        prop_assert_eq!(scope.trigger_events(), expected);
    }

    /// Voltage-at-failure returns the highest failing step for any
    /// monotone failure boundary.
    #[test]
    fn vf_search_finds_boundary(boundary in 0.7f64..1.15) {
        let search = VoltageAtFailure::paper(1.2);
        let vf = search.run(|v| v < boundary).expect("boundary inside range");
        prop_assert!(vf < boundary);
        prop_assert!(vf > boundary - 0.0126, "overshot: {vf} for boundary {boundary}");
    }

    /// Trace CSV round-trips arbitrary finite values.
    #[test]
    fn trace_csv_round_trips(values in prop::collection::vec(-1e6f64..1e6, 0..200)) {
        let mut buf = Vec::new();
        traceio::write_csv(&mut buf, "x", &values).unwrap();
        let back = traceio::read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(&back) {
            prop_assert!((a - b).abs() <= 1e-6 * (1.0 + a.abs()));
        }
    }

    /// Parseval: FFT preserves signal energy for random power-of-two
    /// signals.
    #[test]
    fn fft_preserves_energy(values in prop::collection::vec(-1.0f64..1.0, 64..65)) {
        let mut re = values.clone();
        let mut im = vec![0.0; values.len()];
        spectrum::fft(&mut re, &mut im);
        let time: f64 = values.iter().map(|x| x * x).sum();
        let freq: f64 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum::<f64>()
            / values.len() as f64;
        prop_assert!((time - freq).abs() < 1e-9 * (1.0 + time));
    }
}
