//! The workspace-wide error type.
//!
//! Every fallible public constructor and validator in the AUDIT crates
//! returns [`AuditError`], so callers handle one error type whether the
//! failure came from a PDN parameter, a chip configuration, a GA
//! hyper-parameter, or the run journal on disk. The enum is hand-rolled
//! (`Display` + `Error`, no derive-macro dependency) and carries enough
//! structure for callers to branch on the failure class while keeping
//! human-readable messages.
//!
//! Panicking escape hatches remain available where construction cannot
//! fail (`paper()` / `fast_demo()` / `bulldozer()` presets) or where the
//! caller has already validated (`*_unchecked` constructors).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

/// Convenience alias used across the workspace.
pub type AuditResult<T> = Result<T, AuditError>;

/// The single error type of the AUDIT workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// A configuration value failed validation.
    InvalidConfig {
        /// The type or subsystem being configured (e.g. `"GaConfig"`).
        context: &'static str,
        /// The offending field (e.g. `"population"`).
        field: &'static str,
        /// Why the value was rejected.
        message: String,
    },
    /// An input combination is not supported by the target
    /// (e.g. an FMA program on a non-FMA chip).
    Unsupported {
        /// The subsystem rejecting the input.
        context: &'static str,
        /// What was unsupported.
        message: String,
    },
    /// A filesystem operation on a journal or artifact failed.
    Io {
        /// Path involved (already rendered to a string for display).
        path: String,
        /// The underlying OS error message.
        message: String,
    },
    /// A run-journal record failed to parse or was semantically invalid.
    Journal {
        /// 1-based record (line) number in the journal, 0 if unknown.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The journal was written by an incompatible schema version.
    Schema {
        /// Version found in the journal's `run_start` record.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A resume request is inconsistent with the journal contents
    /// (e.g. resuming a study journal as a plain GA run).
    Resume {
        /// What was inconsistent.
        message: String,
    },
    /// A text artifact (e.g. a `.prog` program file) failed to parse.
    Parse {
        /// 1-based line number of the first malformed line, 0 if unknown.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// An evaluation exceeded its cycle budget and was aborted by the
    /// watchdog (a real runaway co-simulation, or an injected hang).
    Timeout {
        /// The subsystem whose watchdog fired (e.g. `"harness"`).
        context: &'static str,
        /// The cycle budget that was exhausted; 0 if no explicit budget
        /// was configured (the hang was detected another way).
        budget: u64,
    },
    /// A deterministic injected fault aborted the operation. Only ever
    /// produced when a fault plan is active; real hardware failures use
    /// the other variants.
    InjectedFault {
        /// The fault class (e.g. `"machine-crash"`).
        kind: &'static str,
        /// Human-readable detail (which evaluation, which attempt).
        message: String,
    },
}

impl AuditError {
    /// Shorthand for [`AuditError::InvalidConfig`].
    pub fn invalid(context: &'static str, field: &'static str, message: impl Into<String>) -> Self {
        AuditError::InvalidConfig {
            context,
            field,
            message: message.into(),
        }
    }

    /// Shorthand for [`AuditError::Io`] from a path and `std::io::Error`.
    pub fn io(path: impl fmt::Display, err: &std::io::Error) -> Self {
        AuditError::Io {
            path: path.to_string(),
            message: err.to_string(),
        }
    }

    /// Shorthand for [`AuditError::Journal`].
    pub fn journal(line: usize, message: impl Into<String>) -> Self {
        AuditError::Journal {
            line,
            message: message.into(),
        }
    }

    /// Shorthand for [`AuditError::Resume`].
    pub fn resume(message: impl Into<String>) -> Self {
        AuditError::Resume {
            message: message.into(),
        }
    }

    /// Shorthand for [`AuditError::Parse`].
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        AuditError::Parse {
            line,
            message: message.into(),
        }
    }

    /// Shorthand for [`AuditError::Timeout`].
    pub fn timeout(context: &'static str, budget: u64) -> Self {
        AuditError::Timeout { context, budget }
    }

    /// Shorthand for [`AuditError::InjectedFault`].
    pub fn injected(kind: &'static str, message: impl Into<String>) -> Self {
        AuditError::InjectedFault {
            kind,
            message: message.into(),
        }
    }

    /// True for the error classes a resilient measurement policy may
    /// retry (hangs and injected machine crashes); configuration,
    /// parse, and journal errors are never retried.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            AuditError::Timeout { .. } | AuditError::InjectedFault { .. }
        )
    }
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::InvalidConfig {
                context,
                field,
                message,
            } => write!(f, "invalid {context}.{field}: {message}"),
            AuditError::Unsupported { context, message } => {
                write!(f, "unsupported by {context}: {message}")
            }
            AuditError::Io { path, message } => write!(f, "i/o error on {path}: {message}"),
            AuditError::Journal { line, message } => {
                if *line == 0 {
                    write!(f, "journal error: {message}")
                } else {
                    write!(f, "journal record {line}: {message}")
                }
            }
            AuditError::Schema { found, supported } => write!(
                f,
                "journal schema v{found} is not supported (this build reads v{supported})"
            ),
            AuditError::Resume { message } => write!(f, "cannot resume: {message}"),
            AuditError::Parse { line, message } => {
                if *line == 0 {
                    write!(f, "parse error: {message}")
                } else {
                    write!(f, "parse error at line {line}: {message}")
                }
            }
            AuditError::Timeout { context, budget } => {
                if *budget == 0 {
                    write!(f, "{context} watchdog: evaluation hung")
                } else {
                    write!(f, "{context} watchdog: cycle budget of {budget} exhausted")
                }
            }
            AuditError::InjectedFault { kind, message } => {
                write!(f, "injected fault ({kind}): {message}")
            }
        }
    }
}

impl Error for AuditError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_context_and_field() {
        let e = AuditError::invalid("GaConfig", "population", "must be at least 2 (got 1)");
        assert_eq!(
            e.to_string(),
            "invalid GaConfig.population: must be at least 2 (got 1)"
        );
    }

    #[test]
    fn io_shorthand_carries_path() {
        let os = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = AuditError::io("/tmp/run.ndjson", &os);
        assert!(e.to_string().contains("/tmp/run.ndjson"));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn journal_line_zero_is_generic() {
        assert_eq!(
            AuditError::journal(0, "empty file").to_string(),
            "journal error: empty file"
        );
        assert_eq!(
            AuditError::journal(7, "bad kind").to_string(),
            "journal record 7: bad kind"
        );
    }

    #[test]
    fn schema_mismatch_names_both_versions() {
        let e = AuditError::Schema {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("v9"));
        assert!(e.to_string().contains("v1"));
    }

    #[test]
    fn parse_line_zero_is_generic() {
        assert_eq!(
            AuditError::parse(0, "empty file").to_string(),
            "parse error: empty file"
        );
        assert_eq!(
            AuditError::parse(3, "unknown opcode `warp`").to_string(),
            "parse error at line 3: unknown opcode `warp`"
        );
    }

    #[test]
    fn timeout_display_distinguishes_budgeted_and_not() {
        assert_eq!(
            AuditError::timeout("harness", 150_000).to_string(),
            "harness watchdog: cycle budget of 150000 exhausted"
        );
        assert_eq!(
            AuditError::timeout("harness", 0).to_string(),
            "harness watchdog: evaluation hung"
        );
    }

    #[test]
    fn injected_fault_names_its_kind() {
        let e = AuditError::injected("machine-crash", "step 3 attempt 1");
        assert_eq!(
            e.to_string(),
            "injected fault (machine-crash): step 3 attempt 1"
        );
    }

    #[test]
    fn only_timeout_and_injected_are_transient() {
        assert!(AuditError::timeout("harness", 1).is_transient());
        assert!(AuditError::injected("machine-crash", "x").is_transient());
        assert!(!AuditError::resume("x").is_transient());
        assert!(!AuditError::invalid("a", "b", "c").is_transient());
        assert!(!AuditError::journal(1, "x").is_transient());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            AuditError::resume("no generations"),
            AuditError::resume("no generations")
        );
        assert_ne!(
            AuditError::resume("a"),
            AuditError::journal(1, "a"),
        );
    }
}
