//! `audit fleet` — the multi-tenant campaign manager subcommands.
//!
//! `fleet serve` hosts the manager: one socket where workers
//! (`audit work`, unchanged) and tenants (`audit fleet submit`) both
//! connect, many concurrent GA campaigns fair-share-scheduled over the
//! shared worker pool. Each submitted campaign replays the same code
//! path a solo `audit generate --checkpoint` takes — same journal
//! writer, same metadata, same engine — with evaluations dispatched
//! through the pool, so its journal is byte-identical to the solo
//! run's (see docs/FLEET.md). `fleet submit` sends a campaign and
//! blocks until it finishes; `fleet status` and `fleet metrics` read
//! the manager's plain-text endpoints.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use audit_core::audit::Audit;
use audit_core::journal::{Journal, JournalWriter};
use audit_core::resonance::ResonanceResult;
use audit_fleet::{CampaignSpec, Fleet, FleetConfig, PoolHandle, Submission};
use audit_measure::json::JsonValue;
use audit_net::NetFaultPlan;

use crate::args::{ArgError, Args};
use crate::commands::{core_err, eval_context};
use crate::platform;

/// `audit fleet <serve|submit|status|metrics>`.
pub fn fleet(args: &Args) -> Result<(), ArgError> {
    match args.positionals().get(1).map(String::as_str) {
        Some("serve") => serve(args),
        Some("submit") => submit(args),
        Some("status") => status(args),
        Some("metrics") => metrics(args),
        Some(other) => Err(ArgError(format!(
            "unknown fleet subcommand `{other}` (expected serve, submit, status, or metrics)"
        ))),
        None => Err(ArgError(
            "usage: audit fleet (serve | submit | status | metrics) …".into(),
        )),
    }
}

/// `audit fleet serve`: host the campaign manager.
fn serve(args: &Args) -> Result<(), ArgError> {
    let listen = args.str_flag("--listen", "127.0.0.1:0");
    let min_workers = args.num_flag("--min-workers", 1usize)?;
    let campaigns_target = args.num_flag("--campaigns", 0usize)?;
    let window = args.num_flag("--window", 2usize)?;
    let heartbeat = args.num_flag("--heartbeat", 1000u64)?;
    let dead_after = args.num_flag("--dead-after", 10_000u64)?;
    if heartbeat == 0 {
        return Err(ArgError("--heartbeat must be at least 1 ms".into()));
    }
    if dead_after <= heartbeat {
        return Err(ArgError(format!(
            "--dead-after ({dead_after} ms) must exceed --heartbeat ({heartbeat} ms); \
             a worker must miss at least one ping before it is declared lost"
        )));
    }
    let verify_fraction = args.num_flag("--verify-fraction", 0.0f64)?;
    if !(0.0..=1.0).contains(&verify_fraction) {
        return Err(ArgError(format!(
            "--verify-fraction must be within 0..=1, got {verify_fraction}"
        )));
    }
    let chaos = match args.opt_flag("--net-faults") {
        Some(spec) => NetFaultPlan::parse(&spec).map_err(core_err)?,
        None => NetFaultPlan::disabled(),
    };
    args.reject_unknown()?;

    let cfg = FleetConfig {
        window: window.max(1),
        heartbeat: Duration::from_millis(heartbeat),
        dead_after: Duration::from_millis(dead_after),
        verify_fraction,
        chaos,
        ..FleetConfig::default()
    };
    let mut manager = Fleet::bind(&listen, cfg).map_err(core_err)?;
    println!("fleet listening on {}", manager.addr());
    println!("  workers join with : audit work --connect {}", manager.addr());
    println!(
        "  submit with       : audit fleet submit --connect {} --checkpoint run.ndjson [generate flags]",
        manager.addr()
    );
    if min_workers > 0 {
        println!("waiting for {} worker(s)…", min_workers);
        manager.wait_for_workers(min_workers).map_err(core_err)?;
    }

    // Each campaign runs on its own thread (the GA engine blocks per
    // round); the pool thread interleaves their dispatches.
    let finished = Arc::new(AtomicUsize::new(0));
    let mut runners = Vec::new();
    loop {
        if campaigns_target > 0 && finished.load(Ordering::SeqCst) >= campaigns_target {
            break;
        }
        if let Some(sub) = manager.next_submission(Duration::from_millis(200)) {
            let pool = manager.handle();
            let finished = Arc::clone(&finished);
            runners.push(std::thread::spawn(move || {
                run_campaign(&pool, sub);
                finished.fetch_add(1, Ordering::SeqCst);
            }));
        }
    }
    for runner in runners {
        runner.join().ok();
    }
    println!(
        "fleet served {} campaign(s); shutting down",
        finished.load(Ordering::SeqCst)
    );
    manager.shutdown();
    Ok(())
}

/// Drives one submitted campaign to completion and answers the tenant.
fn run_campaign(pool: &PoolHandle, mut sub: Submission) {
    let checkpoint = sub.checkpoint.clone();
    let mut campaign_id = None;
    let outcome = run_campaign_inner(pool, &mut sub, &mut campaign_id);
    let id = campaign_id.unwrap_or(0);
    match outcome {
        Ok(summary) => {
            println!("campaign {id} finished: {checkpoint}");
            sub.finish(id, true, &summary);
        }
        Err(e) => {
            eprintln!("campaign {id} failed ({checkpoint}): {e}");
            sub.finish(id, false, &e.to_string());
        }
    }
}

/// The managed counterpart of `run_distributed`: reconstructs the
/// campaign's configuration from its argv (or, on resume, from the
/// journal's `run_start` metadata — exactly as `generate --resume`
/// does), registers it with the pool, and evolves through a
/// [`CampaignDispatcher`](audit_fleet::CampaignDispatcher). Dispatch is
/// write-ahead-logged to `<checkpoint>.wal`; the WAL is deleted once
/// the campaign completes and kept when it fails, so a manager killed
/// mid-campaign resumes without re-evaluating logged work.
fn run_campaign_inner(
    pool: &PoolHandle,
    sub: &mut Submission,
    campaign_id: &mut Option<u64>,
) -> Result<String, ArgError> {
    let checkpoint = sub.checkpoint.clone();
    let (saved, journal) = if sub.resume {
        let journal = Journal::load(&checkpoint).map_err(core_err)?;
        if journal.mode() != Some("generate") {
            return Err(ArgError(format!(
                "{checkpoint}: not a `generate` checkpoint (mode {:?})",
                journal.mode().unwrap_or("<none>")
            )));
        }
        let meta = journal
            .meta()
            .ok_or_else(|| ArgError(format!("{checkpoint}: journal has no run_start record")))?;
        (platform::args_from_meta(meta)?, Some(journal))
    } else {
        (Args::parse(sub.argv.clone())?, None)
    };
    let complete = journal.as_ref().is_some_and(Journal::is_complete);
    let rig = platform::rig_from(&saved)?;
    let threads = saved.num_flag("--threads", 4usize)?;
    let kind = saved.str_flag("--kind", "res");
    let opts = platform::options_from(&saved)?;
    let audit = Audit::new(rig, opts);

    let mut writer = match &journal {
        Some(_) => JournalWriter::resume(&checkpoint).map_err(core_err)?,
        None => JournalWriter::create(&checkpoint, "generate", platform::generate_meta(&saved))
            .map_err(core_err)?,
    };
    // The resonance sweep runs on the manager, like the solo broker
    // path: it is cheap next to the GA, and the pool needs its result
    // to describe the fitness function to workers.
    let resonance = match journal.as_ref().and_then(|j| j.phase_payload("resonance")) {
        Some(payload) => ResonanceResult::from_json(payload).map_err(core_err)?,
        None => audit
            .journaled_resonance(threads, &mut writer)
            .map_err(core_err)?,
    };
    let (fspec, name, seed_miss_load) = match kind.as_str() {
        "res" => (
            audit.resonant_fitness_spec(threads, resonance.period_cycles),
            format!("A-Res-{threads}T"),
            false,
        ),
        "ex" => (
            audit.excitation_fitness_spec(threads),
            format!("A-Ex-{threads}T"),
            true,
        ),
        other => return Err(ArgError(format!("unknown kind `{other}` (res | ex)"))),
    };
    let ctx = eval_context(&saved, fspec)?;
    let id = pool
        .register(CampaignSpec {
            name: campaign_label(&checkpoint),
            ctx,
            seed: audit.options().ga.seed,
            weight: sub.weight,
            wal: Some(format!("{checkpoint}.wal").into()),
        })
        .map_err(core_err)?;
    *campaign_id = Some(id);
    sub.respond_accepted(id);
    println!("campaign {id} started: {checkpoint}");

    let mut dispatcher = pool.dispatcher(id);
    let ga_resume = journal.as_ref().filter(|j| j.last_ga_section().is_some());
    let run = audit.evolve_dispatched(
        &name,
        &fspec,
        resonance,
        seed_miss_load,
        &mut dispatcher,
        &mut writer,
        ga_resume,
    );
    match run {
        Ok(run) => {
            // The journal now supersedes the WAL.
            pool.finish(id, true);
            if !complete {
                writer.finish().map_err(core_err)?;
            }
            Ok(format!(
                "best droop {:.6} V after {} generation(s); checkpoint {checkpoint} \
                 ({} records)",
                run.best_droop,
                run.ga.generations_run,
                writer.len()
            ))
        }
        Err(e) => {
            // Keep the WAL: a resubmit with --resume prefills from it.
            pool.finish(id, false);
            Err(core_err(e))
        }
    }
}

/// The campaign's display name (metrics/status label): the checkpoint
/// file stem.
fn campaign_label(checkpoint: &str) -> String {
    Path::new(checkpoint)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| checkpoint.to_string())
}

/// `audit fleet submit`: send a campaign to a manager and block until
/// it completes.
fn submit(args: &Args) -> Result<(), ArgError> {
    let connect = args.opt_flag("--connect").ok_or_else(|| {
        ArgError("audit fleet submit needs --connect HOST:PORT or unix:/path".into())
    })?;
    let (checkpoint, resume) = match (args.opt_flag("--checkpoint"), args.opt_flag("--resume")) {
        (Some(c), None) => (c, false),
        (None, Some(r)) => (r, true),
        (Some(_), Some(_)) => {
            return Err(ArgError(
                "give either --checkpoint (fresh) or --resume (continue), not both".into(),
            ))
        }
        (None, None) => {
            return Err(ArgError(
                "audit fleet submit needs --checkpoint run.ndjson (or --resume run.ndjson)"
                    .into(),
            ))
        }
    };
    let weight = args.num_flag("--weight", 1u32)?;
    if weight == 0 {
        return Err(ArgError("--weight must be at least 1".into()));
    }
    // The submitted argv is the normalized result-flag list — the same
    // normalization `generate --checkpoint` journals, so the manager's
    // replay produces byte-identical `run_start` metadata.
    let meta = platform::generate_meta(args);
    args.reject_unknown()?;
    let argv: Vec<String> = meta
        .get("argv")
        .and_then(JsonValue::as_array)
        .unwrap_or(&[])
        .iter()
        .filter_map(|v| v.as_str().map(str::to_string))
        .collect();

    println!("submitting {checkpoint} to {connect}…");
    let (campaign, ok, summary) =
        audit_fleet::submit(&connect, argv, &checkpoint, weight, resume).map_err(core_err)?;
    if !ok {
        return Err(ArgError(format!("campaign {campaign} failed: {summary}")));
    }
    println!("campaign {campaign} finished: {summary}");
    Ok(())
}

/// `audit fleet status`: the manager's per-campaign progress report.
fn status(args: &Args) -> Result<(), ArgError> {
    let connect = args.opt_flag("--connect").ok_or_else(|| {
        ArgError("audit fleet status needs --connect HOST:PORT or unix:/path".into())
    })?;
    args.reject_unknown()?;
    print!("{}", audit_fleet::status(&connect).map_err(core_err)?);
    Ok(())
}

/// `audit fleet metrics`: the manager's plain-text scrape.
fn metrics(args: &Args) -> Result<(), ArgError> {
    let connect = args.opt_flag("--connect").ok_or_else(|| {
        ArgError("audit fleet metrics needs --connect HOST:PORT or unix:/path".into())
    })?;
    args.reject_unknown()?;
    print!("{}", audit_fleet::scrape(&connect).map_err(core_err)?);
    Ok(())
}
