//! A small, dependency-free argument parser.
//!
//! Flags are `--name value` or `--name` (boolean); everything else is a
//! positional argument. Unknown flags are an error, so typos fail loudly
//! rather than silently using defaults.

use std::collections::HashMap;
use std::fmt;

/// Parsed command line: positionals plus flag map.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positionals: Vec<String>,
    flags: HashMap<String, String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// Argument error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Flags that take a value (everything else is boolean).
const VALUE_FLAGS: &[&str] = &[
    "--chip",
    "--threads",
    "--workers",
    "--kind",
    "--out",
    "--iterations",
    "--workload",
    "--stressmark",
    "--volts",
    "--throttle",
    "--cycles",
    "--seed",
    "--cost",
    "--period",
    "--file",
    "--save",
    "--checkpoint",
    "--resume",
    "--builtin",
    "--allow",
    "--deny",
    "--faults",
    "--repeat",
    "--retries",
    "--cycle-budget",
    "--listen",
    "--connect",
    "--min-workers",
    "--window",
    "--heartbeat",
    "--dead-after",
    "--net-faults",
    "--verify-fraction",
    "--connect-for",
    "--connect-retry",
    "--fast-tier-budget",
    "--eval-batch",
    "--objective",
    "--grid-volts",
    "--grid-clocks",
    "--retain",
    "--input",
    "--weight",
    "--campaigns",
];

/// Value flags that may be given more than once; repeats accumulate
/// into one comma-joined value (`--objective droop --objective power`
/// ≡ `--objective droop,power`).
const REPEATABLE_FLAGS: &[&str] = &["--objective"];

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for a value flag with no value.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut it = raw.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let key = format!("--{name}");
                if VALUE_FLAGS.contains(&key.as_str()) {
                    let value = it
                        .next()
                        .ok_or_else(|| ArgError(format!("flag {key} needs a value")))?;
                    match args.flags.get_mut(&key) {
                        Some(prev) if REPEATABLE_FLAGS.contains(&key.as_str()) => {
                            prev.push(',');
                            prev.push_str(&value);
                        }
                        _ => {
                            args.flags.insert(key, value);
                        }
                    }
                } else {
                    args.flags.insert(key, String::from("true"));
                }
            } else {
                args.positionals.push(a);
            }
        }
        Ok(args)
    }

    /// Positional arguments.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// String flag with default.
    pub fn str_flag(&self, name: &str, default: &str) -> String {
        self.consumed.borrow_mut().push(name.to_string());
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Optional string flag.
    pub fn opt_flag(&self, name: &str) -> Option<String> {
        self.consumed.borrow_mut().push(name.to_string());
        self.flags.get(name).cloned()
    }

    /// Boolean flag.
    pub fn bool_flag(&self, name: &str) -> bool {
        self.consumed.borrow_mut().push(name.to_string());
        self.flags.contains_key(name)
    }

    /// Numeric flag with default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the value does not parse.
    pub fn num_flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        self.consumed.borrow_mut().push(name.to_string());
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<T>()
                .map_err(|_| ArgError(format!("flag {name}: cannot parse `{v}`"))),
        }
    }

    /// After a command has read its flags, rejects any flag it never
    /// looked at (typo protection).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] naming the first unknown flag.
    pub fn reject_unknown(&self) -> Result<(), ArgError> {
        let seen = self.consumed.borrow();
        for key in self.flags.keys() {
            if !seen.contains(key) {
                return Err(ArgError(format!("unknown flag {key} for this command")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn positionals_and_flags_separate() {
        let a = parse(&["generate", "--threads", "4", "--fast"]);
        assert_eq!(a.positionals(), ["generate"]);
        assert_eq!(a.num_flag("--threads", 1u32).unwrap(), 4);
        assert!(a.bool_flag("--fast"));
        assert!(!a.bool_flag("--quiet"));
    }

    #[test]
    fn repeated_objective_flags_accumulate() {
        let a = parse(&["--objective", "droop", "--objective", "power"]);
        assert_eq!(a.opt_flag("--objective").as_deref(), Some("droop,power"));
        // Non-repeatable value flags keep last-wins semantics.
        let b = parse(&["--chip", "phenom", "--chip", "bulldozer"]);
        assert_eq!(b.opt_flag("--chip").as_deref(), Some("bulldozer"));
    }

    #[test]
    fn value_flag_without_value_errors() {
        let err = Args::parse(["--out".to_string()]).unwrap_err();
        assert!(err.to_string().contains("--out"));
    }

    #[test]
    fn bad_number_is_reported() {
        let a = parse(&["--threads", "four"]);
        let err = a.num_flag("--threads", 1u32).unwrap_err();
        assert!(err.to_string().contains("four"));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let a = parse(&["--chip", "phenom", "--bogus"]);
        let _ = a.str_flag("--chip", "bulldozer");
        let err = a.reject_unknown().unwrap_err();
        assert!(err.to_string().contains("--bogus"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&[]);
        assert_eq!(a.str_flag("--chip", "bulldozer"), "bulldozer");
        assert_eq!(a.num_flag("--threads", 4u32).unwrap(), 4);
        assert!(a.reject_unknown().is_ok());
    }
}
