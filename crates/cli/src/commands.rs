//! The `audit` subcommands.

use std::fs;
use std::path::Path;

use audit_analyze::{check, Code, Diagnostic, LintConfig, Severity, VerifyTarget};
use audit_core::audit::{Audit, StressmarkRun};
use audit_core::harness::Rig;
use audit_core::journal::{Journal, JournalSink, JournalWriter, NullSink};
use audit_core::minimize::{MinimizeResult, MinimizeSearch};
use audit_core::report::{journal_summary, mv, Table};
use audit_core::resilient::{self, VminResult, VminSearch};
use audit_core::resonance::{self, ResonanceResult};
use audit_core::shmoo::{ShmooResult, ShmooSweep};
use audit_core::AuditError;
use audit_cpu::{ChipConfig, Program};
use audit_measure::json::JsonValue;
use audit_measure::traceio::{self, FsckVerdict};
use audit_net::{run_worker, Broker, BrokerConfig, EvalContext, NetFaultPlan, WorkerOptions};
use audit_stressmark::{manual, nasm, progfile, workloads};

use crate::args::{ArgError, Args};
use crate::platform;

/// Maps a core error to a CLI error.
pub(crate) fn core_err(e: AuditError) -> ArgError {
    ArgError(e.to_string())
}

/// Help text.
pub const USAGE: &str = "\
audit — automated di/dt stressmark generation (AUDIT, MICRO 2012)

USAGE:
  audit resonance  [--chip bulldozer|phenom] [--threads N] [--fast]
      Sweep trivial loops for the platform's resonant period.

  audit generate   [--chip C] [--threads N] [--kind res|ex] [--seed S]
                   [--objective droop|droop-per-amp|sensitive|power|margin]...
                   [--throttle N] [--workers N] [--out file.asm]
                   [--save file.prog] [--iterations N] [--fast]
                   [--checkpoint run.ndjson] [--faults SEED:RATES]
                   [--repeat K] [--retries N] [--cycle-budget N]
                   [--fast-tier-budget N] [--eval-batch N] [--lint-repair]
      Evolve a stressmark; --out writes NASM, --save archives the
      lossless .prog form for later `audit measure --file`.
      --lint-repair re-rolls statically-dead mutations (AUD101/AUD104)
      after breeding, before any simulation; deterministic and
      journaled, so results stay bit-identical across worker counts
      and kill/--resume. Off by default: journals of unrepaired runs
      keep their exact prior bytes.
      --workers sets GA evaluation threads (0 = all cores) and
      --eval-batch co-simulates N genomes per batched sweep; results
      are bit-identical for any worker count or batch width.
      --fast-tier-budget N engages the evaluation cascade: each
      generation, an analytic fast tier ranks the candidates and only
      the top N reach the full simulator (0 = off, the default). The
      budget shapes the search, so it is journaled and restored by
      --resume; for a fixed budget, results stay bit-identical across
      worker counts, batching, and kill/--resume.
      --objective selects the fitness axes and may repeat (or take a
      comma list). One axis is the classic scalar search; two or more
      switch the GA to Pareto mode (NSGA-II non-dominated sort), with
      the per-generation fronts journaled. The droop axis may be
      spelled as a cost variant (droop-per-amp, sensitive). Axes are
      order-normalized before journaling, so --resume is insensitive
      to flag order. (--cost is a deprecated alias for the droop
      variants.)
      --checkpoint journals every generation to an NDJSON file,
      atomically, so a killed run can be continued.
      --faults injects deterministic measurement faults (e.g.
      7:noise=0.002,outlier=0.001,hang=0.01,crash=0.005); --repeat
      takes the MAD-filtered median of K measurements, --retries
      bounds transient-fault retries, --cycle-budget arms a watchdog.
      Fault schedules are seeded per candidate: results stay
      bit-identical across worker counts and kill/--resume.

  audit generate   --resume run.ndjson [--out file.asm] [--save file.prog]
                   [--iterations N] [--distributed [--listen A] ...]
      Continue a killed --checkpoint run. Configuration flags are
      restored from the journal; the journaled generations are
      replayed without re-simulation and the final stressmark is
      bit-identical to an uninterrupted run's. With --distributed the
      continuation evaluates on workers, prefilling any evaluations
      the dead broker had write-ahead-logged to run.ndjson.wal.

  audit serve      [generate flags] [--listen HOST:PORT|unix:/path]
                   [--min-workers N] [--window N]
                   [--heartbeat MS] [--dead-after MS]
                   [--net-faults SEED:drop=P,dup=P,corrupt=P,stall=P,lie=P]
                   [--verify-fraction F]
      `generate`, but fitness evaluations are dispatched to worker
      processes (`audit work`) over TCP or a Unix socket. Equivalent
      to `audit generate --distributed`. Results, journals, and
      checkpoints are byte-identical to a local run for any worker
      count — workers may join or die mid-run; lost work is retried
      deterministically on the survivors. --listen defaults to
      127.0.0.1:0 (the bound port is printed); --min-workers (default
      1) blocks until that many workers join; --window bounds
      in-flight evaluations per worker (default 2). --heartbeat
      (default 1000 ms) paces liveness pings; --dead-after (default
      10000 ms, must exceed --heartbeat) declares a silent worker lost
      and doubles as the dispatch lease. --verify-fraction (0..=1,
      default 0) cross-validates that hash-selected fraction of jobs
      on two workers and evicts any worker whose answer loses the
      vote. --net-faults arms deterministic chaos at the broker's wire
      boundary (drops, duplicates, bit-flips, stalls, byzantine lies
      — see docs/ROBUSTNESS.md); every decision is a pure hash, so a
      chaos campaign replays exactly. None of these knobs touch
      results or journal bytes.

  audit work       --connect HOST:PORT|unix:/path
                   [--connect-for MS] [--connect-retry MS]
      Join a broker and serve fitness evaluations until released. The
      worker learns the chip, operating point, and fitness function
      from the broker — no other flags needed. --connect-for (default
      30000 ms) bounds how long to keep trying the initial connect;
      --connect-retry (default 100 ms) is the base of the worker's
      jittered exponential backoff. A worker severed mid-run (broker
      restart, eviction, network fault) automatically rejoins while
      the broker is reachable and exits cleanly once it is gone.

  audit fleet      serve [--listen HOST:PORT|unix:/path] [--min-workers N]
                   [--campaigns N] [--window N] [--heartbeat MS]
                   [--dead-after MS] [--net-faults SEED:drop=P,…]
                   [--verify-fraction F]
      Host a multi-tenant campaign manager: many concurrent GA
      campaigns fair-share-scheduled (deterministic weighted
      round-robin) over one shared worker pool, with worker-side eval
      caches shared across campaigns. Workers join exactly as for
      `serve` (`audit work --connect`). Each campaign's journal is
      byte-identical to its solo run regardless of co-tenants, worker
      count, chaos, or manager restarts (see docs/FLEET.md).
      --campaigns N exits after N campaigns complete (0 = serve
      forever); the remaining knobs match `audit serve`, applied
      per campaign.

  audit fleet      submit --connect ADDR [--weight N]
                   (--checkpoint run.ndjson | --resume run.ndjson)
                   [generate flags]
      Submit a campaign to a fleet manager and block until it
      finishes. Generate flags (--chip, --seed, --objective, …) shape
      the campaign exactly as for `audit generate`; the checkpoint
      path is resolved on the manager's filesystem. --weight (default
      1) is the campaign's fair-share weight; --resume continues a
      checkpoint from a previous (possibly killed) manager.

  audit fleet      (status | metrics) --connect ADDR
      Fetch the manager's per-campaign progress report or its
      plain-text metrics scrape (same format as the broker's
      `audit serve` metrics endpoint).

  audit journal    fsck <run.ndjson> [--repair]
      Classify a checkpoint journal or dispatch WAL: clean, torn tail
      (the ordinary crash signature --resume already tolerates), or
      corrupt interior (bit rot --resume refuses). Reports the longest
      valid prefix and a per-kind record census. With --repair the
      file is atomically truncated to that prefix, reviving the
      checkpoint for --resume. Exits non-zero if the file is (still)
      not resumable.

  audit measure    (--workload NAME | --stressmark NAME | --file X.prog)
                   [--threads N] [--chip C] [--volts V] [--throttle N]
                   [--cycles N] [--fast] [--faults SEED:RATES]
                   [--repeat K] [--retries N] [--cycle-budget N]
      Run a workload and report droop, power, and IPC. The resilience
      flags behave as in `generate`.

  audit failure    (--workload NAME | --stressmark NAME | --file X.prog)
                   [--threads N] [--chip C] [--throttle N] [--fast]
                   [--faults SEED:RATES] [--retries N] [--cycle-budget N]
                   [--checkpoint run.ndjson]
      Bisect Vdd to the failure point (12.5 mV resolution). With
      --checkpoint every probed voltage is journaled write-ahead, so a
      crashed search resumes without repeating completed probes.

  audit failure    --resume run.ndjson
      Continue a killed --checkpoint Vmin search. Configuration is
      restored from the journal; settled probes are replayed and the
      answer is bit-identical to an uninterrupted search.

  audit shmoo      (--workload NAME | --stressmark NAME | --file X.prog)
                   [--threads N] [--chip C] [--throttle N] [--fast]
                   [--grid-volts V1,V2,..] [--grid-clocks HZ1,HZ2,..]
                   [--faults SEED:RATES] [--retries N] [--cycle-budget N]
                   [--checkpoint run.ndjson]
      Sweep the voltage × frequency plane: at every operating point,
      bisect Vdd to the failure point and report the safe margin. The
      grids default to ±5% of nominal voltage and ±12.5% of nominal
      clock. With --checkpoint every point and probe is journaled
      write-ahead, so a sweep killed mid-plane resumes without
      repeating settled points.

  audit shmoo      --resume run.ndjson
      Continue a killed --checkpoint shmoo sweep. The grid and
      workload are restored from the journal; done points replay, the
      interrupted point resumes its own bisection trail, and the
      surface is bit-identical to an uninterrupted sweep.

  audit minimize   (<witness.prog> | <generate-ckpt.ndjson>) [--retain F]
                   [--threads N] [--chip C] [--volts V] [--throttle N]
                   [--cycles N] [--fast] [--checkpoint run.ndjson]
                   [--out kernel.prog]
      Delta-debug an evolved witness down to a 1-minimal kernel that
      still retains --retain (default 0.90) of the full program's peak
      droop on the simulator. A *finished* `generate` checkpoint may
      be given directly: the winning stressmark and its platform are
      reconstructed from the journal (a .prog file instead takes the
      platform flags from the command line). With --checkpoint every
      probe is journaled write-ahead, so a killed minimization resumes
      without repeating settled probes; --out archives the minimized
      kernel in .prog form, small enough to read, re-lint, and check
      in as a regression corpus.

  audit minimize   --resume run.ndjson [--out kernel.prog]
      Continue a killed --checkpoint minimization. The input and knobs
      are restored from the journal; settled probes are replayed and
      the kernel is bit-identical to an uninterrupted run's.

  audit lint       (<file.prog> | --builtin NAME | --all-builtins)
                   [--chip bulldozer|phenom] [--json] [--deny-warnings]
                   [--allow AUD###[,..]] [--deny AUD###[,..]]
      Statically verify and lint a stressmark. File diagnostics carry
      source line numbers; --chip also checks chip capabilities (e.g.
      FMA on Phenom). Exits non-zero on any error-level finding.

  audit list
      List available workloads and manual stressmarks.

  audit spice      [--chip C] [--out file.sp] [--cycles N]
      Capture a current trace and emit a SPICE deck of the PDN.
";

/// `audit resonance`.
pub fn resonance(args: &Args) -> Result<(), ArgError> {
    let rig = platform::rig_from(args)?;
    let threads = args.num_flag("--threads", 4usize)?;
    let spec = platform::spec_from(args)?;
    args.reject_unknown()?;

    let result = resonance::find_resonance(&rig, threads, resonance::default_periods(), spec);
    let mut t = Table::new(vec!["period (cycles)", "frequency (MHz)", "max droop"]);
    for (p, d) in &result.samples {
        t.row(vec![
            p.to_string(),
            format!("{:.0}", rig.chip.clock_hz / *p as f64 / 1e6),
            mv(*d),
        ]);
    }
    println!("{t}");
    println!(
        "resonance: {} cycles ({:.0} MHz), droop {}",
        result.period_cycles,
        result.frequency_hz / 1e6,
        mv(result.peak_droop())
    );
    Ok(())
}

/// `audit generate`.
pub fn generate(args: &Args) -> Result<(), ArgError> {
    let distributed = args.bool_flag("--distributed");
    generate_inner(args, distributed)
}

/// `audit serve`: `generate` with the distributed broker always on.
pub fn serve(args: &Args) -> Result<(), ArgError> {
    generate_inner(args, true)
}

fn generate_inner(args: &Args, distributed: bool) -> Result<(), ArgError> {
    if let Some(journal_path) = args.opt_flag("--resume") {
        return resume_generate(args, &journal_path, distributed);
    }
    let rig = platform::rig_from(args)?;
    let threads = args.num_flag("--threads", 4usize)?;
    let kind = args.str_flag("--kind", "res");
    let opts = platform::options_from(args)?;
    let out = args.opt_flag("--out");
    let save = args.opt_flag("--save");
    let iterations = args.num_flag("--iterations", 100_000_000u64)?;
    let checkpoint = args.opt_flag("--checkpoint");
    let meta = platform::generate_meta(args);
    let dist = distributed.then(|| dist_flags(args)).transpose()?;
    args.reject_unknown()?;

    let audit = Audit::new(rig, opts);
    let run = match (&checkpoint, &dist) {
        (Some(path), _) => {
            let mut writer =
                JournalWriter::create(path, "generate", meta).map_err(core_err)?;
            let run = match &dist {
                Some(dist) => run_distributed(
                    &audit,
                    args,
                    dist,
                    threads,
                    &kind,
                    &mut writer,
                    None,
                    Some(path),
                )?,
                None => match kind.as_str() {
                    "res" => audit.generate_resonant_journaled(threads, &mut writer),
                    "ex" => audit.generate_excitation_journaled(threads, &mut writer),
                    other => {
                        return Err(ArgError(format!("unknown kind `{other}` (res | ex)")))
                    }
                }
                .map_err(core_err)?,
            };
            writer.finish().map_err(core_err)?;
            println!("checkpoint: {path} ({} records)", writer.len());
            run
        }
        (None, Some(dist)) => {
            run_distributed(&audit, args, dist, threads, &kind, &mut NullSink, None, None)?
        }
        (None, None) => match kind.as_str() {
            "res" => audit.generate_resonant(threads),
            "ex" => audit.generate_excitation(threads),
            other => return Err(ArgError(format!("unknown kind `{other}` (res | ex)"))),
        },
    };
    print_run(&run, out, save, iterations)
}

/// `audit work`: serve evaluations to a broker until released.
pub fn work(args: &Args) -> Result<(), ArgError> {
    let connect = args
        .opt_flag("--connect")
        .ok_or_else(|| ArgError("audit work needs --connect HOST:PORT or unix:/path".into()))?;
    let connect_for = args.num_flag("--connect-for", 30_000u64)?;
    let connect_retry = args.num_flag("--connect-retry", 100u64)?;
    if connect_retry == 0 {
        return Err(ArgError("--connect-retry must be at least 1 ms".into()));
    }
    args.reject_unknown()?;

    let opts = WorkerOptions {
        connect_for: std::time::Duration::from_millis(connect_for),
        connect_retry: std::time::Duration::from_millis(connect_retry),
        // Decorrelate a fleet's retry storms; the schedule of any one
        // worker process stays reproducible.
        jitter_salt: u64::from(std::process::id()),
        // A worker process severed mid-run (broker restart, eviction,
        // chaos) rejoins while the broker is reachable.
        rejoin: true,
        max_evals: None,
    };
    println!("worker connecting to {connect}…");
    let stats = run_worker(&connect, &opts).map_err(core_err)?;
    println!(
        "served {} evaluation(s); {}",
        stats.evaluations,
        if stats.clean_exit {
            "released by broker"
        } else {
            "session ended"
        }
    );
    Ok(())
}

/// `audit journal`: offline journal maintenance. Currently one
/// subcommand, `fsck`.
pub fn journal(args: &Args) -> Result<(), ArgError> {
    match (
        args.positionals().get(1).map(String::as_str),
        args.positionals().get(2),
    ) {
        (Some("fsck"), Some(path)) => journal_fsck(args, path),
        (Some(other), _) if other != "fsck" => Err(ArgError(format!(
            "unknown journal subcommand `{other}` (expected `fsck`)"
        ))),
        _ => Err(ArgError(
            "usage: audit journal fsck <run.ndjson> [--repair]".into(),
        )),
    }
}

/// `audit journal fsck`: classify (and optionally repair) a checkpoint
/// journal or dispatch WAL.
fn journal_fsck(args: &Args, path: &str) -> Result<(), ArgError> {
    let repair = args.bool_flag("--repair");
    args.reject_unknown()?;

    let report = if repair {
        traceio::fsck_repair(path)
    } else {
        traceio::fsck(path)
    }
    .map_err(core_err)?;

    let verdict = match report.verdict {
        FsckVerdict::Clean => "clean".to_string(),
        FsckVerdict::TornTail => "torn tail (crash mid-append; --resume drops it)".to_string(),
        FsckVerdict::CorruptInterior { line } => {
            format!("corrupt interior (first damaged line: {line})")
        }
    };
    println!("{path}: {verdict}");
    println!(
        "  valid prefix: {} of {} bytes, {} record(s)",
        report.valid_bytes, report.total_bytes, report.records
    );
    let mut t = Table::new(vec!["kind", "records"]);
    for (kind, n) in &report.kind_counts {
        t.row(vec![kind.clone(), n.to_string()]);
    }
    if report.records > 0 {
        println!("{t}");
    }
    if repair && report.verdict != FsckVerdict::Clean {
        println!(
            "repaired: truncated to the {}-byte valid prefix",
            report.valid_bytes
        );
    }
    if !repair && !report.resumable() {
        return Err(ArgError(format!(
            "{path} is not resumable; re-run with --repair to truncate \
             it to its valid prefix"
        )));
    }
    Ok(())
}

/// The distribution flags (`--listen`, `--min-workers`, `--window`,
/// `--heartbeat`, `--dead-after`, `--verify-fraction`, `--net-faults`).
/// Deliberately *not* recorded in the checkpoint metadata: they are
/// result-neutral, so a local and a distributed run of the same
/// configuration produce byte-identical journals — including a run
/// under chaos, whose defenses (re-dispatch, cross-validation,
/// eviction) converge on the same bytes.
struct DistFlags {
    listen: String,
    min_workers: usize,
    window: usize,
    heartbeat: std::time::Duration,
    dead_after: std::time::Duration,
    verify_fraction: f64,
    chaos: NetFaultPlan,
}

fn dist_flags(args: &Args) -> Result<DistFlags, ArgError> {
    let heartbeat = args.num_flag("--heartbeat", 1000u64)?;
    let dead_after = args.num_flag("--dead-after", 10_000u64)?;
    if heartbeat == 0 {
        return Err(ArgError("--heartbeat must be at least 1 ms".into()));
    }
    if dead_after <= heartbeat {
        return Err(ArgError(format!(
            "--dead-after ({dead_after} ms) must exceed --heartbeat ({heartbeat} ms); \
             a worker must miss at least one ping before it is declared lost"
        )));
    }
    let verify_fraction = args.num_flag("--verify-fraction", 0.0f64)?;
    if !(0.0..=1.0).contains(&verify_fraction) {
        return Err(ArgError(format!(
            "--verify-fraction must be within 0..=1, got {verify_fraction}"
        )));
    }
    let chaos = match args.opt_flag("--net-faults") {
        Some(spec) => NetFaultPlan::parse(&spec).map_err(core_err)?,
        None => NetFaultPlan::disabled(),
    };
    Ok(DistFlags {
        listen: args.str_flag("--listen", "127.0.0.1:0"),
        min_workers: args.num_flag("--min-workers", 1usize)?,
        window: args.num_flag("--window", 2usize)?,
        heartbeat: std::time::Duration::from_millis(heartbeat),
        dead_after: std::time::Duration::from_millis(dead_after),
        verify_fraction,
        chaos,
    })
}

/// The distributed `generate` driver: local resonance phase, then a
/// broker dispatching GA evaluations to `audit work` processes. `plat`
/// carries the platform flags (`--chip`, `--volts`, `--throttle`) — on
/// resume those come from the journal's saved argv, not the current
/// command line. With a checkpoint, dispatch is write-ahead-logged to
/// `<checkpoint>.wal`; the WAL is deleted once the run completes.
#[allow(clippy::too_many_arguments)]
fn run_distributed(
    audit: &Audit,
    plat: &Args,
    dist: &DistFlags,
    threads: usize,
    kind: &str,
    sink: &mut dyn JournalSink,
    resume: Option<&Journal>,
    wal_base: Option<&str>,
) -> Result<StressmarkRun, ArgError> {
    // The resonance sweep runs locally: it is cheap next to the GA, and
    // the broker needs its result to describe the fitness function to
    // workers. On resume a completed sweep is decoded from the journal.
    let resonance = match resume.and_then(|j| j.phase_payload("resonance")) {
        Some(payload) => ResonanceResult::from_json(payload).map_err(core_err)?,
        None => audit.journaled_resonance(threads, sink).map_err(core_err)?,
    };
    let (fspec, name, seed_miss_load) = match kind {
        "res" => (
            audit.resonant_fitness_spec(threads, resonance.period_cycles),
            format!("A-Res-{threads}T"),
            false,
        ),
        "ex" => (
            audit.excitation_fitness_spec(threads),
            format!("A-Ex-{threads}T"),
            true,
        ),
        other => return Err(ArgError(format!("unknown kind `{other}` (res | ex)"))),
    };
    let ctx = eval_context(plat, fspec)?;
    let cfg = BrokerConfig {
        seed: audit.options().ga.seed,
        window: dist.window.max(1),
        heartbeat: dist.heartbeat,
        dead_after: dist.dead_after,
        verify_fraction: dist.verify_fraction,
        chaos: dist.chaos,
        ..BrokerConfig::default()
    };
    let mut broker = Broker::bind(&dist.listen, &ctx, cfg).map_err(core_err)?;
    if let Some(base) = wal_base {
        let wal_path = format!("{base}.wal");
        broker.attach_wal(Path::new(&wal_path)).map_err(core_err)?;
    }
    println!("broker listening on {}", broker.addr());
    println!("  join with: audit work --connect {}", broker.addr());
    if dist.min_workers > 0 {
        println!("waiting for {} worker(s)…", dist.min_workers);
        broker.wait_for_workers(dist.min_workers).map_err(core_err)?;
    }
    let ga_resume = resume.filter(|j| j.last_ga_section().is_some());
    let run = audit
        .evolve_dispatched(
            &name,
            &fspec,
            resonance,
            seed_miss_load,
            &mut broker,
            sink,
            ga_resume,
        )
        .map_err(core_err)?;
    broker.discard_wal();
    broker.shutdown();
    Ok(run)
}

/// Builds the worker-setup context from the platform flags.
pub(crate) fn eval_context(
    plat: &Args,
    fspec: audit_core::FitnessSpec,
) -> Result<EvalContext, ArgError> {
    let volts = match plat.opt_flag("--volts") {
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| ArgError(format!("--volts: cannot parse `{v}`")))?,
        ),
        None => None,
    };
    let throttle = match plat.opt_flag("--throttle") {
        Some(cap) => Some(
            cap.parse::<u32>()
                .map_err(|_| ArgError(format!("--throttle: cannot parse `{cap}`")))?,
        ),
        None => None,
    };
    let fast_tier_budget = match plat.opt_flag("--fast-tier-budget") {
        Some(b) => b
            .parse::<usize>()
            .map_err(|_| ArgError(format!("--fast-tier-budget: cannot parse `{b}`")))?,
        None => 0,
    };
    Ok(EvalContext {
        chip: plat.str_flag("--chip", "bulldozer"),
        volts,
        throttle,
        spec: fspec,
        fast_tier_budget,
    })
}

/// `audit generate --resume <journal>`: reconstructs the run's
/// configuration from the journal's `run_start` metadata, replays the
/// journaled work without re-simulation, and finishes the run live —
/// the result is bit-identical to an uninterrupted run's.
fn resume_generate(args: &Args, journal_path: &str, distributed: bool) -> Result<(), ArgError> {
    let out = args.opt_flag("--out");
    let save = args.opt_flag("--save");
    let iterations = args.num_flag("--iterations", 100_000_000u64)?;
    let dist = distributed.then(|| dist_flags(args)).transpose()?;
    args.reject_unknown()?;

    let journal = Journal::load(journal_path).map_err(core_err)?;
    if journal.mode() != Some("generate") {
        return Err(ArgError(format!(
            "{journal_path}: not a `generate` checkpoint (mode {:?})",
            journal.mode().unwrap_or("<none>")
        )));
    }
    let meta = journal
        .meta()
        .ok_or_else(|| ArgError(format!("{journal_path}: journal has no run_start record")))?;
    let saved = platform::args_from_meta(meta)?;
    let rig = platform::rig_from(&saved)?;
    let threads = saved.num_flag("--threads", 4usize)?;
    let kind = saved.str_flag("--kind", "res");
    let opts = platform::options_from(&saved)?;

    println!("resuming {journal_path}:");
    print!("{}", journal_summary(&journal));
    let complete = journal.is_complete();

    let mut writer = JournalWriter::resume(journal_path).map_err(core_err)?;
    let audit = Audit::new(rig, opts);
    let run = match &dist {
        Some(dist) => run_distributed(
            &audit,
            &saved,
            dist,
            threads,
            &kind,
            &mut writer,
            Some(&journal),
            Some(journal_path),
        )?,
        None => match kind.as_str() {
            "res" => audit.resume_resonant(&journal, threads, &mut writer),
            "ex" => audit.resume_excitation(&journal, threads, &mut writer),
            other => return Err(ArgError(format!("journal has unknown kind `{other}`"))),
        }
        .map_err(core_err)?,
    };
    if !complete {
        writer.finish().map_err(core_err)?;
    }
    println!("checkpoint: {journal_path} ({} records)", writer.len());
    print_run(&run, out, save, iterations)
}

/// Prints a finished run and writes its `--out` / `--save` artifacts.
fn print_run(
    run: &StressmarkRun,
    out: Option<String>,
    save: Option<String>,
    iterations: u64,
) -> Result<(), ArgError> {
    println!("{}:", run.name);
    println!(
        "  resonance    : {} cycles ({:.0} MHz)",
        run.resonance.period_cycles,
        run.resonance.frequency_hz / 1e6
    );
    println!("  best droop   : {}", mv(run.best_droop));
    println!(
        "  GA           : {} generations, {} simulations + {} cache hits ({:.0}% memoized)",
        run.ga.generations_run,
        run.ga.evaluations,
        run.ga.cache_hits,
        100.0 * run.ga.telemetry.cache_hit_rate()
    );
    println!(
        "  GA wall time : {:.2} s on {} worker(s), {:.0} evals/s",
        run.ga.telemetry.total_wall_s,
        run.ga.telemetry.threads,
        run.ga.telemetry.evals_per_second()
    );
    println!(
        "  loop         : {} instructions ({} HP + {} LP NOPs)",
        run.program.len(),
        run.kernel.hp().len(),
        run.kernel.lp_nops()
    );
    if let Some(front) = &run.ga.pareto_front {
        println!("  pareto front : {} non-dominated genome(s)", front.len());
        for member in front.iter().take(5) {
            let axes: Vec<String> =
                member.objectives.0.iter().map(|x| format!("{x:.4}")).collect();
            println!("                 [{}]", axes.join(", "));
        }
        if front.len() > 5 {
            println!("                 … {} more", front.len() - 5);
        }
    }
    if run.resilience.evaluations > 0 {
        println!(
            "  resilience   : {} eval(s), {} retry(ies), {} quarantined, backoff {} cycles",
            run.resilience.evaluations,
            run.resilience.retries,
            run.resilience.quarantined,
            run.resilience.backoff_cycles
        );
    }

    if let Some(path) = out {
        let asm = nasm::emit(&run.program, iterations);
        fs::write(&path, asm).map_err(|e| ArgError(format!("writing {path}: {e}")))?;
        println!("  wrote        : {path}");
    }
    if let Some(path) = save {
        let text = audit_stressmark::progfile::emit(&run.program);
        fs::write(&path, text).map_err(|e| ArgError(format!("writing {path}: {e}")))?;
        println!("  saved        : {path}");
    }
    Ok(())
}

/// `audit measure`.
pub fn measure(args: &Args) -> Result<(), ArgError> {
    let rig = platform::rig_from(args)?;
    let threads = args.num_flag("--threads", 4usize)?;
    let spec = platform::spec_from(args)?;
    let policy = platform::policy_from(args)?;
    let program = platform::program_from(args)?;
    args.reject_unknown()?;

    let programs = vec![program.clone(); threads];
    println!("{} × {threads}T on {}:", program.name(), rig.chip.name);
    let m = if policy.is_noop() {
        rig.measure_aligned(&programs, spec)
    } else {
        let key = resilient::program_key(&programs);
        let offsets = vec![0; threads];
        let outcome = policy.measure(&rig, &programs, &offsets, spec, key);
        println!(
            "  resilience   : {} attempt(s), {} of {} repeats kept, backoff {} cycles",
            outcome.attempts, outcome.repeats_kept, policy.repeat, outcome.backoff_cycles
        );
        match outcome.measurement {
            Some(m) => m,
            None => {
                println!(
                    "  quarantined  : no clean measurement in {} attempts",
                    outcome.attempts
                );
                return Ok(());
            }
        }
    };
    println!("  max droop    : {}", mv(m.max_droop()));
    println!("  overshoot    : {}", mv(m.stats.overshoot()));
    println!("  mean current : {:.1} A", m.mean_amps);
    println!("  IPC (chip)   : {:.2}", m.ipc);
    println!("  droop events : {}", m.trigger_events);
    println!("  failed       : {}", m.failed);
    Ok(())
}

/// `audit failure`: the crash-tolerant Vmin bisection.
pub fn failure(args: &Args) -> Result<(), ArgError> {
    if let Some(journal_path) = args.opt_flag("--resume") {
        return resume_failure(args, &journal_path);
    }
    let rig = platform::rig_from(args)?;
    let threads = args.num_flag("--threads", 4usize)?;
    let spec = platform::spec_from(args)?;
    let policy = platform::policy_from(args)?;
    let program = platform::program_from(args)?;
    let checkpoint = args.opt_flag("--checkpoint");
    let meta = platform::failure_meta(args);
    args.reject_unknown()?;

    let programs = vec![program.clone(); threads];
    let offsets = vec![0; threads];
    let search = VminSearch::paper(rig.pdn.nominal_voltage(), policy);
    println!(
        "bisecting from {:.4} V to {:.4} mV resolution…",
        search.v_start,
        search.resolution * 1e3
    );
    let result = match &checkpoint {
        Some(path) => {
            let mut writer = JournalWriter::create(path, "failure", meta).map_err(core_err)?;
            let result = search
                .run(&rig, &programs, &offsets, spec, &mut writer)
                .map_err(core_err)?;
            writer.finish().map_err(core_err)?;
            println!("checkpoint: {path} ({} records)", writer.len());
            result
        }
        None => search
            .run(&rig, &programs, &offsets, spec, &mut NullSink)
            .map_err(core_err)?,
    };
    print_vmin(program.name(), threads, &result);
    Ok(())
}

/// `audit failure --resume <journal>`: restores the search from its
/// `run_start` metadata, replays settled probes, and finishes live.
fn resume_failure(args: &Args, journal_path: &str) -> Result<(), ArgError> {
    args.reject_unknown()?;

    let journal = Journal::load(journal_path).map_err(core_err)?;
    if journal.mode() != Some("failure") {
        return Err(ArgError(format!(
            "{journal_path}: not a `failure` checkpoint (mode {:?})",
            journal.mode().unwrap_or("<none>")
        )));
    }
    let meta = journal
        .meta()
        .ok_or_else(|| ArgError(format!("{journal_path}: journal has no run_start record")))?;
    let saved = platform::args_from_meta(meta)?;
    let rig = platform::rig_from(&saved)?;
    let threads = saved.num_flag("--threads", 4usize)?;
    let spec = platform::spec_from(&saved)?;
    let policy = platform::policy_from(&saved)?;
    let program = platform::program_from(&saved)?;

    println!("resuming {journal_path}:");
    print!("{}", journal_summary(&journal));
    let complete = journal.is_complete();

    let programs = vec![program.clone(); threads];
    let offsets = vec![0; threads];
    let search = VminSearch::paper(rig.pdn.nominal_voltage(), policy);
    let mut writer = JournalWriter::resume(journal_path).map_err(core_err)?;
    let result = search
        .resume_from(&journal, &rig, &programs, &offsets, spec, &mut writer)
        .map_err(core_err)?;
    if !complete {
        writer.finish().map_err(core_err)?;
    }
    println!("checkpoint: {journal_path} ({} records)", writer.len());
    print_vmin(program.name(), threads, &result);
    Ok(())
}

/// Prints a finished Vmin search.
fn print_vmin(name: &str, threads: usize, result: &VminResult) {
    match result.v_fail {
        Some(vf) => println!("{name} × {threads}T fails at {vf:.4} V"),
        None => println!("{name} × {threads}T never failed above the search floor"),
    }
    println!(
        "  probes       : {} ({} live, {} replayed)",
        result.steps,
        result.live_steps,
        result.steps - result.live_steps
    );
    if result.crashes > 0 || result.retries > 0 || result.quarantined > 0 {
        println!(
            "  resilience   : {} crash(es) survived, {} retry(ies), {} quarantined step(s)",
            result.crashes, result.retries, result.quarantined
        );
    }
}

/// `audit minimize`: the delta-debugged witness minimizer.
pub fn minimize(args: &Args) -> Result<(), ArgError> {
    if let Some(journal_path) = args.opt_flag("--resume") {
        return resume_minimize(args, &journal_path);
    }
    let input = args
        .positionals()
        .get(1)
        .cloned()
        .or_else(|| args.opt_flag("--input"))
        .ok_or_else(|| {
            ArgError("audit minimize needs an input: a .prog file or a generate checkpoint".into())
        })?;
    let meta = platform::minimize_meta(args, &input);
    let out = args.opt_flag("--out");
    let checkpoint = args.opt_flag("--checkpoint");
    let (program, search, rig) = minimize_setup(args, &input)?;
    args.reject_unknown()?;

    println!(
        "minimizing {} ({} instructions), keeping ≥{:.0}% of baseline droop…",
        program.name(),
        program.len(),
        search.retain * 100.0
    );
    let result = match &checkpoint {
        Some(path) => {
            let mut writer = JournalWriter::create(path, "minimize", meta).map_err(core_err)?;
            let result = search.run(&rig, &program, &mut writer).map_err(core_err)?;
            writer.finish().map_err(core_err)?;
            println!("checkpoint: {path} ({} records)", writer.len());
            result
        }
        None => search
            .run(&rig, &program, &mut NullSink)
            .map_err(core_err)?,
    };
    print_minimize(&program, search.threads, &result, out)
}

/// `audit minimize --resume <journal>`: restores the input and knobs
/// from the checkpoint's `run_start` metadata, replays settled probes,
/// and finishes the search live.
fn resume_minimize(args: &Args, journal_path: &str) -> Result<(), ArgError> {
    let out = args.opt_flag("--out");
    args.reject_unknown()?;

    let journal = Journal::load(journal_path).map_err(core_err)?;
    if journal.mode() != Some("minimize") {
        return Err(ArgError(format!(
            "{journal_path}: not a `minimize` checkpoint (mode {:?})",
            journal.mode().unwrap_or("<none>")
        )));
    }
    let meta = journal
        .meta()
        .ok_or_else(|| ArgError(format!("{journal_path}: journal has no run_start record")))?;
    let saved = platform::args_from_meta(meta)?;
    let input = saved
        .opt_flag("--input")
        .ok_or_else(|| ArgError(format!("{journal_path}: checkpoint records no input path")))?;
    let (program, search, rig) = minimize_setup(&saved, &input)?;

    println!("resuming {journal_path}:");
    print!("{}", journal_summary(&journal));
    let complete = journal.is_complete();

    let mut writer = JournalWriter::resume(journal_path).map_err(core_err)?;
    let result = search
        .resume_from(&journal, &rig, &program, &mut writer)
        .map_err(core_err)?;
    if !complete {
        writer.finish().map_err(core_err)?;
    }
    println!("checkpoint: {journal_path} ({} records)", writer.len());
    print_minimize(&program, search.threads, &result, out)
}

/// Builds the (witness, search, rig) triple from the minimize input:
/// either a finished `generate` checkpoint — the evolved stressmark
/// and the platform it was evolved on are reconstructed from the
/// journal — or a `.prog` file, with the platform taken from the
/// command line. The probe spec always comes from the command line
/// (`--fast` / `--cycles`), so probe cost is the caller's choice.
fn minimize_setup(args: &Args, input: &str) -> Result<(Program, MinimizeSearch, Rig), ArgError> {
    let retain = args.num_flag("--retain", 0.9f64)?;
    let spec = platform::spec_from(args)?;
    let text =
        fs::read_to_string(input).map_err(|e| ArgError(format!("reading {input}: {e}")))?;
    let (program, threads, rig) = if text.trim_start().starts_with('{') {
        let journal = Journal::load(input).map_err(core_err)?;
        if journal.mode() != Some("generate") {
            return Err(ArgError(format!(
                "{input}: not a `generate` checkpoint (mode {:?})",
                journal.mode().unwrap_or("<none>")
            )));
        }
        if !journal.is_complete() {
            return Err(ArgError(format!(
                "{input}: generate run is incomplete — finish it with \
                 `audit generate --resume {input}` first"
            )));
        }
        let meta = journal
            .meta()
            .ok_or_else(|| ArgError(format!("{input}: journal has no run_start record")))?;
        let saved = platform::args_from_meta(meta)?;
        let rig = platform::rig_from(&saved)?;
        let threads = saved.num_flag("--threads", 4usize)?;
        let kind = saved.str_flag("--kind", "res");
        let opts = platform::options_from(&saved)?;
        let audit = Audit::new(rig.clone(), opts);
        let run = match kind.as_str() {
            "res" => audit.resume_resonant(&journal, threads, &mut NullSink),
            "ex" => audit.resume_excitation(&journal, threads, &mut NullSink),
            other => return Err(ArgError(format!("journal has unknown kind `{other}`"))),
        }
        .map_err(core_err)?;
        (run.program, threads, rig)
    } else {
        let program = progfile::parse(&text).map_err(|e| ArgError(format!("{input}: {e}")))?;
        let rig = platform::rig_from(args)?;
        let threads = args.num_flag("--threads", 4usize)?;
        (program, threads, rig)
    };
    let mut search = MinimizeSearch::new(threads, spec);
    search.retain = retain;
    search.validate().map_err(core_err)?;
    Ok((program, search, rig))
}

/// Prints a finished minimization and writes the `--out` kernel.
fn print_minimize(
    original: &Program,
    threads: usize,
    result: &MinimizeResult,
    out: Option<String>,
) -> Result<(), ArgError> {
    println!("{} × {threads}T minimized:", original.name());
    println!(
        "  baseline     : {} over {} instructions",
        mv(result.baseline),
        original.len()
    );
    println!(
        "  minimized    : {} over {} instructions ({:.1}% droop retained)",
        mv(result.droop),
        result.program.len(),
        100.0 * result.droop / result.baseline
    );
    println!(
        "  probes       : {} ({} live, {} replayed)",
        result.steps,
        result.live_steps,
        result.steps - result.live_steps
    );
    if let Some(path) = out {
        let text = progfile::emit(&result.program);
        fs::write(&path, text).map_err(|e| ArgError(format!("writing {path}: {e}")))?;
        println!("  saved        : {path}");
    }
    Ok(())
}

/// `audit shmoo`: sweep the V/F plane, running a Vmin search at every
/// operating point, and report the safe-margin surface.
pub fn shmoo(args: &Args) -> Result<(), ArgError> {
    if let Some(journal_path) = args.opt_flag("--resume") {
        return resume_shmoo(args, &journal_path);
    }
    let rig = platform::rig_from(args)?;
    let threads = args.num_flag("--threads", 4usize)?;
    let spec = platform::spec_from(args)?;
    let policy = platform::policy_from(args)?;
    let program = platform::program_from(args)?;
    let sweep = shmoo_sweep(args, &rig, spec, policy)?;
    let checkpoint = args.opt_flag("--checkpoint");
    let meta = platform::shmoo_meta(args);
    args.reject_unknown()?;

    let programs = vec![program.clone(); threads];
    let offsets = vec![0; threads];
    println!(
        "sweeping {} × {} operating points…",
        sweep.volts.len(),
        sweep.clocks_hz.len()
    );
    let result = match &checkpoint {
        Some(path) => {
            let mut writer = JournalWriter::create(path, "shmoo", meta).map_err(core_err)?;
            let result = sweep
                .run(&rig, &programs, &offsets, &mut writer)
                .map_err(core_err)?;
            writer.finish().map_err(core_err)?;
            println!("checkpoint: {path} ({} records)", writer.len());
            result
        }
        None => sweep
            .run(&rig, &programs, &offsets, &mut NullSink)
            .map_err(core_err)?,
    };
    print_shmoo(program.name(), threads, &sweep, &result);
    Ok(())
}

/// `audit shmoo --resume <journal>`: restores the sweep from its
/// `run_start` metadata, replays done points, and finishes the plane.
fn resume_shmoo(args: &Args, journal_path: &str) -> Result<(), ArgError> {
    args.reject_unknown()?;

    let journal = Journal::load(journal_path).map_err(core_err)?;
    if journal.mode() != Some("shmoo") {
        return Err(ArgError(format!(
            "{journal_path}: not a `shmoo` checkpoint (mode {:?})",
            journal.mode().unwrap_or("<none>")
        )));
    }
    let meta = journal
        .meta()
        .ok_or_else(|| ArgError(format!("{journal_path}: journal has no run_start record")))?;
    let saved = platform::args_from_meta(meta)?;
    let rig = platform::rig_from(&saved)?;
    let threads = saved.num_flag("--threads", 4usize)?;
    let spec = platform::spec_from(&saved)?;
    let policy = platform::policy_from(&saved)?;
    let program = platform::program_from(&saved)?;
    let sweep = shmoo_sweep(&saved, &rig, spec, policy)?;

    println!("resuming {journal_path}:");
    print!("{}", journal_summary(&journal));
    let complete = journal.is_complete();

    let programs = vec![program.clone(); threads];
    let offsets = vec![0; threads];
    let mut writer = JournalWriter::resume(journal_path).map_err(core_err)?;
    let result = sweep
        .resume_from(&journal, &rig, &programs, &offsets, &mut writer)
        .map_err(core_err)?;
    if !complete {
        writer.finish().map_err(core_err)?;
    }
    println!("checkpoint: {journal_path} ({} records)", writer.len());
    print_shmoo(program.name(), threads, &sweep, &result);
    Ok(())
}

/// Builds the sweep from `--grid-volts`/`--grid-clocks`, defaulting to
/// ±5% of the rig's nominal voltage and ±12.5% of its nominal clock.
fn shmoo_sweep(
    args: &Args,
    rig: &audit_core::harness::Rig,
    spec: audit_core::MeasureSpec,
    policy: audit_core::MeasurePolicy,
) -> Result<ShmooSweep, ArgError> {
    let v = rig.pdn.nominal_voltage();
    let f = rig.chip.clock_hz;
    let volts = platform::grid_axis(args, "--grid-volts", &[0.95 * v, v, 1.05 * v])?;
    let clocks = platform::grid_axis(args, "--grid-clocks", &[0.875 * f, f, 1.125 * f])?;
    let sweep = ShmooSweep::grid(volts, clocks, spec, policy);
    sweep.validate().map_err(core_err)?;
    Ok(sweep)
}

/// Prints the margin surface as a volts × clocks table.
fn print_shmoo(name: &str, threads: usize, sweep: &ShmooSweep, result: &ShmooResult) {
    let mut header = vec!["Vdd \\ clock".to_string()];
    header.extend(
        sweep
            .clocks_hz
            .iter()
            .map(|hz| format!("{:.0} MHz", hz / 1e6)),
    );
    let mut t = Table::new(header.iter().map(String::as_str).collect());
    let cols = sweep.clocks_hz.len();
    for (r, &volts) in sweep.volts.iter().enumerate() {
        let mut row = vec![format!("{volts:.4} V")];
        for c in 0..cols {
            let cell = &result.cells[r * cols + c];
            row.push(format!("{:.4} V", cell.margin));
        }
        t.row(row);
    }
    println!("{t}");
    println!(
        "{name} × {threads}T: {} point(s) ({} live, {} replayed)",
        result.cells.len(),
        result.live_points,
        result.replayed_points
    );
}

/// One analyzed program: its diagnostics plus optional source info
/// (present only for `.prog` files): the body-index → byte-span table
/// and the total byte length of the source text.
struct LintReport {
    name: String,
    diags: Vec<Diagnostic>,
    source: Option<(Vec<progfile::Span>, usize)>,
}

/// Every built-in program `--all-builtins` covers: the synthetic
/// workload suites plus the paper's manual stressmarks.
fn all_builtins() -> Vec<Program> {
    let mut programs: Vec<Program> = workloads::spec2006()
        .iter()
        .chain(workloads::parsec().iter())
        .map(|w| w.synthesize(4_000, 1))
        .collect();
    programs.extend([
        manual::sm1(),
        manual::sm2(),
        manual::sm_res(),
        manual::barrier_burst(),
    ]);
    programs
}

/// Looks a `--builtin NAME` up among workloads and manual stressmarks.
fn builtin_by_name(name: &str) -> Result<Program, ArgError> {
    if let Some(w) = workloads::by_name(name) {
        return Ok(w.synthesize(4_000, 1));
    }
    platform::stressmark_by_name(name)
        .ok_or_else(|| ArgError(format!("unknown builtin `{name}` (see `audit list`)")))
}

/// Parses a comma-separated `--allow`/`--deny` code list.
fn codes_from(list: &str, flag: &str) -> Result<Vec<Code>, ArgError> {
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            Code::parse(s).ok_or_else(|| ArgError(format!("{flag}: unknown code `{s}`")))
        })
        .collect()
}

fn span_to_json(span: progfile::Span) -> JsonValue {
    JsonValue::object(vec![
        ("line", JsonValue::from_u64(span.line as u64)),
        ("start", JsonValue::from_u64(span.start as u64)),
        ("end", JsonValue::from_u64(span.end as u64)),
    ])
}

fn diag_to_json(d: &Diagnostic, source: Option<&(Vec<progfile::Span>, usize)>) -> JsonValue {
    let mut fields = vec![
        ("code", JsonValue::String(d.code.as_str().to_string())),
        (
            "severity",
            JsonValue::String(
                match d.severity {
                    Severity::Warning => "warning",
                    Severity::Error => "error",
                }
                .to_string(),
            ),
        ),
        ("message", JsonValue::String(d.message.clone())),
    ];
    if let Some(i) = d.inst_index {
        fields.push(("inst", JsonValue::from_u64(i as u64)));
    }
    // Every diagnostic of a `.prog` file carries a byte span: the
    // offending instruction's when it names one, the whole file's for
    // program-level findings.
    if let Some((spans, len)) = source {
        let span = d
            .inst_index
            .and_then(|i| spans.get(i).copied())
            .unwrap_or(progfile::Span {
                line: 1,
                start: 0,
                end: *len,
            });
        fields.push(("span", span_to_json(span)));
    }
    if let Some(help) = &d.help {
        fields.push(("help", JsonValue::String(help.clone())));
    }
    JsonValue::object(fields)
}

fn print_report(report: &LintReport, json: bool) {
    if json {
        let value = JsonValue::object(vec![
            ("program", JsonValue::String(report.name.clone())),
            (
                "diagnostics",
                JsonValue::Array(
                    report
                        .diags
                        .iter()
                        .map(|d| diag_to_json(d, report.source.as_ref()))
                        .collect(),
                ),
            ),
        ]);
        println!("{}", value.encode());
        return;
    }
    if report.diags.is_empty() {
        println!("{}: clean", report.name);
        return;
    }
    println!("{}:", report.name);
    for d in &report.diags {
        let location = match (d.inst_index, &report.source) {
            (Some(i), Some((spans, _))) => spans
                .get(i)
                .map(|span| format!("line {}", span.line))
                .unwrap_or_else(|| format!("inst {i}")),
            (Some(i), None) => format!("inst {i}"),
            (None, _) => "program".to_string(),
        };
        let severity = match d.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        println!("  {} {severity} [{location}]: {}", d.code, d.message);
        if let Some(help) = &d.help {
            println!("    help: {help}");
        }
    }
}

/// `audit lint`.
pub fn lint(args: &Args) -> Result<(), ArgError> {
    let builtin = args.opt_flag("--builtin");
    let all = args.bool_flag("--all-builtins");
    let chip = args.opt_flag("--chip");
    let json = args.bool_flag("--json");
    let deny_warnings = args.bool_flag("--deny-warnings");
    let allow = args.opt_flag("--allow");
    let deny = args.opt_flag("--deny");
    let file = args.positionals().get(1).cloned();
    args.reject_unknown()?;

    // Without --chip the structural target is permissive: chip
    // capability findings (AUD003) only make sense against a chip.
    let target = match chip.as_deref() {
        None => VerifyTarget::permissive(),
        Some("bulldozer") => VerifyTarget::for_chip(&ChipConfig::bulldozer()),
        Some("phenom") => VerifyTarget::for_chip(&ChipConfig::phenom()),
        Some(other) => {
            return Err(ArgError(format!(
                "unknown chip `{other}` (expected bulldozer or phenom)"
            )))
        }
    };
    let mut lints = LintConfig::new();
    if let Some(list) = allow {
        for code in codes_from(&list, "--allow")? {
            lints = lints.allow(code);
        }
    }
    if let Some(list) = deny {
        for code in codes_from(&list, "--deny")? {
            lints = lints.deny(code);
        }
    }

    let reports: Vec<LintReport> = match (&file, &builtin, all) {
        (Some(path), None, false) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ArgError(format!("reading {path}: {e}")))?;
            let (program, spans) =
                progfile::parse_spanned(&text).map_err(|e| ArgError(format!("{path}: {e}")))?;
            vec![LintReport {
                name: path.clone(),
                diags: check(&program, &target, &lints),
                source: Some((spans, text.len())),
            }]
        }
        (None, Some(name), false) => {
            let program = builtin_by_name(name)?;
            vec![LintReport {
                name: program.name().to_string(),
                diags: check(&program, &target, &lints),
                source: None,
            }]
        }
        (None, None, true) => all_builtins()
            .iter()
            .map(|p| LintReport {
                name: p.name().to_string(),
                diags: check(p, &target, &lints),
                source: None,
            })
            .collect(),
        (None, None, false) => {
            return Err(ArgError(
                "need a <file.prog>, --builtin <name>, or --all-builtins".into(),
            ))
        }
        _ => {
            return Err(ArgError(
                "give exactly one of <file.prog>, --builtin, or --all-builtins".into(),
            ))
        }
    };

    for report in &reports {
        print_report(report, json);
    }

    let errors = reports
        .iter()
        .flat_map(|r| &r.diags)
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = reports
        .iter()
        .flat_map(|r| &r.diags)
        .filter(|d| d.severity == Severity::Warning)
        .count();
    if errors > 0 || (deny_warnings && warnings > 0) {
        return Err(ArgError(format!(
            "lint failed: {errors} error(s), {warnings} warning(s)"
        )));
    }
    Ok(())
}

/// `audit list`.
pub fn list(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown()?;
    println!("workloads (synthetic SPEC CPU2006):");
    for p in workloads::spec2006() {
        println!("  {}", p.name);
    }
    println!("workloads (synthetic PARSEC):");
    for p in workloads::parsec() {
        println!("  {}", p.name);
    }
    println!("manual stressmarks:");
    for name in ["SM1", "SM2", "SM-Res", "barrier"] {
        println!("  {name}");
    }
    Ok(())
}

/// `audit spice`.
pub fn spice(args: &Args) -> Result<(), ArgError> {
    use audit_core::harness::MeasureSpec;
    let rig = platform::rig_from(args)?;
    let out = args.str_flag("--out", "pdn_tran.sp");
    let cycles = args.num_flag("--cycles", 2_000u64)?;
    let fast = args.bool_flag("--fast");
    let _ = fast;
    args.reject_unknown()?;

    let spec = MeasureSpec {
        record_cycles: cycles,
        ..MeasureSpec::ga_eval()
    }
    .with_traces();
    let program = platform::stressmark_by_name("sm-res").expect("built-in stressmark");
    let m = rig.measure_aligned(&vec![program; 4], spec);
    let deck = audit_pdn::spice::emit_deck(&rig.pdn, &m.current_trace, rig.chip.clock_hz, 1_000);
    fs::write(&out, deck).map_err(|e| ArgError(format!("writing {out}: {e}")))?;
    println!("captured {} samples; wrote {out}", m.current_trace.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn parse(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn every_builtin_lints_clean() {
        // The self-lint gate: shipping workloads and manual stressmarks
        // must be clean under the default configuration.
        let target = VerifyTarget::permissive();
        let lints = LintConfig::new();
        for program in all_builtins() {
            let diags = check(&program, &target, &lints);
            assert!(diags.is_empty(), "{}: {diags:?}", program.name());
        }
    }

    #[test]
    fn lint_all_builtins_succeeds() {
        assert!(lint(&parse(&["lint", "--all-builtins"])).is_ok());
    }

    #[test]
    fn lint_requires_exactly_one_selector() {
        assert!(lint(&parse(&["lint"])).is_err());
        assert!(lint(&parse(&["lint", "x.prog", "--all-builtins"])).is_err());
        assert!(lint(&parse(&["lint", "--builtin", "sm1", "--all-builtins"])).is_err());
    }

    #[test]
    fn lint_builtin_lookup() {
        assert!(lint(&parse(&["lint", "--builtin", "SM-Res"])).is_ok());
        assert!(lint(&parse(&["lint", "--builtin", "zeusmp"])).is_ok());
        let err = lint(&parse(&["lint", "--builtin", "crysis"])).unwrap_err();
        assert!(err.to_string().contains("crysis"));
    }

    #[test]
    fn lint_rejects_bad_code_lists_and_chips() {
        let err = lint(&parse(&["lint", "--all-builtins", "--deny", "AUD999"])).unwrap_err();
        assert!(err.to_string().contains("AUD999"));
        let err = lint(&parse(&["lint", "--all-builtins", "--chip", "epyc"])).unwrap_err();
        assert!(err.to_string().contains("epyc"));
    }

    #[test]
    fn codes_from_parses_comma_lists() {
        let codes = codes_from("AUD101, AUD104", "--allow").unwrap();
        assert_eq!(codes, vec![Code::DeadValue, Code::SerializingDivide]);
        assert!(codes_from("bogus", "--allow").is_err());
    }

    #[test]
    fn diag_json_carries_byte_spans() {
        let d = Diagnostic::new(
            Code::RegisterOutOfRange,
            Severity::Error,
            Some(1),
            "register r20 outside the 16-entry file",
        );
        let spans = vec![
            progfile::Span {
                line: 4,
                start: 30,
                end: 33,
            },
            progfile::Span {
                line: 9,
                start: 80,
                end: 101,
            },
        ];
        let v = diag_to_json(&d, Some(&(spans, 120)));
        assert_eq!(v.get("code").and_then(JsonValue::as_str), Some("AUD002"));
        let span = v.get("span").expect("span object");
        assert_eq!(span.get("line").and_then(JsonValue::as_f64), Some(9.0));
        assert_eq!(span.get("start").and_then(JsonValue::as_f64), Some(80.0));
        assert_eq!(span.get("end").and_then(JsonValue::as_f64), Some(101.0));
        // A program-level diagnostic (no inst index) spans the file.
        let whole = Diagnostic::new(Code::NopRun, Severity::Warning, None, "all NOPs");
        let v = diag_to_json(&whole, Some(&(Vec::new(), 120)));
        let span = v.get("span").expect("span object");
        assert_eq!(span.get("line").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(span.get("start").and_then(JsonValue::as_f64), Some(0.0));
        assert_eq!(span.get("end").and_then(JsonValue::as_f64), Some(120.0));
        // Without source text there is no span, but the body index
        // survives.
        let v = diag_to_json(&d, None);
        assert!(v.get("span").is_none());
        assert_eq!(v.get("inst").and_then(JsonValue::as_f64), Some(1.0));
    }
}
