//! The `audit` subcommands.

use std::fs;

use audit_core::audit::{Audit, StressmarkRun};
use audit_core::journal::{Journal, JournalWriter};
use audit_core::report::{journal_summary, mv, Table};
use audit_core::resonance;
use audit_core::AuditError;
use audit_stressmark::{nasm, workloads};

use crate::args::{ArgError, Args};
use crate::platform;

/// Maps a core error to a CLI error.
fn core_err(e: AuditError) -> ArgError {
    ArgError(e.to_string())
}

/// Help text.
pub const USAGE: &str = "\
audit — automated di/dt stressmark generation (AUDIT, MICRO 2012)

USAGE:
  audit resonance  [--chip bulldozer|phenom] [--threads N] [--fast]
      Sweep trivial loops for the platform's resonant period.

  audit generate   [--chip C] [--threads N] [--kind res|ex] [--seed S]
                   [--cost droop|droop-per-amp|sensitive] [--throttle N]
                   [--workers N] [--out file.asm] [--save file.prog]
                   [--iterations N] [--fast] [--checkpoint run.ndjson]
      Evolve a stressmark; --out writes NASM, --save archives the
      lossless .prog form for later `audit measure --file`.
      --workers sets GA evaluation threads (0 = all cores); results
      are bit-identical for any worker count.
      --checkpoint journals every generation to an NDJSON file,
      atomically, so a killed run can be continued.

  audit generate   --resume run.ndjson [--out file.asm] [--save file.prog]
                   [--iterations N]
      Continue a killed --checkpoint run. Configuration flags are
      restored from the journal; the journaled generations are
      replayed without re-simulation and the final stressmark is
      bit-identical to an uninterrupted run's.

  audit measure    (--workload NAME | --stressmark NAME | --file X.prog)
                   [--threads N] [--chip C] [--volts V] [--throttle N]
                   [--cycles N] [--fast]
      Run a workload and report droop, power, and IPC.

  audit failure    (--workload NAME | --stressmark NAME | --file X.prog)
                   [--threads N] [--chip C] [--throttle N] [--fast]
      Lower Vdd in 12.5 mV steps until the part fails.

  audit list
      List available workloads and manual stressmarks.

  audit spice      [--chip C] [--out file.sp] [--cycles N]
      Capture a current trace and emit a SPICE deck of the PDN.
";

/// `audit resonance`.
pub fn resonance(args: &Args) -> Result<(), ArgError> {
    let rig = platform::rig_from(args)?;
    let threads = args.num_flag("--threads", 4usize)?;
    let spec = platform::spec_from(args)?;
    args.reject_unknown()?;

    let result = resonance::find_resonance(&rig, threads, resonance::default_periods(), spec);
    let mut t = Table::new(vec!["period (cycles)", "frequency (MHz)", "max droop"]);
    for (p, d) in &result.samples {
        t.row(vec![
            p.to_string(),
            format!("{:.0}", rig.chip.clock_hz / *p as f64 / 1e6),
            mv(*d),
        ]);
    }
    println!("{t}");
    println!(
        "resonance: {} cycles ({:.0} MHz), droop {}",
        result.period_cycles,
        result.frequency_hz / 1e6,
        mv(result.peak_droop())
    );
    Ok(())
}

/// `audit generate`.
pub fn generate(args: &Args) -> Result<(), ArgError> {
    if let Some(journal_path) = args.opt_flag("--resume") {
        return resume_generate(args, &journal_path);
    }
    let rig = platform::rig_from(args)?;
    let threads = args.num_flag("--threads", 4usize)?;
    let kind = args.str_flag("--kind", "res");
    let opts = platform::options_from(args)?;
    let out = args.opt_flag("--out");
    let save = args.opt_flag("--save");
    let iterations = args.num_flag("--iterations", 100_000_000u64)?;
    let checkpoint = args.opt_flag("--checkpoint");
    let meta = platform::generate_meta(args);
    args.reject_unknown()?;

    let audit = Audit::new(rig, opts);
    let run = match &checkpoint {
        Some(path) => {
            let mut writer =
                JournalWriter::create(path, "generate", meta).map_err(core_err)?;
            let run = match kind.as_str() {
                "res" => audit.generate_resonant_journaled(threads, &mut writer),
                "ex" => audit.generate_excitation_journaled(threads, &mut writer),
                other => return Err(ArgError(format!("unknown kind `{other}` (res | ex)"))),
            }
            .map_err(core_err)?;
            writer.finish().map_err(core_err)?;
            println!("checkpoint: {path} ({} records)", writer.len());
            run
        }
        None => match kind.as_str() {
            "res" => audit.generate_resonant(threads),
            "ex" => audit.generate_excitation(threads),
            other => return Err(ArgError(format!("unknown kind `{other}` (res | ex)"))),
        },
    };
    print_run(&run, out, save, iterations)
}

/// `audit generate --resume <journal>`: reconstructs the run's
/// configuration from the journal's `run_start` metadata, replays the
/// journaled work without re-simulation, and finishes the run live —
/// the result is bit-identical to an uninterrupted run's.
fn resume_generate(args: &Args, journal_path: &str) -> Result<(), ArgError> {
    let out = args.opt_flag("--out");
    let save = args.opt_flag("--save");
    let iterations = args.num_flag("--iterations", 100_000_000u64)?;
    args.reject_unknown()?;

    let journal = Journal::load(journal_path).map_err(core_err)?;
    if journal.mode() != Some("generate") {
        return Err(ArgError(format!(
            "{journal_path}: not a `generate` checkpoint (mode {:?})",
            journal.mode().unwrap_or("<none>")
        )));
    }
    let meta = journal
        .meta()
        .ok_or_else(|| ArgError(format!("{journal_path}: journal has no run_start record")))?;
    let saved = platform::args_from_meta(meta)?;
    let rig = platform::rig_from(&saved)?;
    let threads = saved.num_flag("--threads", 4usize)?;
    let kind = saved.str_flag("--kind", "res");
    let opts = platform::options_from(&saved)?;

    println!("resuming {journal_path}:");
    print!("{}", journal_summary(&journal));
    let complete = journal.is_complete();

    let mut writer = JournalWriter::resume(journal_path).map_err(core_err)?;
    let audit = Audit::new(rig, opts);
    let run = match kind.as_str() {
        "res" => audit.resume_resonant(&journal, threads, &mut writer),
        "ex" => audit.resume_excitation(&journal, threads, &mut writer),
        other => return Err(ArgError(format!("journal has unknown kind `{other}`"))),
    }
    .map_err(core_err)?;
    if !complete {
        writer.finish().map_err(core_err)?;
    }
    println!("checkpoint: {journal_path} ({} records)", writer.len());
    print_run(&run, out, save, iterations)
}

/// Prints a finished run and writes its `--out` / `--save` artifacts.
fn print_run(
    run: &StressmarkRun,
    out: Option<String>,
    save: Option<String>,
    iterations: u64,
) -> Result<(), ArgError> {
    println!("{}:", run.name);
    println!(
        "  resonance    : {} cycles ({:.0} MHz)",
        run.resonance.period_cycles,
        run.resonance.frequency_hz / 1e6
    );
    println!("  best droop   : {}", mv(run.best_droop));
    println!(
        "  GA           : {} generations, {} simulations + {} cache hits ({:.0}% memoized)",
        run.ga.generations_run,
        run.ga.evaluations,
        run.ga.cache_hits,
        100.0 * run.ga.telemetry.cache_hit_rate()
    );
    println!(
        "  GA wall time : {:.2} s on {} worker(s), {:.0} evals/s",
        run.ga.telemetry.total_wall_s,
        run.ga.telemetry.threads,
        run.ga.telemetry.evals_per_second()
    );
    println!(
        "  loop         : {} instructions ({} HP + {} LP NOPs)",
        run.program.len(),
        run.kernel.hp().len(),
        run.kernel.lp_nops()
    );

    if let Some(path) = out {
        let asm = nasm::emit(&run.program, iterations);
        fs::write(&path, asm).map_err(|e| ArgError(format!("writing {path}: {e}")))?;
        println!("  wrote        : {path}");
    }
    if let Some(path) = save {
        let text = audit_stressmark::progfile::emit(&run.program);
        fs::write(&path, text).map_err(|e| ArgError(format!("writing {path}: {e}")))?;
        println!("  saved        : {path}");
    }
    Ok(())
}

/// `audit measure`.
pub fn measure(args: &Args) -> Result<(), ArgError> {
    let rig = platform::rig_from(args)?;
    let threads = args.num_flag("--threads", 4usize)?;
    let spec = platform::spec_from(args)?;
    let program = platform::program_from(args)?;
    args.reject_unknown()?;

    let m = rig.measure_aligned(&vec![program.clone(); threads], spec);
    println!("{} × {threads}T on {}:", program.name(), rig.chip.name);
    println!("  max droop    : {}", mv(m.max_droop()));
    println!("  overshoot    : {}", mv(m.stats.overshoot()));
    println!("  mean current : {:.1} A", m.mean_amps);
    println!("  IPC (chip)   : {:.2}", m.ipc);
    println!("  droop events : {}", m.trigger_events);
    println!("  failed       : {}", m.failed);
    Ok(())
}

/// `audit failure`.
pub fn failure(args: &Args) -> Result<(), ArgError> {
    let rig = platform::rig_from(args)?;
    let threads = args.num_flag("--threads", 4usize)?;
    let spec = platform::spec_from(args)?;
    let program = platform::program_from(args)?;
    args.reject_unknown()?;

    println!(
        "searching from {:.4} V in 12.5 mV steps…",
        rig.pdn.nominal_voltage()
    );
    match rig.voltage_at_failure(&vec![program.clone(); threads], spec) {
        Some(vf) => println!("{} × {threads}T fails at {vf:.4} V", program.name()),
        None => println!(
            "{} × {threads}T never failed above the search floor",
            program.name()
        ),
    }
    Ok(())
}

/// `audit list`.
pub fn list(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown()?;
    println!("workloads (synthetic SPEC CPU2006):");
    for p in workloads::spec2006() {
        println!("  {}", p.name);
    }
    println!("workloads (synthetic PARSEC):");
    for p in workloads::parsec() {
        println!("  {}", p.name);
    }
    println!("manual stressmarks:");
    for name in ["SM1", "SM2", "SM-Res", "barrier"] {
        println!("  {name}");
    }
    Ok(())
}

/// `audit spice`.
pub fn spice(args: &Args) -> Result<(), ArgError> {
    use audit_core::harness::MeasureSpec;
    let rig = platform::rig_from(args)?;
    let out = args.str_flag("--out", "pdn_tran.sp");
    let cycles = args.num_flag("--cycles", 2_000u64)?;
    let fast = args.bool_flag("--fast");
    let _ = fast;
    args.reject_unknown()?;

    let spec = MeasureSpec {
        record_cycles: cycles,
        ..MeasureSpec::ga_eval()
    }
    .with_traces();
    let program = platform::stressmark_by_name("sm-res").expect("built-in stressmark");
    let m = rig.measure_aligned(&vec![program; 4], spec);
    let deck = audit_pdn::spice::emit_deck(&rig.pdn, &m.current_trace, rig.chip.clock_hz, 1_000);
    fs::write(&out, deck).map_err(|e| ArgError(format!("writing {out}: {e}")))?;
    println!("captured {} samples; wrote {out}", m.current_trace.len());
    Ok(())
}
