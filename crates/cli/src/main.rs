//! `audit` — command-line front end for the AUDIT di/dt stressmark
//! framework.
//!
//! ```text
//! audit resonance  [--chip bulldozer|phenom] [--threads N] [--fast]
//! audit generate   [--chip C] [--threads N] [--kind res|ex] [--seed S]
//!                  [--cost droop|droop-per-amp|sensitive] [--throttle N]
//!                  [--out file.asm] [--iterations N] [--fast]
//!                  [--checkpoint run.ndjson | --resume run.ndjson]
//! audit measure    (--workload NAME | --stressmark NAME) [--threads N]
//!                  [--chip C] [--volts V] [--throttle N] [--cycles N] [--fast]
//! audit failure    (--workload NAME | --stressmark NAME) [--threads N] [--chip C] [--fast]
//! audit minimize   (<witness.prog> | <generate-ckpt.ndjson>) [--retain F]
//!                  [--checkpoint run.ndjson | --resume run.ndjson] [--out kernel.prog]
//! audit serve      [generate flags] [--listen ADDR] [--min-workers N] [--window N]
//!                  [--heartbeat MS] [--dead-after MS]
//!                  [--net-faults SEED:drop=P,…] [--verify-fraction F]
//! audit work       --connect ADDR [--connect-for MS] [--connect-retry MS]
//! audit fleet      serve [--listen ADDR] [--min-workers N] [--campaigns N]
//!                        [--window N] [--heartbeat MS] [--dead-after MS]
//!                        [--net-faults SEED:drop=P,…] [--verify-fraction F]
//! audit fleet      submit --connect ADDR (--checkpoint run.ndjson | --resume run.ndjson)
//!                        [--weight N] [generate flags]
//! audit fleet      (status | metrics) --connect ADDR
//! audit journal    fsck <run.ndjson> [--repair]
//! audit lint       (<file.prog> | --builtin NAME | --all-builtins)
//!                  [--chip C] [--json] [--deny-warnings] [--allow AUD###] [--deny AUD###]
//! audit list
//! audit spice      [--chip C] [--out file.sp] [--cycles N]
//! ```

mod args;
mod commands;
mod fleet;
mod platform;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("audit: {msg}");
            eprintln!("run `audit help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(raw: Vec<String>) -> Result<(), String> {
    let parsed = args::Args::parse(raw).map_err(|e| e.to_string())?;
    let command = parsed
        .positionals()
        .first()
        .map(String::as_str)
        .unwrap_or("help");
    let result = match command {
        "resonance" => commands::resonance(&parsed),
        "generate" => commands::generate(&parsed),
        "measure" => commands::measure(&parsed),
        "failure" => commands::failure(&parsed),
        "shmoo" => commands::shmoo(&parsed),
        "minimize" => commands::minimize(&parsed),
        "serve" => commands::serve(&parsed),
        "work" => commands::work(&parsed),
        "fleet" => fleet::fleet(&parsed),
        "journal" => commands::journal(&parsed),
        "lint" => commands::lint(&parsed),
        "list" => commands::list(&parsed),
        "spice" => commands::spice(&parsed),
        "help" | "--help" | "-h" => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(args::ArgError(format!("unknown command `{other}`"))),
    };
    result.map_err(|e| e.to_string())
}
