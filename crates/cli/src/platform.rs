//! Shared command plumbing: rig construction and workload lookup.

use audit_core::audit::AuditOptions;
use audit_core::ga::{CostFunction, Objective, ObjectiveSet};
use audit_core::harness::{MeasureSpec, Rig};
use audit_core::resilient::MeasurePolicy;
use audit_cpu::Program;
use audit_measure::json::JsonValue;
use audit_measure::FaultPlan;
use audit_stressmark::{manual, progfile, workloads};

use crate::args::{ArgError, Args};

/// The `generate` flags that determine the *result* of a run (as
/// opposed to where its artifacts are written). These are recorded in
/// the checkpoint journal's `run_start` metadata so `--resume` can
/// reconstruct the exact configuration without re-passing them.
const GENERATE_RESULT_FLAGS: &[&str] = &[
    "--chip",
    "--threads",
    "--kind",
    "--volts",
    "--throttle",
    "--seed",
    "--workers",
    "--cost",
    "--faults",
    "--repeat",
    "--retries",
    "--cycle-budget",
    "--fast-tier-budget",
    "--eval-batch",
    "--objective",
];

/// The `shmoo` flags that determine the *result* of a DVFS sweep,
/// recorded in its checkpoint journal so `--resume` can reconstruct
/// the exact grid, workload, and fault policy.
const SHMOO_RESULT_FLAGS: &[&str] = &[
    "--chip",
    "--threads",
    "--throttle",
    "--cycles",
    "--workload",
    "--stressmark",
    "--file",
    "--faults",
    "--repeat",
    "--retries",
    "--cycle-budget",
    "--grid-volts",
    "--grid-clocks",
];

/// The `failure` flags that determine the *result* of a Vmin search,
/// recorded in its checkpoint journal so `--resume` can reconstruct
/// the exact configuration (including the program selector and fault
/// policy — a resumed search must redraw the same fault schedules).
const FAILURE_RESULT_FLAGS: &[&str] = &[
    "--chip",
    "--threads",
    "--volts",
    "--throttle",
    "--cycles",
    "--workload",
    "--stressmark",
    "--file",
    "--faults",
    "--repeat",
    "--retries",
    "--cycle-budget",
];

/// The `minimize` flags that determine the *result* of a witness
/// minimization, recorded in its checkpoint journal (together with the
/// input path) so `--resume` can reconstruct the exact search.
const MINIMIZE_RESULT_FLAGS: &[&str] = &[
    "--chip",
    "--threads",
    "--volts",
    "--throttle",
    "--cycles",
    "--retain",
];

/// Captures the result-determining `generate` flags as a `run_start`
/// metadata object (`{"argv": ["--chip", "phenom", ...]}`).
pub fn generate_meta(args: &Args) -> JsonValue {
    let mut argv = argv_from_flags(args, GENERATE_RESULT_FLAGS);
    // `--lint-repair` shapes every bred population, so resume must
    // restore it (and its absence must leave the argv untouched — the
    // byte-invisibility contract in docs/ANALYSIS.md).
    if args.bool_flag("--lint-repair") {
        argv.push(JsonValue::String("--lint-repair".to_string()));
    }
    JsonValue::object(vec![("argv", JsonValue::Array(argv))])
}

/// Captures the result-determining `minimize` flags — plus the input
/// path, spelled `--input` so the replayed argv parses — as a
/// `run_start` metadata object.
pub fn minimize_meta(args: &Args, input: &str) -> JsonValue {
    let mut argv = argv_from_flags(args, MINIMIZE_RESULT_FLAGS);
    argv.push(JsonValue::String("--input".to_string()));
    argv.push(JsonValue::String(input.to_string()));
    JsonValue::object(vec![("argv", JsonValue::Array(argv))])
}

/// Captures the result-determining `failure` flags as a `run_start`
/// metadata object.
pub fn failure_meta(args: &Args) -> JsonValue {
    meta_from_flags(args, FAILURE_RESULT_FLAGS)
}

/// Captures the result-determining `shmoo` flags as a `run_start`
/// metadata object.
pub fn shmoo_meta(args: &Args) -> JsonValue {
    meta_from_flags(args, SHMOO_RESULT_FLAGS)
}

fn meta_from_flags(args: &Args, flags: &[&str]) -> JsonValue {
    JsonValue::object(vec![(
        "argv",
        JsonValue::Array(argv_from_flags(args, flags)),
    )])
}

fn argv_from_flags(args: &Args, flags: &[&str]) -> Vec<JsonValue> {
    let mut argv = Vec::new();
    for flag in flags {
        if let Some(mut v) = args.opt_flag(flag) {
            // `--objective` is order-normalized before journaling, so
            // argv-replay resume is insensitive to the flag order the
            // user typed. A malformed spec is recorded raw — the
            // command errors out before the journal is written.
            if *flag == "--objective" {
                if let Ok((set, variant)) = parse_objective_spec(&v) {
                    v = objective_spec_string(set, variant);
                }
            }
            argv.push(JsonValue::String((*flag).to_string()));
            argv.push(JsonValue::String(v));
        }
    }
    if args.bool_flag("--fast") {
        argv.push(JsonValue::String("--fast".to_string()));
    }
    argv
}

/// Reconstructs the recorded `generate` flags from `run_start`
/// metadata written by [`generate_meta`].
///
/// # Errors
///
/// Returns [`ArgError`] when the metadata is missing or malformed.
pub fn args_from_meta(meta: &JsonValue) -> Result<Args, ArgError> {
    let argv = meta
        .get("argv")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| ArgError("journal metadata has no `argv` list".into()))?;
    let words = argv
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| ArgError("journal metadata `argv` holds a non-string".into()))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Args::parse(words)
}

/// Builds the rig from `--chip`, `--volts`, and `--throttle`.
///
/// # Errors
///
/// Returns [`ArgError`] for an unknown chip or malformed numbers.
pub fn rig_from(args: &Args) -> Result<Rig, ArgError> {
    let chip = args.str_flag("--chip", "bulldozer");
    let mut rig = match chip.as_str() {
        "bulldozer" => Rig::bulldozer(),
        "phenom" => Rig::phenom(),
        other => {
            return Err(ArgError(format!(
                "unknown chip `{other}` (expected bulldozer or phenom)"
            )))
        }
    };
    if let Some(v) = args.opt_flag("--volts") {
        let volts: f64 = v
            .parse()
            .map_err(|_| ArgError(format!("--volts: cannot parse `{v}`")))?;
        rig = rig.at_voltage(volts);
    }
    if let Some(cap) = args.opt_flag("--throttle") {
        let cap: u32 = cap
            .parse()
            .map_err(|_| ArgError(format!("--throttle: cannot parse `{cap}`")))?;
        rig = rig.with_fpu_throttle(cap);
    }
    Ok(rig)
}

/// Generation options from `--fast`, `--seed`, `--cost`, `--workers`,
/// `--fast-tier-budget`, `--eval-batch`, and `--lint-repair`.
///
/// `--workers` sets the GA fitness-evaluation worker count (`0`, the
/// default, means all available cores) and `--eval-batch` the number of
/// genomes co-simulated per batched sweep; both affect wall time only,
/// never results. `--fast-tier-budget <n>` engages the evaluation
/// cascade — at most `n` candidates per generation reach the full
/// simulator — and *does* shape the search, so it is recorded as a
/// result flag for `--resume` (see docs/SIMULATION.md).
///
/// # Errors
///
/// Returns [`ArgError`] for an unknown cost function or a malformed
/// count.
pub fn options_from(args: &Args) -> Result<AuditOptions, ArgError> {
    let mut opts = if args.bool_flag("--fast") {
        AuditOptions::fast_demo()
    } else {
        AuditOptions::paper()
    };
    if let Some(seed) = args.opt_flag("--seed") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| ArgError(format!("--seed: cannot parse `{seed}`")))?;
        opts = opts.with_seed(seed);
    }
    if let Some(workers) = args.opt_flag("--workers") {
        let workers: usize = workers
            .parse()
            .map_err(|_| ArgError(format!("--workers: cannot parse `{workers}`")))?;
        opts = opts.with_eval_threads(workers);
    }
    if let Some(budget) = args.opt_flag("--fast-tier-budget") {
        let budget: usize = budget
            .parse()
            .map_err(|_| ArgError(format!("--fast-tier-budget: cannot parse `{budget}`")))?;
        opts = opts.with_fast_tier_budget(budget);
    }
    if let Some(batch) = args.opt_flag("--eval-batch") {
        let batch: usize = batch
            .parse()
            .map_err(|_| ArgError(format!("--eval-batch: cannot parse `{batch}`")))?;
        opts = opts.with_eval_batch(batch);
    }
    if args.bool_flag("--lint-repair") {
        opts.ga.lint_repair = true;
    }
    if let Some(spec) = args.opt_flag("--objective") {
        let (set, variant) = parse_objective_spec(&spec)?;
        opts = opts.with_objectives(set);
        if let Some(cost) = variant {
            opts = opts.with_cost(cost);
        }
    }
    // `--cost` is the pre-`--objective` spelling of the droop axis's
    // cost function; it is kept as a hidden alias (old journals replay
    // it, old scripts keep working) and still wins when both are given,
    // matching its historical behavior.
    if let Some(cost) = args.opt_flag("--cost") {
        eprintln!(
            "warning: --cost is deprecated; use --objective droop|droop-per-amp|sensitive"
        );
        opts = opts.with_cost(match cost.as_str() {
            "droop" => CostFunction::MaxDroop,
            "droop-per-amp" => CostFunction::DroopPerAmp,
            "sensitive" => CostFunction::SensitivePathDroop,
            other => {
                return Err(ArgError(format!(
                    "unknown cost `{other}` (droop | droop-per-amp | sensitive)"
                )))
            }
        });
    }
    opts = opts.with_policy(policy_from(args)?);
    opts.validate().map_err(|e| ArgError(e.to_string()))?;
    Ok(opts)
}

/// Parses a `--objective` spec: comma-separated axes, where the droop
/// axis may be spelled as one of its cost-function variants
/// (`droop-per-amp`, `sensitive`). Axes deduplicate and normalize to
/// canonical order (droop, power, margin).
///
/// # Errors
///
/// Returns [`ArgError`] for an unknown axis, an empty spec, or
/// conflicting droop variants.
pub fn parse_objective_spec(
    spec: &str,
) -> Result<(ObjectiveSet, Option<CostFunction>), ArgError> {
    let mut axes = Vec::new();
    let mut variant: Option<CostFunction> = None;
    for token in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (axis, cost) = match token {
            "droop" => (Objective::Droop, None),
            "droop-per-amp" => (Objective::Droop, Some(CostFunction::DroopPerAmp)),
            "sensitive" => (Objective::Droop, Some(CostFunction::SensitivePathDroop)),
            "power" => (Objective::Power, None),
            "margin" => (Objective::Margin, None),
            other => {
                return Err(ArgError(format!(
                    "unknown objective `{other}` \
                     (droop | droop-per-amp | sensitive | power | margin)"
                )))
            }
        };
        if let Some(cost) = cost {
            if variant.is_some_and(|prev| prev != cost) {
                return Err(ArgError(
                    "--objective names conflicting droop variants".into(),
                ));
            }
            variant = Some(cost);
        }
        axes.push(axis);
    }
    let set = ObjectiveSet::from_axes(&axes)
        .map_err(|e| ArgError(format!("--objective: {e}")))?;
    Ok((set, variant))
}

/// The canonical spelling of a parsed `--objective` spec: axes in
/// canonical order, the droop axis carrying its variant name.
fn objective_spec_string(set: ObjectiveSet, variant: Option<CostFunction>) -> String {
    let droop = match variant {
        Some(CostFunction::DroopPerAmp) => "droop-per-amp",
        Some(CostFunction::SensitivePathDroop) => "sensitive",
        _ => "droop",
    };
    set.iter()
        .map(|axis| match axis {
            Objective::Droop => droop,
            Objective::Power => "power",
            Objective::Margin => "margin",
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses a comma-separated voltage/clock grid axis for `audit shmoo`.
///
/// # Errors
///
/// Returns [`ArgError`] for a value that does not parse as a number.
pub fn grid_axis(args: &Args, flag: &str, default: &[f64]) -> Result<Vec<f64>, ArgError> {
    match args.opt_flag(flag) {
        None => Ok(default.to_vec()),
        Some(list) => list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse::<f64>()
                    .map_err(|_| ArgError(format!("{flag}: cannot parse `{s}`")))
            })
            .collect(),
    }
}

/// Resilience policy from `--faults <seed:rates>`, `--repeat`,
/// `--retries`, and `--cycle-budget`. With none of them given this is
/// the no-op default policy (plain measurement path, bit-identical
/// results).
///
/// # Errors
///
/// Returns [`ArgError`] for a malformed fault spec or count.
pub fn policy_from(args: &Args) -> Result<MeasurePolicy, ArgError> {
    let mut policy = MeasurePolicy::disabled();
    if let Some(spec) = args.opt_flag("--faults") {
        policy.faults = FaultPlan::parse(&spec).map_err(|e| ArgError(format!("--faults: {e}")))?;
    }
    if let Some(k) = args.opt_flag("--repeat") {
        policy.repeat = k
            .parse()
            .map_err(|_| ArgError(format!("--repeat: cannot parse `{k}`")))?;
    }
    if let Some(n) = args.opt_flag("--retries") {
        policy.retries = n
            .parse()
            .map_err(|_| ArgError(format!("--retries: cannot parse `{n}`")))?;
    }
    if let Some(b) = args.opt_flag("--cycle-budget") {
        let budget: u64 = b
            .parse()
            .map_err(|_| ArgError(format!("--cycle-budget: cannot parse `{b}`")))?;
        policy.cycle_budget = Some(budget);
    }
    policy.validate().map_err(|e| ArgError(e.to_string()))?;
    Ok(policy)
}

/// Measurement spec from `--cycles` and `--fast`.
///
/// # Errors
///
/// Returns [`ArgError`] for a malformed cycle count.
pub fn spec_from(args: &Args) -> Result<MeasureSpec, ArgError> {
    let mut spec = if args.bool_flag("--fast") {
        MeasureSpec::ga_eval()
    } else {
        MeasureSpec::reporting()
    };
    if let Some(c) = args.opt_flag("--cycles") {
        let cycles: u64 = c
            .parse()
            .map_err(|_| ArgError(format!("--cycles: cannot parse `{c}`")))?;
        spec.record_cycles = cycles;
    }
    Ok(spec)
}

/// Resolves `--workload <benchmark>`, `--stressmark <name>`, or
/// `--file <path.prog>` to a program.
///
/// # Errors
///
/// Returns [`ArgError`] when no selector is given, the name is unknown,
/// or the file fails to read/parse.
pub fn program_from(args: &Args) -> Result<Program, ArgError> {
    if let Some(path) = args.opt_flag("--file") {
        let text =
            std::fs::read_to_string(&path).map_err(|e| ArgError(format!("reading {path}: {e}")))?;
        return progfile::parse(&text).map_err(|e| ArgError(format!("{path}: {e}")));
    }
    if let Some(name) = args.opt_flag("--workload") {
        return workloads::by_name(&name)
            .map(|p| p.synthesize(4_000, 1))
            .ok_or_else(|| ArgError(format!("unknown workload `{name}` (see `audit list`)")));
    }
    if let Some(name) = args.opt_flag("--stressmark") {
        return stressmark_by_name(&name)
            .ok_or_else(|| ArgError(format!("unknown stressmark `{name}` (see `audit list`)")));
    }
    Err(ArgError(
        "need --workload <name>, --stressmark <name>, or --file <path>".into(),
    ))
}

/// Named manual stressmarks.
pub fn stressmark_by_name(name: &str) -> Option<Program> {
    match name.to_ascii_lowercase().as_str() {
        "sm1" => Some(manual::sm1()),
        "sm2" => Some(manual::sm2()),
        "sm-res" | "smres" => Some(manual::sm_res()),
        "barrier" => Some(manual::barrier_burst()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn lint_repair_flag_round_trips_through_the_journal_meta() {
        let args = parse(&["--lint-repair", "--fast"]);
        assert!(options_from(&args).unwrap().ga.lint_repair);
        let meta = generate_meta(&args);
        let saved = args_from_meta(&meta).unwrap();
        assert!(options_from(&saved).unwrap().ga.lint_repair);
        // Absent, the flag leaves both the options and the recorded
        // argv untouched (the byte-invisibility contract).
        let plain = parse(&["--fast"]);
        assert!(!options_from(&plain).unwrap().ga.lint_repair);
        assert!(!generate_meta(&plain).encode().contains("lint-repair"));
    }

    #[test]
    fn rig_selects_chip_and_voltage() {
        let rig = rig_from(&parse(&["--chip", "phenom", "--volts", "1.1"])).unwrap();
        assert_eq!(rig.chip.name, "phenom-x4");
        assert!((rig.pdn.nominal_voltage() - 1.1).abs() < 1e-9);
    }

    #[test]
    fn rig_rejects_unknown_chip() {
        assert!(rig_from(&parse(&["--chip", "epyc"])).is_err());
    }

    #[test]
    fn throttle_is_applied() {
        let rig = rig_from(&parse(&["--throttle", "1"])).unwrap();
        assert_eq!(rig.chip.module.fp_throttle, Some(1));
    }

    #[test]
    fn program_lookup_both_kinds() {
        assert_eq!(
            program_from(&parse(&["--workload", "zeusmp"]))
                .unwrap()
                .name(),
            "zeusmp"
        );
        assert_eq!(
            program_from(&parse(&["--stressmark", "SM-Res"]))
                .unwrap()
                .name(),
            "SM-Res"
        );
        assert!(program_from(&parse(&["--workload", "crysis"])).is_err());
        assert!(program_from(&parse(&[])).is_err());
    }

    #[test]
    fn options_cost_parse() {
        assert!(options_from(&parse(&["--cost", "droop-per-amp"])).is_ok());
        assert!(options_from(&parse(&["--cost", "cheapest"])).is_err());
        let fast = options_from(&parse(&["--fast"])).unwrap();
        assert!(fast.ga.population <= 8);
    }

    #[test]
    fn workers_flag_sets_eval_threads() {
        let opts = options_from(&parse(&["--workers", "3"])).unwrap();
        assert_eq!(opts.ga.threads, 3);
        let auto = options_from(&parse(&[])).unwrap();
        assert_eq!(auto.ga.threads, 0);
        assert!(options_from(&parse(&["--workers", "many"])).is_err());
    }

    #[test]
    fn policy_flags_parse_and_round_trip_through_meta() {
        let args = parse(&[
            "--faults",
            "7:noise=0.002,hang=0.01",
            "--repeat",
            "3",
            "--retries",
            "5",
            "--cycle-budget",
            "1048576",
        ]);
        let policy = policy_from(&args).unwrap();
        assert!(policy.faults.is_enabled());
        assert_eq!(policy.faults.seed(), 7);
        assert_eq!(policy.repeat, 3);
        assert_eq!(policy.retries, 5);
        assert_eq!(policy.cycle_budget, Some(1 << 20));
        // The same flags land in the options and are journaled as
        // result flags, so --resume reconstructs the policy.
        let meta = generate_meta(&args);
        let restored = args_from_meta(&meta).unwrap();
        assert_eq!(options_from(&restored).unwrap().policy, policy);
        // Defaults are the no-op policy.
        assert!(policy_from(&parse(&[])).unwrap().is_noop());
        // Malformed inputs are rejected with the flag named.
        assert!(policy_from(&parse(&["--faults", "nonsense"])).is_err());
        assert!(policy_from(&parse(&["--repeat", "0"])).is_err());
        assert!(policy_from(&parse(&["--cycle-budget", "soon"])).is_err());
    }

    #[test]
    fn cascade_flags_parse_and_round_trip_through_meta() {
        let args = parse(&["--fast-tier-budget", "6", "--eval-batch", "4"]);
        let opts = options_from(&args).unwrap();
        assert_eq!(opts.ga.fast_tier_budget, 6);
        assert_eq!(opts.eval_batch, 4);
        // Both flags are journaled, so --resume reconstructs the exact
        // cascade configuration (the budget shapes the search) and
        // keeps batching engaged.
        let meta = generate_meta(&args);
        let restored = args_from_meta(&meta).unwrap();
        let ropts = options_from(&restored).unwrap();
        assert_eq!(ropts.ga.fast_tier_budget, 6);
        assert_eq!(ropts.eval_batch, 4);
        // Defaults: cascade off, unbatched.
        let plain = options_from(&parse(&[])).unwrap();
        assert_eq!(plain.ga.fast_tier_budget, 0);
        assert_eq!(plain.eval_batch, 1);
        // Malformed or unrunnable values are rejected with the flag named.
        assert!(options_from(&parse(&["--fast-tier-budget", "lots"])).is_err());
        assert!(options_from(&parse(&["--eval-batch", "0"])).is_err());
    }

    #[test]
    fn objective_flags_parse_normalize_and_round_trip() {
        // Repeated flags accumulate, axes normalize to canonical order,
        // and the journaled value is order-insensitive.
        let a = parse(&["--objective", "margin", "--objective", "droop"]);
        let opts = options_from(&a).unwrap();
        assert_eq!(opts.objectives, ObjectiveSet::parse("droop,margin").unwrap());
        assert!(opts.ga.pareto, "multi-axis sets engage pareto mode");
        let b = parse(&["--objective", "droop", "--objective", "margin"]);
        assert_eq!(
            generate_meta(&a).encode(),
            generate_meta(&b).encode(),
            "journaled argv must not depend on flag order"
        );
        // The restored argv reconstructs the same options.
        let restored = args_from_meta(&generate_meta(&a)).unwrap();
        assert_eq!(options_from(&restored).unwrap().objectives, opts.objectives);
        // Droop variants select the axis and its cost function.
        let v = options_from(&parse(&["--objective", "droop-per-amp,power"])).unwrap();
        assert_eq!(v.cost, CostFunction::DroopPerAmp);
        assert!(v.objectives.contains(Objective::Power));
        // Scalar default: no flag means droop-only, pareto off.
        let plain = options_from(&parse(&[])).unwrap();
        assert_eq!(plain.objectives, ObjectiveSet::scalar_droop());
        assert!(!plain.ga.pareto);
        // Unknown axes and conflicting variants are rejected.
        assert!(options_from(&parse(&["--objective", "ipc"])).is_err());
        assert!(options_from(&parse(&["--objective", "droop-per-amp,sensitive"])).is_err());
    }

    #[test]
    fn deprecated_cost_alias_still_wins() {
        let opts = options_from(&parse(&["--cost", "sensitive"])).unwrap();
        assert_eq!(opts.cost, CostFunction::SensitivePathDroop);
        assert_eq!(opts.objectives, ObjectiveSet::scalar_droop());
    }

    #[test]
    fn shmoo_grid_axes_parse() {
        let args = parse(&["--grid-volts", "0.95, 1.0,1.05"]);
        assert_eq!(
            grid_axis(&args, "--grid-volts", &[1.0]).unwrap(),
            vec![0.95, 1.0, 1.05]
        );
        assert_eq!(grid_axis(&args, "--grid-clocks", &[3.2e9]).unwrap(), vec![3.2e9]);
        let bad = parse(&["--grid-clocks", "fast"]);
        assert!(grid_axis(&bad, "--grid-clocks", &[]).is_err());
    }

    #[test]
    fn spec_cycles_override() {
        let spec = spec_from(&parse(&["--cycles", "1234"])).unwrap();
        assert_eq!(spec.record_cycles, 1234);
    }

    #[test]
    fn generate_meta_round_trips_result_flags() {
        let original = parse(&[
            "--chip", "phenom", "--threads", "2", "--kind", "ex", "--seed", "9", "--fast",
            "--out", "ignored.asm",
        ]);
        let meta = generate_meta(&original);
        let restored = args_from_meta(&meta).unwrap();
        let rig = rig_from(&restored).unwrap();
        assert_eq!(rig.chip.name, "phenom-x4");
        assert_eq!(restored.num_flag("--threads", 4usize).unwrap(), 2);
        assert_eq!(restored.str_flag("--kind", "res"), "ex");
        let opts = options_from(&restored).unwrap();
        assert_eq!(opts.ga.seed, 9);
        assert!(opts.ga.population <= 8, "--fast not preserved");
        // Artifact flags are not result flags and are not recorded.
        assert_eq!(restored.opt_flag("--out"), None);
    }

    #[test]
    fn args_from_meta_rejects_malformed_metadata() {
        assert!(args_from_meta(&JsonValue::Null).is_err());
        assert!(args_from_meta(&JsonValue::object(vec![(
            "argv",
            JsonValue::Array(vec![JsonValue::Number(3.0)]),
        )]))
        .is_err());
    }
}
