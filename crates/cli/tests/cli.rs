//! End-to-end tests driving the compiled `audit` binary.

use std::process::Command;

fn audit(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_audit"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn help_lists_every_command() {
    let out = audit(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in [
        "resonance",
        "generate",
        "measure",
        "failure",
        "list",
        "spice",
    ] {
        assert!(text.contains(cmd), "help missing `{cmd}`");
    }
}

#[test]
fn no_arguments_prints_help() {
    let out = audit(&[]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
}

#[test]
fn list_names_benchmarks_and_stressmarks() {
    let out = audit(&["list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for name in ["zeusmp", "swaptions", "SM1", "SM-Res"] {
        assert!(text.contains(name), "list missing `{name}`");
    }
}

#[test]
fn unknown_command_fails_with_message() {
    let out = audit(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("frobnicate"));
}

#[test]
fn unknown_flag_fails_loudly() {
    let out = audit(&["list", "--turbo"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--turbo"));
}

#[test]
fn unknown_workload_names_the_culprit() {
    let out = audit(&["measure", "--workload", "crysis", "--fast"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("crysis"));
}

#[test]
fn measure_reports_droop() {
    let out = audit(&[
        "measure",
        "--stressmark",
        "sm-res",
        "--threads",
        "2",
        "--fast",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("max droop"));
    assert!(text.contains("mV"));
}

#[test]
fn measure_respects_chip_flag() {
    let out = audit(&[
        "measure",
        "--stressmark",
        "sm2",
        "--chip",
        "phenom",
        "--fast",
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("phenom"));
    // SM1 must be refused on the Phenom-class part.
    let out = audit(&[
        "measure",
        "--stressmark",
        "sm1",
        "--chip",
        "phenom",
        "--fast",
    ]);
    assert!(!out.status.success());
}

#[test]
fn generate_saves_and_replays_a_prog_file() {
    let dir = std::env::temp_dir().join("audit-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = dir.join("gen.prog");
    let asm = dir.join("gen.asm");

    let out = audit(&[
        "generate",
        "--fast",
        "--threads",
        "2",
        "--save",
        prog.to_str().unwrap(),
        "--out",
        asm.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("best droop"));

    // The NASM artifact looks like assembly.
    let asm_text = std::fs::read_to_string(&asm).unwrap();
    assert!(asm_text.contains("BITS 64"));

    // The .prog artifact replays through `measure --file`.
    let out = audit(&[
        "measure",
        "--file",
        prog.to_str().unwrap(),
        "--threads",
        "2",
        "--fast",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("max droop"));
}

#[test]
fn checkpointed_generate_survives_a_kill() {
    let dir = std::env::temp_dir().join("audit-cli-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("run.ndjson");
    let full_prog = dir.join("full.prog");
    let resumed_prog = dir.join("resumed.prog");

    // Full checkpointed run: records the configuration and every
    // generation in the journal.
    let out = audit(&[
        "generate",
        "--fast",
        "--threads",
        "2",
        "--seed",
        "11",
        "--checkpoint",
        journal.to_str().unwrap(),
        "--save",
        full_prog.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let full_text = stdout(&out);
    let droop_line = |text: &str| {
        text.lines()
            .find(|l| l.contains("best droop"))
            .map(str::to_string)
            .expect("droop line")
    };

    // Simulate a kill partway through the GA: drop everything after
    // the second generation record (and with it run_end/ga_end).
    let lines: Vec<String> = std::fs::read_to_string(&journal)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    let cut = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.contains("\"generation\""))
        .map(|(i, _)| i)
        .nth(1)
        .expect("at least two generation records");
    assert!(cut + 1 < lines.len(), "cut must drop something");
    std::fs::write(&journal, format!("{}\n", lines[..=cut].join("\n"))).unwrap();

    // Resume needs no configuration flags — they come from the journal.
    let out = audit(&[
        "generate",
        "--resume",
        journal.to_str().unwrap(),
        "--save",
        resumed_prog.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let resumed_text = stdout(&out);
    assert!(resumed_text.contains("resuming"), "{resumed_text}");
    assert!(resumed_text.contains("ga_start"), "{resumed_text}");

    // Bit-identical final stressmark and droop.
    assert_eq!(
        std::fs::read_to_string(&full_prog).unwrap(),
        std::fs::read_to_string(&resumed_prog).unwrap()
    );
    assert_eq!(droop_line(&full_text), droop_line(&resumed_text));

    // The journal is complete again after the resumed run.
    let text = std::fs::read_to_string(&journal).unwrap();
    assert!(text.lines().last().unwrap().contains("run_end"), "{text}");

    // Resuming a *complete* journal replays without re-running and
    // reports the same result once more.
    let out = audit(&["generate", "--resume", journal.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert_eq!(droop_line(&full_text), droop_line(&stdout(&out)));

    // A non-generate journal is refused.
    let bogus = dir.join("bogus.ndjson");
    std::fs::write(&bogus, "{\"kind\":\"run_start\",\"schema\":1,\"mode\":\"measure\",\"meta\":{}}\n")
        .unwrap();
    let out = audit(&["generate", "--resume", bogus.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("not a `generate` checkpoint"));
}

#[test]
fn spice_writes_a_deck() {
    let dir = std::env::temp_dir().join("audit-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let deck = dir.join("pdn.sp");
    let out = audit(&[
        "spice",
        "--out",
        deck.to_str().unwrap(),
        "--cycles",
        "500",
        "--fast",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = std::fs::read_to_string(&deck).unwrap();
    assert!(text.contains(".tran"));
    assert!(text.contains("PWL("));
}
