//! End-to-end tests driving the compiled `audit` binary.

use std::process::Command;

fn audit(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_audit"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn help_lists_every_command() {
    let out = audit(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in [
        "resonance",
        "generate",
        "measure",
        "failure",
        "list",
        "spice",
    ] {
        assert!(text.contains(cmd), "help missing `{cmd}`");
    }
}

#[test]
fn no_arguments_prints_help() {
    let out = audit(&[]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
}

#[test]
fn list_names_benchmarks_and_stressmarks() {
    let out = audit(&["list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for name in ["zeusmp", "swaptions", "SM1", "SM-Res"] {
        assert!(text.contains(name), "list missing `{name}`");
    }
}

#[test]
fn unknown_command_fails_with_message() {
    let out = audit(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("frobnicate"));
}

#[test]
fn unknown_flag_fails_loudly() {
    let out = audit(&["list", "--turbo"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--turbo"));
}

#[test]
fn unknown_workload_names_the_culprit() {
    let out = audit(&["measure", "--workload", "crysis", "--fast"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("crysis"));
}

#[test]
fn measure_reports_droop() {
    let out = audit(&[
        "measure",
        "--stressmark",
        "sm-res",
        "--threads",
        "2",
        "--fast",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("max droop"));
    assert!(text.contains("mV"));
}

#[test]
fn measure_respects_chip_flag() {
    let out = audit(&[
        "measure",
        "--stressmark",
        "sm2",
        "--chip",
        "phenom",
        "--fast",
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("phenom"));
    // SM1 must be refused on the Phenom-class part.
    let out = audit(&[
        "measure",
        "--stressmark",
        "sm1",
        "--chip",
        "phenom",
        "--fast",
    ]);
    assert!(!out.status.success());
}

#[test]
fn generate_saves_and_replays_a_prog_file() {
    let dir = std::env::temp_dir().join("audit-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = dir.join("gen.prog");
    let asm = dir.join("gen.asm");

    let out = audit(&[
        "generate",
        "--fast",
        "--threads",
        "2",
        "--save",
        prog.to_str().unwrap(),
        "--out",
        asm.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("best droop"));

    // The NASM artifact looks like assembly.
    let asm_text = std::fs::read_to_string(&asm).unwrap();
    assert!(asm_text.contains("BITS 64"));

    // The .prog artifact replays through `measure --file`.
    let out = audit(&[
        "measure",
        "--file",
        prog.to_str().unwrap(),
        "--threads",
        "2",
        "--fast",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("max droop"));
}

#[test]
fn checkpointed_generate_survives_a_kill() {
    let dir = std::env::temp_dir().join("audit-cli-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("run.ndjson");
    let full_prog = dir.join("full.prog");
    let resumed_prog = dir.join("resumed.prog");

    // Full checkpointed run: records the configuration and every
    // generation in the journal.
    let out = audit(&[
        "generate",
        "--fast",
        "--threads",
        "2",
        "--seed",
        "11",
        "--checkpoint",
        journal.to_str().unwrap(),
        "--save",
        full_prog.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let full_text = stdout(&out);
    let droop_line = |text: &str| {
        text.lines()
            .find(|l| l.contains("best droop"))
            .map(str::to_string)
            .expect("droop line")
    };

    // Simulate a kill partway through the GA: drop everything after
    // the second generation record (and with it run_end/ga_end).
    let lines: Vec<String> = std::fs::read_to_string(&journal)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    let cut = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.contains("\"generation\""))
        .map(|(i, _)| i)
        .nth(1)
        .expect("at least two generation records");
    assert!(cut + 1 < lines.len(), "cut must drop something");
    std::fs::write(&journal, format!("{}\n", lines[..=cut].join("\n"))).unwrap();

    // Resume needs no configuration flags — they come from the journal.
    let out = audit(&[
        "generate",
        "--resume",
        journal.to_str().unwrap(),
        "--save",
        resumed_prog.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let resumed_text = stdout(&out);
    assert!(resumed_text.contains("resuming"), "{resumed_text}");
    assert!(resumed_text.contains("ga_start"), "{resumed_text}");

    // Bit-identical final stressmark and droop.
    assert_eq!(
        std::fs::read_to_string(&full_prog).unwrap(),
        std::fs::read_to_string(&resumed_prog).unwrap()
    );
    assert_eq!(droop_line(&full_text), droop_line(&resumed_text));

    // The journal is complete again after the resumed run.
    let text = std::fs::read_to_string(&journal).unwrap();
    assert!(text.lines().last().unwrap().contains("run_end"), "{text}");

    // Resuming a *complete* journal replays without re-running and
    // reports the same result once more.
    let out = audit(&["generate", "--resume", journal.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert_eq!(droop_line(&full_text), droop_line(&stdout(&out)));

    // A non-generate journal is refused.
    let bogus = dir.join("bogus.ndjson");
    std::fs::write(&bogus, "{\"kind\":\"run_start\",\"schema\":1,\"mode\":\"measure\",\"meta\":{}}\n")
        .unwrap();
    let out = audit(&["generate", "--resume", bogus.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("not a `generate` checkpoint"));
}

#[test]
fn checkpointed_vmin_search_survives_a_kill() {
    let dir = std::env::temp_dir().join("audit-cli-vmin-test");
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("vmin.ndjson");

    // Full checkpointed bisection under injected machine crashes.
    let flags = [
        "failure",
        "--stressmark",
        "sm-res",
        "--threads",
        "2",
        "--fast",
        "--faults",
        "5:crash=0.2",
        "--retries",
        "4",
    ];
    let out = audit(&[&flags[..], &["--checkpoint", journal.to_str().unwrap()]].concat());
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let full_text = stdout(&out);
    let fails_line = |text: &str| {
        text.lines()
            .find(|l| l.contains("fails at"))
            .map(str::to_string)
            .expect("fails-at line")
    };
    let full_journal = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = full_journal.lines().collect();
    assert!(
        lines.iter().any(|l| l.contains("\"vmin_step\"")),
        "{full_journal}"
    );

    // Kill 1: cut right after the second *terminal* probe outcome, then
    // tear the next line mid-record — the torn final line must be
    // treated as a clean truncation, not a parse error.
    let cut = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            l.contains("\"outcome\":\"failed\"") || l.contains("\"outcome\":\"passed\"")
        })
        .map(|(i, _)| i)
        .nth(1)
        .expect("at least two settled probes");
    let half = lines[cut + 1].len() / 2;
    let torn = format!(
        "{}\n{}",
        lines[..=cut].join("\n"),
        &lines[cut + 1][..half]
    );
    std::fs::write(&journal, torn).unwrap();
    let out = audit(&["failure", "--resume", journal.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let resumed_text = stdout(&out);
    assert!(resumed_text.contains("resuming"), "{resumed_text}");
    assert!(resumed_text.contains("replayed"), "{resumed_text}");
    assert_eq!(fails_line(&full_text), fails_line(&resumed_text));
    // Cut on a step boundary: the finished journal is byte-identical to
    // the uninterrupted one.
    assert_eq!(std::fs::read_to_string(&journal).unwrap(), full_journal);

    // Kill 2: a valid-JSON final line with no `kind` (write buffered,
    // record half-flushed) is also a clean truncation.
    let kindless = format!("{}\n{{}}\n", lines[..=cut].join("\n"));
    std::fs::write(&journal, kindless).unwrap();
    let out = audit(&["failure", "--resume", journal.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert_eq!(fails_line(&full_text), fails_line(&stdout(&out)));
    assert_eq!(std::fs::read_to_string(&journal).unwrap(), full_journal);

    // Kill 3: cut mid-step, right after a write-ahead `pending` record
    // whose outcome never landed. The orphan pending line stays in the
    // journal (it is the evidence of the kill); the step is re-probed
    // and the search still reaches the identical answer, with every
    // settled outcome matching the uninterrupted run's.
    let pending_cut = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.contains("\"outcome\":\"pending\""))
        .map(|(i, _)| i)
        .nth(2)
        .expect("at least three pending records");
    std::fs::write(&journal, format!("{}\n", lines[..=pending_cut].join("\n"))).unwrap();
    let out = audit(&["failure", "--resume", journal.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert_eq!(fails_line(&full_text), fails_line(&stdout(&out)));
    let settled = |text: &str| {
        text.lines()
            .filter(|l| {
                l.contains("\"outcome\":\"failed\"") || l.contains("\"outcome\":\"passed\"")
            })
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    let rejournal = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(settled(&rejournal), settled(&full_journal));
    assert!(rejournal.lines().last().unwrap().contains("run_end"));

    // A non-failure journal is refused.
    let bogus = dir.join("bogus.ndjson");
    std::fs::write(
        &bogus,
        "{\"kind\":\"run_start\",\"schema\":1,\"mode\":\"generate\",\"meta\":{}}\n",
    )
    .unwrap();
    let out = audit(&["failure", "--resume", bogus.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("not a `failure` checkpoint"));
}

#[test]
fn lint_json_output_shape_is_pinned() {
    // Golden test: the machine-readable lint output is a contract.
    // Every diagnostic of a `.prog` file carries a byte `span` — the
    // offending instruction's for per-instruction findings, the whole
    // file's for program-level ones.
    let dir = std::env::temp_dir().join("audit-cli-lint-json-test");
    std::fs::create_dir_all(&dir).unwrap();

    // Per-instruction finding: a dependent add behind an IDiv (AUD104).
    let golden = dir.join("golden.prog");
    std::fs::write(
        &golden,
        "# name: golden\nidiv r0 r14 r15 t=1.00\niadd r1 r0 r15 t=1.00\n",
    )
    .unwrap();
    let out = audit(&["lint", golden.to_str().unwrap(), "--json"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert_eq!(
        stdout(&out),
        format!(
            "{{\"program\":\"{}\",\"diagnostics\":[\
             {{\"code\":\"AUD104\",\"severity\":\"warning\",\
             \"message\":\"unpipelined IDiv feeds a dependent consumer; \
             the window drains behind it\",\
             \"inst\":0,\"span\":{{\"line\":2,\"start\":15,\"end\":37}},\
             \"help\":\"break the dependence unless the stall is the \
             point of the stressmark\"}}]}}\n",
            golden.display()
        )
    );

    // Program-level finding: an all-NOP body (AUD102, no inst index)
    // gets the whole file as its span.
    let nops = dir.join("nops.prog");
    std::fs::write(&nops, format!("# name: all-nops\n{}", "nop\n".repeat(8))).unwrap();
    let out = audit(&["lint", nops.to_str().unwrap(), "--json"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert_eq!(
        stdout(&out),
        format!(
            "{{\"program\":\"{}\",\"diagnostics\":[\
             {{\"code\":\"AUD102\",\"severity\":\"warning\",\
             \"message\":\"program body is entirely NOPs\",\
             \"span\":{{\"line\":1,\"start\":0,\"end\":49}},\
             \"help\":\"a pure-NOP loop draws no switching current at \
             all\"}}]}}\n",
            nops.display()
        )
    );
}

#[test]
fn checkpointed_minimize_survives_a_kill() {
    let dir = std::env::temp_dir().join("audit-cli-minimize-test");
    std::fs::create_dir_all(&dir).unwrap();
    let witness = dir.join("witness.prog");
    let journal = dir.join("min.ndjson");
    let full_kernel = dir.join("full.prog");
    let resumed_kernel = dir.join("resumed.prog");

    // A witness with a dense resonant core padded by NOP freeloaders.
    let mut text = String::from("# name: padded-witness\n");
    for i in 0..8 {
        text.push_str(&format!("simdfma f{} f12 f13 t=1.00\n", i % 4));
    }
    for _ in 0..8 {
        text.push_str("nop\n");
    }
    std::fs::write(&witness, text).unwrap();

    // Full checkpointed minimization.
    let out = audit(&[
        "minimize",
        witness.to_str().unwrap(),
        "--fast",
        "--threads",
        "2",
        "--checkpoint",
        journal.to_str().unwrap(),
        "--out",
        full_kernel.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let full_text = stdout(&out);
    assert!(full_text.contains("minimized"), "{full_text}");
    let full_journal = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = full_journal.lines().collect();
    assert!(
        lines.iter().any(|l| l.contains("\"minimize_step\"")),
        "{full_journal}"
    );
    // The kernel is strictly smaller than the witness and lints clean.
    let kernel_text = std::fs::read_to_string(&full_kernel).unwrap();
    assert!(kernel_text.lines().count() < 17, "{kernel_text}");
    let out = audit(&["lint", full_kernel.to_str().unwrap(), "--deny-warnings"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    // Kill right after the first terminal probe, then resume: the
    // stitched journal must be byte-identical to the uninterrupted
    // one and the kernel must match.
    let cut = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.contains("\"minimize_step\"") && l.contains("\"droop\""))
        .map(|(i, _)| i)
        .next()
        .expect("at least one settled probe");
    assert!(cut + 1 < lines.len(), "cut must drop something");
    std::fs::write(&journal, format!("{}\n", lines[..=cut].join("\n"))).unwrap();
    let out = audit(&[
        "minimize",
        "--resume",
        journal.to_str().unwrap(),
        "--out",
        resumed_kernel.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let resumed_text = stdout(&out);
    assert!(resumed_text.contains("resuming"), "{resumed_text}");
    assert!(resumed_text.contains("replayed"), "{resumed_text}");
    assert_eq!(std::fs::read_to_string(&journal).unwrap(), full_journal);
    assert_eq!(
        std::fs::read_to_string(&resumed_kernel).unwrap(),
        kernel_text
    );

    // A non-minimize journal is refused as a --resume target, and a
    // non-generate journal is refused as an *input*.
    let bogus = dir.join("bogus.ndjson");
    std::fs::write(
        &bogus,
        "{\"kind\":\"run_start\",\"schema\":1,\"mode\":\"failure\",\"meta\":{}}\n",
    )
    .unwrap();
    let out = audit(&["minimize", "--resume", bogus.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("not a `minimize` checkpoint"));
    let out = audit(&["minimize", bogus.to_str().unwrap(), "--fast"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("not a `generate` checkpoint"));
}

#[test]
fn measure_with_faults_reports_resilience() {
    let out = audit(&[
        "measure",
        "--stressmark",
        "sm-res",
        "--threads",
        "2",
        "--fast",
        "--faults",
        "7:noise=0.002",
        "--repeat",
        "3",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("resilience"), "{text}");
    assert!(text.contains("max droop"), "{text}");
}

#[test]
fn spice_writes_a_deck() {
    let dir = std::env::temp_dir().join("audit-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let deck = dir.join("pdn.sp");
    let out = audit(&[
        "spice",
        "--out",
        deck.to_str().unwrap(),
        "--cycles",
        "500",
        "--fast",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = std::fs::read_to_string(&deck).unwrap();
    assert!(text.contains(".tran"));
    assert!(text.contains("PWL("));
}
