//! End-to-end broker/worker tests over loopback.
//!
//! The invariant under test is the crate's reason to exist: a
//! distributed run is *bit-identical* to the in-process run — same
//! `GaRun` (best genome, fitness, history, evaluation counts), same
//! journal records — for any worker count, with workers joining late,
//! dying mid-generation, and with the broker resuming from a journal
//! prefix plus its write-ahead log.

use std::sync::Mutex;
use std::time::Duration;

use audit_core::ga::{self, CostFunction, GaConfig, GaRun, ObjectiveSet};
use audit_core::resilient::genome_key;
use audit_core::{
    FitnessSpec, MeasurePolicy, MeasureSpec, MemJournal, ResilienceReport, Rig,
};
use audit_cpu::isa::Opcode;
use audit_measure::fault::FaultPlan;
use audit_net::{
    connect, read_frame, run_worker, write_frame, Broker, BrokerConfig, EvalContext,
    FrameOutcome, Msg, NetFaultPlan, WorkerOptions, PROTOCOL_VERSION,
};

const GENOME_LEN: usize = 10;

fn fspec(policy: MeasurePolicy) -> FitnessSpec {
    FitnessSpec {
        threads: 1,
        sub_blocks: 2,
        lp_slots: 2,
        cost: CostFunction::MaxDroop,
        spec: MeasureSpec::ga_eval(),
        policy,
        objectives: ObjectiveSet::default(),
    }
}

fn ga_cfg() -> GaConfig {
    GaConfig {
        population: 8,
        generations: 4,
        stall_generations: 4,
        seed: 11,
        ..GaConfig::default()
    }
}

fn ctx(spec: FitnessSpec) -> EvalContext {
    EvalContext {
        chip: "bulldozer".into(),
        volts: None,
        throttle: None,
        spec,
        fast_tier_budget: 0,
    }
}

/// The in-process reference run, accumulating resilience deltas the
/// same way `Audit::evolve_kernel_journaled` does.
fn local_run(spec: FitnessSpec, cfg: &GaConfig) -> (GaRun, MemJournal, ResilienceReport) {
    let rig = Rig::bulldozer();
    let log = Mutex::new(ResilienceReport::default());
    let mut mem = MemJournal::default();
    let run = ga::evolve_journaled(
        cfg,
        &Opcode::stress_menu(),
        GENOME_LEN,
        &[],
        |genome| {
            let (objectives, delta) = spec.evaluate_objectives(&rig, genome);
            log.lock().unwrap().merge(&delta);
            objectives
        },
        &mut mem,
    )
    .unwrap();
    let report = *log.lock().unwrap();
    (run, mem, report)
}

/// A distributed run over loopback TCP with per-worker options (so a
/// test can hand one worker a kill hook).
fn distributed_run(
    spec: FitnessSpec,
    cfg: &GaConfig,
    worker_opts: &[WorkerOptions],
    wait_for: usize,
) -> (GaRun, MemJournal, ResilienceReport) {
    let broker_cfg = BrokerConfig {
        seed: cfg.seed,
        ..BrokerConfig::default()
    };
    distributed_run_with(spec, cfg, worker_opts, wait_for, broker_cfg)
}

/// Like [`distributed_run`] but with full control of the broker config,
/// so chaos tests can switch on fault injection and cross-validation.
fn distributed_run_with(
    spec: FitnessSpec,
    cfg: &GaConfig,
    worker_opts: &[WorkerOptions],
    wait_for: usize,
    broker_cfg: BrokerConfig,
) -> (GaRun, MemJournal, ResilienceReport) {
    let mut broker = Broker::bind("127.0.0.1:0", &ctx(spec), broker_cfg).unwrap();
    let addr = broker.addr().to_string();
    let handles: Vec<_> = worker_opts
        .iter()
        .map(|opts| {
            let addr = addr.clone();
            let opts = *opts;
            std::thread::spawn(move || run_worker(&addr, &opts))
        })
        .collect();
    broker.wait_for_workers(wait_for).unwrap();
    let mut mem = MemJournal::default();
    let run = ga::evolve_journaled_dispatched(
        cfg,
        &Opcode::stress_menu(),
        GENOME_LEN,
        &[],
        &mut broker,
        &mut mem,
    )
    .unwrap();
    let report = audit_core::ga::EvalDispatcher::resilience(&broker);
    broker.shutdown();
    for handle in handles {
        handle.join().unwrap().unwrap();
    }
    (run, mem, report)
}

#[test]
fn two_workers_match_the_in_process_run_bit_identically() {
    let spec = fspec(MeasurePolicy::disabled());
    let cfg = ga_cfg();
    let (local, local_journal, _) = local_run(spec, &cfg);
    let opts = [WorkerOptions::default(), WorkerOptions::default()];
    let (dist, dist_journal, _) = distributed_run(spec, &cfg, &opts, 2);
    assert_eq!(dist, local);
    assert_eq!(dist.evaluations, local.evaluations);
    assert_eq!(dist_journal.records, local_journal.records);
}

#[test]
fn metrics_endpoint_answers_a_scrape_and_counts_work() {
    // The "fleet of one" backport: any connection whose first frame is
    // MetricsReq gets a plain-text scrape snapshot and the socket
    // closes; workers and results are unaffected.
    let spec = fspec(MeasurePolicy::disabled());
    let cfg = ga_cfg();
    let mut broker = Broker::bind(
        "127.0.0.1:0",
        &ctx(spec),
        BrokerConfig {
            seed: cfg.seed,
            ..BrokerConfig::default()
        },
    )
    .unwrap();
    let addr = broker.addr().to_string();
    let worker_addr = addr.clone();
    let worker = std::thread::spawn(move || run_worker(&worker_addr, &WorkerOptions::default()));
    broker.wait_for_workers(1).unwrap();
    let mut mem = MemJournal::default();
    ga::evolve_journaled_dispatched(
        &cfg,
        &Opcode::stress_menu(),
        GENOME_LEN,
        &[],
        &mut broker,
        &mut mem,
    )
    .unwrap();
    let mut conn = connect(&addr).unwrap();
    write_frame(&mut conn, &Msg::MetricsReq.to_json()).unwrap();
    let text = match read_frame(&mut conn).unwrap() {
        FrameOutcome::Frame(v) => match Msg::from_json(&v).unwrap() {
            Msg::Metrics { text } => text,
            other => panic!("expected metrics, got {other:?}"),
        },
        other => panic!("expected a metrics frame, got {other:?}"),
    };
    assert!(text.contains("audit_workers 1"), "scrape:\n{text}");
    let results: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("audit_results_total "))
        .expect("results counter present")
        .parse()
        .unwrap();
    assert!(results > 0, "no results counted:\n{text}");
    let dispatches: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("audit_dispatches_total "))
        .expect("dispatch counter present")
        .parse()
        .unwrap();
    assert!(dispatches >= results, "scrape:\n{text}");
    broker.shutdown();
    worker.join().unwrap().unwrap();
}

#[test]
fn worker_count_never_changes_the_result() {
    let spec = fspec(MeasurePolicy::disabled());
    let cfg = ga_cfg();
    let (one, j1, _) = distributed_run(spec, &cfg, &[WorkerOptions::default()], 1);
    let four = vec![WorkerOptions::default(); 4];
    let (wide, j4, _) = distributed_run(spec, &cfg, &four, 4);
    assert_eq!(one, wide);
    assert_eq!(j1.records, j4.records);
}

#[test]
fn cascade_pruning_is_bit_identical_across_worker_counts() {
    // Evaluation cascade on: the broker-side engine prunes each
    // generation to the fast-tier budget before dispatch, so workers
    // only ever see survivors — the run must match the in-process
    // cascade run bit-for-bit at any worker count.
    let spec = fspec(MeasurePolicy::disabled());
    let cfg = GaConfig {
        fast_tier_budget: 3,
        ..ga_cfg()
    };
    let (local, local_journal, _) = local_run(spec, &cfg);
    for workers in [1usize, 2, 4] {
        let opts = vec![WorkerOptions::default(); workers];
        let (dist, dist_journal, _) = distributed_run(spec, &cfg, &opts, workers);
        assert_eq!(dist, local, "diverged at {workers} workers");
        assert_eq!(
            dist_journal.records, local_journal.records,
            "journal diverged at {workers} workers"
        );
    }
    // The cascade actually engaged: fewer simulations than slots.
    assert!(
        local_journal
            .records
            .iter()
            .any(|r| r.kind() == "cascade"),
        "cascade marker missing from journal"
    );
}

#[test]
fn pareto_mode_matches_the_in_process_run_at_any_worker_count() {
    // Multi-objective evaluation over loopback workers: the objective
    // vectors ride the result frames, the NSGA-II selection happens
    // broker-side in the engine, and the run — GaRun, Pareto front, and
    // journal bytes — must match the in-process run for any worker
    // count.
    let spec = FitnessSpec {
        objectives: ObjectiveSet::parse("droop,power,margin").unwrap(),
        ..fspec(MeasurePolicy::disabled())
    };
    let cfg = GaConfig {
        pareto: true,
        ..ga_cfg()
    };
    let (local, local_journal, _) = local_run(spec, &cfg);
    assert!(
        local.pareto_front.as_ref().is_some_and(|f| !f.is_empty()),
        "pareto run produced no front"
    );
    assert!(
        local_journal
            .records
            .iter()
            .any(|r| r.kind() == "pareto_front"),
        "pareto_front records missing from journal"
    );
    for workers in [1usize, 2, 4] {
        let opts = vec![WorkerOptions::default(); workers];
        let (dist, dist_journal, _) = distributed_run(spec, &cfg, &opts, workers);
        assert_eq!(dist, local, "GaRun diverged at {workers} workers");
        assert_eq!(
            dist_journal.records, local_journal.records,
            "journal diverged at {workers} workers"
        );
    }
}

#[test]
fn late_joining_worker_shares_the_load_without_changing_results() {
    let spec = fspec(MeasurePolicy::disabled());
    let cfg = ga_cfg();
    let (local, local_journal, _) = local_run(spec, &cfg);
    // Only wait for one of the two workers: the second completes its
    // handshake while the generation is already being dispatched.
    let opts = [WorkerOptions::default(), WorkerOptions::default()];
    let (dist, dist_journal, _) = distributed_run(spec, &cfg, &opts, 1);
    assert_eq!(dist, local);
    assert_eq!(dist_journal.records, local_journal.records);
}

#[test]
fn killed_worker_mid_generation_is_retried_with_exact_accounting() {
    // Fault-injected policy so the resilient path (retries, backoff,
    // quarantine counters) is active end to end.
    let policy = MeasurePolicy {
        faults: FaultPlan::parse("5:noise=0.001,crash=0.2").unwrap(),
        ..MeasurePolicy::disabled()
    };
    let spec = fspec(policy);
    let cfg = ga_cfg();
    let (local, local_journal, local_report) = local_run(spec, &cfg);
    // One worker dies (no reply, no goodbye) after 2 evaluations; the
    // survivor absorbs the re-dispatched work.
    let opts = [
        WorkerOptions {
            max_evals: Some(2),
            ..WorkerOptions::default()
        },
        WorkerOptions::default(),
    ];
    let (dist, dist_journal, dist_report) = distributed_run(spec, &cfg, &opts, 2);
    assert_eq!(dist, local);
    assert_eq!(dist_journal.records, local_journal.records);
    // Exactly-once accounting: the dead worker's unreported evaluation
    // is recomputed deterministically, so the merged counters match the
    // single-process run exactly.
    assert_eq!(dist_report, local_report);
    assert!(local_report.evaluations > 0, "fault policy was not active");
}

#[test]
fn broker_resumes_from_journal_prefix_and_wal() {
    let spec = fspec(MeasurePolicy::disabled());
    let cfg = ga_cfg();
    let (full, full_journal, _) = local_run(spec, &cfg);

    // Simulate a broker killed after generation 1 was journaled and two
    // evaluations of generation 2 were WAL-logged but not yet merged.
    let cut = full_journal
        .records
        .iter()
        .position(|r| r.kind() == "generation")
        .unwrap()
        + 1;
    let prefix = audit_core::Journal {
        records: full_journal.records[..cut].to_vec(),
    };

    let dir = std::env::temp_dir().join(format!("audit-dist-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("resume.wal");
    {
        // First broker lineage: log two finished evaluations, then die.
        let rig = Rig::bulldozer();
        let mut first = Broker::bind("127.0.0.1:0", &ctx(spec), BrokerConfig::default()).unwrap();
        first.attach_wal(&wal_path).unwrap();
        drop(first);
        // Hand-write a result line like the dead broker would have
        // logged. (The genome is synthetic, so the entry exercises WAL
        // loading; direct prefill consumption is covered by
        // `broker_with_no_live_workers_serves_fully_prefilled_rounds`.)
        let mut writer = std::fs::OpenOptions::new()
            .append(true)
            .open(&wal_path)
            .unwrap();
        let sample = vec![
            audit_core::ga::Gene {
                opcode: Opcode::SimdFma,
                dst: 0,
                src1: 1,
                src2: 2,
                miss: false,
            };
            GENOME_LEN
        ];
        let (objectives, delta) = spec.evaluate_objectives(&rig, &sample);
        let fitness = objectives.primary();
        let line = audit_measure::json::JsonValue::object(vec![
            ("kind", audit_measure::json::JsonValue::String("result".into())),
            ("key", audit_core::journal::encode_u64(genome_key(&sample))),
            ("fitness", audit_measure::json::JsonValue::from_f64(fitness)),
            (
                "resilience",
                audit_measure::json::JsonValue::object(vec![
                    ("evaluations", audit_core::journal::encode_u64(delta.evaluations)),
                    ("retries", audit_core::journal::encode_u64(delta.retries)),
                    ("quarantined", audit_core::journal::encode_u64(delta.quarantined)),
                    ("backoff_cycles", audit_core::journal::encode_u64(delta.backoff_cycles)),
                ]),
            ),
        ]);
        use std::io::Write as _;
        writeln!(writer, "{}", line.encode()).unwrap();
    }

    // Second broker lineage: resume from the journal prefix with the
    // WAL attached.
    let mut broker = Broker::bind(
        "127.0.0.1:0",
        &ctx(spec),
        BrokerConfig {
            seed: cfg.seed,
            ..BrokerConfig::default()
        },
    )
    .unwrap();
    broker.attach_wal(&wal_path).unwrap();
    let addr = broker.addr().to_string();
    let worker = std::thread::spawn(move || run_worker(&addr, &WorkerOptions::default()));
    broker.wait_for_workers(1).unwrap();
    let mut mem = MemJournal::default();
    let resumed = GaRun::resume_dispatched(&prefix, &mut broker, &mut mem).unwrap();
    broker.shutdown();
    worker.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(resumed, full);
    // The resumed sink holds the records appended after the cut; prefix
    // + continuation reproduces the uninterrupted journal.
    let mut stitched = full_journal.records[..cut].to_vec();
    stitched.extend(mem.records.iter().cloned());
    assert_eq!(stitched, full_journal.records);
}

#[test]
fn broker_with_no_live_workers_serves_fully_prefilled_rounds() {
    // Every job answered by the WAL: no worker needed at all. This is
    // the degenerate resume case (broker died after the last
    // evaluation, before the generation record).
    let spec = fspec(MeasurePolicy::disabled());
    let rig = Rig::bulldozer();
    let population: Vec<Vec<audit_core::ga::Gene>> = (0..3)
        .map(|i| {
            vec![
                audit_core::ga::Gene {
                    opcode: if i == 0 { Opcode::Load } else { Opcode::SimdFma },
                    dst: i as u8,
                    src1: 1,
                    src2: 2,
                    miss: i == 1,
                };
                GENOME_LEN
            ]
        })
        .collect();
    let dir = std::env::temp_dir().join(format!("audit-dist-prefill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("prefill.wal");
    let expected: Vec<f64> = {
        use std::io::Write as _;
        let mut writer = std::fs::File::create(&wal_path).unwrap();
        population
            .iter()
            .map(|genome| {
                let (objectives, _) = spec.evaluate_objectives(&rig, genome);
                let fitness = objectives.primary();
                let line = audit_measure::json::JsonValue::object(vec![
                    ("kind", audit_measure::json::JsonValue::String("result".into())),
                    ("key", audit_core::journal::encode_u64(genome_key(genome))),
                    ("fitness", audit_measure::json::JsonValue::from_f64(fitness)),
                    (
                        "resilience",
                        audit_measure::json::JsonValue::object(vec![
                            ("evaluations", audit_core::journal::encode_u64(1)),
                            ("retries", audit_core::journal::encode_u64(0)),
                            ("quarantined", audit_core::journal::encode_u64(0)),
                            ("backoff_cycles", audit_core::journal::encode_u64(0)),
                        ]),
                    ),
                ]);
                writeln!(writer, "{}", line.encode()).unwrap();
                fitness
            })
            .collect()
    };
    let mut broker = Broker::bind("127.0.0.1:0", &ctx(spec), BrokerConfig::default()).unwrap();
    broker.attach_wal(&wal_path).unwrap();
    let mut scores = audit_core::ga::EvalDispatcher::evaluate(&mut broker, &population, &[0, 1, 2])
        .unwrap();
    scores.sort_unstable_by_key(|&(slot, _)| slot);
    let got: Vec<f64> = scores.iter().map(|(_, o)| o.primary()).collect();
    assert_eq!(got, expected);
    assert_eq!(
        audit_core::ga::EvalDispatcher::resilience(&broker).evaluations,
        3
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A hostile-but-survivable network: drops, duplicates, bit-flips,
/// stalled workers, and byzantine lies, all at the same time.
fn chaos_cfg(seed: u64) -> BrokerConfig {
    BrokerConfig {
        seed,
        // The lease must sit safely above worst-case eval latency on a
        // loaded test machine (~1 s), or busy workers get falsely
        // declared dead and their attempts spiral; 3 s keeps dropped
        // frames re-dispatched in test time without that spiral.
        heartbeat: Duration::from_millis(100),
        dead_after: Duration::from_secs(3),
        // A deep retry budget: the contract under test is bit-identity
        // *below* the quarantine budget, so the budget must not bind.
        retries: 20,
        // Cross-validate every job: a lie on an unverified job is
        // undetectable by construction, and this test is about the
        // defended contract, not the undefended corner.
        verify_fraction: 1.0,
        // Drops and corruptions cost a lease expiry each, so keep them
        // rarer than the cheap-to-recover duplicates and lies.
        chaos: NetFaultPlan::parse("3:drop=0.02,dup=0.05,corrupt=0.02,stall=0.01,lie=0.05")
            .unwrap(),
        ..BrokerConfig::default()
    }
}

/// Chaos workers rejoin after evictions and severs, each with its own
/// jitter salt so their reconnect schedules decorrelate.
fn chaos_workers(n: usize) -> Vec<WorkerOptions> {
    (0..n)
        .map(|i| WorkerOptions {
            connect_retry: Duration::from_millis(25),
            jitter_salt: 0xC4A0_5000 + i as u64,
            rejoin: true,
            ..WorkerOptions::default()
        })
        .collect()
}

#[test]
fn chaos_storm_is_bit_identical_across_worker_counts() {
    // The tentpole contract: with frames being dropped, duplicated,
    // corrupted, workers stalling out, and workers lying, the defended
    // broker still produces the exact bytes of the in-process run —
    // CRC32 catches the flips, leases re-dispatch the drops, request-id
    // retirement eats the duplicates, and cross-validation votes out
    // the liars.
    let spec = fspec(MeasurePolicy::disabled());
    let cfg = ga_cfg();
    let (local, local_journal, local_report) = local_run(spec, &cfg);
    for workers in [1usize, 2, 4] {
        let (dist, dist_journal, dist_report) = distributed_run_with(
            spec,
            &cfg,
            &chaos_workers(workers),
            workers,
            chaos_cfg(cfg.seed),
        );
        assert_eq!(dist, local, "GaRun diverged at {workers} workers under chaos");
        assert_eq!(
            dist_journal.records, local_journal.records,
            "journal diverged at {workers} workers under chaos"
        );
        assert_eq!(
            dist_report, local_report,
            "resilience accounting diverged at {workers} workers under chaos"
        );
    }
}

#[test]
fn chaos_plus_killed_worker_still_matches() {
    // Compound failure: the network is hostile *and* one worker dies
    // outright (kill hook, no goodbye) two evaluations in. The
    // rejoining survivor absorbs everything.
    let spec = fspec(MeasurePolicy::disabled());
    let cfg = ga_cfg();
    let (local, local_journal, _) = local_run(spec, &cfg);
    // Worker 0 keeps rejoin on (a chaos sever before the kill hook
    // fires must not surface as a worker error); once the hook fires it
    // returns without rejoining, like a SIGKILL.
    let mut opts = chaos_workers(2);
    opts[0].max_evals = Some(2);
    let (dist, dist_journal, _) =
        distributed_run_with(spec, &cfg, &opts, 2, chaos_cfg(cfg.seed));
    assert_eq!(dist, local);
    assert_eq!(dist_journal.records, local_journal.records);
}

#[test]
fn replayed_duplicate_result_is_ignored_with_accounting_unchanged() {
    // Satellite defense: a worker (or a confused middlebox) replaying a
    // result frame for an already-settled (key, attempt) must be a
    // no-op. The fake worker here answers every Eval *twice* with
    // byte-identical Result frames. The fault-injected policy makes the
    // resilience deltas nonzero, so double-merging would be visible.
    let policy = MeasurePolicy {
        faults: FaultPlan::parse("5:noise=0.001,crash=0.2").unwrap(),
        ..MeasurePolicy::disabled()
    };
    let spec = fspec(policy);
    let rig = Rig::bulldozer();
    let population: Vec<Vec<audit_core::ga::Gene>> = (0..3)
        .map(|i| {
            vec![
                audit_core::ga::Gene {
                    opcode: if i == 0 { Opcode::Load } else { Opcode::SimdFma },
                    dst: i as u8,
                    src1: 1,
                    src2: 2,
                    miss: i == 2,
                };
                GENOME_LEN
            ]
        })
        .collect();
    let mut expected_report = ResilienceReport::default();
    let expected: Vec<f64> = population
        .iter()
        .map(|g| {
            let (objectives, delta) = spec.evaluate_objectives(&rig, g);
            expected_report.merge(&delta);
            objectives.primary()
        })
        .collect();
    assert!(
        expected_report.evaluations > 0,
        "fault policy was not active — a double-merge would be invisible"
    );

    let mut broker = Broker::bind("127.0.0.1:0", &ctx(spec), BrokerConfig::default()).unwrap();
    let addr = broker.addr().to_string();
    let replayer = std::thread::spawn(move || {
        let mut conn = connect(&addr).unwrap();
        write_frame(
            &mut conn,
            &Msg::Hello {
                protocol: PROTOCOL_VERSION,
            }
            .to_json(),
        )
        .unwrap();
        let fspec = loop {
            match read_frame(&mut conn).unwrap() {
                FrameOutcome::Frame(payload) => match Msg::from_json(&payload).unwrap() {
                    Msg::Setup { ctx } => break ctx.spec,
                    other => panic!("expected setup, got {other:?}"),
                },
                FrameOutcome::Eof => panic!("broker hung up before setup"),
                _ => continue,
            }
        };
        let rig = Rig::bulldozer();
        let mut answered = 0usize;
        loop {
            match read_frame(&mut conn).unwrap() {
                FrameOutcome::Frame(payload) => match Msg::from_json(&payload).unwrap() {
                    Msg::Eval { id, genome } => {
                        let (objectives, resilience) = fspec.evaluate_objectives(&rig, &genome);
                        let reply = Msg::Result {
                            id,
                            objectives,
                            resilience,
                            cached: false,
                        }
                        .to_json();
                        // The answer, then its replay.
                        write_frame(&mut conn, &reply).unwrap();
                        write_frame(&mut conn, &reply).unwrap();
                        answered += 1;
                    }
                    Msg::Ping => write_frame(&mut conn, &Msg::Pong.to_json()).unwrap(),
                    Msg::Shutdown => return answered,
                    other => panic!("unexpected frame {other:?}"),
                },
                FrameOutcome::Eof => return answered,
                _ => continue,
            }
        }
    });
    broker.wait_for_workers(1).unwrap();
    let mut scores =
        audit_core::ga::EvalDispatcher::evaluate(&mut broker, &population, &[0, 1, 2]).unwrap();
    scores.sort_unstable_by_key(|&(slot, _)| slot);
    let got: Vec<f64> = scores.iter().map(|(_, o)| o.primary()).collect();
    assert_eq!(got, expected, "replayed results corrupted the scores");
    // Accounting: exactly one resilience merge per key, despite every
    // result arriving twice — a double-merge would double every counter.
    assert_eq!(
        audit_core::ga::EvalDispatcher::resilience(&broker),
        expected_report
    );
    broker.shutdown();
    let answered = replayer.join().unwrap();
    assert_eq!(answered, population.len(), "every job answered exactly once");
}
