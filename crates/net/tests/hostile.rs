//! Hostile-input fuzzing for the wire layer.
//!
//! A broker listens on a socket anyone can connect to, so the frame
//! reader and message decoder must survive *arbitrary* bytes — no
//! panic, no unbounded allocation, no misread accepted as valid. These
//! properties drive both through random byte soup and through
//! adversarially-damaged valid frames.

use proptest::prelude::*;

use audit_measure::json::JsonValue;
use audit_net::{crc32, read_frame, write_frame, FrameOutcome, Msg};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `read_frame` never panics on arbitrary bytes, and only ever
    /// yields a `Frame` whose CRC trailer checks out.
    #[test]
    fn read_frame_survives_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let mut cursor = &bytes[..];
        // Drain frames until the stream ends one way or another.
        while let Ok(FrameOutcome::Frame(_)) = read_frame(&mut cursor) {}
    }

    /// Flipping any single bit of an encoded frame never panics the
    /// reader, and flips inside the payload or trailer are caught by
    /// the CRC rather than decoded as a (different) valid frame.
    #[test]
    fn any_single_bit_flip_is_survived(bit in 0usize..2048) {
        let mut buf = Vec::new();
        let payload = Msg::Ping.to_json();
        write_frame(&mut buf, &payload).unwrap();
        let bit = bit % (buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
        let mut cursor = &buf[..];
        // A flip in the length prefix may resize the frame into a
        // truncated or oversized read; anything else lands in the CRC
        // check. A decoded frame is only acceptable if its trailer
        // genuinely matches — impossible for payload flips, so the
        // value must be the original.
        if let Ok(FrameOutcome::Frame(v)) = read_frame(&mut cursor) {
            prop_assert_eq!(v, payload);
        }
    }

    /// The message decoder never panics on arbitrary JSON-ish input.
    #[test]
    fn msg_decode_survives_arbitrary_text(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(v) = JsonValue::parse(&text) {
            let _ = Msg::from_json(&v);
        }
    }

    /// CRC32 sanity: damaging a payload always changes its checksum
    /// for single-bit damage (guaranteed by the polynomial).
    #[test]
    fn crc_catches_any_single_bit_payload_flip(
        payload in prop::collection::vec(any::<u8>(), 1..128),
        bit in 0usize..1024,
    ) {
        let clean = crc32(&payload);
        let mut damaged = payload.clone();
        let bit = bit % (damaged.len() * 8);
        damaged[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(crc32(&damaged) != clean, "flip went undetected");
    }
}

#[test]
fn crc32_matches_the_ieee_check_value() {
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
}
