//! Broker/worker protocol messages.
//!
//! Every message is one [`crate::frame`] frame whose payload is a JSON
//! object with a `kind` discriminant — the same self-describing style
//! as the run journal, and encoded with the same codec, so numeric
//! round-trips are exact ([`audit_core::journal::encode_u64`] /
//! [`JsonValue::from_f64`]).
//!
//! Handshake: worker sends [`Msg::Hello`]; broker replies with
//! [`Msg::Setup`] carrying the [`EvalContext`] from which the worker
//! rebuilds the broker's exact rig and fitness function. Then the
//! broker streams [`Msg::Eval`] requests and the worker answers each
//! with a [`Msg::Result`] carrying the objective vector and the
//! resilience-counter delta of that one evaluation. [`Msg::Ping`] /
//! [`Msg::Pong`] probe liveness; [`Msg::Shutdown`] (or a clean EOF)
//! ends the session.
//!
//! Scalar runs keep their historical wire bytes: a 1-axis result is
//! encoded as the plain `fitness` number, and the `objectives` array
//! (like the context's `objectives` axis spec) only appears when the
//! run optimizes more than one axis.

use audit_core::ga::{CostFunction, Gene, ObjectiveSet, Objectives};
use audit_core::journal::{decode_genome, decode_u64, encode_genome, encode_u64};
use audit_core::{FitnessSpec, MeasurePolicy, MeasureSpec, ResilienceReport, Rig};
use audit_error::AuditError;
use audit_measure::fault::{FaultPlan, KeyHasher};
use audit_measure::json::JsonValue;

/// Protocol revision. A broker and worker must agree exactly — there is
/// no negotiation, because both sides ship in one binary.
///
/// History: v1 was plain length-prefixed frames; v2 added the CRC32
/// trailer on every frame (see [`crate::frame`]), so a v1 peer cannot
/// even parse a v2 stream — the version bump makes the mismatch a clean
/// handshake rejection instead of a garbled-frame error.
pub const PROTOCOL_VERSION: u64 = 2;

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker → broker greeting, first frame on a connection.
    Hello {
        /// The worker's [`PROTOCOL_VERSION`].
        protocol: u64,
    },
    /// Broker → worker: everything needed to rebuild the fitness
    /// function. Sent once, immediately after a valid `Hello`.
    Setup {
        /// The evaluation context.
        ctx: EvalContext,
    },
    /// Broker → worker: score one genome.
    Eval {
        /// Broker-chosen request id, echoed back in the result.
        id: u64,
        /// The genome to score.
        genome: Vec<Gene>,
    },
    /// Worker → broker: the answer to an [`Msg::Eval`].
    Result {
        /// The request id being answered.
        id: u64,
        /// The objective vector (a 1-axis vector on scalar runs; its
        /// primary axis is the historical fitness score).
        objectives: Objectives,
        /// This evaluation's resilience-counter delta (zeros on the
        /// plain path).
        resilience: ResilienceReport,
        /// True when the worker served the answer from its
        /// cross-campaign eval cache instead of simulating. Pure
        /// observability (the cached answer is bit-identical to a
        /// fresh one); omitted from the wire when false, so
        /// cache-miss traffic keeps its prior bytes.
        cached: bool,
    },
    /// Broker → worker liveness probe.
    Ping,
    /// Worker → broker liveness reply.
    Pong,
    /// Broker → worker: the run is over, disconnect.
    Shutdown,
    /// Scraper → server: request a metrics snapshot. Must be the first
    /// frame on its connection; the server answers with one
    /// [`Msg::Metrics`] and closes (see [`crate::metrics`]).
    MetricsReq,
    /// Server → scraper: the plain-text metrics snapshot.
    Metrics {
        /// Line-oriented scrape text ([`crate::metrics::Scrape`]).
        text: String,
    },
}

impl Msg {
    /// Encodes the message as a frame payload.
    pub fn to_json(&self) -> JsonValue {
        let kind = |k: &str| ("kind", JsonValue::String(k.into()));
        match self {
            Msg::Hello { protocol } => {
                JsonValue::object(vec![kind("hello"), ("protocol", encode_u64(*protocol))])
            }
            Msg::Setup { ctx } => JsonValue::object(vec![kind("setup"), ("ctx", ctx.to_json())]),
            Msg::Eval { id, genome } => JsonValue::object(vec![
                kind("eval"),
                ("id", encode_u64(*id)),
                ("genome", encode_genome(genome)),
            ]),
            Msg::Result {
                id,
                objectives,
                resilience,
                cached,
            } => {
                let mut fields = vec![
                    kind("result"),
                    ("id", encode_u64(*id)),
                    ("fitness", JsonValue::from_f64(objectives.primary())),
                ];
                // Scalar results keep the historical single-number
                // encoding; the array only rides along when there is
                // more than one axis to carry.
                if objectives.len() > 1 {
                    fields.push(("objectives", encode_objectives(objectives)));
                }
                if *cached {
                    fields.push(("cached", JsonValue::Bool(true)));
                }
                fields.push(("resilience", encode_resilience(resilience)));
                JsonValue::object(fields)
            }
            Msg::Ping => JsonValue::object(vec![kind("ping")]),
            Msg::Pong => JsonValue::object(vec![kind("pong")]),
            Msg::Shutdown => JsonValue::object(vec![kind("shutdown")]),
            Msg::MetricsReq => JsonValue::object(vec![kind("metrics_req")]),
            Msg::Metrics { text } => JsonValue::object(vec![
                kind("metrics"),
                ("text", JsonValue::String(text.clone())),
            ]),
        }
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Journal`] for an unknown `kind` or a
    /// missing/mistyped field.
    pub fn from_json(v: &JsonValue) -> Result<Msg, AuditError> {
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| AuditError::journal(0, "message has no `kind`"))?;
        match kind {
            "hello" => Ok(Msg::Hello {
                protocol: field_u64(v, "hello", "protocol")?,
            }),
            "setup" => Ok(Msg::Setup {
                ctx: EvalContext::from_json(
                    v.get("ctx")
                        .ok_or_else(|| AuditError::journal(0, "setup has no `ctx`"))?,
                )?,
            }),
            "eval" => Ok(Msg::Eval {
                id: field_u64(v, "eval", "id")?,
                genome: decode_genome(
                    v.get("genome")
                        .ok_or_else(|| AuditError::journal(0, "eval has no `genome`"))?,
                )?,
            }),
            "result" => {
                let fitness = field_f64(v, "result", "fitness")?;
                let objectives = match v.get("objectives") {
                    Some(arr) => decode_objectives(arr)?,
                    None => Objectives::scalar(fitness),
                };
                Ok(Msg::Result {
                    id: field_u64(v, "result", "id")?,
                    objectives,
                    resilience: decode_resilience(
                        v.get("resilience")
                            .ok_or_else(|| AuditError::journal(0, "result has no `resilience`"))?,
                    )?,
                    cached: v.get("cached").and_then(JsonValue::as_bool).unwrap_or(false),
                })
            }
            "ping" => Ok(Msg::Ping),
            "pong" => Ok(Msg::Pong),
            "shutdown" => Ok(Msg::Shutdown),
            "metrics_req" => Ok(Msg::MetricsReq),
            "metrics" => Ok(Msg::Metrics {
                text: v
                    .get("text")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| AuditError::journal(0, "metrics has no `text`"))?
                    .to_string(),
            }),
            other => Err(AuditError::journal(0, format!("unknown message kind `{other}`"))),
        }
    }
}

/// Everything a worker needs to rebuild the broker's fitness function:
/// which chip model, at what operating point, and the full
/// [`FitnessSpec`]. Because [`FitnessSpec::evaluate_objectives`] is
/// deterministic per genome, shipping the *spec* rather than results is
/// what makes distributed runs bit-identical to local ones.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalContext {
    /// Chip model name (`bulldozer` or `phenom`).
    pub chip: String,
    /// Supply-voltage override, if any.
    pub volts: Option<f64>,
    /// FPU dispatch-throttle cap, if any.
    pub throttle: Option<u32>,
    /// The fitness function to evaluate candidates with.
    pub spec: FitnessSpec,
    /// The run's evaluation-cascade fast-tier budget (`0` = cascade
    /// off; omitted from the wire encoding when 0, like the other
    /// optional knobs, so cascade-free setups keep their pre-cascade
    /// bytes). Pruning happens broker-side *before* dispatch — workers
    /// only ever see candidates that survived the cascade, so they need
    /// no cascade logic and checkpoints stay interchangeable between
    /// local and distributed runs. Shipped so the worker can log the
    /// run configuration it is serving (docs/DISTRIBUTED.md).
    pub fast_tier_budget: usize,
}

impl EvalContext {
    /// Encodes the context for a [`Msg::Setup`].
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![("chip", JsonValue::String(self.chip.clone()))];
        if let Some(volts) = self.volts {
            fields.push(("volts", JsonValue::from_f64(volts)));
        }
        if let Some(throttle) = self.throttle {
            fields.push(("throttle", encode_u64(u64::from(throttle))));
        }
        if self.fast_tier_budget > 0 {
            fields.push(("fast_tier_budget", encode_u64(self.fast_tier_budget as u64)));
        }
        let s = &self.spec;
        fields.push(("threads", encode_u64(s.threads as u64)));
        fields.push(("sub_blocks", encode_u64(s.sub_blocks as u64)));
        fields.push(("lp_slots", encode_u64(s.lp_slots as u64)));
        fields.push(("cost", JsonValue::String(cost_tag(s.cost).into())));
        fields.push(("measure", encode_measure_spec(&s.spec)));
        fields.push(("policy", encode_policy(&s.policy)));
        // The droop-only default is omitted so scalar setups keep their
        // pre-Pareto wire bytes.
        if s.objectives != ObjectiveSet::default() {
            fields.push(("objectives", JsonValue::String(s.objectives.to_spec())));
        }
        JsonValue::object(fields)
    }

    /// Decodes a [`Msg::Setup`] context.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Journal`] for missing or mistyped fields
    /// and for an unparsable fault spec.
    pub fn from_json(v: &JsonValue) -> Result<EvalContext, AuditError> {
        let chip = v
            .get("chip")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| AuditError::journal(0, "ctx has no `chip`"))?
            .to_string();
        let volts = v.get("volts").and_then(JsonValue::as_f64);
        let throttle = match v.get("throttle") {
            Some(t) => Some(u32::try_from(decode_u64(t)?).map_err(|_| {
                AuditError::journal(0, "ctx `throttle` exceeds u32")
            })?),
            None => None,
        };
        let cost = match v.get("cost").and_then(JsonValue::as_str) {
            Some("max_droop") => CostFunction::MaxDroop,
            Some("droop_per_amp") => CostFunction::DroopPerAmp,
            Some("sensitive_path_droop") => CostFunction::SensitivePathDroop,
            Some(other) => {
                return Err(AuditError::journal(0, format!("unknown cost `{other}`")))
            }
            None => return Err(AuditError::journal(0, "ctx has no `cost`")),
        };
        let spec = FitnessSpec {
            threads: field_u64(v, "ctx", "threads")? as usize,
            sub_blocks: field_u64(v, "ctx", "sub_blocks")? as usize,
            lp_slots: field_u64(v, "ctx", "lp_slots")? as usize,
            cost,
            spec: decode_measure_spec(
                v.get("measure")
                    .ok_or_else(|| AuditError::journal(0, "ctx has no `measure`"))?,
            )?,
            policy: decode_policy(
                v.get("policy")
                    .ok_or_else(|| AuditError::journal(0, "ctx has no `policy`"))?,
            )?,
            objectives: match v.get("objectives").and_then(JsonValue::as_str) {
                Some(spec) => ObjectiveSet::parse(spec)?,
                None => ObjectiveSet::default(),
            },
        };
        let fast_tier_budget = match v.get("fast_tier_budget") {
            Some(b) => decode_u64(b)? as usize,
            None => 0,
        };
        Ok(EvalContext {
            chip,
            volts,
            throttle,
            spec,
            fast_tier_budget,
        })
    }

    /// A stable content hash of the context (FNV over its canonical
    /// wire encoding): two contexts fingerprint equal exactly when
    /// their encodings are byte-equal. Used for display and metrics —
    /// the worker's cross-campaign cache is keyed by the *full*
    /// encoding (interned), never by this hash, so a fingerprint
    /// collision can mislabel a metric line but can never leak a
    /// result between tenants.
    pub fn fingerprint(&self) -> u64 {
        let mut h = KeyHasher::new();
        h.write_bytes(self.to_json().encode().as_bytes());
        h.finish()
    }

    /// Builds the worker-side rig this context describes.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::InvalidConfig`] for an unknown chip name.
    pub fn rig(&self) -> Result<Rig, AuditError> {
        let mut rig = match self.chip.as_str() {
            "bulldozer" => Rig::bulldozer(),
            "phenom" => Rig::phenom(),
            other => {
                return Err(AuditError::invalid(
                    "EvalContext",
                    "chip",
                    format!("unknown chip `{other}` (expected bulldozer or phenom)"),
                ))
            }
        };
        if let Some(volts) = self.volts {
            rig = rig.at_voltage(volts);
        }
        if let Some(cap) = self.throttle {
            rig = rig.with_fpu_throttle(cap);
        }
        Ok(rig)
    }
}

fn cost_tag(cost: CostFunction) -> &'static str {
    match cost {
        CostFunction::MaxDroop => "max_droop",
        CostFunction::DroopPerAmp => "droop_per_amp",
        CostFunction::SensitivePathDroop => "sensitive_path_droop",
    }
}

fn encode_measure_spec(spec: &MeasureSpec) -> JsonValue {
    let mut fields = vec![
        ("warmup_cycles", encode_u64(spec.warmup_cycles)),
        ("record_cycles", encode_u64(spec.record_cycles)),
        ("settle_cycles", encode_u64(spec.settle_cycles)),
        ("check_failure", JsonValue::Bool(spec.check_failure)),
        ("envelope_decimation", encode_u64(spec.envelope_decimation)),
        ("keep_traces", JsonValue::Bool(spec.keep_traces)),
    ];
    if let Some(level) = spec.trigger_below_nominal {
        fields.push(("trigger_below_nominal", JsonValue::from_f64(level)));
    }
    JsonValue::object(fields)
}

fn decode_measure_spec(v: &JsonValue) -> Result<MeasureSpec, AuditError> {
    Ok(MeasureSpec {
        warmup_cycles: field_u64(v, "measure", "warmup_cycles")?,
        record_cycles: field_u64(v, "measure", "record_cycles")?,
        settle_cycles: field_u64(v, "measure", "settle_cycles")?,
        check_failure: field_bool(v, "measure", "check_failure")?,
        trigger_below_nominal: v.get("trigger_below_nominal").and_then(JsonValue::as_f64),
        envelope_decimation: field_u64(v, "measure", "envelope_decimation")?,
        keep_traces: field_bool(v, "measure", "keep_traces")?,
    })
}

fn encode_policy(policy: &MeasurePolicy) -> JsonValue {
    let mut fields = Vec::new();
    if policy.faults.is_enabled() {
        fields.push(("faults", JsonValue::String(policy.faults.spec_string())));
    }
    fields.push(("repeat", encode_u64(u64::from(policy.repeat))));
    fields.push(("retries", encode_u64(u64::from(policy.retries))));
    if let Some(budget) = policy.cycle_budget {
        fields.push(("cycle_budget", encode_u64(budget)));
    }
    fields.push(("mad_threshold", JsonValue::from_f64(policy.mad_threshold)));
    fields.push((
        "quarantine_fitness",
        JsonValue::from_f64(policy.quarantine_fitness),
    ));
    JsonValue::object(fields)
}

fn decode_policy(v: &JsonValue) -> Result<MeasurePolicy, AuditError> {
    let faults = match v.get("faults").and_then(JsonValue::as_str) {
        Some(spec) => FaultPlan::parse(spec)?,
        None => FaultPlan::disabled(),
    };
    let cycle_budget = match v.get("cycle_budget") {
        Some(b) => Some(decode_u64(b)?),
        None => None,
    };
    Ok(MeasurePolicy {
        faults,
        repeat: u32::try_from(field_u64(v, "policy", "repeat")?)
            .map_err(|_| AuditError::journal(0, "policy `repeat` exceeds u32"))?,
        retries: u32::try_from(field_u64(v, "policy", "retries")?)
            .map_err(|_| AuditError::journal(0, "policy `retries` exceeds u32"))?,
        cycle_budget,
        mad_threshold: field_f64(v, "policy", "mad_threshold")?,
        quarantine_fitness: field_f64(v, "policy", "quarantine_fitness")?,
    })
}

pub(crate) fn encode_objectives(objs: &Objectives) -> JsonValue {
    JsonValue::Array(objs.0.iter().map(|&x| JsonValue::from_f64(x)).collect())
}

pub(crate) fn decode_objectives(v: &JsonValue) -> Result<Objectives, AuditError> {
    let items = v
        .as_array()
        .ok_or_else(|| AuditError::journal(0, "`objectives` is not an array"))?;
    let mut axes = Vec::with_capacity(items.len());
    for item in items {
        axes.push(
            item.as_f64()
                .ok_or_else(|| AuditError::journal(0, "`objectives` axis is not a number"))?,
        );
    }
    Ok(Objectives(axes))
}

pub(crate) fn encode_resilience(r: &ResilienceReport) -> JsonValue {
    JsonValue::object(vec![
        ("evaluations", encode_u64(r.evaluations)),
        ("retries", encode_u64(r.retries)),
        ("quarantined", encode_u64(r.quarantined)),
        ("backoff_cycles", encode_u64(r.backoff_cycles)),
    ])
}

pub(crate) fn decode_resilience(v: &JsonValue) -> Result<ResilienceReport, AuditError> {
    Ok(ResilienceReport {
        evaluations: field_u64(v, "resilience", "evaluations")?,
        retries: field_u64(v, "resilience", "retries")?,
        quarantined: field_u64(v, "resilience", "quarantined")?,
        backoff_cycles: field_u64(v, "resilience", "backoff_cycles")?,
    })
}

fn field_u64(v: &JsonValue, ctx: &str, key: &str) -> Result<u64, AuditError> {
    decode_u64(
        v.get(key)
            .ok_or_else(|| AuditError::journal(0, format!("{ctx} has no `{key}`")))?,
    )
}

fn field_f64(v: &JsonValue, ctx: &str, key: &str) -> Result<f64, AuditError> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| AuditError::journal(0, format!("{ctx} has no number `{key}`")))
}

fn field_bool(v: &JsonValue, ctx: &str, key: &str) -> Result<bool, AuditError> {
    v.get(key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| AuditError::journal(0, format!("{ctx} has no bool `{key}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use audit_cpu::isa::Opcode;

    fn sample_genome() -> Vec<Gene> {
        vec![
            Gene {
                opcode: Opcode::SimdFma,
                dst: 3,
                src1: 12,
                src2: 13,
                miss: false,
            },
            Gene {
                opcode: Opcode::Load,
                dst: 1,
                src1: 2,
                src2: 0,
                miss: true,
            },
        ]
    }

    fn sample_ctx() -> EvalContext {
        EvalContext {
            chip: "phenom".into(),
            volts: Some(1.15),
            throttle: Some(2),
            spec: FitnessSpec {
                threads: 2,
                sub_blocks: 3,
                lp_slots: 5,
                cost: CostFunction::DroopPerAmp,
                spec: MeasureSpec::reporting(),
                policy: MeasurePolicy {
                    faults: FaultPlan::parse("7:noise=0.002,hang=0.1").unwrap(),
                    repeat: 3,
                    retries: 2,
                    cycle_budget: Some(120_000),
                    mad_threshold: 3.5,
                    quarantine_fitness: 0.0,
                },
                objectives: ObjectiveSet::parse("droop,margin").unwrap(),
            },
            fast_tier_budget: 6,
        }
    }

    fn round_trip(msg: Msg) {
        assert_eq!(Msg::from_json(&msg.to_json()).unwrap(), msg);
    }

    #[test]
    fn every_message_round_trips() {
        round_trip(Msg::Hello {
            protocol: PROTOCOL_VERSION,
        });
        round_trip(Msg::Setup { ctx: sample_ctx() });
        round_trip(Msg::Eval {
            id: 42,
            genome: sample_genome(),
        });
        round_trip(Msg::Result {
            id: 42,
            objectives: Objectives::scalar(-0.08125),
            resilience: ResilienceReport {
                evaluations: 1,
                retries: 2,
                quarantined: 0,
                backoff_cycles: 4096,
            },
            cached: false,
        });
        round_trip(Msg::Result {
            id: 43,
            objectives: Objectives(vec![-0.08125, 14.5, -0.03]),
            resilience: ResilienceReport::default(),
            cached: true,
        });
        round_trip(Msg::Ping);
        round_trip(Msg::Pong);
        round_trip(Msg::Shutdown);
        round_trip(Msg::MetricsReq);
        round_trip(Msg::Metrics {
            text: "# audit serve metrics\naudit_workers 2\n".into(),
        });
    }

    #[test]
    fn minimal_context_round_trips_without_optional_fields() {
        let ctx = EvalContext {
            chip: "bulldozer".into(),
            volts: None,
            throttle: None,
            spec: FitnessSpec {
                threads: 1,
                sub_blocks: 1,
                lp_slots: 0,
                cost: CostFunction::MaxDroop,
                spec: MeasureSpec::reporting(),
                policy: MeasurePolicy::disabled(),
                objectives: ObjectiveSet::default(),
            },
            fast_tier_budget: 0,
        };
        let encoded = ctx.to_json();
        let decoded = EvalContext::from_json(&encoded).unwrap();
        assert_eq!(decoded, ctx);
        assert!(decoded.spec.policy.is_noop());
        // A disabled cascade is omitted from the wire bytes entirely,
        // so cascade-free setups keep their pre-cascade encoding.
        assert!(encoded.get("fast_tier_budget").is_none());
        // Likewise the droop-only objective default keeps pre-Pareto
        // wire bytes.
        assert!(encoded.get("objectives").is_none());
    }

    #[test]
    fn scalar_result_keeps_the_plain_fitness_encoding() {
        let msg = Msg::Result {
            id: 7,
            objectives: Objectives::scalar(-0.0625),
            resilience: ResilienceReport::default(),
            cached: false,
        };
        let encoded = msg.to_json();
        assert!(encoded.get("objectives").is_none());
        // A cache miss (the historical case) is omitted from the wire,
        // so miss traffic keeps its prior bytes.
        assert!(encoded.get("cached").is_none());
        assert_eq!(encoded.get("fitness").and_then(JsonValue::as_f64), Some(-0.0625));
        assert_eq!(Msg::from_json(&encoded).unwrap(), msg);
    }

    #[test]
    fn vector_result_carries_the_axes_and_primary() {
        let msg = Msg::Result {
            id: 8,
            objectives: Objectives(vec![-0.0625, 12.0]),
            resilience: ResilienceReport::default(),
            cached: false,
        };
        let encoded = msg.to_json();
        // The primary axis still rides the `fitness` field so scalar
        // consumers (and the WAL) read the same number either way.
        assert_eq!(encoded.get("fitness").and_then(JsonValue::as_f64), Some(-0.0625));
        assert!(encoded.get("objectives").is_some());
        assert_eq!(Msg::from_json(&encoded).unwrap(), msg);
    }

    #[test]
    fn fingerprint_tracks_the_wire_encoding_exactly() {
        let ctx = sample_ctx();
        // Stable across calls and across equal contexts.
        assert_eq!(ctx.fingerprint(), ctx.fingerprint());
        assert_eq!(ctx.fingerprint(), sample_ctx().fingerprint());
        // Any field that changes the encoding changes the print.
        let other = EvalContext {
            volts: Some(1.2),
            ..sample_ctx()
        };
        assert_ne!(ctx.fingerprint(), other.fingerprint());
        let other = EvalContext {
            chip: "bulldozer".into(),
            ..sample_ctx()
        };
        assert_ne!(ctx.fingerprint(), other.fingerprint());
    }

    #[test]
    fn context_rebuilds_the_rig() {
        let rig = sample_ctx().rig().unwrap();
        assert_eq!(rig.chip.name, "phenom-x4");
        let bad = EvalContext {
            chip: "epyc".into(),
            ..sample_ctx()
        };
        assert!(bad.rig().is_err());
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let v = JsonValue::object(vec![("kind", JsonValue::String("warp".into()))]);
        assert!(Msg::from_json(&v).is_err());
    }
}
