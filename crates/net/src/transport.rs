//! Std-only stream transports behind one address syntax.
//!
//! Addresses are either `host:port` (TCP; `host:0` asks the OS for a
//! free port — read the bound address back with
//! [`Listener::local_addr_string`]) or `unix:/path/to.sock` (Unix
//! domain socket; the path is unlinked before binding so a stale socket
//! file from a killed broker does not block a restart).
//!
//! The transport itself is a faithful byte pipe: framing and integrity
//! live one layer up in [`crate::frame`], and deterministic network
//! fault injection ([`crate::chaos::NetFaultPlan`]) is applied by the
//! broker at its side of the frame boundary — never inside the
//! transport — so a worker binary contains no chaos code at all.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};

/// A bound listening socket.
#[derive(Debug)]
pub enum Listener {
    /// A TCP listener, e.g. `127.0.0.1:9000`.
    Tcp(TcpListener),
    /// A Unix-domain listener, e.g. `unix:/tmp/audit.sock`.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds `addr` (`host:port` or `unix:/path`).
    ///
    /// # Errors
    ///
    /// Returns the underlying bind error; for `unix:` also any failure
    /// removing a stale socket file other than it not existing.
    pub fn bind(addr: &str) -> std::io::Result<Listener> {
        #[cfg(unix)]
        if let Some(path) = addr.strip_prefix("unix:") {
            match std::fs::remove_file(path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
            return Ok(Listener::Unix(UnixListener::bind(path)?));
        }
        Ok(Listener::Tcp(TcpListener::bind(addr)?))
    }

    /// The bound address in the same syntax [`Listener::bind`] accepts,
    /// suitable for handing to [`connect`]. For TCP this resolves
    /// `:0` to the actual port.
    pub fn local_addr_string(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?:?".into()),
            #[cfg(unix)]
            Listener::Unix(l) => {
                let path = l
                    .local_addr()
                    .ok()
                    .and_then(|a| a.as_pathname().map(std::path::Path::to_path_buf))
                    .unwrap_or_default();
                format!("unix:{}", path.display())
            }
        }
    }

    /// Blocks until a peer connects.
    ///
    /// # Errors
    ///
    /// Returns the underlying accept error.
    pub fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true).ok();
                Ok(Conn::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(Conn::Unix(s))
            }
        }
    }
}

/// A connected byte stream (either transport), usable as `Read` and
/// `Write` and cloneable so one thread can read while another writes.
#[derive(Debug)]
pub enum Conn {
    /// A TCP stream.
    Tcp(TcpStream),
    /// A Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Clones the handle; both halves refer to the same socket.
    ///
    /// # Errors
    ///
    /// Returns the underlying duplication error.
    pub fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => Ok(Conn::Tcp(s.try_clone()?)),
            #[cfg(unix)]
            Conn::Unix(s) => Ok(Conn::Unix(s.try_clone()?)),
        }
    }

    /// Shuts down both directions; in-flight reads on clones return EOF.
    pub fn shutdown(&self) {
        match self {
            Conn::Tcp(s) => {
                s.shutdown(std::net::Shutdown::Both).ok();
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                s.shutdown(std::net::Shutdown::Both).ok();
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Connects to `addr` (`host:port` or `unix:/path`).
///
/// # Errors
///
/// Returns the underlying connect error.
pub fn connect(addr: &str) -> std::io::Result<Conn> {
    #[cfg(unix)]
    if let Some(path) = addr.strip_prefix("unix:") {
        return Ok(Conn::Unix(UnixStream::connect(path)?));
    }
    let s = TcpStream::connect(addr)?;
    s.set_nodelay(true).ok();
    Ok(Conn::Tcp(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_frame, write_frame, FrameOutcome};
    use audit_measure::json::JsonValue;

    #[test]
    fn tcp_loopback_round_trips_a_frame() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr_string();
        let payload = JsonValue::object(vec![("kind", JsonValue::String("ping".into()))]);
        let sent = payload.clone();
        let join = std::thread::spawn(move || {
            let mut conn = connect(&addr).unwrap();
            write_frame(&mut conn, &sent).unwrap();
        });
        let mut server = listener.accept().unwrap();
        assert_eq!(read_frame(&mut server).unwrap(), FrameOutcome::Frame(payload));
        assert_eq!(read_frame(&mut server).unwrap(), FrameOutcome::Eof);
        join.join().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trips_and_rebinds_over_stale_path() {
        let dir = std::env::temp_dir().join(format!("audit-net-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let addr = format!("unix:{}", dir.join("t.sock").display());
        // Bind twice: the second bind must clear the first's socket file.
        let _stale = Listener::bind(&addr).unwrap();
        let listener = Listener::bind(&addr).unwrap();
        assert_eq!(listener.local_addr_string(), addr);
        let payload = JsonValue::from_u64(42);
        let sent = payload.clone();
        let to = addr.clone();
        let join = std::thread::spawn(move || {
            let mut conn = connect(&to).unwrap();
            write_frame(&mut conn, &sent).unwrap();
        });
        let mut server = listener.accept().unwrap();
        assert_eq!(read_frame(&mut server).unwrap(), FrameOutcome::Frame(payload));
        join.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
