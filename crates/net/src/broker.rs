//! The broker: accepts workers, dispatches evaluations, merges results
//! bit-identically — and defends all of it against a hostile network.
//!
//! The broker is an [`EvalDispatcher`], so the GA engine drives it
//! exactly as it drives the in-process thread pool: hand over the slots
//! to score, get back `(slot, objectives)` pairs. Everything
//! scheduling-related stays inside this module and provably cannot
//! reach the results:
//!
//! * **Content-addressed work.** Each job is keyed by
//!   [`audit_core::resilient::genome_key`]; a worker computes
//!   [`audit_core::FitnessSpec::evaluate_objectives`], which is
//!   deterministic per genome, so *which* worker runs a job (or how
//!   many times it is re-run after a worker dies) cannot change the
//!   result.
//! * **Deterministic assignment.** A job's worker is chosen by FNV
//!   hashing `(seed, key, attempt, copy)` — the same
//!   [`KeyHasher`] discipline the fault injector uses — over the sorted
//!   live-worker list, with a linear probe for window slack. Scheduling
//!   is reproducible, not load-dependent.
//! * **Bounded in-flight window.** At most
//!   [`BrokerConfig::window`] evaluations are outstanding per worker;
//!   the rest queue in the broker, so a slow worker applies backpressure
//!   instead of hoarding a generation.
//! * **Worker loss → deterministic retry.** A dead worker's in-flight
//!   jobs are re-dispatched with `attempt + 1` (landing on another
//!   worker); after [`BrokerConfig::retries`] losses the job is
//!   quarantined at [`BrokerConfig::quarantine_fitness`], mirroring the
//!   single-process [`audit_core::MeasurePolicy`] quarantine discipline.
//! * **Dispatch leases.** Every outstanding evaluation carries a lease
//!   of [`BrokerConfig::dead_after`]; a job whose answer never arrives
//!   (dropped frame, CRC32-rejected frame, wedged worker) is
//!   re-dispatched at the next attempt when the lease expires. A late
//!   answer for a superseded dispatch finds its request id retired and
//!   is ignored — duplicate/stale rejection is keyed on the dispatch
//!   id, which is unique per `(key, attempt, copy)` issue.
//! * **Cross-validation.** With [`BrokerConfig::verify_fraction`] > 0,
//!   a pure-hash-selected fraction of jobs is dispatched to *two*
//!   workers and settles only when two answers agree bit-for-bit. A
//!   disagreeing (byzantine) worker is in the minority once agreement
//!   forms: it is evicted, its in-flight jobs are quarantined for
//!   re-dispatch, and a `worker_evicted` record lands in the WAL.
//!   Exactly one resilience delta is merged per job, so the final
//!   [`ResilienceReport`] stays identical to a plain in-process run.
//! * **Write-ahead log.** With [`Broker::attach_wal`], every dispatch is
//!   logged before the frame is sent and every result after it arrives,
//!   as NDJSON next to the run journal. A killed broker resumed with
//!   `--resume` replays finished generations from the journal and
//!   prefills the partial generation from the WAL instead of
//!   re-measuring.
//! * **Chaos.** [`BrokerConfig::chaos`] injects a deterministic
//!   [`NetFaultPlan`] at the broker's own wire boundary (see
//!   [`crate::chaos`]): outbound `eval` frames are dropped, duplicated,
//!   or bit-flipped as they are sent; inbound `result` frames are
//!   discarded, replayed, perturbed (byzantine lies), or escalated to a
//!   full worker stall as they are admitted. Every defense above is
//!   exercised by it; with the plan disabled the wire bytes are
//!   untouched.
//! * **Metrics.** The broker keeps [`ServeMetrics`] counters
//!   (dispatches, results, cache hits, quarantines, evictions, queue
//!   depth) and answers any connection whose *first* frame is
//!   [`Msg::MetricsReq`] with a plain-text scrape snapshot — a fleet of
//!   one gets the same observability surface as `audit fleet serve`.
//!   Counters never feed back into scheduling, so scraping cannot
//!   perturb a run.
//! * **Idle parking.** With no workers connected and nothing in
//!   flight, the dispatch loop blocks on its event channel (parking the
//!   thread on the channel's condvar) instead of spinning the heartbeat
//!   timer; a joining worker wakes it. Heartbeat polling only runs
//!   while there is someone to ping or a lease to expire.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use audit_core::ga::{EvalDispatcher, Gene, Objectives};
use audit_core::resilient::genome_key;
use audit_core::ResilienceReport;
use audit_error::AuditError;
use audit_measure::fault::{mix, uniform, KeyHasher};

use crate::chaos::{Direction, FrameFate, NetFaultPlan};
use crate::frame::{read_frame, write_corrupted_frame, write_frame, FrameOutcome};
use crate::metrics::ServeMetrics;
use crate::proto::{EvalContext, Msg, PROTOCOL_VERSION};
use crate::transport::{Conn, Listener};
use crate::wal::{Prefill, Wal};

/// Broker tuning knobs. Results are invariant to every one of them;
/// they shape scheduling, liveness detection, and failure handling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrokerConfig {
    /// Seed folded into the worker-assignment hash (use the GA seed so
    /// a rerun schedules identically).
    pub seed: u64,
    /// Maximum in-flight evaluations per worker.
    pub window: usize,
    /// Idle interval between liveness pings.
    pub heartbeat: Duration,
    /// A worker silent for this long is declared lost and its in-flight
    /// jobs are re-dispatched; doubles as the dispatch lease — a job
    /// unanswered for this long is presumed lost on the wire and
    /// re-dispatched at the next attempt.
    pub dead_after: Duration,
    /// Worker-loss re-dispatches allowed per job before quarantine.
    pub retries: u32,
    /// Fitness assigned to a job that exhausted its re-dispatch budget.
    pub quarantine_fitness: f64,
    /// Fraction of jobs cross-validated on two workers, selected by a
    /// pure hash of `(seed, key)` so the choice survives resume and is
    /// independent of scheduling. `0.0` disables cross-validation;
    /// `1.0` verifies every job. Detection of byzantine (lying)
    /// workers only happens on verified jobs.
    pub verify_fraction: f64,
    /// Deterministic network fault injection, applied at the broker's
    /// wire boundary. [`NetFaultPlan::disabled`] leaves every byte
    /// untouched.
    pub chaos: NetFaultPlan,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            seed: 0,
            window: 2,
            heartbeat: Duration::from_millis(1000),
            dead_after: Duration::from_millis(10_000),
            retries: 4,
            quarantine_fitness: 0.0,
            verify_fraction: 0.0,
            chaos: NetFaultPlan::disabled(),
        }
    }
}

/// Events flowing from the accept/reader threads to the broker.
enum Event {
    Joined { worker: u64, writer: Conn },
    Result {
        worker: u64,
        id: u64,
        objectives: Objectives,
        resilience: ResilienceReport,
    },
    Pong { worker: u64 },
    Lost { worker: u64 },
}

struct WorkerState {
    writer: Conn,
    last_seen: Instant,
    in_flight: usize,
}

/// One queued dispatch: a copy of a job awaiting a worker.
#[derive(Debug, Clone, Copy)]
struct Pending {
    slot: usize,
    key: u64,
    attempt: u32,
    copy: u32,
}

struct InFlight {
    slot: usize,
    key: u64,
    attempt: u32,
    copy: u32,
    worker: u64,
    sent_at: Instant,
}

/// One answer received for a job, pending settlement.
struct Vote {
    id: u64,
    worker: u64,
    objectives: Objectives,
    resilience: ResilienceReport,
}

/// Per-job settlement state: how many bit-identical votes are needed
/// (1 normally, 2 under cross-validation) and the votes so far.
struct KeyState {
    slot: usize,
    needed: usize,
    /// Copies issued so far (primary, verification, tiebreaks) — the
    /// next copy index, so chaos draws stay distinct per dispatch.
    dispatched: u32,
    votes: Vec<Vote>,
}

/// One evaluation round's bookkeeping. Empty outside a round (e.g. in
/// [`Broker::wait_for_workers`]).
#[derive(Default)]
struct Round {
    in_flight: HashMap<u64, InFlight>,
    pending: VecDeque<Pending>,
    keys: HashMap<u64, KeyState>,
    /// Keys whose score is final; anything else arriving for them is a
    /// stale duplicate and is ignored.
    settled: HashSet<u64>,
}

impl Round {
    fn outstanding(&self, key: u64) -> bool {
        self.pending.iter().any(|p| p.key == key)
            || self.in_flight.values().any(|j| j.key == key)
    }
}

fn objective_bits(objectives: &Objectives) -> Vec<u64> {
    objectives.0.iter().map(|x| x.to_bits()).collect()
}

/// The broker side of distributed evaluation. See the module docs.
pub struct Broker {
    cfg: BrokerConfig,
    addr: String,
    rx: Receiver<Event>,
    workers: HashMap<u64, WorkerState>,
    next_req: u64,
    /// Objective-vector arity of the run (from the setup context), so
    /// quarantine verdicts splat the fallback fitness across the same
    /// number of axes every worker reports.
    n_objectives: usize,
    report: ResilienceReport,
    wal: Option<Wal>,
    prefill: Prefill,
    metrics: Arc<ServeMetrics>,
    stop: Arc<AtomicBool>,
    /// Every accepted socket, including ones still mid-handshake whose
    /// `Joined` event has not been drained — shutdown must release them
    /// all or a late joiner blocks on a read forever.
    conns: Arc<Mutex<Vec<Conn>>>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Broker {
    /// Binds `addr` (`host:port` or `unix:/path`) and starts accepting
    /// workers; each accepted worker is handshaken (`Hello` →
    /// `Setup { ctx }`) on its own thread and then streams results.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Io`] if the address cannot be bound.
    pub fn bind(addr: &str, ctx: &EvalContext, cfg: BrokerConfig) -> Result<Broker, AuditError> {
        let listener = Listener::bind(addr).map_err(|e| AuditError::io(addr, &e))?;
        let bound = listener.local_addr_string();
        set_nonblocking(&listener).map_err(|e| AuditError::io(addr, &e))?;
        let (tx, rx) = std::sync::mpsc::channel();
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let metrics = Arc::new(ServeMetrics::new());
        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conns);
        let accept_metrics = Arc::clone(&metrics);
        let accept_ctx = ctx.clone();
        let accept_thread = std::thread::spawn(move || {
            accept_loop(
                &listener,
                &accept_ctx,
                &tx,
                &accept_stop,
                &accept_conns,
                &accept_metrics,
            );
        });
        Ok(Broker {
            cfg,
            addr: bound,
            rx,
            workers: HashMap::new(),
            next_req: 0,
            n_objectives: ctx.spec.objectives.len(),
            report: ResilienceReport::default(),
            wal: None,
            prefill: HashMap::new(),
            metrics,
            stop,
            conns,
            accept_thread: Some(accept_thread),
        })
    }

    /// The broker's scrape counters (shared with the connection threads
    /// that answer [`Msg::MetricsReq`]).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The bound address in connectable form (`:0` resolved).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Attaches (and replays) the dispatch write-ahead log at `path`.
    /// Results already logged there — by a previous broker killed
    /// mid-generation — are served from the log instead of being
    /// re-dispatched. The file is created if absent and appended
    /// otherwise; a torn final line (broker killed mid-write) is
    /// tolerated, mirroring the journal's torn-tail rule.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Io`] if the file cannot be read or opened
    /// for append, and [`AuditError::Journal`] if a non-final line is
    /// corrupt.
    pub fn attach_wal(&mut self, path: &Path) -> Result<(), AuditError> {
        let (wal, prefill) = Wal::open(path)?;
        self.wal = Some(wal);
        self.prefill = prefill;
        Ok(())
    }

    /// Blocks until at least `n` workers have completed the handshake.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Io`] if the accept thread has died.
    pub fn wait_for_workers(&mut self, n: usize) -> Result<(), AuditError> {
        while self.live_workers().len() < n {
            match self.rx.recv() {
                Ok(event) => self.handle_event(event, &mut Round::default()),
                Err(_) => {
                    return Err(AuditError::io(
                        "broker",
                        &std::io::Error::new(
                            std::io::ErrorKind::BrokenPipe,
                            "accept thread terminated",
                        ),
                    ))
                }
            }
        }
        Ok(())
    }

    /// Sends `Shutdown` to every connected worker and stops accepting.
    /// Called automatically on drop; call it explicitly to release
    /// workers before the broker goes out of scope.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Join the accept loop *before* draining the registry: a worker
        // reconnecting in this window (rejoin after an eviction or a
        // chaos sever) is registered at accept time, so once the loop
        // has exited the registry is complete and nobody misses their
        // release.
        if let Some(handle) = self.accept_thread.take() {
            handle.join().ok();
        }
        let shutdown_frame = Msg::Shutdown.to_json();
        if let Ok(mut conns) = self.conns.lock() {
            for conn in conns.iter_mut() {
                write_frame(conn, &shutdown_frame).ok();
                conn.shutdown();
            }
            conns.clear();
        }
        self.workers.clear();
    }

    /// Deletes the attached WAL file (call after the run completes —
    /// its contents are now redundant with the journal).
    pub fn discard_wal(&mut self) {
        if let Some(wal) = self.wal.take() {
            wal.discard();
        }
    }

    fn live_workers(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.workers.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Deterministic worker choice: FNV over `(seed, key, attempt,
    /// copy)` indexes the sorted live-worker list, probing linearly for
    /// a worker with window slack. Folding in the copy index steers the
    /// two copies of a cross-validated job toward different workers.
    fn pick_worker(&self, key: u64, attempt: u32, copy: u32) -> Option<u64> {
        let ids = self.live_workers();
        if ids.is_empty() {
            return None;
        }
        let mut h = KeyHasher::new();
        h.write_u64(self.cfg.seed)
            .write_u64(key)
            .write_u64(u64::from(attempt))
            .write_u64(u64::from(copy));
        let start = (h.finish() % ids.len() as u64) as usize;
        for probe in 0..ids.len() {
            let id = ids[(start + probe) % ids.len()];
            if self.workers[&id].in_flight < self.cfg.window.max(1) {
                return Some(id);
            }
        }
        None
    }

    /// True when this job is cross-validated on two workers: a pure
    /// hash of `(seed, key)` — independent of attempt, copy, and
    /// scheduling, so the same jobs verify on every rerun and resume.
    fn verifies(&self, key: u64) -> bool {
        self.cfg.verify_fraction > 0.0
            && uniform(mix(mix(self.cfg.seed, STREAM_VERIFY), key)) < self.cfg.verify_fraction
    }

    /// Folds one event into broker state.
    fn handle_event(&mut self, event: Event, round: &mut Round) {
        match event {
            Event::Joined { worker, writer } => {
                self.workers.insert(
                    worker,
                    WorkerState {
                        writer,
                        last_seen: Instant::now(),
                        in_flight: 0,
                    },
                );
                ServeMetrics::set(&self.metrics.workers, self.workers.len() as u64);
            }
            Event::Pong { worker } => {
                if let Some(w) = self.workers.get_mut(&worker) {
                    w.last_seen = Instant::now();
                }
            }
            Event::Lost { worker } => self.lose_worker(worker, round),
            Event::Result { worker, .. } => {
                // Results carry per-round state; the caller intercepts
                // them inside a round. Outside one (stale retransmits)
                // only liveness matters.
                if let Some(w) = self.workers.get_mut(&worker) {
                    w.last_seen = Instant::now();
                }
            }
        }
    }

    /// Removes a worker and requeues its in-flight jobs at the next
    /// attempt.
    fn lose_worker(&mut self, worker: u64, round: &mut Round) {
        if let Some(w) = self.workers.remove(&worker) {
            w.writer.shutdown();
        }
        ServeMetrics::set(&self.metrics.workers, self.workers.len() as u64);
        let orphaned: Vec<u64> = round
            .in_flight
            .iter()
            .filter(|(_, j)| j.worker == worker)
            .map(|(&id, _)| id)
            .collect();
        for id in orphaned {
            let job = round.in_flight.remove(&id).expect("orphan id present");
            // Requeue at the front so a recovering generation retires
            // its oldest work first.
            round.pending.push_front(Pending {
                slot: job.slot,
                key: job.key,
                attempt: job.attempt + 1,
                copy: job.copy,
            });
        }
    }
}

impl Drop for Broker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl EvalDispatcher for Broker {
    fn evaluate(
        &mut self,
        population: &[Vec<Gene>],
        jobs: &[usize],
    ) -> Result<Vec<(usize, Objectives)>, AuditError> {
        let mut scores: Vec<(usize, Objectives)> = Vec::with_capacity(jobs.len());
        let mut round = Round::default();
        for &slot in jobs {
            let key = genome_key(&population[slot]);
            // A result logged by a previous (killed) broker is final:
            // serve it from the WAL instead of re-measuring.
            if let Some((objectives, delta)) = self.prefill.remove(&key) {
                self.report.merge(&delta);
                scores.push((slot, objectives));
                continue;
            }
            let needed = if self.verifies(key) { 2 } else { 1 };
            round.keys.insert(
                key,
                KeyState {
                    slot,
                    needed,
                    dispatched: needed as u32,
                    votes: Vec::new(),
                },
            );
            for copy in 0..needed as u32 {
                round.pending.push_back(Pending {
                    slot,
                    key,
                    attempt: 0,
                    copy,
                });
            }
        }
        let target = jobs.len();

        while scores.len() < target {
            // Dispatch while there is work and a worker with window
            // slack to take it.
            while let Some(&Pending {
                slot,
                key,
                attempt,
                copy,
            }) = round.pending.front()
            {
                if attempt > self.cfg.retries {
                    round.pending.pop_front();
                    self.quarantine_key(slot, key, &mut round, &mut scores)?;
                    continue;
                }
                let Some(worker) = self.pick_worker(key, attempt, copy) else {
                    break;
                };
                round.pending.pop_front();
                let id = self.next_req;
                self.next_req += 1;
                if let Some(wal) = &mut self.wal {
                    wal.log_dispatch(key, slot, attempt)?;
                }
                ServeMetrics::add(&self.metrics.dispatches, 1);
                let fate = self.cfg.chaos.frame_fate(Direction::Outbound, key, attempt, copy);
                let flip = self.cfg.chaos.corrupt_bit(Direction::Outbound, key, attempt, copy);
                let write = if fate == FrameFate::Drop {
                    // The network ate the frame. The broker believes it
                    // is out, so accounting proceeds; the dispatch
                    // lease recovers the job.
                    Ok(())
                } else {
                    let genome = population[slot].clone();
                    let frame = Msg::Eval { id, genome }.to_json();
                    let w = self.workers.get_mut(&worker).expect("picked worker live");
                    match fate {
                        FrameFate::Corrupt => write_corrupted_frame(&mut w.writer, &frame, flip),
                        FrameFate::Duplicate => write_frame(&mut w.writer, &frame)
                            .and_then(|()| write_frame(&mut w.writer, &frame)),
                        _ => write_frame(&mut w.writer, &frame),
                    }
                };
                match write {
                    Ok(()) => {
                        self.workers.get_mut(&worker).expect("live").in_flight += 1;
                        round.in_flight.insert(
                            id,
                            InFlight {
                                slot,
                                key,
                                attempt,
                                copy,
                                worker,
                                sent_at: Instant::now(),
                            },
                        );
                    }
                    Err(_) => {
                        // The write failing IS the loss signal; requeue
                        // this job too (it was never sent).
                        round.pending.push_front(Pending {
                            slot,
                            key,
                            attempt,
                            copy,
                        });
                        self.lose_worker(worker, &mut round);
                    }
                }
            }
            if scores.len() >= target {
                break;
            }
            ServeMetrics::set(&self.metrics.queue_depth, round.pending.len() as u64);

            let dead_channel = || {
                AuditError::io(
                    "broker",
                    &std::io::Error::new(
                        std::io::ErrorKind::BrokenPipe,
                        "accept thread terminated",
                    ),
                )
            };
            // With no workers connected and nothing in flight there is
            // nobody to ping and no lease to expire: park on the
            // channel (a condvar wait) instead of spinning the
            // heartbeat timer. A joining worker wakes the loop.
            let event = if self.workers.is_empty() && round.in_flight.is_empty() {
                Some(self.rx.recv().map_err(|_| dead_channel())?)
            } else {
                match self.rx.recv_timeout(self.cfg.heartbeat) {
                    Ok(event) => Some(event),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => return Err(dead_channel()),
                }
            };
            match event {
                Some(Event::Result {
                    worker,
                    id,
                    objectives,
                    resilience,
                }) => {
                    self.admit_result(worker, id, objectives, resilience, &mut round, &mut scores)?;
                }
                Some(event) => self.handle_event(event, &mut round),
                None => self.heartbeat_tick(&mut round),
            }
        }
        ServeMetrics::set(&self.metrics.queue_depth, 0);
        Ok(scores)
    }

    fn workers(&self) -> usize {
        self.workers.len().max(1)
    }

    fn resilience(&self) -> ResilienceReport {
        self.report
    }
}

impl Broker {
    /// Admits one `result` frame: applies inbound chaos, then routes
    /// the answer through vote accounting.
    fn admit_result(
        &mut self,
        worker: u64,
        id: u64,
        objectives: Objectives,
        resilience: ResilienceReport,
        round: &mut Round,
        scores: &mut Vec<(usize, Objectives)>,
    ) -> Result<(), AuditError> {
        let Some(job) = round.in_flight.get(&id) else {
            // A result for a retired request id: a replay, or the
            // original answer of a dispatch superseded by lease expiry
            // or worker loss — the re-dispatched copy is authoritative
            // (and identical anyway). Ignore the payload; keep the
            // liveness signal.
            if let Some(w) = self.workers.get_mut(&worker) {
                w.last_seen = Instant::now();
            }
            return Ok(());
        };
        let (key, attempt, copy) = (job.key, job.attempt, job.copy);
        // Chaos: the worker stalls *instead of* answering — the result
        // never existed and the worker goes silent until declared dead.
        if self.cfg.chaos.stalls(key, attempt, copy) {
            self.lose_worker(worker, round);
            return Ok(());
        }
        // Chaos: the result frame is lost or damaged on the wire (the
        // CRC32 trailer rejects a damaged frame at this boundary). The
        // broker never sees it; the dispatch lease recovers the job.
        let fate = self.cfg.chaos.frame_fate(Direction::Inbound, key, attempt, copy);
        if matches!(fate, FrameFate::Drop | FrameFate::Corrupt) {
            return Ok(());
        }
        if let Some(w) = self.workers.get_mut(&worker) {
            w.last_seen = Instant::now();
            w.in_flight = w.in_flight.saturating_sub(1);
        }
        let job = round.in_flight.remove(&id).expect("checked above");
        // Chaos: a byzantine worker lies — its answer is perturbed in
        // the low mantissa bits, plausible but wrong. Only detectable
        // on cross-validated jobs.
        let mut objectives = objectives;
        let mask = self.cfg.chaos.lie_mask(key, attempt, copy);
        if mask != 0 {
            if let Some(primary) = objectives.0.first_mut() {
                *primary = f64::from_bits(primary.to_bits() ^ mask);
            }
        }
        self.register_vote(&job, id, objectives.clone(), resilience, round, scores)?;
        if fate == FrameFate::Duplicate {
            // The same frame arrives a second time: the replay must be
            // rejected by the settled/voted accounting with no double
            // count.
            self.register_vote(&job, id, objectives, resilience, round, scores)?;
        }
        Ok(())
    }

    /// Folds one answer into its job's vote set; settles the job when
    /// enough bit-identical votes agree, evicting any disagreeing
    /// (byzantine) voters.
    fn register_vote(
        &mut self,
        job: &InFlight,
        id: u64,
        objectives: Objectives,
        resilience: ResilienceReport,
        round: &mut Round,
        scores: &mut Vec<(usize, Objectives)>,
    ) -> Result<(), AuditError> {
        if round.settled.contains(&job.key) {
            // A duplicate or stale answer for a job whose score is
            // final: ignored, accounting unchanged.
            return Ok(());
        }
        let Some(state) = round.keys.get_mut(&job.key) else {
            return Ok(());
        };
        if state.votes.iter().any(|v| v.id == id) {
            // A replayed frame for a dispatch that already voted.
            return Ok(());
        }
        state.votes.push(Vote {
            id,
            worker: job.worker,
            objectives,
            resilience,
        });
        let needed = state.needed;
        let winner = state.votes.iter().position(|v| {
            let bits = objective_bits(&v.objectives);
            state
                .votes
                .iter()
                .filter(|o| objective_bits(&o.objectives) == bits)
                .count()
                >= needed
        });
        match winner {
            Some(idx) => {
                let win_bits = objective_bits(&state.votes[idx].objectives);
                let verdict = state.votes[idx].objectives.clone();
                let delta = state.votes[idx].resilience;
                let slot = state.slot;
                let mut evicted: Vec<u64> = state
                    .votes
                    .iter()
                    .filter(|v| objective_bits(&v.objectives) != win_bits)
                    .map(|v| v.worker)
                    .collect();
                evicted.sort_unstable();
                evicted.dedup();
                round.keys.remove(&job.key);
                round.settled.insert(job.key);
                if let Some(wal) = &mut self.wal {
                    wal.log_result(job.key, &verdict, &delta)?;
                }
                // Exactly one resilience delta per job — all agreeing
                // votes carry the identical delta (deterministic
                // evaluation), so the merged report matches the plain
                // in-process run.
                self.report.merge(&delta);
                ServeMetrics::add(&self.metrics.results, 1);
                scores.push((slot, verdict));
                for loser in evicted {
                    self.evict_worker(loser, job.key, round)?;
                }
            }
            None => {
                // No agreement yet. If every copy has answered and they
                // still disagree, break the tie with a fresh dispatch —
                // its vote sides with the honest majority.
                if !round.outstanding(job.key) {
                    let state = round.keys.get_mut(&job.key).expect("no winner, still open");
                    let copy = state.dispatched;
                    state.dispatched += 1;
                    round.pending.push_front(Pending {
                        slot: job.slot,
                        key: job.key,
                        attempt: job.attempt,
                        copy,
                    });
                }
            }
        }
        Ok(())
    }

    /// Evicts a worker caught lying on `key`: logs a `worker_evicted`
    /// record (how many of its in-flight jobs are quarantined for
    /// re-dispatch) and severs it like a lost worker.
    fn evict_worker(&mut self, worker: u64, key: u64, round: &mut Round) -> Result<(), AuditError> {
        let quarantined = round
            .in_flight
            .values()
            .filter(|j| j.worker == worker)
            .count() as u64;
        if let Some(wal) = &mut self.wal {
            wal.log_worker_evicted(worker, key, quarantined)?;
        }
        ServeMetrics::add(&self.metrics.evictions, 1);
        self.lose_worker(worker, round);
        Ok(())
    }

    /// Gives up on a job whose workers keep dying: score it like a
    /// quarantined candidate and log the verdict so a resume does not
    /// retry it either.
    fn quarantine_key(
        &mut self,
        slot: usize,
        key: u64,
        round: &mut Round,
        scores: &mut Vec<(usize, Objectives)>,
    ) -> Result<(), AuditError> {
        if round.settled.contains(&key) {
            // Another copy already settled the job; this straggler
            // copy simply dies.
            return Ok(());
        }
        round.settled.insert(key);
        round.keys.remove(&key);
        round.pending.retain(|p| p.key != key);
        let delta = ResilienceReport {
            evaluations: 1,
            retries: 0,
            quarantined: 1,
            backoff_cycles: 0,
        };
        let verdict = Objectives(vec![self.cfg.quarantine_fitness; self.n_objectives.max(1)]);
        if let Some(wal) = &mut self.wal {
            wal.log_result(key, &verdict, &delta)?;
        }
        self.report.merge(&delta);
        ServeMetrics::add(&self.metrics.quarantined, 1);
        scores.push((slot, verdict));
        Ok(())
    }

    /// Idle-timeout housekeeping: expire dispatch leases, ping
    /// everyone, declare silent workers lost.
    fn heartbeat_tick(&mut self, round: &mut Round) {
        // A job outstanding past its lease is presumed lost on the wire
        // (dropped or CRC-rejected frame, wedged worker): re-dispatch
        // at the next attempt. If the original answer straggles in
        // later, its request id is retired and the vote accounting
        // ignores it.
        let expired: Vec<u64> = round
            .in_flight
            .iter()
            .filter(|(_, j)| j.sent_at.elapsed() >= self.cfg.dead_after)
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            let job = round.in_flight.remove(&id).expect("expired id present");
            if let Some(w) = self.workers.get_mut(&job.worker) {
                w.in_flight = w.in_flight.saturating_sub(1);
            }
            round.pending.push_front(Pending {
                slot: job.slot,
                key: job.key,
                attempt: job.attempt + 1,
                copy: job.copy,
            });
        }
        let ping = Msg::Ping.to_json();
        let mut lost: Vec<u64> = Vec::new();
        for (&id, w) in self.workers.iter_mut() {
            if w.last_seen.elapsed() >= self.cfg.dead_after
                || write_frame(&mut w.writer, &ping).is_err()
            {
                lost.push(id);
            }
        }
        for id in lost {
            self.lose_worker(id, round);
        }
    }
}

/// Stream discriminator for the cross-validation selection hash.
const STREAM_VERIFY: u64 = 0x5645_5246; // "VERF"

fn set_nonblocking(listener: &Listener) -> std::io::Result<()> {
    match listener {
        Listener::Tcp(l) => l.set_nonblocking(true),
        #[cfg(unix)]
        Listener::Unix(l) => l.set_nonblocking(true),
    }
}

/// Polls for connections until told to stop; each accepted socket gets
/// a handshake/reader thread.
fn accept_loop(
    listener: &Listener,
    ctx: &EvalContext,
    tx: &Sender<Event>,
    stop: &AtomicBool,
    conns: &Mutex<Vec<Conn>>,
    metrics: &Arc<ServeMetrics>,
) {
    let ids = AtomicUsize::new(0);
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(conn) => {
                if let Ok(clone) = conn.try_clone() {
                    if let Ok(mut registry) = conns.lock() {
                        registry.push(clone);
                    }
                }
                let worker = ids.fetch_add(1, Ordering::SeqCst) as u64;
                let tx = tx.clone();
                let ctx = ctx.clone();
                let metrics = Arc::clone(metrics);
                std::thread::spawn(move || worker_session(conn, worker, &ctx, &tx, &metrics));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

/// Handshakes one worker, hands its writer half to the broker, then
/// pumps its frames into events until the stream ends. A connection
/// whose first frame is `MetricsReq` instead of `Hello` is a scrape:
/// it gets one `Metrics` snapshot and the socket closes.
fn worker_session(
    mut conn: Conn,
    worker: u64,
    ctx: &EvalContext,
    tx: &Sender<Event>,
    metrics: &ServeMetrics,
) {
    let first = match read_frame(&mut conn) {
        Ok(FrameOutcome::Frame(v)) => v,
        _ => {
            conn.shutdown();
            return;
        }
    };
    match Msg::from_json(&first) {
        Ok(Msg::MetricsReq) => {
            let text = metrics.render();
            write_frame(&mut conn, &Msg::Metrics { text }.to_json()).ok();
            conn.shutdown();
            return;
        }
        Ok(Msg::Hello { protocol }) if protocol == PROTOCOL_VERSION => {}
        _ => {
            conn.shutdown();
            return;
        }
    }
    let Ok(mut writer) = conn.try_clone() else {
        conn.shutdown();
        return;
    };
    if write_frame(&mut writer, &Msg::Setup { ctx: ctx.clone() }.to_json()).is_err() {
        conn.shutdown();
        return;
    }
    if tx.send(Event::Joined { worker, writer }).is_err() {
        return;
    }
    // Clean EOF, a torn tail, or a read error ends the session and
    // reports the worker lost; a CRC-rejected frame is dropped and the
    // stream stays alive (the dispatch lease re-issues whatever it
    // carried).
    loop {
        let v = match read_frame(&mut conn) {
            Ok(FrameOutcome::Frame(v)) => v,
            Ok(FrameOutcome::Corrupt) => continue,
            _ => break,
        };
        match Msg::from_json(&v) {
            Ok(Msg::Result {
                id,
                objectives,
                resilience,
                cached,
            }) => {
                if cached {
                    // Observability only: counted at admission so the
                    // scrape reflects what workers actually served,
                    // never fed back into vote accounting.
                    ServeMetrics::add(&metrics.cache_hits, 1);
                }
                if tx
                    .send(Event::Result {
                        worker,
                        id,
                        objectives,
                        resilience,
                    })
                    .is_err()
                {
                    return;
                }
            }
            Ok(Msg::Pong) | Ok(Msg::Ping) => {
                if tx.send(Event::Pong { worker }).is_err() {
                    return;
                }
            }
            // A worker has no business sending anything else; treat
            // a confused peer as lost.
            _ => break,
        }
    }
    tx.send(Event::Lost { worker }).ok();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_selection_is_a_pure_fraction_of_keys() {
        let mut cfg = BrokerConfig {
            verify_fraction: 0.25,
            ..BrokerConfig::default()
        };
        cfg.seed = 7;
        // Standalone reimplementation of `Broker::verifies` semantics:
        // build no sockets, just check the hash discipline directly.
        let verifies = |cfg: &BrokerConfig, key: u64| {
            cfg.verify_fraction > 0.0
                && uniform(mix(mix(cfg.seed, STREAM_VERIFY), key)) < cfg.verify_fraction
        };
        let n = 20_000u64;
        let picked = (0..n).filter(|&k| verifies(&cfg, k)).count();
        let rate = picked as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "verify rate {rate}");
        // Pure: same answer on re-query.
        for k in 0..64 {
            assert_eq!(verifies(&cfg, k), verifies(&cfg, k));
        }
        // Off means off.
        cfg.verify_fraction = 0.0;
        assert!((0..64).all(|k| !verifies(&cfg, k)));
    }
}
