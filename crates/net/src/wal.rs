//! The dispatch write-ahead log shared by the single-campaign
//! [`crate::broker::Broker`] and the multi-campaign `audit-fleet` pool.
//!
//! The WAL is NDJSON next to the run journal (`<checkpoint>.wal`),
//! appended and flushed per record. `dispatch` records are written
//! before an `Eval` frame goes out; `result` records after the answer
//! arrives (or a quarantine verdict is reached); `worker_evicted`
//! records when cross-validation catches a lying worker. Only `result`
//! records feed the resume prefill — the others are evidence of what
//! was outstanding and what the defense layer did about it. A torn
//! final line (the ordinary kill signature) is tolerated on open,
//! mirroring the journal's torn-tail rule; a corrupt interior line is
//! an error.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use audit_core::ga::Objectives;
use audit_core::journal::{decode_u64, encode_u64, JournalRecord};
use audit_core::ResilienceReport;
use audit_error::AuditError;
use audit_measure::json::JsonValue;

use crate::proto::{decode_objectives, decode_resilience, encode_objectives, encode_resilience};

/// WAL-recovered results keyed by genome content hash: the objective
/// vector plus the resilience delta the original evaluation accrued.
pub type Prefill = HashMap<u64, (Objectives, ResilienceReport)>;

/// One dispatch write-ahead log. See the module docs.
pub struct Wal {
    path: PathBuf,
    file: std::fs::File,
}

impl Wal {
    /// Opens (and replays) the WAL at `path`, returning the log handle
    /// and the prefill map of every `result` already recorded there by
    /// a previous (killed) broker. The file is created if absent and
    /// appended otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Io`] if the file cannot be read or opened
    /// for append, and [`AuditError::Journal`] if a non-final line is
    /// corrupt.
    pub fn open(path: &Path) -> Result<(Wal, Prefill), AuditError> {
        let io_err = |e: &std::io::Error| AuditError::io(path.display(), e);
        let mut prefill = HashMap::new();
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let lines: Vec<&str> = text.lines().collect();
                for (i, line) in lines.iter().enumerate() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let value = match JsonValue::parse(line) {
                        Ok(v) => v,
                        // A torn final line is the normal kill
                        // signature; corruption earlier is not.
                        Err(_) if i + 1 == lines.len() => break,
                        Err(e) => {
                            return Err(AuditError::journal(i + 1, format!("WAL: {e}")))
                        }
                    };
                    if value.get("kind").and_then(JsonValue::as_str) == Some("result") {
                        let key = decode_u64(
                            value
                                .get("key")
                                .ok_or_else(|| AuditError::journal(i + 1, "WAL result has no key"))?,
                        )?;
                        let fitness = value
                            .get("fitness")
                            .and_then(JsonValue::as_f64)
                            .ok_or_else(|| {
                                AuditError::journal(i + 1, "WAL result has no fitness")
                            })?;
                        // Scalar results carry only `fitness` (the
                        // historical encoding); vector results add the
                        // full axis array alongside it.
                        let objectives = match value.get("objectives") {
                            Some(arr) => decode_objectives(arr)?,
                            None => Objectives::scalar(fitness),
                        };
                        let resilience = decode_resilience(value.get("resilience").ok_or_else(
                            || AuditError::journal(i + 1, "WAL result has no resilience"),
                        )?)?;
                        prefill.insert(key, (objectives, resilience));
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(&e)),
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err(&e))?;
        Ok((
            Wal {
                path: path.to_path_buf(),
                file,
            },
            prefill,
        ))
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Deletes the WAL file (call after the run completes — its
    /// contents are now redundant with the journal).
    pub fn discard(self) {
        std::fs::remove_file(&self.path).ok();
    }

    fn append(&mut self, value: &JsonValue) -> Result<(), AuditError> {
        let io_err = |e: &std::io::Error| AuditError::io(self.path.display(), e);
        let mut line = value.encode();
        line.push('\n');
        self.file.write_all(line.as_bytes()).map_err(|e| io_err(&e))?;
        self.file.flush().map_err(|e| io_err(&e))?;
        Ok(())
    }

    /// Logs a dispatch about to be sent.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Io`] if the append fails.
    pub fn log_dispatch(&mut self, key: u64, slot: usize, attempt: u32) -> Result<(), AuditError> {
        self.append(&JsonValue::object(vec![
            ("kind", JsonValue::String("dispatch".into())),
            ("key", encode_u64(key)),
            ("slot", encode_u64(slot as u64)),
            ("attempt", encode_u64(u64::from(attempt))),
        ]))
    }

    /// Logs a settled result (or quarantine verdict).
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Io`] if the append fails.
    pub fn log_result(
        &mut self,
        key: u64,
        objectives: &Objectives,
        resilience: &ResilienceReport,
    ) -> Result<(), AuditError> {
        let mut fields = vec![
            ("kind", JsonValue::String("result".into())),
            ("key", encode_u64(key)),
            ("fitness", JsonValue::from_f64(objectives.primary())),
        ];
        // Mirror the wire rule: scalar results keep the historical
        // single-number WAL lines.
        if objectives.len() > 1 {
            fields.push(("objectives", encode_objectives(objectives)));
        }
        fields.push(("resilience", encode_resilience(resilience)));
        self.append(&JsonValue::object(fields))
    }

    /// Logs a cross-validation eviction.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Io`] if the append fails.
    pub fn log_worker_evicted(
        &mut self,
        worker: u64,
        key: u64,
        quarantined: u64,
    ) -> Result<(), AuditError> {
        // Encoded through the journal record so the WAL line is
        // byte-identical to the pinned `worker_evicted` schema.
        self.append(
            &JournalRecord::WorkerEvicted {
                worker,
                key,
                quarantined,
            }
            .to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_round_trips_results_and_tolerates_a_torn_tail() {
        let dir = std::env::temp_dir().join(format!("audit-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.wal");
        let delta = ResilienceReport {
            evaluations: 1,
            retries: 1,
            quarantined: 0,
            backoff_cycles: 512,
        };
        {
            let (mut wal, prefill) = Wal::open(&path).unwrap();
            assert!(prefill.is_empty());
            wal.log_dispatch(0xABCD, 3, 0).unwrap();
            wal.log_result(0xABCD, &Objectives::scalar(-0.125), &delta)
                .unwrap();
            wal.log_worker_evicted(2, 0xABCD, 1).unwrap();
            wal.log_result(0xBEEF, &Objectives(vec![-0.5, 7.25]), &delta)
                .unwrap();
        }
        // Simulate a broker killed mid-write: a torn trailing line.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"kind\":\"disp");
        std::fs::write(&path, &bytes).unwrap();
        // `worker_evicted` lines are evidence, not prefill.
        let (_wal, prefill) = Wal::open(&path).unwrap();
        assert_eq!(prefill.len(), 2);
        assert_eq!(
            prefill.get(&0xABCD),
            Some(&(Objectives::scalar(-0.125), delta))
        );
        assert_eq!(
            prefill.get(&0xBEEF),
            Some(&(Objectives(vec![-0.5, 7.25]), delta))
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_interior_wal_line_is_an_error() {
        let dir = std::env::temp_dir().join(format!("audit-wal-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.wal");
        std::fs::write(&path, "garbage\n{\"kind\":\"result\"}\n").unwrap();
        assert!(Wal::open(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
