//! Distributed fitness evaluation for AUDIT (`audit serve` /
//! `audit work`).
//!
//! The GA's closed loop (run candidate → measure droop → evolve) is
//! embarrassingly parallel across the population, so this crate scales
//! the expensive part — fitness evaluation — across worker *processes*
//! while leaving every bit of the search result unchanged:
//!
//! * [`frame`] — length-prefixed JSON frames over any byte stream, with
//!   torn-tail detection mirroring
//!   `audit_measure::traceio::TailOutcome`,
//! * [`transport`] — std-only TCP and Unix-domain listeners/streams
//!   behind one address syntax (`host:port` or `unix:/path`),
//! * [`proto`] — the protocol messages and the [`proto::EvalContext`]
//!   setup payload that lets a worker rebuild the exact fitness
//!   function ([`audit_core::FitnessSpec::evaluate`]) the broker's GA
//!   is searching with,
//! * [`broker`] — the broker side: accepts workers, dispatches
//!   content-addressed evaluation keys under a bounded in-flight
//!   window, write-ahead-logs dispatch so a killed broker resumes, and
//!   merges results **bit-identically** to the in-process path (it is
//!   an [`audit_core::ga::EvalDispatcher`]),
//! * [`worker`] — the worker loop: connect (bounded exponential backoff
//!   with deterministic jitter), handshake, evaluate, report fitness
//!   plus resilience-counter deltas, and optionally rejoin after a
//!   sever,
//! * [`chaos`] — deterministic network-fault injection
//!   ([`chaos::NetFaultPlan`]): drops, duplicates, bit-flips, stalled
//!   workers, and byzantine wrong answers, every decision a pure hash
//!   of `(seed, direction, frame key, attempt)` so a chaos campaign
//!   replays exactly,
//! * [`wal`] — the dispatch write-ahead log ([`wal::Wal`]), shared by
//!   the single-campaign broker and the multi-campaign `audit-fleet`
//!   pool (one WAL per campaign there),
//! * [`metrics`] — scrapeable serving counters
//!   ([`metrics::ServeMetrics`]) and the plain-text snapshot builder
//!   ([`metrics::Scrape`]) behind the `MetricsReq`/`Metrics` frames.
//!
//! # Determinism contract
//!
//! The broker never lets scheduling reach the results: the engine hands
//! it the slots to measure, workers compute
//! [`audit_core::FitnessSpec::evaluate`] (deterministic per genome,
//! fault schedule content-addressed by `(seed, key, attempt)`), and the
//! engine sorts returned `(slot, fitness)` pairs into slot order before
//! any cache insert. `GaRun` results, `evaluations` counts, cache
//! state, and journal bytes are identical for any worker count,
//! including workers joining or dying mid-generation (a lost worker's
//! assignment is re-dispatched deterministically and recomputes the
//! identical result). See `docs/DISTRIBUTED.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
pub mod chaos;
pub mod frame;
pub mod metrics;
pub mod proto;
pub mod transport;
pub mod wal;
pub mod worker;

pub use broker::{Broker, BrokerConfig};
pub use chaos::{Direction, FrameFate, NetFaultPlan, NetFaultRates};
pub use frame::{crc32, read_frame, write_frame, FrameOutcome};
pub use metrics::{Scrape, ServeMetrics};
pub use proto::{EvalContext, Msg, PROTOCOL_VERSION};
pub use transport::{connect, Conn, Listener};
pub use wal::{Prefill, Wal};
pub use worker::{run_worker, WorkerOptions, WorkerStats};
