//! Scrapeable serving metrics for the broker (and the fleet manager).
//!
//! Any peer may connect to a serving address and send one
//! [`crate::proto::Msg::MetricsReq`] frame as its *first* frame; the
//! server answers with a [`crate::proto::Msg::Metrics`] frame carrying
//! a plain-text snapshot and closes the connection. The text is the
//! conventional line-oriented scrape format (`name{label="x"} value`,
//! one sample per line, `#`-prefixed comments), so standard collectors
//! can ingest it with a trivial exporter — and `audit fleet status
//! --metrics` prints it verbatim.
//!
//! Metrics are observability only: no counter here ever feeds back into
//! scheduling or results, so scraping (or not) cannot perturb a run.

use std::sync::atomic::{AtomicU64, Ordering};

/// Builder for one scrape snapshot: renders samples in insertion order.
#[derive(Debug, Default)]
pub struct Scrape {
    text: String,
}

impl Scrape {
    /// An empty snapshot.
    pub fn new() -> Scrape {
        Scrape::default()
    }

    /// Appends a `# comment` line.
    pub fn comment(&mut self, text: &str) -> &mut Self {
        self.text.push_str("# ");
        self.text.push_str(text);
        self.text.push('\n');
        self
    }

    /// Appends one unlabelled sample.
    pub fn sample(&mut self, name: &str, value: u64) -> &mut Self {
        self.text.push_str(name);
        self.text.push(' ');
        self.text.push_str(&value.to_string());
        self.text.push('\n');
        self
    }

    /// Appends one labelled sample (`name{k="v",…} value`).
    pub fn labelled(&mut self, name: &str, labels: &[(&str, &str)], value: u64) -> &mut Self {
        self.text.push_str(name);
        self.text.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                self.text.push(',');
            }
            self.text.push_str(k);
            self.text.push_str("=\"");
            self.text.push_str(v);
            self.text.push('"');
        }
        self.text.push_str("} ");
        self.text.push_str(&value.to_string());
        self.text.push('\n');
        self
    }

    /// The rendered scrape text.
    pub fn render(&self) -> String {
        self.text.clone()
    }
}

/// Shared atomic counters for a single-campaign `audit serve` broker —
/// a fleet of one. The broker thread increments; any connection thread
/// answering a [`crate::proto::Msg::MetricsReq`] renders a snapshot.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Workers currently connected (post-handshake).
    pub workers: AtomicU64,
    /// `Eval` frames dispatched (including re-dispatches).
    pub dispatches: AtomicU64,
    /// Results admitted and settled.
    pub results: AtomicU64,
    /// Results a worker answered from its cross-campaign cache.
    pub cache_hits: AtomicU64,
    /// Jobs that exhausted their retry budget and were quarantined.
    pub quarantined: AtomicU64,
    /// Workers evicted by cross-validation.
    pub evictions: AtomicU64,
    /// Jobs queued but not yet dispatched (gauge, updated per round).
    pub queue_depth: AtomicU64,
}

impl ServeMetrics {
    /// A zeroed counter set.
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Relaxed add: metrics never synchronize anything.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Relaxed gauge store.
    pub fn set(counter: &AtomicU64, n: u64) {
        counter.store(n, Ordering::Relaxed);
    }

    /// Renders the scrape snapshot.
    pub fn render(&self) -> String {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut s = Scrape::new();
        s.comment("audit serve metrics");
        s.sample("audit_workers", get(&self.workers));
        s.sample("audit_dispatches_total", get(&self.dispatches));
        s.sample("audit_results_total", get(&self.results));
        s.sample("audit_cache_hits_total", get(&self.cache_hits));
        s.sample("audit_quarantined_total", get(&self.quarantined));
        s.sample("audit_worker_evictions_total", get(&self.evictions));
        s.sample("audit_queue_depth", get(&self.queue_depth));
        s.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrape_renders_samples_in_order() {
        let mut s = Scrape::new();
        s.comment("test");
        s.sample("plain", 3);
        s.labelled("with_labels", &[("worker", "2"), ("campaign", "c0")], 7);
        assert_eq!(
            s.render(),
            "# test\nplain 3\nwith_labels{worker=\"2\",campaign=\"c0\"} 7\n"
        );
    }

    #[test]
    fn serve_metrics_snapshot_contains_every_counter() {
        let m = ServeMetrics::new();
        ServeMetrics::add(&m.dispatches, 5);
        ServeMetrics::add(&m.results, 4);
        ServeMetrics::set(&m.queue_depth, 2);
        let text = m.render();
        assert!(text.contains("audit_dispatches_total 5"));
        assert!(text.contains("audit_results_total 4"));
        assert!(text.contains("audit_queue_depth 2"));
        assert!(text.contains("audit_workers 0"));
        assert!(text.contains("audit_cache_hits_total 0"));
        assert!(text.contains("audit_quarantined_total 0"));
        assert!(text.contains("audit_worker_evictions_total 0"));
    }
}
