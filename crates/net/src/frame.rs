//! Length-prefixed JSON frames.
//!
//! One frame is a 4-byte big-endian payload length followed by that
//! many bytes of UTF-8 JSON (the hand-rolled
//! [`audit_measure::json`] codec — byte-deterministic, no external
//! dependencies). Reads distinguish three endings, mirroring the run
//! journal's torn-tail discipline
//! ([`audit_measure::traceio::TailOutcome`]): a complete frame, a clean
//! EOF at a frame boundary (the peer closed deliberately), and a
//! truncated tail (the peer died mid-frame — the partial frame is
//! evidence, not data).

use std::io::{Read, Write};

use audit_error::AuditError;
use audit_measure::json::JsonValue;

/// Upper bound on a frame payload, in bytes. Generously above any real
/// message (a generation of genomes is a few hundred KiB) while keeping
/// a corrupt or hostile length prefix from looking like a 4 GiB
/// allocation request.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// How a frame read ended.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameOutcome {
    /// A complete frame: the decoded payload.
    Frame(JsonValue),
    /// The stream ended cleanly on a frame boundary.
    Eof,
    /// The stream ended mid-frame (inside the length prefix or the
    /// payload) — the peer was killed or the connection was cut.
    TruncatedTail,
}

/// Writes one frame (length prefix + encoded payload) and flushes.
///
/// # Errors
///
/// Returns [`AuditError::Io`] on any socket write failure.
pub fn write_frame(w: &mut impl Write, payload: &JsonValue) -> Result<(), AuditError> {
    let body = payload.encode();
    let io_err = |e: &std::io::Error| AuditError::io("socket", e);
    let len =
        u32::try_from(body.len()).map_err(|_| AuditError::invalid("frame", "len", "oversized"))?;
    w.write_all(&len.to_be_bytes()).map_err(|e| io_err(&e))?;
    w.write_all(body.as_bytes()).map_err(|e| io_err(&e))?;
    w.flush().map_err(|e| io_err(&e))?;
    Ok(())
}

/// Reads one frame.
///
/// # Errors
///
/// Returns [`AuditError::Io`] on a socket read failure, and
/// [`AuditError::Journal`] for an oversized length prefix, a non-UTF-8
/// payload, or payload bytes that do not parse as JSON (a framing bug
/// or corruption — unlike truncation, never a normal ending).
pub fn read_frame(r: &mut impl Read) -> Result<FrameOutcome, AuditError> {
    let mut header = [0u8; 4];
    match read_exact_or_tail(r, &mut header)? {
        Tail::Complete => {}
        Tail::CleanEof => return Ok(FrameOutcome::Eof),
        Tail::Torn => return Ok(FrameOutcome::TruncatedTail),
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(AuditError::journal(
            0,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    match read_exact_or_tail(r, &mut body)? {
        Tail::Complete => {}
        // Any shortfall inside the payload is a torn frame, including
        // an EOF right after the prefix.
        Tail::CleanEof | Tail::Torn => return Ok(FrameOutcome::TruncatedTail),
    }
    let text = String::from_utf8(body)
        .map_err(|_| AuditError::journal(0, "frame payload is not UTF-8"))?;
    let value = JsonValue::parse(&text)
        .map_err(|e| AuditError::journal(0, format!("frame payload: {e}")))?;
    Ok(FrameOutcome::Frame(value))
}

enum Tail {
    Complete,
    CleanEof,
    Torn,
}

/// `read_exact`, except an EOF before the first byte is reported as
/// [`Tail::CleanEof`] and an EOF after a partial read as [`Tail::Torn`]
/// instead of an error.
fn read_exact_or_tail(r: &mut impl Read, buf: &mut [u8]) -> Result<Tail, AuditError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 { Tail::CleanEof } else { Tail::Torn });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // A reset/aborted connection mid-frame is the network form
            // of a torn tail.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::BrokenPipe
                ) =>
            {
                return Ok(if filled == 0 { Tail::CleanEof } else { Tail::Torn });
            }
            Err(e) => return Err(AuditError::io("socket", &e)),
        }
    }
    Ok(Tail::Complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> JsonValue {
        JsonValue::object(vec![
            ("kind", JsonValue::String("eval".into())),
            ("id", JsonValue::from_u64(7)),
            ("x", JsonValue::from_f64(-0.031)),
        ])
    }

    fn encode_to_bytes(v: &JsonValue) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, v).unwrap();
        buf
    }

    #[test]
    fn frame_round_trips() {
        let bytes = encode_to_bytes(&sample());
        let mut cur = Cursor::new(bytes);
        assert_eq!(read_frame(&mut cur).unwrap(), FrameOutcome::Frame(sample()));
        assert_eq!(read_frame(&mut cur).unwrap(), FrameOutcome::Eof);
    }

    #[test]
    fn every_truncation_point_is_a_torn_tail_not_an_error() {
        let bytes = encode_to_bytes(&sample());
        // Cut the stream after every prefix of a valid frame: byte 0 is
        // a clean EOF, every other cut is a torn tail.
        for cut in 1..bytes.len() {
            let mut cur = Cursor::new(bytes[..cut].to_vec());
            assert_eq!(
                read_frame(&mut cur).unwrap(),
                FrameOutcome::TruncatedTail,
                "cut at {cut}"
            );
        }
        let mut empty = Cursor::new(Vec::new());
        assert_eq!(read_frame(&mut empty).unwrap(), FrameOutcome::Eof);
    }

    #[test]
    fn garbage_payload_is_an_error_not_a_tail() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&5u32.to_be_bytes());
        bytes.extend_from_slice(b"nope!");
        let mut cur = Cursor::new(bytes);
        assert!(read_frame(&mut cur).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        let mut cur = Cursor::new(bytes);
        assert!(read_frame(&mut cur).is_err());
    }
}
