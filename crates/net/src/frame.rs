//! Length-prefixed, checksummed JSON frames.
//!
//! One frame (protocol v2) is a 4-byte big-endian payload length,
//! that many bytes of UTF-8 JSON (the hand-rolled
//! [`audit_measure::json`] codec — byte-deterministic, no external
//! dependencies), and a 4-byte big-endian CRC32 (IEEE) trailer over the
//! payload bytes. Reads distinguish four endings, mirroring the run
//! journal's torn-tail discipline
//! ([`audit_measure::traceio::TailOutcome`]): a complete frame, a clean
//! EOF at a frame boundary (the peer closed deliberately), a truncated
//! tail (the peer died mid-frame — the partial frame is evidence, not
//! data), and a corrupt frame (length and trailer arrived, but the
//! trailer disagrees with the payload — the bytes were damaged in
//! transit and the frame must be discarded, never acted on).
//!
//! Corruption detection is what makes the broker's re-dispatch defense
//! sound: a flipped bit in an `eval` or `result` frame surfaces as
//! [`FrameOutcome::Corrupt`], the receiver drops the frame, and the
//! broker's dispatch lease re-issues the work at `attempt + 1`.

use std::io::{Read, Write};

use audit_error::AuditError;
use audit_measure::json::JsonValue;

/// Upper bound on a frame payload, in bytes. Generously above any real
/// message (a generation of genomes is a few hundred KiB) while keeping
/// a corrupt or hostile length prefix from looking like a 4 GiB
/// allocation request.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// How a frame read ended.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameOutcome {
    /// A complete frame: the decoded payload.
    Frame(JsonValue),
    /// The stream ended cleanly on a frame boundary.
    Eof,
    /// The stream ended mid-frame (inside the length prefix, the
    /// payload, or the CRC trailer) — the peer was killed or the
    /// connection was cut.
    TruncatedTail,
    /// The frame arrived whole but its CRC32 trailer does not match the
    /// payload: the bytes were damaged in transit. The frame carries no
    /// usable data; the receiver should discard it and keep reading.
    Corrupt,
}

/// CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over `bytes`.
/// Hand-rolled bitwise form — the trailer guards kilobyte-scale frames,
/// where table lookups buy nothing measurable.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Writes one frame (length prefix + encoded payload + CRC32 trailer)
/// and flushes.
///
/// # Errors
///
/// Returns [`AuditError::Io`] on any socket write failure.
pub fn write_frame(w: &mut impl Write, payload: &JsonValue) -> Result<(), AuditError> {
    write_frame_raw(w, payload, None)
}

/// [`write_frame`], except one payload bit (`flip_bit`, modulo the
/// payload length) is flipped *after* the CRC trailer is computed — the
/// receiver sees a frame whose checksum fails. This is the chaos
/// plan's wire-corruption primitive (`chaos::FrameFate::Corrupt`);
/// nothing outside fault injection (here or in the fleet pool) should
/// call it.
///
/// # Errors
///
/// Returns [`AuditError::Io`] on any socket write failure.
pub fn write_corrupted_frame(
    w: &mut impl Write,
    payload: &JsonValue,
    flip_bit: u64,
) -> Result<(), AuditError> {
    write_frame_raw(w, payload, Some(flip_bit))
}

fn write_frame_raw(
    w: &mut impl Write,
    payload: &JsonValue,
    flip_bit: Option<u64>,
) -> Result<(), AuditError> {
    let body = payload.encode();
    let io_err = |e: &std::io::Error| AuditError::io("socket", e);
    let len =
        u32::try_from(body.len()).map_err(|_| AuditError::invalid("frame", "len", "oversized"))?;
    let crc = crc32(body.as_bytes());
    let mut body = body.into_bytes();
    if let Some(bit) = flip_bit {
        if !body.is_empty() {
            let bit = bit % (body.len() as u64 * 8);
            body[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
    }
    w.write_all(&len.to_be_bytes()).map_err(|e| io_err(&e))?;
    w.write_all(&body).map_err(|e| io_err(&e))?;
    w.write_all(&crc.to_be_bytes()).map_err(|e| io_err(&e))?;
    w.flush().map_err(|e| io_err(&e))?;
    Ok(())
}

/// Reads one frame and verifies its CRC32 trailer.
///
/// # Errors
///
/// Returns [`AuditError::Io`] on a socket read failure, and
/// [`AuditError::Journal`] for an oversized length prefix, a non-UTF-8
/// payload, or payload bytes that checksum correctly yet do not parse
/// as JSON (a framing bug — unlike truncation or corruption, never a
/// normal ending). A checksum mismatch is *not* an error: it returns
/// [`FrameOutcome::Corrupt`] so the caller can drop the frame and keep
/// the stream alive.
pub fn read_frame(r: &mut impl Read) -> Result<FrameOutcome, AuditError> {
    let mut header = [0u8; 4];
    match read_exact_or_tail(r, &mut header)? {
        Tail::Complete => {}
        Tail::CleanEof => return Ok(FrameOutcome::Eof),
        Tail::Torn => return Ok(FrameOutcome::TruncatedTail),
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(AuditError::journal(
            0,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    match read_exact_or_tail(r, &mut body)? {
        Tail::Complete => {}
        // Any shortfall inside the payload is a torn frame, including
        // an EOF right after the prefix.
        Tail::CleanEof | Tail::Torn => return Ok(FrameOutcome::TruncatedTail),
    }
    let mut trailer = [0u8; 4];
    match read_exact_or_tail(r, &mut trailer)? {
        Tail::Complete => {}
        Tail::CleanEof | Tail::Torn => return Ok(FrameOutcome::TruncatedTail),
    }
    if u32::from_be_bytes(trailer) != crc32(&body) {
        return Ok(FrameOutcome::Corrupt);
    }
    let text = String::from_utf8(body)
        .map_err(|_| AuditError::journal(0, "frame payload is not UTF-8"))?;
    let value = JsonValue::parse(&text)
        .map_err(|e| AuditError::journal(0, format!("frame payload: {e}")))?;
    Ok(FrameOutcome::Frame(value))
}

enum Tail {
    Complete,
    CleanEof,
    Torn,
}

/// `read_exact`, except an EOF before the first byte is reported as
/// [`Tail::CleanEof`] and an EOF after a partial read as [`Tail::Torn`]
/// instead of an error.
fn read_exact_or_tail(r: &mut impl Read, buf: &mut [u8]) -> Result<Tail, AuditError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 { Tail::CleanEof } else { Tail::Torn });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // A reset/aborted connection mid-frame is the network form
            // of a torn tail.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::BrokenPipe
                ) =>
            {
                return Ok(if filled == 0 { Tail::CleanEof } else { Tail::Torn });
            }
            Err(e) => return Err(AuditError::io("socket", &e)),
        }
    }
    Ok(Tail::Complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> JsonValue {
        JsonValue::object(vec![
            ("kind", JsonValue::String("eval".into())),
            ("id", JsonValue::from_u64(7)),
            ("x", JsonValue::from_f64(-0.031)),
        ])
    }

    fn encode_to_bytes(v: &JsonValue) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, v).unwrap();
        buf
    }

    #[test]
    fn frame_round_trips() {
        let bytes = encode_to_bytes(&sample());
        let mut cur = Cursor::new(bytes);
        assert_eq!(read_frame(&mut cur).unwrap(), FrameOutcome::Frame(sample()));
        assert_eq!(read_frame(&mut cur).unwrap(), FrameOutcome::Eof);
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The classic IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_truncation_point_is_a_torn_tail_not_an_error() {
        let bytes = encode_to_bytes(&sample());
        // Cut the stream after every prefix of a valid frame — inside
        // the length, the payload, and the CRC trailer: byte 0 is a
        // clean EOF, every other cut is a torn tail.
        for cut in 1..bytes.len() {
            let mut cur = Cursor::new(bytes[..cut].to_vec());
            assert_eq!(
                read_frame(&mut cur).unwrap(),
                FrameOutcome::TruncatedTail,
                "cut at {cut}"
            );
        }
        let mut empty = Cursor::new(Vec::new());
        assert_eq!(read_frame(&mut empty).unwrap(), FrameOutcome::Eof);
    }

    #[test]
    fn every_single_bit_flip_is_caught_as_corrupt() {
        let clean = encode_to_bytes(&sample());
        let payload_len = clean.len() - 8; // minus length prefix + trailer
        for byte in 0..payload_len {
            for bit in 0..8 {
                let mut bytes = clean.clone();
                bytes[4 + byte] ^= 1 << bit;
                let mut cur = Cursor::new(bytes);
                assert_eq!(
                    read_frame(&mut cur).unwrap(),
                    FrameOutcome::Corrupt,
                    "flip at byte {byte} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn a_damaged_trailer_is_corrupt_too() {
        let mut bytes = encode_to_bytes(&sample());
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let mut cur = Cursor::new(bytes);
        assert_eq!(read_frame(&mut cur).unwrap(), FrameOutcome::Corrupt);
    }

    #[test]
    fn write_corrupted_frame_fails_checksum_by_construction() {
        for flip in [0u64, 1, 13, 1_000_003] {
            let mut buf = Vec::new();
            write_corrupted_frame(&mut buf, &sample(), flip).unwrap();
            let mut cur = Cursor::new(buf);
            assert_eq!(read_frame(&mut cur).unwrap(), FrameOutcome::Corrupt);
        }
    }

    #[test]
    fn corruption_does_not_poison_the_stream() {
        // A corrupt frame followed by a clean one: the reader reports
        // Corrupt, then decodes the next frame normally.
        let mut buf = Vec::new();
        write_corrupted_frame(&mut buf, &sample(), 9).unwrap();
        buf.extend_from_slice(&encode_to_bytes(&sample()));
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap(), FrameOutcome::Corrupt);
        assert_eq!(read_frame(&mut cur).unwrap(), FrameOutcome::Frame(sample()));
        assert_eq!(read_frame(&mut cur).unwrap(), FrameOutcome::Eof);
    }

    #[test]
    fn garbage_payload_with_a_valid_crc_is_an_error_not_a_tail() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&5u32.to_be_bytes());
        bytes.extend_from_slice(b"nope!");
        bytes.extend_from_slice(&crc32(b"nope!").to_be_bytes());
        let mut cur = Cursor::new(bytes);
        assert!(read_frame(&mut cur).is_err());
    }

    #[test]
    fn garbage_payload_with_a_bad_crc_is_corrupt() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&5u32.to_be_bytes());
        bytes.extend_from_slice(b"nope!");
        bytes.extend_from_slice(&0xDEAD_BEEFu32.to_be_bytes());
        let mut cur = Cursor::new(bytes);
        assert_eq!(read_frame(&mut cur).unwrap(), FrameOutcome::Corrupt);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        let mut cur = Cursor::new(bytes);
        assert!(read_frame(&mut cur).is_err());
    }
}
