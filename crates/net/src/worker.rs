//! The worker loop behind `audit work`.
//!
//! A worker is stateless between evaluations: it connects, greets the
//! broker, rebuilds the rig and [`audit_core::FitnessSpec`] from the
//! [`Setup`](crate::proto::Msg::Setup) frame, then answers `Eval`
//! frames with `Result` frames until the broker says
//! [`Shutdown`](crate::proto::Msg::Shutdown) or hangs up. Each result
//! carries the evaluation's resilience-counter delta so the broker can
//! merge accounting exactly once, in any arrival order.

use std::time::{Duration, Instant};

use audit_error::AuditError;

use crate::frame::{read_frame, write_frame, FrameOutcome};
use crate::proto::{Msg, PROTOCOL_VERSION};
use crate::transport::connect;

/// Worker knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerOptions {
    /// How long to keep retrying the initial connect (the broker may
    /// not be up yet when workers start).
    pub connect_for: Duration,
    /// Interval between connect attempts.
    pub connect_retry: Duration,
    /// Fault-injection hook for tests: after completing this many
    /// evaluations the worker returns abruptly — no reply, no clean
    /// shutdown — as if the process had been killed mid-generation.
    pub max_evals: Option<usize>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            connect_for: Duration::from_secs(30),
            connect_retry: Duration::from_millis(100),
            max_evals: None,
        }
    }
}

/// What a worker session amounted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStats {
    /// Evaluations completed and reported.
    pub evaluations: usize,
    /// True when the session ended by broker `Shutdown` or clean EOF
    /// (false means the [`WorkerOptions::max_evals`] kill hook fired).
    pub clean_exit: bool,
}

/// Connects to `addr` and serves evaluations until the broker releases
/// the worker. See the module docs.
///
/// # Errors
///
/// Returns [`AuditError::Io`] when the broker cannot be reached within
/// [`WorkerOptions::connect_for`], and [`AuditError::Journal`] on a
/// malformed or out-of-order protocol frame (including a torn frame —
/// the broker died mid-send).
pub fn run_worker(addr: &str, opts: &WorkerOptions) -> Result<WorkerStats, AuditError> {
    let deadline = Instant::now() + opts.connect_for;
    let mut conn = loop {
        match connect(addr) {
            Ok(conn) => break conn,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(AuditError::io(addr, &e));
                }
                std::thread::sleep(opts.connect_retry);
            }
        }
    };

    write_frame(
        &mut conn,
        &Msg::Hello {
            protocol: PROTOCOL_VERSION,
        }
        .to_json(),
    )?;
    let ctx = match read_msg(&mut conn)? {
        Some(Msg::Setup { ctx }) => ctx,
        Some(other) => {
            return Err(AuditError::journal(
                0,
                format!("expected setup, got `{}`", msg_kind(&other)),
            ))
        }
        None => return Err(AuditError::journal(0, "broker hung up before setup")),
    };
    let rig = ctx.rig()?;
    let fspec = ctx.spec;

    let mut stats = WorkerStats::default();
    loop {
        match read_msg(&mut conn)? {
            Some(Msg::Eval { id, genome }) => {
                if opts.max_evals.is_some_and(|cap| stats.evaluations >= cap) {
                    // Kill hook: vanish without replying, like a
                    // SIGKILLed process. The OS closes the socket and
                    // the broker re-dispatches the job.
                    return Ok(stats);
                }
                let (objectives, resilience) = fspec.evaluate_objectives(&rig, &genome);
                write_frame(
                    &mut conn,
                    &Msg::Result {
                        id,
                        objectives,
                        resilience,
                    }
                    .to_json(),
                )?;
                stats.evaluations += 1;
            }
            Some(Msg::Ping) => write_frame(&mut conn, &Msg::Pong.to_json())?,
            Some(Msg::Shutdown) | None => {
                stats.clean_exit = true;
                return Ok(stats);
            }
            Some(other) => {
                return Err(AuditError::journal(
                    0,
                    format!("unexpected `{}` frame", msg_kind(&other)),
                ))
            }
        }
    }
}

/// Reads one message; `None` is a clean EOF. A torn frame is an error
/// here — unlike the broker, a worker has nothing to salvage from a
/// half-dead broker and should exit loudly.
fn read_msg(conn: &mut crate::transport::Conn) -> Result<Option<Msg>, AuditError> {
    match read_frame(conn)? {
        FrameOutcome::Frame(v) => Ok(Some(Msg::from_json(&v)?)),
        FrameOutcome::Eof => Ok(None),
        FrameOutcome::TruncatedTail => {
            Err(AuditError::journal(0, "broker connection died mid-frame"))
        }
    }
}

fn msg_kind(msg: &Msg) -> &'static str {
    match msg {
        Msg::Hello { .. } => "hello",
        Msg::Setup { .. } => "setup",
        Msg::Eval { .. } => "eval",
        Msg::Result { .. } => "result",
        Msg::Ping => "ping",
        Msg::Pong => "pong",
        Msg::Shutdown => "shutdown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_timeout_is_reported() {
        let opts = WorkerOptions {
            connect_for: Duration::from_millis(50),
            connect_retry: Duration::from_millis(10),
            max_evals: None,
        };
        // Nothing listens on a fresh unix path.
        let addr = format!(
            "unix:{}",
            std::env::temp_dir()
                .join(format!("audit-no-broker-{}.sock", std::process::id()))
                .display()
        );
        assert!(run_worker(&addr, &opts).is_err());
    }
}
