//! The worker loop behind `audit work`.
//!
//! A worker is stateless between evaluations: it connects, greets the
//! broker, rebuilds the rig and [`audit_core::FitnessSpec`] from the
//! [`Setup`](crate::proto::Msg::Setup) frame, then answers `Eval`
//! frames with `Result` frames until the broker says
//! [`Shutdown`](crate::proto::Msg::Shutdown) or hangs up. Each result
//! carries the evaluation's resilience-counter delta so the broker can
//! merge accounting exactly once, in any arrival order.
//!
//! A multi-tenant manager (`audit fleet serve`) re-sends `Setup`
//! mid-session whenever it switches the worker between campaigns; the
//! worker rebinds its rig and fitness function in stream order, so
//! every `Eval` is scored under the context most recently set up
//! before it. Completed evaluations land in a **cross-campaign eval
//! cache** keyed by the full setup encoding (interned) plus the genome
//! content hash: identical jobs from different campaigns — or
//! re-dispatched retries of the same job — are answered from the cache
//! with bit-identical objectives *and* the identical resilience delta
//! (evaluation is deterministic), flagged `cached` on the wire for the
//! manager's hit-rate metrics. The cache survives rejoins; contexts
//! that differ in any encoded byte can never share an entry.
//!
//! Connection management is fleet-friendly: connect retries use
//! bounded exponential backoff with deterministic jitter (a thousand
//! workers pointed at a dead broker spread their retries out instead of
//! thundering in lockstep), and with [`WorkerOptions::rejoin`] a worker
//! severed mid-run — evicted by cross-validation, declared dead by a
//! missed heartbeat, or cut by a flaky network — reconnects and keeps
//! serving instead of exiting. A severed worker whose broker is truly
//! gone exits cleanly after a short probe: the broker's disappearance
//! is its release.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use audit_core::ga::Objectives;
use audit_core::resilient::genome_key;
use audit_core::{FitnessSpec, ResilienceReport, Rig};
use audit_error::AuditError;
use audit_measure::fault::{mix, uniform};

use crate::frame::{read_frame, write_frame, FrameOutcome};
use crate::proto::{Msg, PROTOCOL_VERSION};
use crate::transport::{connect, Conn};

/// Ceiling on one backoff sleep, however many attempts have failed.
const BACKOFF_CAP: Duration = Duration::from_secs(5);

/// How many base retry intervals a severed worker probes for a live
/// broker before concluding it is gone and exiting cleanly.
const REJOIN_WINDOW: u32 = 8;

/// Entries the cross-campaign eval cache holds before a wholesale
/// flush — the same reset idiom as the engine-side eval cache: simple
/// and bounded beats LRU bookkeeping at this size.
const WORKER_CACHE_CAPACITY: usize = 4096;

/// The cross-campaign eval cache (see the module docs). Lives in
/// [`run_worker`], outside the session loop, so it survives rejoins.
#[derive(Default)]
struct EvalStore {
    /// Full setup encodings interned to dense ids. Two contexts share
    /// an id only when every encoded byte of their wire form matches —
    /// fingerprint *hashes* of the encoding are for metrics display,
    /// never for cache keying, so hash collisions cannot leak results
    /// between tenants.
    intern: HashMap<String, u64>,
    map: HashMap<(u64, u64), (Objectives, ResilienceReport)>,
}

impl EvalStore {
    fn ctx_id(&mut self, encoded: &str) -> u64 {
        if let Some(&id) = self.intern.get(encoded) {
            return id;
        }
        let id = self.intern.len() as u64;
        self.intern.insert(encoded.to_string(), id);
        id
    }

    fn lookup(&self, ctx: u64, key: u64) -> Option<(Objectives, ResilienceReport)> {
        self.map.get(&(ctx, key)).cloned()
    }

    fn insert(&mut self, ctx: u64, key: u64, objectives: Objectives, resilience: ResilienceReport) {
        if self.map.len() >= WORKER_CACHE_CAPACITY {
            self.map.clear();
        }
        self.map.insert((ctx, key), (objectives, resilience));
    }
}

/// Worker knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerOptions {
    /// How long to keep retrying the initial connect (the broker may
    /// not be up yet when workers start).
    pub connect_for: Duration,
    /// Base interval between connect attempts; attempt `n` waits
    /// `connect_retry · 2ⁿ` (capped at 5 s), jittered deterministically
    /// into `[50 %, 100 %]` of that.
    pub connect_retry: Duration,
    /// Salt folded into the backoff jitter hash. Give each worker
    /// process a distinct salt (the CLI uses the PID) so a fleet
    /// spreads out; any single worker's schedule stays reproducible.
    pub jitter_salt: u64,
    /// Reconnect and keep serving after an unexpected disconnect
    /// (eviction, missed heartbeat, flaky network). A broker `Shutdown`
    /// still ends the worker, and a severed worker whose broker no
    /// longer answers exits cleanly after a short probe.
    pub rejoin: bool,
    /// Fault-injection hook for tests: after completing this many
    /// evaluations the worker returns abruptly — no reply, no clean
    /// shutdown — as if the process had been killed mid-generation.
    pub max_evals: Option<usize>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            connect_for: Duration::from_secs(30),
            connect_retry: Duration::from_millis(100),
            jitter_salt: 0,
            rejoin: false,
            max_evals: None,
        }
    }
}

/// What a worker session amounted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStats {
    /// Evaluations completed and reported (across rejoins).
    pub evaluations: usize,
    /// Of those, how many were answered from the cross-campaign eval
    /// cache instead of being recomputed.
    pub cache_hits: usize,
    /// True when the session ended by broker `Shutdown`, clean EOF, or
    /// a vanished broker after rejoin (false means the
    /// [`WorkerOptions::max_evals`] kill hook fired).
    pub clean_exit: bool,
}

/// How one broker session ended.
enum SessionEnd {
    /// The broker released the worker (`Shutdown`, or clean EOF when
    /// rejoin is off).
    Released,
    /// The [`WorkerOptions::max_evals`] kill hook fired.
    Killed,
    /// The connection died without a `Shutdown` — eviction, missed
    /// heartbeat, or network failure. Rejoin if configured.
    Severed,
}

/// Connects to `addr` and serves evaluations until the broker releases
/// the worker. See the module docs.
///
/// # Errors
///
/// Returns [`AuditError::Io`] when the broker cannot be reached within
/// [`WorkerOptions::connect_for`], and [`AuditError::Journal`] on a
/// malformed or out-of-order protocol frame (including, with rejoin
/// off, a torn frame — the broker died mid-send).
pub fn run_worker(addr: &str, opts: &WorkerOptions) -> Result<WorkerStats, AuditError> {
    let mut stats = WorkerStats::default();
    let mut cache = EvalStore::default();
    let mut sessions: u64 = 0;
    loop {
        let deadline = if sessions == 0 {
            // Initial connect: the broker may still be starting.
            Instant::now() + opts.connect_for
        } else {
            // Rejoin probe: a live broker accepts instantly; a gone
            // broker refuses every attempt in a short window.
            Instant::now()
                + opts
                    .connect_retry
                    .max(Duration::from_millis(1))
                    .saturating_mul(REJOIN_WINDOW)
        };
        let conn = match connect_with_backoff(addr, deadline, opts, sessions) {
            Ok(conn) => conn,
            Err(e) => {
                if sessions > 0 {
                    // The broker vanished after releasing no Shutdown —
                    // its disappearance is the release.
                    stats.clean_exit = true;
                    return Ok(stats);
                }
                return Err(e);
            }
        };
        sessions += 1;
        match serve_session(conn, opts, &mut stats, &mut cache)? {
            SessionEnd::Released => {
                stats.clean_exit = true;
                return Ok(stats);
            }
            SessionEnd::Killed => return Ok(stats),
            SessionEnd::Severed => {
                debug_assert!(opts.rejoin, "sever only surfaces with rejoin on");
                continue;
            }
        }
    }
}

/// One full broker session: handshake, then serve until it ends.
fn serve_session(
    mut conn: Conn,
    opts: &WorkerOptions,
    stats: &mut WorkerStats,
    cache: &mut EvalStore,
) -> Result<SessionEnd, AuditError> {
    let hello = Msg::Hello {
        protocol: PROTOCOL_VERSION,
    }
    .to_json();
    if let Err(e) = write_frame(&mut conn, &hello) {
        // The broker died between accept and handshake; with rejoin on,
        // probe it again instead of failing the worker.
        return if opts.rejoin { Ok(SessionEnd::Severed) } else { Err(e) };
    }
    // With rejoin on, any connection-level failure — EOF, torn frame,
    // reset (the signature of eviction or a broker restart) — severs
    // the session instead of erroring the worker.
    let read = |conn: &mut Conn| match read_msg(conn) {
        Ok(r) => Ok(r),
        Err(e) if opts.rejoin => {
            let _ = e;
            Ok(Read::Torn)
        }
        Err(e) => Err(e),
    };
    // The single-campaign broker sends Setup right after the handshake;
    // a fleet manager defers it until the worker's first dispatch and
    // re-sends it mid-session to switch the worker between campaigns.
    // Frames are processed in stream order, so every Eval is scored
    // under the most recent Setup before it.
    let mut bound: Option<(Rig, FitnessSpec, u64)> = None;

    loop {
        match read(&mut conn)? {
            Read::Frame(Msg::Setup { ctx }) => {
                let ctx_id = cache.ctx_id(&ctx.to_json().encode());
                bound = Some((ctx.rig()?, ctx.spec, ctx_id));
            }
            Read::Frame(Msg::Eval { id, genome }) => {
                if opts.max_evals.is_some_and(|cap| stats.evaluations >= cap) {
                    // Kill hook: vanish without replying, like a
                    // SIGKILLed process. The OS closes the socket and
                    // the broker re-dispatches the job.
                    return Ok(SessionEnd::Killed);
                }
                let Some((rig, fspec, ctx_id)) = bound.as_ref() else {
                    return Err(AuditError::journal(0, "eval before setup"));
                };
                let key = genome_key(&genome);
                let (objectives, resilience, cached) = match cache.lookup(*ctx_id, key) {
                    Some((objectives, resilience)) => (objectives, resilience, true),
                    None => {
                        let (objectives, resilience) = fspec.evaluate_objectives(rig, &genome);
                        cache.insert(*ctx_id, key, objectives.clone(), resilience);
                        (objectives, resilience, false)
                    }
                };
                if cached {
                    stats.cache_hits += 1;
                }
                let reply = Msg::Result {
                    id,
                    objectives,
                    resilience,
                    cached,
                }
                .to_json();
                if let Err(e) = write_frame(&mut conn, &reply) {
                    if opts.rejoin {
                        return Ok(SessionEnd::Severed);
                    }
                    return Err(e);
                }
                stats.evaluations += 1;
            }
            Read::Frame(Msg::Ping) => {
                if let Err(e) = write_frame(&mut conn, &Msg::Pong.to_json()) {
                    if opts.rejoin {
                        return Ok(SessionEnd::Severed);
                    }
                    return Err(e);
                }
            }
            Read::Frame(Msg::Shutdown) => return Ok(SessionEnd::Released),
            Read::Eof => {
                return Ok(if opts.rejoin {
                    SessionEnd::Severed
                } else {
                    // Historical semantics: a clean EOF releases the
                    // worker like a Shutdown.
                    SessionEnd::Released
                })
            }
            Read::Torn if opts.rejoin => return Ok(SessionEnd::Severed),
            Read::Torn => {
                return Err(AuditError::journal(0, "broker connection died mid-frame"))
            }
            Read::Frame(other) => {
                return Err(AuditError::journal(
                    0,
                    format!("unexpected `{}` frame", msg_kind(&other)),
                ))
            }
        }
    }
}

/// One read outcome a session must act on. CRC-rejected frames never
/// surface: they are dropped inside [`read_msg`] and the stream keeps
/// going (the broker's dispatch lease re-issues whatever they carried).
#[allow(clippy::large_enum_variant)] // one short-lived value per frame
enum Read {
    Frame(Msg),
    Eof,
    Torn,
}

fn read_msg(conn: &mut Conn) -> Result<Read, AuditError> {
    loop {
        return Ok(match read_frame(conn)? {
            FrameOutcome::Frame(v) => Read::Frame(Msg::from_json(&v)?),
            FrameOutcome::Corrupt => continue,
            FrameOutcome::Eof => Read::Eof,
            FrameOutcome::TruncatedTail => Read::Torn,
        });
    }
}

/// Retries `connect(addr)` under bounded exponential backoff until
/// `deadline`.
fn connect_with_backoff(
    addr: &str,
    deadline: Instant,
    opts: &WorkerOptions,
    session: u64,
) -> Result<Conn, AuditError> {
    let mut attempt: u32 = 0;
    loop {
        match connect(addr) {
            Ok(conn) => return Ok(conn),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(AuditError::io(addr, &e));
                }
                std::thread::sleep(backoff_delay(opts, session, attempt));
                attempt = attempt.saturating_add(1);
            }
        }
    }
}

/// Attempt `n` sleeps `connect_retry · 2ⁿ`, capped at [`BACKOFF_CAP`],
/// scaled into `[50 %, 100 %]` by a pure hash of
/// `(jitter_salt, session, attempt)` — the SplitMix64 discipline of
/// `audit_measure::fault`, so a worker's schedule is reproducible while
/// a fleet with distinct salts decorrelates.
fn backoff_delay(opts: &WorkerOptions, session: u64, attempt: u32) -> Duration {
    let base = opts.connect_retry.max(Duration::from_millis(1));
    let exp = base.saturating_mul(1u32 << attempt.min(20)).min(BACKOFF_CAP);
    let factor = 0.5 + 0.5 * uniform(mix(mix(opts.jitter_salt, session), u64::from(attempt)));
    exp.mul_f64(factor)
}

fn msg_kind(msg: &Msg) -> &'static str {
    match msg {
        Msg::Hello { .. } => "hello",
        Msg::Setup { .. } => "setup",
        Msg::Eval { .. } => "eval",
        Msg::Result { .. } => "result",
        Msg::Ping => "ping",
        Msg::Pong => "pong",
        Msg::Shutdown => "shutdown",
        Msg::MetricsReq => "metrics_req",
        Msg::Metrics { .. } => "metrics",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_timeout_is_reported() {
        let opts = WorkerOptions {
            connect_for: Duration::from_millis(50),
            connect_retry: Duration::from_millis(10),
            ..WorkerOptions::default()
        };
        // Nothing listens on a fresh unix path.
        let addr = format!(
            "unix:{}",
            std::env::temp_dir()
                .join(format!("audit-no-broker-{}.sock", std::process::id()))
                .display()
        );
        assert!(run_worker(&addr, &opts).is_err());
    }

    #[test]
    fn eval_store_never_shares_entries_across_contexts() {
        let mut store = EvalStore::default();
        let a = store.ctx_id("ctx-a");
        let b = store.ctx_id("ctx-b");
        assert_ne!(a, b);
        // Interning is stable: the same encoding maps to the same id.
        assert_eq!(store.ctx_id("ctx-a"), a);
        store.insert(a, 42, Objectives::scalar(-1.0), ResilienceReport::default());
        assert_eq!(
            store.lookup(a, 42),
            Some((Objectives::scalar(-1.0), ResilienceReport::default()))
        );
        assert_eq!(store.lookup(b, 42), None, "tenant isolation");
    }

    #[test]
    fn backoff_is_bounded_exponential_with_deterministic_jitter() {
        let opts = WorkerOptions {
            connect_retry: Duration::from_millis(100),
            jitter_salt: 7,
            ..WorkerOptions::default()
        };
        for n in 0..24u32 {
            let d = backoff_delay(&opts, 0, n);
            // Deterministic: the same (salt, session, attempt) always
            // sleeps the same.
            assert_eq!(d, backoff_delay(&opts, 0, n), "attempt {n}");
            // Jitter keeps every sleep within [50 %, 100 %] of the
            // capped exponential.
            let ceiling = Duration::from_millis(100)
                .saturating_mul(1u32 << n.min(20))
                .min(BACKOFF_CAP);
            assert!(d <= ceiling, "attempt {n}: {d:?} > {ceiling:?}");
            assert!(d >= ceiling / 2, "attempt {n}: {d:?} < half of {ceiling:?}");
        }
        // Growth: attempt 3's floor (8x · 50 %) clears attempt 0's
        // ceiling (1x · 100 %).
        assert!(backoff_delay(&opts, 0, 3) > backoff_delay(&opts, 0, 0));
        // The cap holds forever.
        assert!(backoff_delay(&opts, 0, 40) <= BACKOFF_CAP);
        // Distinct salts decorrelate the fleet.
        let other = WorkerOptions {
            jitter_salt: 8,
            ..opts
        };
        assert!((0..24).any(|n| backoff_delay(&opts, 0, n) != backoff_delay(&other, 0, n)));
    }
}
