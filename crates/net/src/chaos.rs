//! Deterministic network fault injection for the broker/worker link.
//!
//! `audit_measure::fault` (PR 4) made the *measurement* stack hostile on
//! purpose; this module does the same for the *transport*. A
//! [`NetFaultPlan`] turns the broker↔worker link into a reproducibly
//! bad network: frames are dropped, duplicated, and bit-flipped, workers
//! stall mid-job, and byzantine workers return confidently wrong
//! results. Every decision is a pure hash of
//! `(plan seed, direction, frame key, attempt, copy)` using the exact
//! SplitMix64 mixing discipline of `audit_measure::fault`, so two runs
//! with the same plan see the same chaos regardless of worker count,
//! thread scheduling, or kill/resume.
//!
//! The plan is injected *broker-side* (see `broker`): outbound faults
//! fire at dispatch time (an `eval` frame is withheld, sent twice, or
//! sent with a flipped payload bit so the CRC32 trailer fails at the
//! worker), inbound faults fire at result admission (a `result` frame is
//! discarded as if lost or corrupted on the wire, processed twice as a
//! replay, perturbed to model a lying worker, or escalated to a full
//! worker stall). Centralising the draws in the broker keeps workers
//! honest *processes* while still exercising every defense, and keeps
//! the schedule independent of how jobs land on workers.
//!
//! Fault taxonomy (rates are per-frame probabilities):
//!
//! * **drop** — the frame vanishes; the job is recovered by the
//!   broker's dispatch lease (re-dispatch at `attempt + 1`).
//! * **dup** — the frame arrives twice; the duplicate must be rejected
//!   by `(key, attempt)` accounting with no double count.
//! * **corrupt** — a payload bit flips in transit; the CRC32 trailer
//!   (frame protocol v2) catches it and the frame is discarded.
//! * **stall** — the worker holding the job goes silent; the liveness
//!   layer (`heartbeat` / `dead_after`) declares it dead and
//!   re-dispatches its jobs.
//! * **lie** — the worker returns a plausible but wrong objective
//!   vector; only cross-validation (`BrokerConfig::verify_fraction`)
//!   can catch this, by majority vote and eviction.
//!
//! A plan with all rates zero is a guaranteed no-op: the broker's wire
//! bytes and journal bytes are untouched.

use audit_error::{AuditError, AuditResult};
use audit_measure::fault::{mix, uniform};

/// Per-class network fault probabilities. All rates are probabilities
/// in `[0, 1]`, drawn independently per frame.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetFaultRates {
    /// Per-frame probability that the frame is silently lost.
    pub drop: f64,
    /// Per-frame probability that the frame is delivered twice.
    pub dup: f64,
    /// Per-frame probability that a payload bit flips in transit
    /// (caught by the CRC32 trailer; the frame is discarded).
    pub corrupt: f64,
    /// Per-result probability that the worker stalls instead of
    /// answering — it goes silent and must be declared dead.
    pub stall: f64,
    /// Per-result probability that the worker lies: it returns a
    /// deterministically perturbed objective vector.
    pub lie: f64,
}

impl NetFaultRates {
    /// All-zero rates: injection disabled.
    pub fn none() -> Self {
        NetFaultRates::default()
    }

    /// True when every rate is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.drop == 0.0
            && self.dup == 0.0
            && self.corrupt == 0.0
            && self.stall == 0.0
            && self.lie == 0.0
    }

    fn validate(&self) -> AuditResult<()> {
        let probs = [
            ("drop", self.drop),
            ("dup", self.dup),
            ("corrupt", self.corrupt),
            ("stall", self.stall),
            ("lie", self.lie),
        ];
        for (field, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(AuditError::invalid(
                    "NetFaultRates",
                    field,
                    format!("must be a probability in [0, 1] (got {p})"),
                ));
            }
        }
        Ok(())
    }
}

/// Which way a frame is travelling; a class-level discriminator so the
/// outbound and inbound draws for one `(key, attempt)` are independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Broker → worker (`eval` dispatch frames).
    Outbound,
    /// Worker → broker (`result` frames).
    Inbound,
}

impl Direction {
    fn stream(self) -> u64 {
        match self {
            Direction::Outbound => 0x4F55_5442, // "OUTB"
            Direction::Inbound => 0x494E_424E, // "INBN"
        }
    }
}

/// The resolved fate of one frame: what the simulated network does to
/// it. At most one fate fires per frame (precedence drop > corrupt >
/// dup, so the rates stay independently interpretable at small values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// The frame arrives intact, exactly once.
    Deliver,
    /// The frame is lost.
    Drop,
    /// The frame arrives with a flipped payload bit (CRC32 failure).
    Corrupt,
    /// The frame arrives twice.
    Duplicate,
}

/// A seeded network fault schedule: the seed plus per-class rates.
///
/// Parsed from the CLI spec `SEED:drop=0.02,dup=0.01,corrupt=0.01,`
/// `stall=0.005,lie=0.01` exactly like
/// [`audit_measure::fault::FaultPlan`]. The plan holds no mutable
/// state; every query is a pure function of its arguments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaultPlan {
    seed: u64,
    rates: NetFaultRates,
}

impl NetFaultPlan {
    /// A plan that injects nothing. [`NetFaultPlan::is_enabled`] is
    /// false and every frame fate is [`FrameFate::Deliver`].
    pub fn disabled() -> Self {
        NetFaultPlan {
            seed: 0,
            rates: NetFaultRates::none(),
        }
    }

    /// Builds a plan after validating the rates.
    pub fn new(seed: u64, rates: NetFaultRates) -> AuditResult<Self> {
        rates.validate()?;
        Ok(NetFaultPlan { seed, rates })
    }

    /// True when at least one fault class can fire.
    pub fn is_enabled(&self) -> bool {
        !self.rates.is_zero()
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's rates.
    pub fn rates(&self) -> &NetFaultRates {
        &self.rates
    }

    /// Parses the CLI spec `SEED:KEY=VALUE[,KEY=VALUE...]`.
    ///
    /// Keys: `drop`, `dup`, `corrupt`, `stall`, `lie` — all per-frame
    /// probabilities. Example:
    ///
    /// ```
    /// use audit_net::chaos::NetFaultPlan;
    /// let plan = NetFaultPlan::parse("7:drop=0.02,lie=0.01").unwrap();
    /// assert!(plan.is_enabled());
    /// assert_eq!(plan.seed(), 7);
    /// assert_eq!(plan.rates().lie, 0.01);
    /// ```
    pub fn parse(spec: &str) -> AuditResult<Self> {
        let bad = |msg: String| AuditError::invalid("NetFaultPlan", "spec", msg);
        let (seed_str, rates_str) = spec
            .split_once(':')
            .ok_or_else(|| bad(format!("expected `SEED:KEY=VALUE,...` (got `{spec}`)")))?;
        let seed: u64 = seed_str
            .trim()
            .parse()
            .map_err(|_| bad(format!("seed must be a u64 (got `{seed_str}`)")))?;
        let mut rates = NetFaultRates::none();
        for part in rates_str.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| bad(format!("expected `KEY=VALUE` (got `{part}`)")))?;
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|_| bad(format!("`{key}` value must be a number (got `{value}`)")))?;
            match key.trim() {
                "drop" => rates.drop = value,
                "dup" => rates.dup = value,
                "corrupt" => rates.corrupt = value,
                "stall" => rates.stall = value,
                "lie" => rates.lie = value,
                other => {
                    return Err(bad(format!(
                        "unknown net fault key `{other}` (expected drop/dup/corrupt/stall/lie)"
                    )))
                }
            }
        }
        NetFaultPlan::new(seed, rates)
    }

    /// Renders the plan back into the `SEED:KEY=VALUE,...` spec form
    /// accepted by [`NetFaultPlan::parse`].
    pub fn spec_string(&self) -> String {
        let r = &self.rates;
        let mut parts = Vec::new();
        if r.drop > 0.0 {
            parts.push(format!("drop={}", r.drop));
        }
        if r.dup > 0.0 {
            parts.push(format!("dup={}", r.dup));
        }
        if r.corrupt > 0.0 {
            parts.push(format!("corrupt={}", r.corrupt));
        }
        if r.stall > 0.0 {
            parts.push(format!("stall={}", r.stall));
        }
        if r.lie > 0.0 {
            parts.push(format!("lie={}", r.lie));
        }
        format!("{}:{}", self.seed, parts.join(","))
    }

    /// The per-frame base word: one well-mixed word per
    /// `(seed, direction, frame_key, attempt, copy)` tuple. `copy`
    /// distinguishes the primary dispatch from cross-validation and
    /// duplicate copies of the same `(key, attempt)`.
    fn base(&self, dir: Direction, frame_key: u64, attempt: u32, copy: u32) -> u64 {
        let word = attempt as u64 | ((copy as u64) << 32);
        mix(mix(mix(self.seed, dir.stream()), frame_key), word)
    }

    /// The wire-level fate of one frame. Pure: the same arguments
    /// always return the same fate. [`FrameFate::Deliver`] whenever the
    /// plan is disabled.
    pub fn frame_fate(&self, dir: Direction, frame_key: u64, attempt: u32, copy: u32) -> FrameFate {
        if !self.is_enabled() {
            return FrameFate::Deliver;
        }
        let base = self.base(dir, frame_key, attempt, copy);
        if uniform(mix(base, STREAM_DROP)) < self.rates.drop {
            return FrameFate::Drop;
        }
        if uniform(mix(base, STREAM_CORRUPT)) < self.rates.corrupt {
            return FrameFate::Corrupt;
        }
        if uniform(mix(base, STREAM_DUP)) < self.rates.dup {
            return FrameFate::Duplicate;
        }
        FrameFate::Deliver
    }

    /// The deterministic bit index the "network" flips when
    /// [`FrameFate::Corrupt`] fires on an outbound frame (the writer
    /// reduces it modulo the payload length in bits).
    pub fn corrupt_bit(&self, dir: Direction, frame_key: u64, attempt: u32, copy: u32) -> u64 {
        mix(self.base(dir, frame_key, attempt, copy), STREAM_CORRUPT_BIT)
    }

    /// True when the worker holding this job stalls instead of
    /// answering (inbound only — a stall is a missing `result`).
    pub fn stalls(&self, frame_key: u64, attempt: u32, copy: u32) -> bool {
        self.rates.stall > 0.0
            && uniform(mix(
                self.base(Direction::Inbound, frame_key, attempt, copy),
                STREAM_STALL,
            )) < self.rates.stall
    }

    /// Nonzero XOR mask for a byzantine result, or zero when this
    /// result is honest. The broker XORs the mask into the bit pattern
    /// of the first objective — a small, plausible-looking perturbation
    /// that survives round-trips and is detectable only by
    /// cross-validation. Keyed per copy, so two copies of a verified
    /// job practically never lie identically.
    pub fn lie_mask(&self, frame_key: u64, attempt: u32, copy: u32) -> u64 {
        if self.rates.lie == 0.0 {
            return 0;
        }
        let base = self.base(Direction::Inbound, frame_key, attempt, copy);
        if uniform(mix(base, STREAM_LIE)) < self.rates.lie {
            // Low-order mantissa bits only: the lie stays plausible
            // (tiny relative error), and `| 1` guarantees nonzero.
            (mix(base, STREAM_LIE_BITS) & 0xFFFF) | 1
        } else {
            0
        }
    }
}

// Per-class stream discriminators, mixed into the per-frame base word
// so each fault class draws independently.
const STREAM_DROP: u64 = 0x44524F50; // "DROP"
const STREAM_DUP: u64 = 0x44555021; // "DUP!"
const STREAM_CORRUPT: u64 = 0x434F5252; // "CORR"
const STREAM_CORRUPT_BIT: u64 = 0x43425421; // "CBT!"
const STREAM_STALL: u64 = 0x5354414C; // "STAL"
const STREAM_LIE: u64 = 0x4C494521; // "LIE!"
const STREAM_LIE_BITS: u64 = 0x4C494542; // "LIEB"

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic_plan() -> NetFaultPlan {
        NetFaultPlan::new(
            42,
            NetFaultRates {
                drop: 0.3,
                dup: 0.3,
                corrupt: 0.3,
                stall: 0.3,
                lie: 0.3,
            },
        )
        .unwrap()
    }

    #[test]
    fn disabled_plan_delivers_everything() {
        let plan = NetFaultPlan::disabled();
        assert!(!plan.is_enabled());
        for key in [0u64, 7, 0xDEAD_BEEF] {
            for attempt in 0..4 {
                for dir in [Direction::Outbound, Direction::Inbound] {
                    assert_eq!(plan.frame_fate(dir, key, attempt, 0), FrameFate::Deliver);
                }
                assert!(!plan.stalls(key, attempt, 0));
                assert_eq!(plan.lie_mask(key, attempt, 0), 0);
            }
        }
    }

    #[test]
    fn fates_are_pure_functions_of_their_arguments() {
        let plan = chaotic_plan();
        for key in [1u64, 2, 99] {
            for attempt in 0..4 {
                for copy in 0..3 {
                    for dir in [Direction::Outbound, Direction::Inbound] {
                        assert_eq!(
                            plan.frame_fate(dir, key, attempt, copy),
                            plan.frame_fate(dir, key, attempt, copy)
                        );
                    }
                    assert_eq!(
                        plan.stalls(key, attempt, copy),
                        plan.stalls(key, attempt, copy)
                    );
                    assert_eq!(
                        plan.lie_mask(key, attempt, copy),
                        plan.lie_mask(key, attempt, copy)
                    );
                }
            }
        }
    }

    #[test]
    fn directions_and_copies_draw_independent_schedules() {
        let plan = chaotic_plan();
        let fates = |dir: Direction, copy: u32| -> Vec<FrameFate> {
            (0..64).map(|k| plan.frame_fate(dir, k, 0, copy)).collect()
        };
        assert_ne!(
            fates(Direction::Outbound, 0),
            fates(Direction::Inbound, 0),
            "outbound and inbound schedules must be independent"
        );
        assert_ne!(
            fates(Direction::Inbound, 0),
            fates(Direction::Inbound, 1),
            "copies of the same frame must draw independently"
        );
    }

    #[test]
    fn attempts_draw_different_schedules() {
        let plan = NetFaultPlan::new(
            9,
            NetFaultRates {
                drop: 0.5,
                ..NetFaultRates::none()
            },
        )
        .unwrap();
        let drops: Vec<bool> = (0..64)
            .map(|a| plan.frame_fate(Direction::Outbound, 7, a, 0) == FrameFate::Drop)
            .collect();
        assert!(drops.iter().any(|&d| d));
        assert!(drops.iter().any(|&d| !d));
    }

    #[test]
    fn fates_fire_at_roughly_their_rates() {
        let plan = NetFaultPlan::new(
            3,
            NetFaultRates {
                drop: 0.1,
                dup: 0.1,
                corrupt: 0.1,
                stall: 0.05,
                lie: 0.05,
            },
        )
        .unwrap();
        let n = 20_000u64;
        let mut counts = [0usize; 4];
        let mut stalls = 0usize;
        let mut lies = 0usize;
        for k in 0..n {
            match plan.frame_fate(Direction::Inbound, k, 0, 0) {
                FrameFate::Deliver => counts[0] += 1,
                FrameFate::Drop => counts[1] += 1,
                FrameFate::Corrupt => counts[2] += 1,
                FrameFate::Duplicate => counts[3] += 1,
            }
            if plan.stalls(k, 0, 0) {
                stalls += 1;
            }
            if plan.lie_mask(k, 0, 0) != 0 {
                lies += 1;
            }
        }
        let rate = |c: usize| c as f64 / n as f64;
        assert!((rate(counts[1]) - 0.1).abs() < 0.02, "drop {}", rate(counts[1]));
        // Corrupt and dup draw behind drop's precedence: expected
        // 0.9 * 0.1 and 0.9 * 0.9 * 0.1 respectively.
        assert!((rate(counts[2]) - 0.09).abs() < 0.02, "corrupt {}", rate(counts[2]));
        assert!((rate(counts[3]) - 0.081).abs() < 0.02, "dup {}", rate(counts[3]));
        assert!((rate(stalls) - 0.05).abs() < 0.02, "stall {}", rate(stalls));
        assert!((rate(lies) - 0.05).abs() < 0.02, "lie {}", rate(lies));
    }

    #[test]
    fn lie_mask_is_nonzero_and_small_when_it_fires() {
        let plan = NetFaultPlan::new(
            5,
            NetFaultRates {
                lie: 1.0,
                ..NetFaultRates::none()
            },
        )
        .unwrap();
        for k in 0..256u64 {
            let mask = plan.lie_mask(k, 0, 0);
            assert_ne!(mask, 0);
            assert!(mask <= 0xFFFF, "mask {mask:#x} must stay in the mantissa");
        }
    }

    #[test]
    fn parse_round_trips_through_spec_string() {
        for spec in [
            "7:drop=0.02,lie=0.01",
            "0:stall=1",
            "123:drop=0.02,dup=0.01,corrupt=0.01,stall=0.005,lie=0.01",
        ] {
            let plan = NetFaultPlan::parse(spec).unwrap();
            let again = NetFaultPlan::parse(&plan.spec_string()).unwrap();
            assert_eq!(plan, again, "spec `{spec}`");
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "no-colon",
            "x:drop=0.1",
            "1:drop",
            "1:drop=abc",
            "1:warp=0.5",
            "1:drop=1.5",
            "1:lie=-0.1",
        ] {
            assert!(NetFaultPlan::parse(bad).is_err(), "accepted `{bad}`");
        }
    }
}
