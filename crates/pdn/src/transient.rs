//! Streaming time-domain (transient) simulation of the PDN.
//!
//! This is the reproduction's stand-in for the HSPICE step of the AUDIT
//! simulation path (paper Fig. 5): the per-cycle current profile produced
//! by the processor model is fed in one sample at a time, and the solver
//! integrates the three-stage RLC ladder to produce the die supply
//! voltage seen by the oscilloscope.
//!
//! The network state is six-dimensional — three inductor currents and
//! three capacitor voltages — and is integrated with classical
//! fourth-order Runge–Kutta at a fixed step of one processor clock cycle.
//! With the preset component values the fastest mode (first droop,
//! ≈ 100 MHz) is sampled ≈ 30× per period at 3.2 GHz, comfortably inside
//! RK4's stability region.

use crate::model::PdnModel;

/// Six-dimensional network state: inductor currents then cap voltages.
type State = [f64; 6];

/// Streaming transient solver for a [`PdnModel`].
///
/// Create one per simulation run; feed it the chip load current cycle by
/// cycle via [`Transient::step`] and it returns the die voltage for that
/// cycle.
///
/// # Example
///
/// ```
/// use audit_pdn::{PdnModel, Transient};
///
/// let pdn = PdnModel::bulldozer_board();
/// let mut sim = Transient::new(&pdn, 3.2e9);
/// let v = sim.step(20.0);
/// assert!(v > 0.0 && v <= pdn.nominal_voltage() + 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct Transient {
    // Cached component values (pre-inverted where hot).
    inv_l: [f64; 3],
    series_r: [f64; 3],
    inv_c: [f64; 3],
    esr: [f64; 3],
    v_nom: f64,
    load_line_slope: f64,
    dt: f64,
    state: State,
    elapsed_cycles: u64,
}

impl Transient {
    /// Creates a solver for `pdn` stepped once per cycle of a clock at
    /// `clock_hz`, with the network pre-settled at zero load.
    ///
    /// # Panics
    ///
    /// Panics if `pdn` fails [`PdnModel::validate`] or if `clock_hz` is
    /// not positive and finite — both indicate programmer error upstream.
    pub fn new(pdn: &PdnModel, clock_hz: f64) -> Self {
        pdn.validate().expect("invalid PDN model");
        assert!(
            clock_hz.is_finite() && clock_hz > 0.0,
            "clock frequency must be positive and finite"
        );
        let s = pdn.stages();
        let v_nom = pdn.nominal_voltage();
        Transient {
            inv_l: [
                1.0 / s[0].series_l,
                1.0 / s[1].series_l,
                1.0 / s[2].series_l,
            ],
            series_r: [s[0].series_r, s[1].series_r, s[2].series_r],
            inv_c: [1.0 / s[0].shunt_c, 1.0 / s[1].shunt_c, 1.0 / s[2].shunt_c],
            esr: [s[0].shunt_esr, s[1].shunt_esr, s[2].shunt_esr],
            v_nom,
            load_line_slope: pdn.load_line().slope_ohms(),
            dt: 1.0 / clock_hz,
            // All caps charged to Vnom, no branch current: zero-load DC.
            state: [0.0, 0.0, 0.0, v_nom, v_nom, v_nom],
            elapsed_cycles: 0,
        }
    }

    /// Pre-settles the network at a constant load, so a measurement
    /// window starts from the DC operating point instead of the
    /// power-on transient.
    ///
    /// Runs the solver for `cycles` steps at `amps` and resets the
    /// elapsed-cycle counter.
    pub fn settle(&mut self, amps: f64, cycles: u64) {
        for _ in 0..cycles {
            self.step(amps);
        }
        self.elapsed_cycles = 0;
    }

    /// Advances one clock cycle with the given die load current (amps,
    /// held constant over the step) and returns the die voltage at the
    /// end of the step.
    #[inline]
    pub fn step(&mut self, amps: f64) -> f64 {
        let h = self.dt;
        let k1 = self.deriv(&self.state, amps);
        let s2 = add_scaled(&self.state, &k1, 0.5 * h);
        let k2 = self.deriv(&s2, amps);
        let s3 = add_scaled(&self.state, &k2, 0.5 * h);
        let k3 = self.deriv(&s3, amps);
        let s4 = add_scaled(&self.state, &k3, h);
        let k4 = self.deriv(&s4, amps);
        for i in 0..6 {
            self.state[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        self.elapsed_cycles += 1;
        self.die_voltage(amps)
    }

    /// Die node voltage for the current state under the given load.
    #[inline]
    pub fn die_voltage(&self, amps: f64) -> f64 {
        // v_die = u_die + ESR_die · i_cap, i_cap = i_branch3 − i_load.
        self.state[5] + self.esr[2] * (self.state[2] - amps)
    }

    /// Number of cycles stepped since construction or [`Transient::settle`].
    pub fn elapsed_cycles(&self) -> u64 {
        self.elapsed_cycles
    }

    /// Simulation time step in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Branch currents `[board, package, die]` in amps (for tests and
    /// diagnostics).
    pub fn branch_currents(&self) -> [f64; 3] {
        [self.state[0], self.state[1], self.state[2]]
    }

    /// Network derivative. States: `i0..i2` branch currents (board,
    /// package, die), `u0..u2` internal cap voltages.
    #[inline]
    fn deriv(&self, s: &State, load: f64) -> State {
        let (i0, i1, i2) = (s[0], s[1], s[2]);
        let (u0, u1, u2) = (s[3], s[4], s[5]);
        // Cap branch currents by KCL at each ladder node.
        let ic0 = i0 - i1;
        let ic1 = i1 - i2;
        let ic2 = i2 - load;
        // Node voltages include decap ESR drop.
        let v0 = u0 + self.esr[0] * ic0;
        let v1 = u1 + self.esr[1] * ic1;
        let v2 = u2 + self.esr[2] * ic2;
        // VRM source with (optionally disabled) quasi-static load line.
        let v_src = self.v_nom - self.load_line_slope * i0;
        [
            (v_src - self.series_r[0] * i0 - v0) * self.inv_l[0],
            (v0 - self.series_r[1] * i1 - v1) * self.inv_l[1],
            (v1 - self.series_r[2] * i2 - v2) * self.inv_l[2],
            ic0 * self.inv_c[0],
            ic1 * self.inv_c[1],
            ic2 * self.inv_c[2],
        ]
    }
}

#[inline]
fn add_scaled(a: &State, b: &State, k: f64) -> State {
    let mut out = [0.0; 6];
    for i in 0..6 {
        out[i] = a[i] + k * b[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadline::LoadLine;
    use crate::model::PdnModel;

    const CLOCK: f64 = 3.2e9;

    fn settled(pdn: &PdnModel, amps: f64) -> Transient {
        let mut t = Transient::new(pdn, CLOCK);
        // 3rd droop is ~500 kHz; settle for several of its periods.
        t.settle(amps, 100_000);
        t
    }

    #[test]
    fn zero_load_holds_nominal() {
        let pdn = PdnModel::bulldozer_board();
        let mut t = Transient::new(&pdn, CLOCK);
        for _ in 0..10_000 {
            let v = t.step(0.0);
            assert!((v - pdn.nominal_voltage()).abs() < 1e-9, "v = {v}");
        }
    }

    #[test]
    fn dc_operating_point_matches_ir_drop() {
        let pdn = PdnModel::bulldozer_board();
        let amps = 50.0;
        let mut t = settled(&pdn, amps);
        // Keep settling a long time to kill slow board modes.
        t.settle(amps, 2_000_000);
        let v = t.die_voltage(amps);
        let expect = pdn.nominal_voltage() - amps * pdn.total_series_resistance();
        assert!((v - expect).abs() < 2e-3, "v = {v}, expect = {expect}");
        // All series branches carry the full DC load.
        for i in t.branch_currents() {
            assert!((i - amps).abs() < 0.5, "branch current {i}");
        }
    }

    #[test]
    fn step_load_causes_droop_then_recovery() {
        let pdn = PdnModel::bulldozer_board();
        let mut t = settled(&pdn, 10.0);
        let settled_v = t.die_voltage(10.0);
        let mut min_v = f64::INFINITY;
        for _ in 0..2_000 {
            min_v = min_v.min(t.step(80.0));
        }
        // An abrupt 70 A step must droop tens of millivolts...
        assert!(settled_v - min_v > 0.02, "droop = {}", settled_v - min_v);
        // ...and the first droop must ring back up (underdamped).
        let mut max_after = f64::NEG_INFINITY;
        for _ in 0..2_000 {
            max_after = max_after.max(t.step(80.0));
        }
        assert!(max_after > min_v + 0.005);
    }

    #[test]
    fn resonant_square_wave_droops_more_than_single_step() {
        let pdn = PdnModel::bulldozer_board();
        let f1 = pdn.die_stage().natural_frequency_hz();
        let period = (CLOCK / f1).round() as u64; // cycles per resonant period

        // Single excitation.
        let mut t = settled(&pdn, 10.0);
        let mut single_min = f64::INFINITY;
        for _ in 0..10 * period {
            single_min = single_min.min(t.step(80.0));
        }

        // Square wave at the first droop resonance.
        let mut t = settled(&pdn, 10.0);
        let mut res_min = f64::INFINITY;
        for c in 0..100 * period {
            let amps = if (c / (period / 2)).is_multiple_of(2) {
                80.0
            } else {
                10.0
            };
            res_min = res_min.min(t.step(amps));
        }
        assert!(
            res_min < single_min - 0.01,
            "resonant min {res_min} vs single-step min {single_min}"
        );
    }

    #[test]
    fn off_resonance_square_wave_droops_less_than_resonant() {
        let pdn = PdnModel::bulldozer_board();
        let f1 = pdn.die_stage().natural_frequency_hz();
        let res_period = (CLOCK / f1).round() as u64;

        let min_for_period = |period: u64| {
            let mut t = settled(&pdn, 10.0);
            let mut min_v = f64::INFINITY;
            for c in 0..200 * res_period {
                let amps = if (c / (period / 2)).is_multiple_of(2) {
                    80.0
                } else {
                    10.0
                };
                min_v = min_v.min(t.step(amps));
            }
            min_v
        };

        let at_res = min_for_period(res_period);
        let off_res = min_for_period(res_period * 3);
        assert!(at_res < off_res - 0.01, "at {at_res} vs off {off_res}");
    }

    #[test]
    fn droop_magnitude_is_in_hardware_like_range() {
        // Resonant worst case should be on the order of 100–300 mV on a
        // 1.2 V rail — the regime real stressmarks operate in.
        let pdn = PdnModel::bulldozer_board();
        let f1 = pdn.die_stage().natural_frequency_hz();
        let period = (CLOCK / f1).round() as u64;
        let mut t = settled(&pdn, 10.0);
        let mut min_v = f64::INFINITY;
        for c in 0..300 * period {
            let amps = if (c / (period / 2)).is_multiple_of(2) {
                90.0
            } else {
                10.0
            };
            min_v = min_v.min(t.step(amps));
        }
        let droop = pdn.nominal_voltage() - min_v;
        assert!((0.05..0.4).contains(&droop), "droop = {droop}");
    }

    #[test]
    fn load_line_lowers_dc_voltage() {
        let base = PdnModel::bulldozer_board();
        let with_ll = base.clone().with_load_line(LoadLine::with_slope(1.0e-3));
        let mut a = settled(&base, 50.0);
        let mut b = settled(&with_ll, 50.0);
        a.settle(50.0, 1_000_000);
        b.settle(50.0, 1_000_000);
        let va = a.die_voltage(50.0);
        let vb = b.die_voltage(50.0);
        assert!(va - vb > 0.04, "va = {va}, vb = {vb}");
    }

    #[test]
    fn solver_is_deterministic() {
        let pdn = PdnModel::bulldozer_board();
        let run = || {
            let mut t = Transient::new(&pdn, CLOCK);
            let mut acc = 0.0;
            for c in 0..5_000u64 {
                acc += t.step(if c % 7 == 0 { 60.0 } else { 20.0 });
            }
            acc
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn settle_resets_elapsed_cycles() {
        let pdn = PdnModel::bulldozer_board();
        let mut t = Transient::new(&pdn, CLOCK);
        t.settle(5.0, 123);
        assert_eq!(t.elapsed_cycles(), 0);
        t.step(5.0);
        assert_eq!(t.elapsed_cycles(), 1);
    }

    #[test]
    #[should_panic(expected = "clock frequency")]
    fn rejects_bad_clock() {
        let _ = Transient::new(&PdnModel::bulldozer_board(), 0.0);
    }

    #[test]
    fn state_stays_finite_under_extreme_load_swings() {
        let pdn = PdnModel::bulldozer_board();
        let mut t = Transient::new(&pdn, CLOCK);
        for c in 0..50_000u64 {
            let amps = if c % 2 == 0 { 0.0 } else { 200.0 };
            let v = t.step(amps);
            assert!(v.is_finite());
        }
    }
}
