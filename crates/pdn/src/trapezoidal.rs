//! Implicit trapezoidal integration — SPICE's native method — as an
//! independent cross-check of the explicit RK4 solver.
//!
//! The ladder is linear, `dx/dt = A·x + B·u(t)`, so the trapezoidal
//! update `(I − h/2·A)·x₊ = (I + h/2·A)·x + h/2·B·(u + u₊)` has constant
//! matrices: factor `(I − h/2·A)` once, then every step is a pair of
//! matrix-vector products. Trapezoidal is A-stable (no step-size
//! stability limit) and is what HSPICE uses by default, making this the
//! closest in-crate analogue of the paper's simulation path.

use crate::model::PdnModel;

const N: usize = 6;

/// A dense LU factorization of a 6×6 matrix with partial pivoting.
#[derive(Debug, Clone)]
struct Lu {
    lu: [[f64; N]; N],
    piv: [usize; N],
}

#[allow(clippy::needless_range_loop)]
impl Lu {
    /// Factors `m`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is numerically singular (cannot happen for
    /// `I − h/2·A` with a valid PDN and reasonable step).
    fn new(mut m: [[f64; N]; N]) -> Self {
        let mut piv = [0usize; N];
        for col in 0..N {
            // Partial pivot.
            let mut best = col;
            for row in (col + 1)..N {
                if m[row][col].abs() > m[best][col].abs() {
                    best = row;
                }
            }
            assert!(m[best][col].abs() > 1e-300, "singular system matrix");
            m.swap(col, best);
            piv[col] = best;
            for row in (col + 1)..N {
                let f = m[row][col] / m[col][col];
                m[row][col] = f;
                for k in (col + 1)..N {
                    m[row][k] -= f * m[col][k];
                }
            }
        }
        Lu { lu: m, piv }
    }

    /// Solves `M·x = b`.
    fn solve(&self, mut b: [f64; N]) -> [f64; N] {
        // The factorization swapped whole rows (LAPACK storage), so all
        // interchanges are applied to `b` up front, then L- and
        // U-substitution run on the permuted system.
        for col in 0..N {
            b.swap(col, self.piv[col]);
        }
        for col in 0..N {
            for row in (col + 1)..N {
                b[row] -= self.lu[row][col] * b[col];
            }
        }
        for col in (0..N).rev() {
            b[col] /= self.lu[col][col];
            for row in 0..col {
                b[row] -= self.lu[row][col] * b[col];
            }
        }
        b
    }
}

/// Streaming trapezoidal transient solver (same interface shape as
/// [`crate::Transient`]).
///
/// # Example
///
/// ```
/// use audit_pdn::{trapezoidal::TrapezoidalTransient, PdnModel};
///
/// let pdn = PdnModel::bulldozer_board();
/// let mut sim = TrapezoidalTransient::new(&pdn, 3.2e9);
/// let v = sim.step(20.0);
/// assert!(v > 1.0 && v < 1.3);
/// ```
#[derive(Debug, Clone)]
pub struct TrapezoidalTransient {
    /// LU of `(I − h/2·A)`.
    lhs: Lu,
    /// `(I + h/2·A)`.
    rhs: [[f64; N]; N],
    /// `h/2 · B` columns for the two inputs `[v_src, i_load]`.
    b_vsrc: [f64; N],
    b_load: [f64; N],
    v_nom: f64,
    load_line_slope: f64,
    esr_die: f64,
    /// Per-stage cap-voltage scale factors √(C/L).
    u_scale: [f64; 3],
    state: [f64; N],
    prev_load: f64,
}

impl TrapezoidalTransient {
    /// Creates a solver stepped once per cycle of `clock_hz`.
    ///
    /// # Panics
    ///
    /// Panics if the model is invalid or the clock is not positive.
    pub fn new(pdn: &PdnModel, clock_hz: f64) -> Self {
        pdn.validate().expect("invalid PDN model");
        assert!(
            clock_hz.is_finite() && clock_hz > 0.0,
            "clock frequency must be positive and finite"
        );
        let s = pdn.stages();
        let h = 1.0 / clock_hz;
        let v_nom = pdn.nominal_voltage();

        // State x = [i0, i1, i2, u0, u1, u2] (branch currents, internal
        // cap voltages); see `transient.rs` for the derivation.
        let (l0, l1, l2) = (s[0].series_l, s[1].series_l, s[2].series_l);
        let (r0, r1, r2) = (s[0].series_r, s[1].series_r, s[2].series_r);
        let (c0, c1, c2) = (s[0].shunt_c, s[1].shunt_c, s[2].shunt_c);
        let (e0, e1, e2) = (s[0].shunt_esr, s[1].shunt_esr, s[2].shunt_esr);

        let mut a = [[0.0f64; N]; N];
        // di0/dt = (v_src − r0·i0 − (u0 + e0·(i0 − i1))) / l0
        a[0][0] = -(r0 + e0) / l0;
        a[0][1] = e0 / l0;
        a[0][3] = -1.0 / l0;
        // di1/dt = ((u0 + e0·(i0−i1)) − r1·i1 − (u1 + e1·(i1−i2))) / l1
        a[1][0] = e0 / l1;
        a[1][1] = -(e0 + r1 + e1) / l1;
        a[1][2] = e1 / l1;
        a[1][3] = 1.0 / l1;
        a[1][4] = -1.0 / l1;
        // di2/dt = ((u1 + e1·(i1−i2)) − r2·i2 − (u2 + e2·(i2−load))) / l2
        a[2][1] = e1 / l2;
        a[2][2] = -(e1 + r2 + e2) / l2;
        a[2][4] = 1.0 / l2;
        a[2][5] = -1.0 / l2;
        // du0/dt = (i0 − i1)/c0 ; du1/dt = (i1 − i2)/c1 ; du2/dt = (i2 − load)/c2
        a[3][0] = 1.0 / c0;
        a[3][1] = -1.0 / c0;
        a[4][1] = 1.0 / c1;
        a[4][2] = -1.0 / c1;
        a[5][2] = 1.0 / c2;

        // Input columns: v_src enters di0/dt; load enters di2/dt, du2/dt.
        let mut b_vsrc = [0.0; N];
        b_vsrc[0] = 1.0 / l0;
        let mut b_load = [0.0; N];
        b_load[2] = e2 / l2;
        b_load[5] = -1.0 / c2;

        // Equilibrate: express each cap voltage in units of its stage's
        // characteristic admittance (u_scaled = √(C/L)·u), which turns
        // the L↔C couplings into balanced ±ω₀ entries and keeps the
        // factored system well-conditioned even at extreme steps.
        let k = [(c0 / l0).sqrt(), (c1 / l1).sqrt(), (c2 / l2).sqrt()];
        for (stage, &ki) in k.iter().enumerate() {
            let row = 3 + stage;
            #[allow(clippy::needless_range_loop)]
            for col in 0..N {
                a[row][col] *= ki;
                a[col][row] /= ki;
            }
            b_vsrc[row] *= ki;
            b_load[row] *= ki;
        }

        let mut lhs = [[0.0; N]; N];
        let mut rhs = [[0.0; N]; N];
        for i in 0..N {
            for j in 0..N {
                lhs[i][j] = f64::from(i == j) - 0.5 * h * a[i][j];
                rhs[i][j] = f64::from(i == j) + 0.5 * h * a[i][j];
            }
        }
        let scale = |v: [f64; N]| {
            let mut out = v;
            for x in &mut out {
                *x *= 0.5 * h;
            }
            out
        };

        TrapezoidalTransient {
            lhs: Lu::new(lhs),
            rhs,
            b_vsrc: scale(b_vsrc),
            b_load: scale(b_load),
            v_nom,
            load_line_slope: pdn.load_line().slope_ohms(),
            esr_die: e2,
            u_scale: k,
            state: [0.0, 0.0, 0.0, k[0] * v_nom, k[1] * v_nom, k[2] * v_nom],
            prev_load: 0.0,
        }
    }

    /// Advances one cycle at the given load current; returns the die
    /// voltage.
    pub fn step(&mut self, amps: f64) -> f64 {
        let vs_now = self.v_nom - self.load_line_slope * self.state[0];
        // rhs·x + h/2·B·(u_n + u_{n+1})  (quasi-static v_src).
        let mut b = [0.0f64; N];
        for (i, bi) in b.iter_mut().enumerate() {
            let mut acc = 0.0;
            for j in 0..N {
                acc += self.rhs[i][j] * self.state[j];
            }
            acc += self.b_vsrc[i] * (2.0 * vs_now);
            acc += self.b_load[i] * (self.prev_load + amps);
            *bi = acc;
        }
        self.state = self.lhs.solve(b);
        self.prev_load = amps;
        self.die_voltage(amps)
    }

    /// Die node voltage under the given load.
    pub fn die_voltage(&self, amps: f64) -> f64 {
        self.state[5] / self.u_scale[2] + self.esr_die * (self.state[2] - amps)
    }

    /// Pre-settles at a constant load.
    pub fn settle(&mut self, amps: f64, cycles: u64) {
        for _ in 0..cycles {
            self.step(amps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::Transient;

    const CLOCK: f64 = 3.2e9;

    #[test]
    fn agrees_with_rk4_on_a_resonant_drive() {
        let pdn = PdnModel::bulldozer_board();
        let mut rk4 = Transient::new(&pdn, CLOCK);
        let mut trap = TrapezoidalTransient::new(&pdn, CLOCK);
        rk4.settle(10.0, 200_000);
        trap.settle(10.0, 200_000);
        // The two methods treat the input differently at square-wave
        // edges (zero-order hold vs trapezoidal averaging), so pointwise
        // traces differ near transitions; the physical observables —
        // worst droop and mean level — must agree closely.
        let mut min_a = f64::INFINITY;
        let mut min_b = f64::INFINITY;
        let mut sum_a = 0.0;
        let mut sum_b = 0.0;
        let n = 20_000u64;
        for c in 0..n {
            let amps = if (c / 15) % 2 == 0 { 80.0 } else { 10.0 };
            let a = rk4.step(amps);
            let b = trap.step(amps);
            min_a = min_a.min(a);
            min_b = min_b.min(b);
            sum_a += a;
            sum_b += b;
        }
        assert!(
            (min_a - min_b).abs() < 3e-3,
            "droop disagreement: rk4 {min_a} vs trap {min_b}"
        );
        assert!((sum_a - sum_b).abs() / (n as f64) < 1e-3, "mean disagreement");
    }

    #[test]
    fn dc_operating_point_matches_ir_drop() {
        let pdn = PdnModel::bulldozer_board();
        let mut t = TrapezoidalTransient::new(&pdn, CLOCK);
        t.settle(50.0, 3_000_000);
        let v = t.die_voltage(50.0);
        let expect = pdn.nominal_voltage() - 50.0 * pdn.total_series_resistance();
        assert!((v - expect).abs() < 2e-3, "v = {v}, expect = {expect}");
    }

    #[test]
    fn stable_at_huge_time_steps() {
        // A-stability: even a 100× coarser step must not blow up
        // (accuracy degrades, stability does not). An explicit method
        // would diverge immediately at ω·h ≈ 20.
        let pdn = PdnModel::bulldozer_board();
        let mut t = TrapezoidalTransient::new(&pdn, CLOCK / 100.0);
        let mut worst = 0.0f64;
        for c in 0..50_000u64 {
            let amps = if (c / 25) % 2 == 0 { 0.0 } else { 120.0 };
            let v = t.step(amps);
            assert!(v.is_finite(), "diverged at cycle {c}");
            worst = worst.max(v.abs());
        }
        assert!(worst < 100.0, "unbounded response: {worst}");
    }

    #[test]
    fn zero_load_holds_nominal() {
        let pdn = PdnModel::bulldozer_board();
        let mut t = TrapezoidalTransient::new(&pdn, CLOCK);
        for _ in 0..10_000 {
            let v = t.step(0.0);
            assert!((v - pdn.nominal_voltage()).abs() < 1e-9);
        }
    }

    #[test]
    fn lu_solves_a_known_system() {
        // Spot-check the factorization on a permuted diagonal system.
        let mut m = [[0.0; 6]; 6];
        for (i, row) in m.iter_mut().enumerate() {
            row[(i + 3) % 6] = (i + 1) as f64;
        }
        let lu = Lu::new(m);
        let b = [3.0, 8.0, 15.0, 4.0, 10.0, 18.0];
        let x = lu.solve(b);
        // m·x = b  ⇒  x[(i+3)%6] = b[i] / (i+1).
        for i in 0..6 {
            let expect = b[i] / (i + 1) as f64;
            assert!((x[(i + 3) % 6] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn lu_residual_on_a_pivot_heavy_dense_system() {
        // Tiny diagonal entries force pivoting at every column; the
        // residual ‖M·x − b‖ must stay at machine precision.
        let m = [
            [0.001, 2.0, -1.0, 0.5, 3.0, -2.0],
            [4.0, 0.002, 1.5, -0.5, 1.0, 2.0],
            [-1.0, 3.0, 0.003, 2.5, -1.5, 1.0],
            [2.0, -2.0, 1.0, 0.004, 2.0, -1.0],
            [0.5, 1.0, -2.0, 3.0, 0.005, 2.5],
            [-3.0, 0.5, 2.0, -1.0, 1.5, 0.006],
        ];
        let lu = Lu::new(m);
        let b = [1.0, -2.0, 3.0, -4.0, 5.0, -6.0];
        let x = lu.solve(b);
        for i in 0..N {
            let mut acc = 0.0;
            for j in 0..N {
                acc += m[i][j] * x[j];
            }
            assert!((acc - b[i]).abs() < 1e-10, "row {i} residual {}", acc - b[i]);
        }
    }
}
