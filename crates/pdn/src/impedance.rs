//! Frequency-domain (AC) analysis of the PDN.
//!
//! Computing the impedance seen by the die across frequency reproduces
//! the left half of the paper's Fig. 3: three impedance peaks — the
//! first, second, and third droop resonances — caused by each stage's
//! series inductance resonating with the decap downstream of it.

use serde::{Deserialize, Serialize};

use crate::complex::{parallel, Complex};
use crate::model::PdnModel;

/// One detected impedance peak.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Resonance {
    /// Peak frequency in Hz.
    pub frequency_hz: f64,
    /// Impedance magnitude at the peak, in ohms.
    pub impedance_ohms: f64,
}

/// Logarithmic impedance sweep of a [`PdnModel`] as seen from the die.
///
/// # Example
///
/// ```
/// use audit_pdn::{ImpedanceSweep, PdnModel};
///
/// let sweep = ImpedanceSweep::new(PdnModel::bulldozer_board())
///     .with_range(1e4, 1e9)
///     .with_points(2000);
/// let peaks = sweep.resonances();
/// assert_eq!(peaks.len(), 3); // third, second, first droop
/// ```
#[derive(Debug, Clone)]
pub struct ImpedanceSweep {
    pdn: PdnModel,
    f_lo: f64,
    f_hi: f64,
    points: usize,
}

impl ImpedanceSweep {
    /// Creates a sweep with the default range 10 kHz – 1 GHz, 4096 points.
    pub fn new(pdn: PdnModel) -> Self {
        ImpedanceSweep {
            pdn,
            f_lo: 1e4,
            f_hi: 1e9,
            points: 4096,
        }
    }

    /// Sets the frequency range (Hz).
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not positive, finite, and ordered.
    pub fn with_range(mut self, f_lo: f64, f_hi: f64) -> Self {
        assert!(
            f_lo.is_finite() && f_hi.is_finite() && 0.0 < f_lo && f_lo < f_hi,
            "sweep range must be positive, finite, and ordered"
        );
        self.f_lo = f_lo;
        self.f_hi = f_hi;
        self
    }

    /// Sets the number of logarithmically spaced sweep points.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn with_points(mut self, points: usize) -> Self {
        assert!(points >= 2, "sweep needs at least two points");
        self.points = points;
        self
    }

    /// Complex impedance seen from the die node at one frequency.
    pub fn impedance_at(&self, freq_hz: f64) -> Complex {
        impedance_at(&self.pdn, freq_hz)
    }

    /// Runs the sweep, returning `(frequency, |Z|)` pairs in ascending
    /// frequency order.
    pub fn run(&self) -> Vec<(f64, f64)> {
        let log_lo = self.f_lo.ln();
        let log_hi = self.f_hi.ln();
        (0..self.points)
            .map(|i| {
                let t = i as f64 / (self.points - 1) as f64;
                let f = (log_lo + t * (log_hi - log_lo)).exp();
                (f, self.impedance_at(f).norm())
            })
            .collect()
    }

    /// Detects impedance peaks (local maxima) across the sweep, ascending
    /// in frequency, so index 0 is the third droop and index 2 the first
    /// droop for the standard three-stage model.
    pub fn resonances(&self) -> Vec<Resonance> {
        let pts = self.run();
        let mut peaks = Vec::new();
        for w in pts.windows(3) {
            let [(_, a), (f, b), (_, c)] = [w[0], w[1], w[2]];
            if b > a && b >= c {
                peaks.push(Resonance {
                    frequency_hz: f,
                    impedance_ohms: b,
                });
            }
        }
        peaks
    }

    /// The highest-frequency resonance — the first droop (paper §2) —
    /// or `None` if the sweep range contains no peak.
    pub fn first_droop(&self) -> Option<Resonance> {
        self.resonances().into_iter().last()
    }
}

/// Impedance seen from the die node of `pdn` at `freq_hz`.
///
/// The ladder is folded from the VRM (an AC short) outward:
/// `Z = Zc_die ∥ (Zl_die + Zc_pkg ∥ (Zl_pkg + Zc_board ∥ Zl_board))`.
pub fn impedance_at(pdn: &PdnModel, freq_hz: f64) -> Complex {
    let w = 2.0 * std::f64::consts::PI * freq_hz;
    let s = pdn.stages();
    let z_l = |i: usize| Complex::new(s[i].series_r, w * s[i].series_l);
    let z_c = |i: usize| Complex::new(s[i].shunt_esr, -1.0 / (w * s[i].shunt_c));

    // Board stage: series branch returns to the VRM, an AC ground.
    let mut z = parallel(z_c(0), z_l(0));
    // Package, then die stage.
    z = parallel(z_c(1), z_l(1) + z);
    parallel(z_c(2), z_l(2) + z)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> ImpedanceSweep {
        ImpedanceSweep::new(PdnModel::bulldozer_board())
    }

    #[test]
    fn finds_three_resonances() {
        let peaks = sweep().resonances();
        assert_eq!(peaks.len(), 3, "peaks: {peaks:?}");
    }

    #[test]
    fn first_droop_is_in_paper_band() {
        let first = sweep().first_droop().unwrap();
        assert!(
            (50e6..200e6).contains(&first.frequency_hz),
            "first droop at {} Hz",
            first.frequency_hz
        );
    }

    #[test]
    fn first_droop_dominates_lower_resonances() {
        // Paper §2: second and third droops are typically smaller in
        // magnitude than the first droop.
        let peaks = sweep().resonances();
        let first = peaks.last().unwrap();
        for other in &peaks[..peaks.len() - 1] {
            assert!(
                first.impedance_ohms > other.impedance_ohms,
                "first {first:?} not above {other:?}"
            );
        }
    }

    #[test]
    fn resonance_ordering_matches_stage_estimates() {
        let pdn = PdnModel::bulldozer_board();
        let peaks = sweep().resonances();
        let estimates = [
            pdn.board_stage().natural_frequency_hz(),
            pdn.package_stage().natural_frequency_hz(),
            pdn.die_stage().natural_frequency_hz(),
        ];
        for (peak, est) in peaks.iter().zip(estimates) {
            let ratio = peak.frequency_hz / est;
            assert!(
                (0.5..2.0).contains(&ratio),
                "peak {peak:?} vs estimate {est}"
            );
        }
    }

    #[test]
    fn dc_limit_approaches_series_resistance() {
        let pdn = PdnModel::bulldozer_board();
        let z = impedance_at(&pdn, 1.0).norm();
        let r = pdn.total_series_resistance();
        assert!((z - r).abs() / r < 0.05, "z = {z}, r = {r}");
    }

    #[test]
    fn high_frequency_limit_is_die_cap() {
        // Far above the first droop the die decap shorts everything.
        let pdn = PdnModel::bulldozer_board();
        let f = 20e9;
        let z = impedance_at(&pdn, f).norm();
        let w = 2.0 * std::f64::consts::PI * f;
        let zc = (pdn.die_stage().shunt_esr.powi(2)
            + (1.0 / (w * pdn.die_stage().shunt_c)).powi(2))
        .sqrt();
        assert!((z - zc).abs() / zc < 0.1, "z = {z}, zc = {zc}");
    }

    #[test]
    fn phenom_first_droop_differs_from_bulldozer() {
        let b = sweep().first_droop().unwrap();
        let p = ImpedanceSweep::new(PdnModel::phenom_board())
            .first_droop()
            .unwrap();
        assert!((p.frequency_hz - b.frequency_hz).abs() / b.frequency_hz > 0.05);
    }

    #[test]
    fn run_is_monotone_in_frequency_axis() {
        let pts = sweep().with_points(256).run();
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(pts.len(), 256);
    }

    #[test]
    #[should_panic(expected = "sweep range")]
    fn rejects_inverted_range() {
        let _ = sweep().with_range(1e9, 1e6);
    }

    #[test]
    fn peak_impedance_is_milliohm_scale() {
        let first = sweep().first_droop().unwrap();
        assert!(
            (0.5e-3..10e-3).contains(&first.impedance_ohms),
            "peak |Z| = {}",
            first.impedance_ohms
        );
    }
}
