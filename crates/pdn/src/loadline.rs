//! Voltage-regulator-module (VRM) load-line model.
//!
//! A VRM load line intentionally lowers the regulation target as load
//! current rises (`V = Vnom − R_ll · I`). The paper measures all droops
//! **with the load line disabled** so that the reported numbers are pure
//! di/dt droop rather than DC IR sag (§5.A); this module exists so that
//! both configurations can be reproduced and compared.

use serde::{Deserialize, Serialize};

/// VRM load-line configuration.
///
/// # Example
///
/// ```
/// use audit_pdn::LoadLine;
///
/// let ll = LoadLine::with_slope(1.0e-3); // 1 mΩ load line
/// assert_eq!(ll.regulation_offset(50.0), -0.05); // 50 A → −50 mV
/// assert_eq!(LoadLine::disabled().regulation_offset(50.0), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadLine {
    slope_ohms: f64,
    enabled: bool,
}

impl LoadLine {
    /// A disabled load line: the VRM regulates to Vnom regardless of load.
    ///
    /// This is the paper's measurement configuration.
    pub const fn disabled() -> Self {
        LoadLine {
            slope_ohms: 0.0,
            enabled: false,
        }
    }

    /// An enabled load line with the given slope in ohms.
    pub const fn with_slope(slope_ohms: f64) -> Self {
        LoadLine {
            slope_ohms,
            enabled: true,
        }
    }

    /// Whether the load line is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Load-line slope in ohms (zero when disabled).
    pub fn slope_ohms(&self) -> f64 {
        if self.enabled {
            self.slope_ohms
        } else {
            0.0
        }
    }

    /// Regulation-target offset (volts, ≤ 0) at the given load current.
    pub fn regulation_offset(&self, amps: f64) -> f64 {
        -self.slope_ohms() * amps
    }
}

impl Default for LoadLine {
    /// Defaults to [`LoadLine::disabled`], the paper's configuration.
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_has_no_offset() {
        let ll = LoadLine::disabled();
        assert_eq!(ll.regulation_offset(100.0), 0.0);
        assert!(!ll.is_enabled());
        assert_eq!(ll.slope_ohms(), 0.0);
    }

    #[test]
    fn enabled_offset_scales_with_current() {
        let ll = LoadLine::with_slope(0.5e-3);
        assert!((ll.regulation_offset(40.0) + 0.02).abs() < 1e-12);
        assert!(ll.is_enabled());
    }

    #[test]
    fn offset_is_never_positive_for_positive_current() {
        let ll = LoadLine::with_slope(2e-3);
        for amps in [0.0, 1.0, 10.0, 200.0] {
            assert!(ll.regulation_offset(amps) <= 0.0);
        }
    }
}
