//! The lumped three-stage RLC model of a processor power-distribution
//! network (paper Fig. 2).
//!
//! Current is supplied by the voltage-regulator module (VRM), flows
//! through the motherboard (stage 0), the package (stage 1) and the
//! die-attach (stage 2) before reaching the on-die load. Each stage has a
//! series inductance + resistance and a shunt decoupling capacitor with
//! effective series resistance (ESR). The series combination of each
//! stage's inductance with the next capacitor downstream produces the
//! first/second/third droop resonances described in §2 of the paper.

use audit_error::AuditError;
use serde::{Deserialize, Serialize};

use crate::loadline::LoadLine;

/// One ladder stage: series `L`/`R` followed by a shunt decap `C` with ESR.
///
/// All values are SI units (henry, ohm, farad).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PdnStage {
    /// Series parasitic inductance of this stage (H).
    pub series_l: f64,
    /// Series parasitic resistance of this stage (Ω).
    pub series_r: f64,
    /// Shunt decoupling capacitance at the downstream node (F).
    pub shunt_c: f64,
    /// Effective series resistance of the decap (Ω).
    pub shunt_esr: f64,
}

impl PdnStage {
    /// Creates a stage, without validation (see [`PdnModel::validate`]).
    pub const fn new(series_l: f64, series_r: f64, shunt_c: f64, shunt_esr: f64) -> Self {
        PdnStage {
            series_l,
            series_r,
            shunt_c,
            shunt_esr,
        }
    }

    /// Undamped natural frequency `1 / (2π √(L·C))` of this stage's own
    /// series L against its own shunt C, in Hz.
    ///
    /// This is the textbook estimate for the droop resonance that this
    /// stage contributes (paper §2).
    pub fn natural_frequency_hz(&self) -> f64 {
        1.0 / (2.0 * std::f64::consts::PI * (self.series_l * self.shunt_c).sqrt())
    }

    /// Characteristic impedance `√(L/C)` in ohms.
    pub fn characteristic_impedance(&self) -> f64 {
        (self.series_l / self.shunt_c).sqrt()
    }

    /// Approximate quality factor `√(L/C) / R_total` of the stage's
    /// resonance, using series R plus decap ESR as the damping.
    pub fn quality_factor(&self) -> f64 {
        self.characteristic_impedance() / (self.series_r + self.shunt_esr)
    }
}

/// Full PDN description: VRM + three ladder stages.
///
/// Build one with a preset ([`PdnModel::bulldozer_board`],
/// [`PdnModel::phenom_board`]) or configure stages directly with the
/// validating [`PdnModel::new`].
///
/// # Example
///
/// ```
/// use audit_pdn::PdnModel;
///
/// let pdn = PdnModel::bulldozer_board();
/// let f1 = pdn.die_stage().natural_frequency_hz();
/// // First droop resonance is in the 50–200 MHz band (paper §2).
/// assert!((50e6..200e6).contains(&f1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdnModel {
    nominal_voltage: f64,
    load_line: LoadLine,
    stages: [PdnStage; 3],
}

impl PdnModel {
    /// Creates a model from explicit stages, validating every parameter.
    ///
    /// `stages[0]` is the motherboard, `stages[1]` the package,
    /// `stages[2]` the die attach.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::InvalidConfig`] naming the first offending
    /// stage/field, or an invalid nominal voltage.
    pub fn new(
        nominal_voltage: f64,
        load_line: LoadLine,
        stages: [PdnStage; 3],
    ) -> Result<Self, AuditError> {
        let pdn = Self::new_unchecked(nominal_voltage, load_line, stages);
        pdn.validate()?;
        Ok(pdn)
    }

    /// Creates a model from explicit stages without validation — for
    /// presets and callers that deliberately build degenerate networks
    /// (e.g. electrically transparent stages in solver tests).
    pub const fn new_unchecked(
        nominal_voltage: f64,
        load_line: LoadLine,
        stages: [PdnStage; 3],
    ) -> Self {
        PdnModel {
            nominal_voltage,
            load_line,
            stages,
        }
    }

    /// The PDN of the primary evaluation platform: a board carrying the
    /// four-module Bulldozer-class processor.
    ///
    /// Values are chosen so that the three droop resonances land at the
    /// frequencies the paper reports as typical: first droop ≈ 100 MHz
    /// (package + die inductance against on-die decap, 50–200 MHz band),
    /// second droop ≈ 3 MHz, third droop ≈ 500 kHz.
    pub fn bulldozer_board() -> Self {
        PdnModel {
            nominal_voltage: 1.2,
            load_line: LoadLine::disabled(),
            stages: [
                // Motherboard: bulk decap against board + VRM inductance
                // (third droop ≈ 250 kHz, damped by bulk-cap ESR, which
                // also provides the second-droop loop damping).
                PdnStage::new(1.0e-9, 0.40e-3, 400.0e-6, 1.20e-3),
                // Package: package decap against socket + package leads
                // (second droop ≈ 2.9 MHz). The decap ESR must stay low:
                // it sits inside the first-droop loop.
                PdnStage::new(100.0e-12, 0.10e-3, 30.0e-6, 0.015e-3),
                // Die: effective on-die decap against Lpkg2 + Ldie
                // (first droop ≈ 100 MHz, loop Q ≈ 9).
                PdnStage::new(0.65e-12, 0.015e-3, 3.9e-6, 0.015e-3),
            ],
        }
    }

    /// The same board re-socketed with the older 45-nm Phenom II-class
    /// processor (paper §5.C): board and package stages are unchanged,
    /// only the die stage differs (smaller on-die decap, slightly larger
    /// die inductance), which moves the first droop resonance.
    pub fn phenom_board() -> Self {
        let mut pdn = Self::bulldozer_board();
        pdn.nominal_voltage = 1.25;
        // Smaller die, less on-die decap, slightly larger effective die
        // inductance: first droop moves up to ≈ 113 MHz.
        pdn.stages[2] = PdnStage::new(0.90e-12, 0.05e-3, 2.2e-6, 0.03e-3);
        pdn
    }

    /// Nominal (no-load) supply voltage in volts.
    pub fn nominal_voltage(&self) -> f64 {
        self.nominal_voltage
    }

    /// Replaces the nominal voltage, e.g. for voltage-at-failure searches
    /// that lower Vdd in 12.5 mV steps (paper §5.A.4).
    pub fn with_nominal_voltage(mut self, volts: f64) -> Self {
        self.nominal_voltage = volts;
        self
    }

    /// The VRM load-line model.
    pub fn load_line(&self) -> LoadLine {
        self.load_line
    }

    /// Replaces the load-line model. The paper disables the load line for
    /// all droop measurements to isolate di/dt effects (§5.A).
    pub fn with_load_line(mut self, load_line: LoadLine) -> Self {
        self.load_line = load_line;
        self
    }

    /// All three stages, board first.
    pub fn stages(&self) -> &[PdnStage; 3] {
        &self.stages
    }

    /// Replaces one stage (0 = board, 1 = package, 2 = die).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 3`.
    pub fn with_stage(mut self, index: usize, stage: PdnStage) -> Self {
        self.stages[index] = stage;
        self
    }

    /// The motherboard stage.
    pub fn board_stage(&self) -> &PdnStage {
        &self.stages[0]
    }

    /// The package stage.
    pub fn package_stage(&self) -> &PdnStage {
        &self.stages[1]
    }

    /// The die stage, whose resonance is the first droop.
    pub fn die_stage(&self) -> &PdnStage {
        &self.stages[2]
    }

    /// Total series resistance from VRM to die (IR-drop path), in ohms.
    pub fn total_series_resistance(&self) -> f64 {
        self.stages.iter().map(|s| s.series_r).sum()
    }

    /// Checks that every parameter is positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::InvalidConfig`] naming the first offending
    /// stage/field (as `stages[i].<field>`) or the nominal voltage.
    pub fn validate(&self) -> Result<(), AuditError> {
        if !(self.nominal_voltage.is_finite() && self.nominal_voltage > 0.0) {
            return Err(AuditError::invalid(
                "PdnModel",
                "nominal_voltage",
                format!(
                    "must be positive and finite (got {:?})",
                    self.nominal_voltage
                ),
            ));
        }
        const STAGE_FIELDS: [&str; 3] = ["stages[0]", "stages[1]", "stages[2]"];
        for (i, s) in self.stages.iter().enumerate() {
            let fields = [
                (s.series_l, "series_l"),
                (s.series_r, "series_r"),
                (s.shunt_c, "shunt_c"),
                (s.shunt_esr, "shunt_esr"),
            ];
            for (v, name) in fields {
                if !(v.is_finite() && v > 0.0) {
                    return Err(AuditError::invalid(
                        "PdnModel",
                        STAGE_FIELDS[i],
                        format!("{name} must be positive and finite (got {v:?})"),
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Default for PdnModel {
    /// The default model is the paper's primary platform,
    /// [`PdnModel::bulldozer_board`].
    fn default() -> Self {
        Self::bulldozer_board()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        PdnModel::bulldozer_board().validate().unwrap();
        PdnModel::phenom_board().validate().unwrap();
    }

    #[test]
    fn first_droop_band_matches_paper() {
        let f1 = PdnModel::bulldozer_board()
            .die_stage()
            .natural_frequency_hz();
        assert!((50e6..200e6).contains(&f1), "f1 = {f1}");
    }

    #[test]
    fn resonances_are_ordered_fast_to_slow() {
        let pdn = PdnModel::bulldozer_board();
        let f1 = pdn.die_stage().natural_frequency_hz();
        let f2 = pdn.package_stage().natural_frequency_hz();
        let f3 = pdn.board_stage().natural_frequency_hz();
        assert!(f1 > f2 && f2 > f3, "f1={f1} f2={f2} f3={f3}");
    }

    #[test]
    fn phenom_changes_only_die_stage() {
        let b = PdnModel::bulldozer_board();
        let p = PdnModel::phenom_board();
        assert_eq!(b.board_stage(), p.board_stage());
        assert_eq!(b.package_stage(), p.package_stage());
        assert_ne!(b.die_stage(), p.die_stage());
    }

    #[test]
    fn validate_rejects_zero_inductance() {
        let bad = PdnModel::bulldozer_board().with_stage(1, PdnStage::new(0.0, 1e-3, 1e-6, 1e-3));
        let err = bad.validate().unwrap_err();
        match &err {
            AuditError::InvalidConfig { context, field, message } => {
                assert_eq!(*context, "PdnModel");
                assert_eq!(*field, "stages[1]");
                assert!(message.contains("series_l"), "message = {message}");
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_nan_voltage() {
        let bad = PdnModel::bulldozer_board().with_nominal_voltage(f64::NAN);
        let err = bad.validate().unwrap_err();
        assert!(err.to_string().contains("nominal_voltage"), "err = {err}");
    }

    #[test]
    fn new_validates_and_new_unchecked_does_not() {
        let stages = *PdnModel::bulldozer_board().stages();
        let ok = PdnModel::new(1.2, LoadLine::disabled(), stages).unwrap();
        assert_eq!(ok, PdnModel::bulldozer_board().with_nominal_voltage(1.2));

        let mut bad_stages = stages;
        bad_stages[2].shunt_c = -1.0;
        assert!(PdnModel::new(1.2, LoadLine::disabled(), bad_stages).is_err());
        // The unchecked constructor accepts the same degenerate input.
        let _ = PdnModel::new_unchecked(1.2, LoadLine::disabled(), bad_stages);
    }

    #[test]
    fn quality_factor_is_reasonable() {
        // An underdamped first droop (Q well above 1) is what makes
        // resonant stressmarks build amplitude (paper Fig. 4).
        let q = PdnModel::bulldozer_board().die_stage().quality_factor();
        assert!(q > 2.0 && q < 50.0, "Q = {q}");
    }

    #[test]
    fn error_display_is_lowercase_and_concise() {
        let bad =
            PdnModel::bulldozer_board().with_stage(2, PdnStage::new(1e-12, 1e-3, 0.0, 1e-3));
        let msg = bad.validate().unwrap_err().to_string();
        assert!(msg.contains("stages[2]"), "msg = {msg}");
        assert!(!msg.ends_with('.'));
    }
}
