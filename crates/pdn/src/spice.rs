//! SPICE netlist emission — the HSPICE leg of the paper's simulation
//! path (Fig. 5).
//!
//! In the original framework's simulation path, "AUDIT converts the
//! per-cycle current profile into a current sink in HSPICE simulation
//! using a lumped RLC model of the PDN". This module reproduces that
//! handoff: given a [`PdnModel`] and a per-cycle current trace, it emits
//! a complete, runnable SPICE deck — the RLC ladder as a subcircuit and
//! the trace as a piece-wise-linear (PWL) current source — so results
//! can be cross-checked against an external circuit simulator.

use std::fmt::Write as _;

use crate::model::PdnModel;

/// Emits the PDN as a SPICE netlist with the given per-cycle current
/// trace attached as a PWL current sink at the die node.
///
/// `clock_hz` defines the sample spacing of the trace. Long traces are
/// thinned to at most `max_points` PWL points (SPICE decks with millions
/// of PWL points are unwieldy); pass `usize::MAX` to keep every sample.
///
/// The emitted nodes are `vrm` (regulator output), `board`, `pkg`, and
/// `die`; the transient analysis statement covers the whole trace.
///
/// # Example
///
/// ```
/// use audit_pdn::{spice, PdnModel};
///
/// let deck = spice::emit_deck(&PdnModel::bulldozer_board(), &[10.0, 50.0, 10.0], 3.2e9, 100);
/// assert!(deck.contains(".tran"));
/// assert!(deck.contains("PWL("));
/// ```
pub fn emit_deck(pdn: &PdnModel, trace: &[f64], clock_hz: f64, max_points: usize) -> String {
    assert!(
        clock_hz > 0.0 && clock_hz.is_finite(),
        "clock must be positive"
    );
    let mut out = String::new();
    let s = pdn.stages();
    let _ = writeln!(
        out,
        "* AUDIT reproduction PDN deck — lumped 3-stage RLC ladder"
    );
    let _ = writeln!(
        out,
        "* nominal rail: {:.4} V, clock: {:.3e} Hz",
        pdn.nominal_voltage(),
        clock_hz
    );
    let _ = writeln!(out, "Vsupply vrm 0 DC {:.6}", pdn.nominal_voltage());

    let names = ["board", "pkg", "die"];
    let mut upstream = "vrm".to_string();
    for (i, stage) in s.iter().enumerate() {
        let node = names[i];
        // Series branch: R then L.
        let _ = writeln!(
            out,
            "R{}s {} n{}m {:.6e}",
            node, upstream, i, stage.series_r
        );
        let _ = writeln!(out, "L{}s n{}m {} {:.6e}", node, i, node, stage.series_l);
        // Shunt decap with ESR.
        let _ = writeln!(out, "C{} {} n{}c {:.6e}", node, node, i, stage.shunt_c);
        let _ = writeln!(out, "R{}esr n{}c 0 {:.6e}", node, i, stage.shunt_esr);
        upstream = node.to_string();
    }

    // PWL load-current sink at the die node.
    let step = trace.len().div_ceil(max_points.max(1)).max(1);
    let dt = 1.0 / clock_hz;
    out.push_str("Iload die 0 PWL(");
    for (k, chunk) in trace.chunks(step).enumerate() {
        let amps = chunk.iter().copied().fold(0.0f64, f64::max);
        let t = k as f64 * step as f64 * dt;
        let _ = write!(out, " {t:.6e} {amps:.4}");
    }
    out.push_str(" )\n");

    let t_end = trace.len() as f64 * dt;
    let _ = writeln!(out, ".tran {:.3e} {:.3e}", dt, t_end);
    let _ = writeln!(out, ".probe v(die) v(pkg) v(board)");
    let _ = writeln!(out, ".end");
    out
}

/// Emits only the AC-analysis deck: the same ladder driven by a 1 A AC
/// source, so `v(die)` *is* the impedance Z(f) — the Fig. 3 frequency
/// sweep in SPICE form.
pub fn emit_ac_deck(pdn: &PdnModel, f_lo: f64, f_hi: f64) -> String {
    assert!(f_lo > 0.0 && f_hi > f_lo, "invalid AC sweep range");
    let mut out = emit_deck(pdn, &[], 1.0e9, usize::MAX);
    // Strip the transient statements and replace with an AC source/sweep.
    out = out
        .lines()
        .filter(|l| !l.starts_with("Iload") && !l.starts_with(".tran") && !l.starts_with(".end"))
        .collect::<Vec<_>>()
        .join("\n");
    out.push_str("\nIac die 0 AC 1\n");
    let decades = (f_hi / f_lo).log10().ceil() as usize;
    out.push_str(&format!(
        ".ac dec {} {:.3e} {:.3e}\n",
        50 * decades.max(1),
        f_lo,
        f_hi
    ));
    out.push_str(".probe v(die)\n.end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PdnModel;

    #[test]
    fn deck_contains_all_components() {
        let deck = emit_deck(&PdnModel::bulldozer_board(), &[1.0, 2.0], 3.2e9, 100);
        for needle in [
            "Vsupply",
            "Rboards",
            "Lboards",
            "Cboard",
            "Rpkgs",
            "Lpkgs",
            "Cpkg",
            "Rdies",
            "Ldies",
            "Cdie",
            "Iload die 0 PWL(",
            ".tran",
            ".end",
        ] {
            assert!(deck.contains(needle), "missing `{needle}`:\n{deck}");
        }
    }

    #[test]
    fn pwl_is_thinned_to_cap() {
        let trace = vec![1.0; 10_000];
        let deck = emit_deck(&PdnModel::bulldozer_board(), &trace, 3.2e9, 64);
        let pwl_line = deck.lines().find(|l| l.starts_with("Iload")).unwrap();
        let points = pwl_line
            .split_whitespace()
            .filter(|t| t.contains("e"))
            .count()
            / 2;
        assert!(points <= 70, "{points} PWL points");
    }

    #[test]
    fn component_values_round_trip() {
        let pdn = PdnModel::bulldozer_board();
        let deck = emit_deck(&pdn, &[1.0], 3.2e9, 10);
        let die_c = format!("{:.6e}", pdn.die_stage().shunt_c);
        assert!(deck.contains(&die_c), "die capacitance missing: {die_c}");
    }

    #[test]
    fn ac_deck_replaces_transient() {
        let deck = emit_ac_deck(&PdnModel::bulldozer_board(), 1e4, 1e9);
        assert!(deck.contains(".ac dec"));
        assert!(deck.contains("Iac die 0 AC 1"));
        assert!(!deck.contains(".tran"));
        assert!(deck.trim_end().ends_with(".end"));
    }

    #[test]
    #[should_panic(expected = "invalid AC sweep")]
    fn ac_deck_rejects_bad_range() {
        let _ = emit_ac_deck(&PdnModel::bulldozer_board(), 1e9, 1e4);
    }
}
