//! Lumped power-distribution-network (PDN) model for di/dt analysis.
//!
//! This crate is the simulation stand-in for the HSPICE + oscilloscope
//! portion of the AUDIT framework (Kim et al., MICRO 2012). It models the
//! PDN of a typical microprocessor as a three-stage RLC ladder —
//! motherboard, package, and die — exactly as sketched in Fig. 2 of the
//! paper, and provides:
//!
//! * a streaming **transient solver** ([`Transient`]) that converts a
//!   per-cycle load-current trace into a die-voltage trace,
//! * an **AC impedance analysis** ([`impedance`]) that reproduces the
//!   first/second/third droop resonances of the network (paper Fig. 3),
//! * a **VRM / load-line** model ([`loadline`]) that can be disabled to
//!   isolate di/dt droop, matching the paper's measurement methodology,
//! * a **SPICE deck emitter** ([`spice`]) reproducing the paper's
//!   simulation path: the ladder plus a per-cycle current trace as a PWL
//!   sink, ready for an external circuit simulator,
//! * an **implicit trapezoidal solver** ([`trapezoidal`]) — SPICE's own
//!   method — as an independent numerical cross-check of the RK4 path.
//!
//! # Example
//!
//! ```
//! use audit_pdn::{PdnModel, Transient};
//!
//! let pdn = PdnModel::bulldozer_board();
//! let mut sim = Transient::new(&pdn, 3.2e9); // one step per 3.2 GHz cycle
//! // Step load from idle to full power and watch the supply droop.
//! let mut min_v = pdn.nominal_voltage();
//! for cycle in 0..10_000 {
//!     let amps = if cycle < 100 { 10.0 } else { 90.0 };
//!     let v = sim.step(amps);
//!     min_v = min_v.min(v);
//! }
//! assert!(min_v < pdn.nominal_voltage());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod complex;
pub mod impedance;
pub mod loadline;
pub mod model;
pub mod spice;
pub mod transient;
pub mod trapezoidal;

pub use complex::Complex;
pub use impedance::{ImpedanceSweep, Resonance};
pub use loadline::LoadLine;
pub use audit_error::AuditError;
pub use model::{PdnModel, PdnStage};
pub use transient::Transient;
