//! Minimal complex arithmetic for AC (frequency-domain) network analysis.
//!
//! The AUDIT reproduction deliberately avoids pulling in a numerics crate;
//! impedance analysis only needs addition, multiplication, division,
//! reciprocal, and magnitude on `f64` pairs.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number `re + j·im` with `f64` components.
///
/// # Example
///
/// ```
/// use audit_pdn::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// let one = z * z.recip();
/// assert!((one.re - 1.0).abs() < 1e-12 && one.im.abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + j0`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + j0`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + j1`.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates `jωL`-style purely imaginary numbers.
    pub const fn from_imag(im: f64) -> Self {
        Complex { re: 0.0, im }
    }

    /// Magnitude `|z| = sqrt(re² + im²)`.
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude, avoiding the square root of [`Complex::norm`].
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate `re - j·im`.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns infinities when `z` is zero, mirroring `f64` division.
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Returns true if both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division via reciprocal multiplication is the standard complex
    // formula, not a typo.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+j{}", self.re, self.im)
        } else {
            write!(f, "{}-j{}", self.re, -self.im)
        }
    }
}

/// Parallel combination of two impedances: `z1·z2 / (z1 + z2)`.
///
/// # Example
///
/// ```
/// use audit_pdn::complex::{parallel, Complex};
/// let r = parallel(Complex::from_real(2.0), Complex::from_real(2.0));
/// assert!((r.re - 1.0).abs() < 1e-12);
/// ```
pub fn parallel(z1: Complex, z2: Complex) -> Complex {
    (z1 * z2) / (z1 + z2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex::new(1.5, -2.0);
        let b = Complex::new(-0.5, 4.0);
        let c = a + b - b;
        assert!((c.re - a.re).abs() < 1e-15);
        assert!((c.im - a.im).abs() < 1e-15);
    }

    #[test]
    fn mul_matches_foil() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(4.0, -5.0);
        let c = a * b;
        assert_eq!(
            c,
            Complex::new(2.0 * 4.0 + 3.0 * 5.0, -2.0 * 5.0 + 3.0 * 4.0)
        );
    }

    #[test]
    fn j_squared_is_minus_one() {
        let c = Complex::J * Complex::J;
        assert_eq!(c, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.0, 7.0);
        let b = Complex::new(-3.0, 0.5);
        let c = (a * b) / b;
        assert!((c.re - a.re).abs() < 1e-12);
        assert!((c.im - a.im).abs() < 1e-12);
    }

    #[test]
    fn recip_of_zero_is_not_finite() {
        assert!(!Complex::ZERO.recip().is_finite());
    }

    #[test]
    fn norm_and_arg() {
        let z = Complex::new(0.0, 2.0);
        assert_eq!(z.norm(), 2.0);
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn parallel_of_equal_resistors_halves() {
        let z = parallel(Complex::from_real(10.0), Complex::from_real(10.0));
        assert!((z.re - 5.0).abs() < 1e-12);
        assert!(z.im.abs() < 1e-12);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-j2");
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+j2");
    }
}
