//! Closed-form solutions for a single series-RLC stage — the numeric
//! ground truth used to validate the RK4 transient solver.
//!
//! A single stage (series R, L feeding a shunt C loaded by a current
//! step) is the textbook damped second-order system. Its step response
//! has an exact solution, so the solver can be checked against analysis
//! rather than against itself: natural frequency, damping, overshoot,
//! and the time-domain waveform all come from the formulas below.

use serde::{Deserialize, Serialize};

/// A single series-RLC stage: `V ── R ── L ──●── load`, with `C` from
/// the node to ground.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesRlc {
    /// Series resistance, ohms.
    pub r: f64,
    /// Series inductance, henries.
    pub l: f64,
    /// Shunt capacitance, farads.
    pub c: f64,
}

impl SeriesRlc {
    /// Creates a stage.
    ///
    /// # Panics
    ///
    /// Panics unless all elements are positive and finite.
    pub fn new(r: f64, l: f64, c: f64) -> Self {
        assert!(r > 0.0 && r.is_finite(), "resistance must be positive");
        assert!(l > 0.0 && l.is_finite(), "inductance must be positive");
        assert!(c > 0.0 && c.is_finite(), "capacitance must be positive");
        SeriesRlc { r, l, c }
    }

    /// Undamped natural angular frequency `ω₀ = 1/√(LC)`, rad/s.
    pub fn omega0(&self) -> f64 {
        1.0 / (self.l * self.c).sqrt()
    }

    /// Damping ratio `ζ = (R/2)·√(C/L)`.
    pub fn zeta(&self) -> f64 {
        self.r / 2.0 * (self.c / self.l).sqrt()
    }

    /// Quality factor `Q = 1/(2ζ)`.
    pub fn q(&self) -> f64 {
        1.0 / (2.0 * self.zeta())
    }

    /// Damped angular frequency `ω_d = ω₀·√(1−ζ²)` (underdamped only).
    ///
    /// # Panics
    ///
    /// Panics if the stage is not underdamped (`ζ ≥ 1`).
    pub fn omega_d(&self) -> f64 {
        let z = self.zeta();
        assert!(z < 1.0, "stage is not underdamped (ζ = {z})");
        self.omega0() * (1.0 - z * z).sqrt()
    }

    /// Exact node-voltage deviation at time `t` after a load-current
    /// step of `delta_i` amps, for an underdamped stage initially at DC.
    ///
    /// The deviation is relative to the *final* DC level (which is
    /// `−ΔI·R` below the source): at `t = 0` the node still sits `ΔI·R`
    /// above the final level and rings down around it:
    ///
    /// `v(t) − v(∞) = ΔI·R·e^(−ζω₀t)·(cos ω_d t + (ζω₀ − ΔI-term)/ω_d …)`
    ///
    /// More usefully for droop work, the dominant term is the inductive
    /// undershoot `−ΔI·√(L/C)·e^(−ζω₀t)·sin(ω_d t)/√(1−ζ²)`; this
    /// method returns the full expression.
    ///
    /// # Panics
    ///
    /// Panics if the stage is not underdamped.
    pub fn step_response_deviation(&self, delta_i: f64, t: f64) -> f64 {
        let z = self.zeta();
        let w0 = self.omega0();
        let wd = self.omega_d();
        let decay = (-z * w0 * t).exp();
        // v(t) = v(∞) + ΔI·R·decay·cos(ωd t)
        //        − ΔI·(1/C − R·ζ·ω₀) / ωd · decay·sin(ωd t)
        // derived from v(0+)−v(∞)=ΔI·R, v'(0+) = −ΔI/C.
        let a = delta_i * self.r;
        let b = (-delta_i / self.c + a * z * w0) / wd;
        decay * (a * (wd * t).cos() + b * (wd * t).sin())
    }

    /// The worst (most negative) deviation of the step response and the
    /// time at which it occurs, found by sampling `n` points over the
    /// first `periods` damped periods.
    pub fn worst_undershoot(&self, delta_i: f64, periods: f64, n: usize) -> (f64, f64) {
        let t_end = periods * 2.0 * std::f64::consts::PI / self.omega_d();
        let mut worst = (0.0, 0.0);
        for k in 0..n {
            let t = t_end * k as f64 / n as f64;
            let v = self.step_response_deviation(delta_i, t);
            if v < worst.1 {
                worst = (t, v);
            }
        }
        (worst.0, worst.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PdnModel, PdnStage};
    use crate::transient::Transient;

    /// The die stage of the standard board, as an isolated RLC.
    fn die_stage_rlc() -> SeriesRlc {
        let pdn = PdnModel::bulldozer_board();
        let s = pdn.die_stage();
        SeriesRlc::new(s.series_r + s.shunt_esr, s.series_l, s.shunt_c)
    }

    #[test]
    fn frequency_and_q_match_stage_estimates() {
        let pdn = PdnModel::bulldozer_board();
        let s = pdn.die_stage();
        let rlc = die_stage_rlc();
        let f = rlc.omega0() / (2.0 * std::f64::consts::PI);
        assert!((f - s.natural_frequency_hz()).abs() / f < 1e-9);
        assert!((rlc.q() - s.quality_factor()).abs() / rlc.q() < 1e-9);
    }

    #[test]
    fn step_response_initial_conditions() {
        let rlc = die_stage_rlc();
        let di = 50.0;
        // v(0+) − v(∞) = ΔI·R.
        let v0 = rlc.step_response_deviation(di, 0.0);
        assert!((v0 - di * rlc.r).abs() < 1e-9);
        // Decays to zero.
        let t_late = 50.0 * 2.0 * std::f64::consts::PI / rlc.omega_d();
        assert!(rlc.step_response_deviation(di, t_late).abs() < 1e-6);
    }

    #[test]
    fn undershoot_scales_linearly_with_step() {
        let rlc = die_stage_rlc();
        let (_, u1) = rlc.worst_undershoot(10.0, 3.0, 4_000);
        let (_, u2) = rlc.worst_undershoot(20.0, 3.0, 4_000);
        assert!((u2 / u1 - 2.0).abs() < 1e-6, "{u1} vs {u2}");
        assert!(u1 < 0.0);
    }

    /// The RK4 solver against the closed form: a single-stage network
    /// (the other stages made electrically transparent) must match the
    /// analytic step response to sub-millivolt accuracy.
    #[test]
    fn rk4_matches_closed_form_on_single_stage() {
        // Board/package stages huge C + tiny L ⇒ ideal source feed.
        let transparent = PdnStage::new(1e-15, 1e-9, 10.0, 1e-9);
        let die = PdnStage::new(0.65e-12, 0.03e-3, 3.9e-6, 1e-12);
        // `new_unchecked`: the transparent stages are deliberately
        // degenerate and would fail validation.
        let pdn = PdnModel::new_unchecked(
            1.2,
            crate::loadline::LoadLine::disabled(),
            [transparent, transparent, die],
        );
        let clock = 3.2e9;
        let mut sim = Transient::new(&pdn, clock);
        sim.settle(0.0, 10_000);

        let rlc = SeriesRlc::new(die.series_r, die.series_l, die.shunt_c);
        let di = 60.0;
        let mut max_err = 0.0f64;
        for cycle in 1..=1_500u64 {
            let v = sim.step(di);
            let t = cycle as f64 / clock;
            let analytic = 1.2 - di * rlc.r + rlc.step_response_deviation(di, t);
            max_err = max_err.max((v - analytic).abs());
        }
        assert!(max_err < 1.5e-3, "max |RK4 − analytic| = {max_err}");
    }

    #[test]
    #[should_panic(expected = "underdamped")]
    fn overdamped_stage_rejects_omega_d() {
        let rlc = SeriesRlc::new(10.0, 1e-9, 1e-3); // ζ ≫ 1
        let _ = rlc.omega_d();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_elements() {
        let _ = SeriesRlc::new(0.0, 1e-9, 1e-6);
    }
}
