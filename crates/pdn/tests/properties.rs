//! Property-based tests for the PDN substrate.

use audit_pdn::complex::{parallel, Complex};
use audit_pdn::{ImpedanceSweep, PdnModel, Transient};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Impedance is finite and non-negative at any frequency in range.
    #[test]
    fn impedance_is_finite_positive(log_f in 3.0f64..10.0) {
        let f = 10f64.powf(log_f);
        let z = ImpedanceSweep::new(PdnModel::bulldozer_board()).impedance_at(f);
        prop_assert!(z.is_finite());
        prop_assert!(z.norm() > 0.0);
    }

    /// The network is passive: with load current bounded in [0, 150] A the
    /// die voltage never exceeds nominal by more than the worst resonant
    /// overshoot, and never goes negative.
    #[test]
    fn transient_output_is_bounded(currents in prop::collection::vec(0.0f64..150.0, 1..500)) {
        let pdn = PdnModel::bulldozer_board();
        let mut t = Transient::new(&pdn, 3.2e9);
        for &amps in &currents {
            let v = t.step(amps);
            prop_assert!(v.is_finite());
            prop_assert!(v > 0.0, "voltage collapsed to {v}");
            prop_assert!(v < 2.0 * pdn.nominal_voltage(), "voltage blew up to {v}");
        }
    }

    /// Complex parallel combination is commutative.
    #[test]
    fn parallel_commutes(a_re in 0.01f64..100.0, a_im in -100.0f64..100.0,
                         b_re in 0.01f64..100.0, b_im in -100.0f64..100.0) {
        let a = Complex::new(a_re, a_im);
        let b = Complex::new(b_re, b_im);
        let p1 = parallel(a, b);
        let p2 = parallel(b, a);
        prop_assert!((p1.re - p2.re).abs() < 1e-9 * (1.0 + p1.re.abs()));
        prop_assert!((p1.im - p2.im).abs() < 1e-9 * (1.0 + p1.im.abs()));
    }

    /// Parallel of z with itself halves it.
    #[test]
    fn parallel_self_halves(re in 0.01f64..100.0, im in -100.0f64..100.0) {
        let z = Complex::new(re, im);
        let p = parallel(z, z);
        prop_assert!((p.re - z.re / 2.0).abs() < 1e-9 * (1.0 + z.re.abs()));
        prop_assert!((p.im - z.im / 2.0).abs() < 1e-9 * (1.0 + z.im.abs()));
    }

    /// Complex field axioms: multiplication distributes over addition.
    #[test]
    fn complex_distributive(a in any_complex(), b in any_complex(), c in any_complex()) {
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        prop_assert!((lhs.re - rhs.re).abs() <= 1e-6 * (1.0 + lhs.re.abs()));
        prop_assert!((lhs.im - rhs.im).abs() <= 1e-6 * (1.0 + lhs.im.abs()));
    }

    /// The solver is exactly deterministic for identical inputs.
    #[test]
    fn transient_determinism(currents in prop::collection::vec(0.0f64..120.0, 1..200)) {
        let pdn = PdnModel::bulldozer_board();
        let run = || {
            let mut t = Transient::new(&pdn, 3.2e9);
            currents.iter().map(|&a| t.step(a)).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A constant load settles: late-window voltage ripple is tiny
    /// compared to the droop scale.
    #[test]
    fn constant_load_settles(amps in 0.0f64..120.0) {
        let pdn = PdnModel::bulldozer_board();
        let mut t = Transient::new(&pdn, 3.2e9);
        t.settle(amps, 3_000_000);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let v = t.step(amps);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        prop_assert!(hi - lo < 1e-3, "residual ripple {}", hi - lo);
    }
}

fn any_complex() -> impl Strategy<Value = Complex> {
    (-1e3f64..1e3, -1e3f64..1e3).prop_map(|(re, im)| Complex::new(re, im))
}

/// Deeper validation: the measured ring-down frequency of the first droop
/// matches the AC-analysis peak.
#[test]
fn ring_down_frequency_matches_impedance_peak() {
    let pdn = PdnModel::bulldozer_board();
    let clock = 3.2e9;
    let first = ImpedanceSweep::new(pdn.clone()).first_droop().unwrap();

    let mut t = Transient::new(&pdn, clock);
    t.settle(10.0, 200_000);
    // Kick the network with a step and record only the ring itself
    // (a handful of first-droop periods before the Q≈9 ring decays).
    let trace: Vec<f64> = (0..160).map(|_| t.step(90.0)).collect();

    // Count sign changes of the first difference: differencing removes
    // the slow second/third-droop drift under the ring.
    let diffs: Vec<f64> = trace.windows(2).map(|w| w[1] - w[0]).collect();
    let crossings = diffs
        .windows(2)
        .filter(|w| w[0].signum() != w[1].signum() && w[0] != 0.0)
        .count();
    let duration = diffs.len() as f64 / clock;
    let measured_hz = crossings as f64 / 2.0 / duration;
    let ratio = measured_hz / first.frequency_hz;
    assert!(
        (0.6..1.4).contains(&ratio),
        "ring {measured_hz} Hz vs peak {} Hz",
        first.frequency_hz
    );
}
