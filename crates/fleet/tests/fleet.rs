//! End-to-end fleet tests over loopback.
//!
//! The invariant under test is the crate's reason to exist: every
//! campaign a multi-tenant fleet runs is *bit-identical* to its solo
//! in-process run — same `GaRun`, same journal records, same
//! resilience accounting — regardless of co-tenants, worker count,
//! worker deaths, network chaos, or manager restarts (WAL prefill).

use std::sync::Mutex;
use std::time::Duration;

use audit_core::ga::{self, CostFunction, GaConfig, GaRun, ObjectiveSet};
use audit_core::resilient::genome_key;
use audit_core::{FitnessSpec, MeasurePolicy, MeasureSpec, MemJournal, ResilienceReport, Rig};
use audit_cpu::isa::Opcode;
use audit_fleet::{CampaignSpec, Fleet, FleetConfig};
use audit_net::{run_worker, EvalContext, NetFaultPlan, WorkerOptions};

const GENOME_LEN: usize = 10;

fn fspec(policy: MeasurePolicy) -> FitnessSpec {
    FitnessSpec {
        threads: 1,
        sub_blocks: 2,
        lp_slots: 2,
        cost: CostFunction::MaxDroop,
        spec: MeasureSpec::ga_eval(),
        policy,
        objectives: ObjectiveSet::default(),
    }
}

fn ga_cfg(seed: u64) -> GaConfig {
    GaConfig {
        population: 8,
        generations: 4,
        stall_generations: 4,
        seed,
        ..GaConfig::default()
    }
}

fn ctx(spec: FitnessSpec) -> EvalContext {
    EvalContext {
        chip: "bulldozer".into(),
        volts: None,
        throttle: None,
        spec,
        fast_tier_budget: 0,
    }
}

/// The in-process reference run, accumulating resilience deltas the
/// same way `Audit::evolve_kernel_journaled` does.
fn local_run(spec: FitnessSpec, cfg: &GaConfig) -> (GaRun, MemJournal, ResilienceReport) {
    let rig = Rig::bulldozer();
    let log = Mutex::new(ResilienceReport::default());
    let mut mem = MemJournal::default();
    let run = ga::evolve_journaled(
        cfg,
        &Opcode::stress_menu(),
        GENOME_LEN,
        &[],
        |genome| {
            let (objectives, delta) = spec.evaluate_objectives(&rig, genome);
            log.lock().unwrap().merge(&delta);
            objectives
        },
        &mut mem,
    )
    .unwrap();
    let report = *log.lock().unwrap();
    (run, mem, report)
}

/// Runs every listed campaign *concurrently* on one fleet sharing
/// `worker_opts.len()` workers, returning each campaign's outcome in
/// submission order.
fn fleet_run(
    tenants: &[(FitnessSpec, GaConfig)],
    worker_opts: &[WorkerOptions],
    wait_for: usize,
    cfg: FleetConfig,
) -> Vec<(GaRun, MemJournal, ResilienceReport)> {
    let mut manager = Fleet::bind("127.0.0.1:0", cfg).unwrap();
    let addr = manager.addr().to_string();
    let workers: Vec<_> = worker_opts
        .iter()
        .map(|opts| {
            let addr = addr.clone();
            let opts = *opts;
            std::thread::spawn(move || run_worker(&addr, &opts))
        })
        .collect();
    manager.wait_for_workers(wait_for).unwrap();
    let runs: Vec<_> = tenants
        .iter()
        .enumerate()
        .map(|(i, (spec, cfg))| {
            let pool = manager.handle();
            let spec = *spec;
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let id = pool
                    .register(CampaignSpec {
                        name: format!("tenant-{i}"),
                        ctx: ctx(spec),
                        seed: cfg.seed,
                        weight: 1,
                        wal: None,
                    })
                    .unwrap();
                let mut dispatcher = pool.dispatcher(id);
                let mut mem = MemJournal::default();
                let run = ga::evolve_journaled_dispatched(
                    &cfg,
                    &Opcode::stress_menu(),
                    GENOME_LEN,
                    &[],
                    &mut dispatcher,
                    &mut mem,
                )
                .unwrap();
                let report = pool.finish(id, true);
                (run, mem, report)
            })
        })
        .collect();
    let results = runs.into_iter().map(|t| t.join().unwrap()).collect();
    manager.shutdown();
    for worker in workers {
        worker.join().unwrap().unwrap();
    }
    results
}

/// Two tenants with different seeds and different objective sets —
/// the everyday multi-tenant shape.
fn two_tenants() -> Vec<(FitnessSpec, GaConfig)> {
    let single = fspec(MeasurePolicy::disabled());
    let pareto_spec = FitnessSpec {
        objectives: ObjectiveSet::parse("droop,power").unwrap(),
        ..single
    };
    vec![
        (single, ga_cfg(11)),
        (
            pareto_spec,
            GaConfig {
                pareto: true,
                ..ga_cfg(23)
            },
        ),
    ]
}

#[test]
fn concurrent_tenants_match_their_solo_runs_at_any_worker_count() {
    let tenants = two_tenants();
    let locals: Vec<_> = tenants
        .iter()
        .map(|(spec, cfg)| local_run(*spec, cfg))
        .collect();
    for workers in [1usize, 2, 4] {
        let opts = vec![WorkerOptions::default(); workers];
        let runs = fleet_run(&tenants, &opts, workers, FleetConfig::default());
        for (i, ((run, mem, report), (lrun, lmem, lreport))) in
            runs.iter().zip(locals.iter()).enumerate()
        {
            assert_eq!(run, lrun, "tenant {i} GaRun diverged at {workers} workers");
            assert_eq!(
                mem.records, lmem.records,
                "tenant {i} journal diverged at {workers} workers"
            );
            assert_eq!(
                report, lreport,
                "tenant {i} accounting diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn killed_worker_mid_fleet_is_absorbed_by_the_survivor() {
    // One worker vanishes (no reply, no goodbye) two evaluations in,
    // with two campaigns in flight; the survivor absorbs the
    // re-dispatched work of both.
    let tenants = two_tenants();
    let locals: Vec<_> = tenants
        .iter()
        .map(|(spec, cfg)| local_run(*spec, cfg))
        .collect();
    let opts = [
        WorkerOptions {
            max_evals: Some(2),
            ..WorkerOptions::default()
        },
        WorkerOptions::default(),
    ];
    let runs = fleet_run(&tenants, &opts, 2, FleetConfig::default());
    for (i, ((run, mem, report), (lrun, lmem, lreport))) in
        runs.iter().zip(locals.iter()).enumerate()
    {
        assert_eq!(run, lrun, "tenant {i} diverged after worker death");
        assert_eq!(mem.records, lmem.records, "tenant {i} journal diverged");
        assert_eq!(report, lreport, "tenant {i} accounting diverged");
    }
}

/// A hostile-but-survivable network, tuned like the broker chaos tests:
/// the lease sits safely above worst-case eval latency, the retry
/// budget must not bind, and every job is cross-validated so lies are
/// always caught.
fn chaos_cfg(seed: u64) -> FleetConfig {
    FleetConfig {
        heartbeat: Duration::from_millis(100),
        dead_after: Duration::from_secs(3),
        retries: 20,
        verify_fraction: 1.0,
        chaos: NetFaultPlan::parse(&format!(
            "{seed}:drop=0.02,dup=0.05,corrupt=0.02,stall=0.01,lie=0.05"
        ))
        .unwrap(),
        ..FleetConfig::default()
    }
}

/// Chaos workers rejoin after evictions and severs, each with its own
/// jitter salt so their reconnect schedules decorrelate.
fn chaos_workers(n: usize) -> Vec<WorkerOptions> {
    (0..n)
        .map(|i| WorkerOptions {
            connect_retry: Duration::from_millis(25),
            jitter_salt: 0xF1EE_7000 + i as u64,
            rejoin: true,
            ..WorkerOptions::default()
        })
        .collect()
}

#[test]
fn chaos_storm_never_perturbs_any_tenant() {
    // Frames dropped, duplicated, corrupted, workers stalling out and
    // lying — with two tenants multiplexed over the same hostile wire.
    // CRC32 catches the flips, leases re-dispatch the drops, request-id
    // retirement eats the duplicates, and cross-validation votes out
    // the liars; each tenant still gets its exact solo bytes.
    let tenants = two_tenants();
    let locals: Vec<_> = tenants
        .iter()
        .map(|(spec, cfg)| local_run(*spec, cfg))
        .collect();
    let runs = fleet_run(&tenants, &chaos_workers(2), 2, chaos_cfg(3));
    for (i, ((run, mem, report), (lrun, lmem, lreport))) in
        runs.iter().zip(locals.iter()).enumerate()
    {
        assert_eq!(run, lrun, "tenant {i} GaRun diverged under chaos");
        assert_eq!(mem.records, lmem.records, "tenant {i} journal diverged under chaos");
        assert_eq!(report, lreport, "tenant {i} accounting diverged under chaos");
    }
}

#[test]
fn identical_tenants_hit_the_cross_campaign_cache() {
    // Two identical campaigns back to back on one worker: the second
    // is answered from the worker's cross-campaign eval cache (same
    // context encoding, same genome keys), and the cached answers are
    // still bit-identical to the solo run.
    let spec = fspec(MeasurePolicy::disabled());
    let cfg = ga_cfg(11);
    let (lrun, lmem, lreport) = local_run(spec, &cfg);

    let mut manager = Fleet::bind("127.0.0.1:0", FleetConfig::default()).unwrap();
    let addr = manager.addr().to_string();
    let worker = std::thread::spawn(move || run_worker(&addr, &WorkerOptions::default()));
    manager.wait_for_workers(1).unwrap();
    let pool = manager.handle();
    for pass in 0..2 {
        let id = pool
            .register(CampaignSpec {
                name: format!("twin-{pass}"),
                ctx: ctx(spec),
                seed: cfg.seed,
                weight: 1,
                wal: None,
            })
            .unwrap();
        let mut dispatcher = pool.dispatcher(id);
        let mut mem = MemJournal::default();
        let run = ga::evolve_journaled_dispatched(
            &cfg,
            &Opcode::stress_menu(),
            GENOME_LEN,
            &[],
            &mut dispatcher,
            &mut mem,
        )
        .unwrap();
        let report = pool.finish(id, true);
        assert_eq!(run, lrun, "pass {pass} diverged");
        assert_eq!(mem.records, lmem.records, "pass {pass} journal diverged");
        assert_eq!(report, lreport, "pass {pass} accounting diverged");
    }
    let scrape = pool.metrics_text().unwrap();
    let hits: u64 = scrape
        .lines()
        .find_map(|l| l.strip_prefix("audit_fleet_cache_hits_total "))
        .expect("cache hit counter present")
        .parse()
        .unwrap();
    assert!(hits > 0, "second identical campaign never hit the cache:\n{scrape}");
    manager.shutdown();
    worker.join().unwrap().unwrap();
}

#[test]
fn differing_contexts_never_share_cache_entries() {
    // Same seed — so the tenants evaluate byte-identical genomes — but
    // different operating points. If the worker cache keyed on genome
    // content alone, tenant B would be served tenant A's numbers and
    // diverge from its solo run.
    let base = fspec(MeasurePolicy::disabled());
    let cfg = ga_cfg(11);
    let (lrun_a, _, _) = local_run(base, &cfg);

    let mut manager = Fleet::bind("127.0.0.1:0", FleetConfig::default()).unwrap();
    let addr = manager.addr().to_string();
    let worker = std::thread::spawn(move || run_worker(&addr, &WorkerOptions::default()));
    manager.wait_for_workers(1).unwrap();
    let pool = manager.handle();

    let mut outcomes = Vec::new();
    for (i, volts) in [None, Some(1.35)].into_iter().enumerate() {
        let tenant_ctx = EvalContext {
            volts,
            ..ctx(base)
        };
        // The solo reference for this operating point, via the same
        // context the worker rebuilds from the Setup frame.
        let rig = tenant_ctx.rig().unwrap();
        let log = Mutex::new(ResilienceReport::default());
        let mut lmem = MemJournal::default();
        let lrun = ga::evolve_journaled(
            &cfg,
            &Opcode::stress_menu(),
            GENOME_LEN,
            &[],
            |genome| {
                let (objectives, delta) = base.evaluate_objectives(&rig, genome);
                log.lock().unwrap().merge(&delta);
                objectives
            },
            &mut lmem,
        )
        .unwrap();

        let id = pool
            .register(CampaignSpec {
                name: format!("volts-{i}"),
                ctx: tenant_ctx,
                seed: cfg.seed,
                weight: 1,
                wal: None,
            })
            .unwrap();
        let mut dispatcher = pool.dispatcher(id);
        let mut mem = MemJournal::default();
        let run = ga::evolve_journaled_dispatched(
            &cfg,
            &Opcode::stress_menu(),
            GENOME_LEN,
            &[],
            &mut dispatcher,
            &mut mem,
        )
        .unwrap();
        pool.finish(id, true);
        assert_eq!(run, lrun, "tenant {i} diverged from its own solo run");
        assert_eq!(mem.records, lmem.records, "tenant {i} journal diverged");
        outcomes.push(run);
    }
    // The operating points genuinely differ: a cache leak would have
    // made the runs equal.
    assert_ne!(
        outcomes[1], lrun_a,
        "the raised operating point produced the stock run — cache leak?"
    );
    manager.shutdown();
    worker.join().unwrap().unwrap();
}

#[test]
fn wal_prefill_serves_a_full_round_with_no_workers() {
    // The manager-restart degenerate case: every job of the interrupted
    // round was already WAL-logged, so the resumed campaign's first
    // round completes without a single live worker.
    let spec = fspec(MeasurePolicy::disabled());
    let rig = Rig::bulldozer();
    let population: Vec<Vec<audit_core::ga::Gene>> = (0..3)
        .map(|i| {
            vec![
                audit_core::ga::Gene {
                    opcode: if i == 0 { Opcode::Load } else { Opcode::SimdFma },
                    dst: i as u8,
                    src1: 1,
                    src2: 2,
                    miss: i == 1,
                };
                GENOME_LEN
            ]
        })
        .collect();
    let dir = std::env::temp_dir().join(format!("audit-fleet-prefill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("prefill.wal");
    let expected: Vec<f64> = {
        use std::io::Write as _;
        let mut writer = std::fs::File::create(&wal_path).unwrap();
        population
            .iter()
            .map(|genome| {
                let (objectives, _) = spec.evaluate_objectives(&rig, genome);
                let fitness = objectives.primary();
                let line = audit_measure::json::JsonValue::object(vec![
                    ("kind", audit_measure::json::JsonValue::String("result".into())),
                    ("key", audit_core::journal::encode_u64(genome_key(genome))),
                    ("fitness", audit_measure::json::JsonValue::from_f64(fitness)),
                    (
                        "resilience",
                        audit_measure::json::JsonValue::object(vec![
                            ("evaluations", audit_core::journal::encode_u64(1)),
                            ("retries", audit_core::journal::encode_u64(0)),
                            ("quarantined", audit_core::journal::encode_u64(0)),
                            ("backoff_cycles", audit_core::journal::encode_u64(0)),
                        ]),
                    ),
                ]);
                writeln!(writer, "{}", line.encode()).unwrap();
                fitness
            })
            .collect()
    };
    let mut manager = Fleet::bind("127.0.0.1:0", FleetConfig::default()).unwrap();
    let pool = manager.handle();
    let id = pool
        .register(CampaignSpec {
            name: "resumed".into(),
            ctx: ctx(spec),
            seed: 11,
            weight: 1,
            wal: Some(wal_path.clone()),
        })
        .unwrap();
    let mut dispatcher = pool.dispatcher(id);
    let mut scores =
        audit_core::ga::EvalDispatcher::evaluate(&mut dispatcher, &population, &[0, 1, 2])
            .unwrap();
    scores.sort_unstable_by_key(|&(slot, _)| slot);
    let got: Vec<f64> = scores.iter().map(|(_, o)| o.primary()).collect();
    assert_eq!(got, expected);
    let report = pool.finish(id, true);
    assert_eq!(report.evaluations, 3);
    // finish(discard_wal = true): the journal supersedes the WAL.
    assert!(!wal_path.exists(), "completed campaign left its WAL behind");
    manager.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_campaign_keeps_its_wal_for_resume() {
    let spec = fspec(MeasurePolicy::disabled());
    let dir = std::env::temp_dir().join(format!("audit-fleet-keepwal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("kept.wal");
    let mut manager = Fleet::bind("127.0.0.1:0", FleetConfig::default()).unwrap();
    let pool = manager.handle();
    let id = pool
        .register(CampaignSpec {
            name: "doomed".into(),
            ctx: ctx(spec),
            seed: 11,
            weight: 1,
            wal: Some(wal_path.clone()),
        })
        .unwrap();
    pool.finish(id, false);
    assert!(wal_path.exists(), "failed campaign's WAL must survive for --resume");
    manager.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn status_and_metrics_describe_the_tenants() {
    let tenants = two_tenants();
    let mut manager = Fleet::bind("127.0.0.1:0", FleetConfig::default()).unwrap();
    let addr = manager.addr().to_string();
    let worker_addr = addr.clone();
    let worker = std::thread::spawn(move || run_worker(&worker_addr, &WorkerOptions::default()));
    manager.wait_for_workers(1).unwrap();
    let pool = manager.handle();
    let ids: Vec<u64> = tenants
        .iter()
        .enumerate()
        .map(|(i, (spec, cfg))| {
            pool.register(CampaignSpec {
                name: format!("probe-{i}"),
                ctx: ctx(*spec),
                seed: cfg.seed,
                weight: 1,
                wal: None,
            })
            .unwrap()
        })
        .collect();
    // Run one round of tenant 0 so throughput counters move.
    let (spec, _) = tenants[0];
    let rig = Rig::bulldozer();
    let population: Vec<Vec<audit_core::ga::Gene>> = vec![
        vec![
            audit_core::ga::Gene {
                opcode: Opcode::SimdFma,
                dst: 0,
                src1: 1,
                src2: 2,
                miss: false,
            };
            GENOME_LEN
        ];
        1
    ];
    let expected = spec.evaluate_objectives(&rig, &population[0]).0;
    let mut dispatcher = pool.dispatcher(ids[0]);
    let scores =
        audit_core::ga::EvalDispatcher::evaluate(&mut dispatcher, &population, &[0]).unwrap();
    assert_eq!(scores[0].1, expected);

    // Remote status via the tenant protocol.
    let text = audit_fleet::status(&addr).unwrap();
    assert!(text.contains("1 worker(s), 2 campaign(s)"), "status:\n{text}");
    assert!(text.contains("probe-0") && text.contains("probe-1"), "status:\n{text}");

    // Remote metrics via the same MetricsReq frame the broker answers.
    let scrape = audit_fleet::scrape(&addr).unwrap();
    for needle in [
        "audit_fleet_workers 1",
        "audit_fleet_campaigns 2",
        "audit_fleet_results_total 1",
        "audit_fleet_campaign_rounds_total{campaign=\"probe-0\"} 1",
        "audit_fleet_campaign_rounds_total{campaign=\"probe-1\"} 0",
        "audit_fleet_worker_results_total",
    ] {
        assert!(scrape.contains(needle), "missing `{needle}` in scrape:\n{scrape}");
    }
    for id in ids {
        pool.finish(id, true);
    }
    manager.shutdown();
    worker.join().unwrap().unwrap();
}
