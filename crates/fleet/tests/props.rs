//! Property tests for the fleet's scheduling and cache-keying
//! invariants.
//!
//! The fair-share arbiter must be a pure function of registration
//! order, weights, and the runnable predicate (determinism), must
//! bound every continuously-runnable campaign's wait between grants by
//! twice the weight sum (permutation fairness — no weight vector or
//! blocked-tenant pattern can starve anyone), and the eval-cache key
//! must separate any two contexts that differ in any field (no tenant
//! can ever be served another tenant's numbers, even under fingerprint
//! collisions — keying is by full encoding, never by hash).

use proptest::prelude::*;

use audit_core::ga::{CostFunction, ObjectiveSet};
use audit_core::{FitnessSpec, MeasurePolicy, MeasureSpec};
use audit_fleet::FairShare;
use audit_net::EvalContext;

/// Builds an arbiter over `weights`, ids `0..n`.
fn arbiter(weights: &[u32]) -> FairShare {
    let mut fs = FairShare::new();
    for (id, &w) in weights.iter().enumerate() {
        fs.register(id as u64, w);
    }
    fs
}

/// Replays `script` (one runnable-mask per call) and records the grant
/// sequence.
fn replay(weights: &[u32], script: &[Vec<bool>]) -> Vec<Option<u64>> {
    let mut fs = arbiter(weights);
    script
        .iter()
        .map(|mask| fs.next(|id| mask.get(id as usize).copied().unwrap_or(false)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Same weights, same runnable script → the same grant sequence,
    /// always. Scheduling carries no hidden state, randomness, or
    /// timing dependence.
    #[test]
    fn schedule_is_deterministic(
        weights in prop::collection::vec(1u32..9, 1..7),
        steps in 1usize..=64,
        mask_seed in any::<u64>(),
    ) {
        let n = weights.len();
        // A cheap deterministic PRNG for the runnable script, so the
        // script itself shrinks well.
        let mut state = mask_seed | 1;
        let script: Vec<Vec<bool>> = (0..steps)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        (state >> 33) & 1 == 1
                    })
                    .collect()
            })
            .collect();
        prop_assert_eq!(replay(&weights, &script), replay(&weights, &script));
    }

    /// With every campaign continuously runnable, grant counts over
    /// whole cycles are exactly proportional to the weights.
    #[test]
    fn grants_are_weight_proportional(
        weights in prop::collection::vec(1u32..9, 1..7),
        cycles in 1usize..=4,
    ) {
        let total: u32 = weights.iter().sum();
        let mut fs = arbiter(&weights);
        let mut counts = vec![0u32; weights.len()];
        for _ in 0..(total as usize * cycles) {
            let id = fs.next(|_| true).expect("all runnable");
            counts[id as usize] += 1;
        }
        for (i, (&got, &w)) in counts.iter().zip(weights.iter()).enumerate() {
            prop_assert_eq!(got, w * cycles as u32, "campaign {} off-ratio: {:?}", i, counts);
        }
    }

    /// Permutation fairness: however the weights are chosen, a
    /// continuously-runnable campaign never waits more than two weight
    /// sums between grants — even while every other campaign blinks
    /// runnable/blocked arbitrarily.
    #[test]
    fn wait_between_grants_is_bounded(
        weights in prop::collection::vec(1u32..9, 1..7),
        victim_seed in any::<u64>(),
        mask_seed in any::<u64>(),
    ) {
        let n = weights.len();
        let victim = (victim_seed % n as u64) as usize;
        let total: u32 = weights.iter().sum();
        let bound = 2 * total as usize;
        let mut fs = arbiter(&weights);
        let mut state = mask_seed | 1;
        let mut since_grant = 0usize;
        for _ in 0..(bound * 4) {
            let mask: Vec<bool> = (0..n)
                .map(|i| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    // The victim is always runnable; everyone else blinks.
                    i == victim || (state >> 33) & 1 == 1
                })
                .collect();
            let id = fs.next(|id| mask[id as usize]).expect("victim is runnable");
            if id as usize == victim {
                since_grant = 0;
            } else {
                since_grant += 1;
                prop_assert!(
                    since_grant < bound,
                    "campaign {} starved for {} grants (weights {:?})",
                    victim, since_grant, &weights
                );
            }
        }
    }

    /// Cache-key separation: two evaluation contexts differing in any
    /// field — chip, operating point, throttle, cascade budget, or the
    /// fitness function's objective set — never share a wire encoding,
    /// which is the (only) cache key workers and the pool intern by.
    #[test]
    fn distinct_contexts_never_share_a_cache_key(
        chip_a in 0usize..2, chip_b in 0usize..2,
        volts_a in 0usize..3, volts_b in 0usize..3,
        throttle_a in 0usize..3, throttle_b in 0usize..3,
        budget_a in 0usize..3, budget_b in 0usize..3,
        objectives_a in 0usize..3, objectives_b in 0usize..3,
    ) {
        let chips = ["bulldozer", "phenom"];
        let volts = [None, Some(1.2), Some(1.35)];
        let throttles = [None, Some(2u32), Some(4u32)];
        let objective_sets = ["droop", "droop,power", "droop,power,margin"];
        let build = |chip: usize, v: usize, t: usize, budget: usize, objs: usize| EvalContext {
            chip: chips[chip].into(),
            volts: volts[v],
            throttle: throttles[t],
            spec: FitnessSpec {
                threads: 1,
                sub_blocks: 2,
                lp_slots: 2,
                cost: CostFunction::MaxDroop,
                spec: MeasureSpec::ga_eval(),
                policy: MeasurePolicy::disabled(),
                objectives: ObjectiveSet::parse(objective_sets[objs]).unwrap(),
            },
            fast_tier_budget: budget,
        };
        let a = build(chip_a, volts_a, throttle_a, budget_a, objectives_a);
        let b = build(chip_b, volts_b, throttle_b, budget_b, objectives_b);
        let same_inputs = (chip_a, volts_a, throttle_a, budget_a, objectives_a)
            == (chip_b, volts_b, throttle_b, budget_b, objectives_b);
        prop_assert_eq!(
            a.to_json().encode() == b.to_json().encode(),
            same_inputs,
            "cache-key encoding collided (or split) across contexts"
        );
    }
}
