//! The no-busy-wait contract: an idle fleet parks.
//!
//! With no round open anywhere, the pool thread blocks on its channel
//! (a condvar wait) instead of spinning its heartbeat timer — the same
//! fix the single-campaign broker got for its no-worker idle loop.
//! Two observables pin it: a connected worker receives *no* pings
//! while the pool is parked (heartbeat ticks only fire between rounds
//! in flight), and the whole process burns (almost) no CPU across an
//! idle window even with a pathologically short heartbeat. This file
//! is its own test binary so the CPU measurement is not contaminated
//! by sibling tests.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use audit_core::ga::{CostFunction, ObjectiveSet};
use audit_core::{FitnessSpec, MeasurePolicy, MeasureSpec};
use audit_fleet::{CampaignSpec, Fleet, FleetConfig, PoolHandle};
use audit_net::{
    connect, read_frame, write_frame, EvalContext, FrameOutcome, Msg, PROTOCOL_VERSION,
};

fn ctx() -> EvalContext {
    EvalContext {
        chip: "bulldozer".into(),
        volts: None,
        throttle: None,
        spec: FitnessSpec {
            threads: 1,
            sub_blocks: 2,
            lp_slots: 2,
            cost: CostFunction::MaxDroop,
            spec: MeasureSpec::ga_eval(),
            policy: MeasurePolicy::disabled(),
            objectives: ObjectiveSet::default(),
        },
        fast_tier_budget: 0,
    }
}

/// Cumulative on-CPU nanoseconds of this process, from
/// `/proc/self/schedstat` (first field).
#[cfg(target_os = "linux")]
fn on_cpu_ns() -> u64 {
    std::fs::read_to_string("/proc/self/schedstat")
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn parked_pool_neither_pings_nor_spins() {
    // A pathologically short heartbeat: a non-parking event loop would
    // tick ~100×/s and ping the worker every tick.
    let cfg = FleetConfig {
        heartbeat: Duration::from_millis(10),
        dead_after: Duration::from_secs(30),
        ..FleetConfig::default()
    };
    let mut manager = Fleet::bind("127.0.0.1:0", cfg).unwrap();
    let addr = manager.addr().to_string();

    // A hand-rolled worker that counts pings and answers nothing.
    let pings = Arc::new(AtomicUsize::new(0));
    let ping_count = Arc::clone(&pings);
    let silent = std::thread::spawn(move || {
        let mut conn = connect(&addr).unwrap();
        write_frame(
            &mut conn,
            &Msg::Hello {
                protocol: PROTOCOL_VERSION,
            }
            .to_json(),
        )
        .unwrap();
        loop {
            match read_frame(&mut conn) {
                Ok(FrameOutcome::Frame(v)) => match Msg::from_json(&v) {
                    Ok(Msg::Ping) => {
                        ping_count.fetch_add(1, Ordering::SeqCst);
                    }
                    Ok(Msg::Shutdown) => return,
                    _ => {}
                },
                _ => return,
            }
        }
    });
    manager.wait_for_workers(1).unwrap();

    // Idle window: no campaign, no round — the pool must park.
    #[cfg(target_os = "linux")]
    let before = on_cpu_ns();
    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(
        pings.load(Ordering::SeqCst),
        0,
        "a parked pool has no heartbeat tick, so no pings"
    );
    #[cfg(target_os = "linux")]
    {
        let spent = on_cpu_ns() - before;
        // A busy-spinning loop would burn ~the whole 400 ms window on
        // CPU; the parked loop (plus this thread and the blocked
        // reader) should cost a small fraction of it.
        assert!(
            spent < 200_000_000,
            "idle fleet burned {spent} ns CPU over a 400 ms window"
        );
    }

    // Control for the ping half: open a round (the silent worker never
    // answers, leaving it in flight) and the heartbeat timer resumes —
    // pings flow again, proving their absence above was the park, not
    // a missing feature.
    let pool: PoolHandle = manager.handle();
    let id = pool
        .register(CampaignSpec {
            name: "waker".into(),
            ctx: ctx(),
            seed: 1,
            weight: 1,
            wal: None,
        })
        .unwrap();
    let mut dispatcher = pool.dispatcher(id);
    let round = std::thread::spawn(move || {
        let population = vec![vec![
            audit_core::ga::Gene {
                opcode: audit_cpu::isa::Opcode::SimdFma,
                dst: 0,
                src1: 1,
                src2: 2,
                miss: false,
            };
            8
        ]];
        // Fails when the manager shuts down mid-round — expected.
        let _ = audit_core::ga::EvalDispatcher::evaluate(&mut dispatcher, &population, &[0]);
    });
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while pings.load(Ordering::SeqCst) == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        pings.load(Ordering::SeqCst) > 0,
        "heartbeat pings did not resume once a round was in flight"
    );
    manager.shutdown();
    round.join().unwrap();
    silent.join().unwrap();
}
