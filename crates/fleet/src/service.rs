//! The fleet front door: one socket, three kinds of peer.
//!
//! [`Fleet::bind`] opens a single listening socket and sorts each
//! connection by its first frame's `kind`:
//!
//! * `hello` — a worker (`audit work`, byte-for-byte the same binary
//!   that serves a single-campaign broker). Its writer half goes to the
//!   pool thread; its reader half pumps results in. Unlike the broker,
//!   no `Setup` is sent at handshake — the pool binds the worker to a
//!   campaign's context lazily, at its first dispatch.
//! * `submit` / `status` — a tenant client ([`FleetMsg`]). Submissions
//!   surface through [`Fleet::next_submission`]; the caller (the CLI's
//!   `fleet serve`) registers the campaign, runs it, and answers on the
//!   held connection via [`Submission::respond_accepted`] and
//!   [`Submission::finish`].
//! * `metrics_req` — a scrape. It gets one plain-text
//!   [`Msg::Metrics`] snapshot and the socket closes.
//!
//! The matching client sides are the free functions [`submit`],
//! [`status`], and [`scrape`].

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use audit_error::AuditError;
use audit_measure::json::JsonValue;
use audit_net::frame::{read_frame, write_frame, FrameOutcome};
use audit_net::proto::{Msg, PROTOCOL_VERSION};
use audit_net::transport::{connect, Conn, Listener};

use crate::pool::{FleetConfig, Pool, PoolHandle, PoolMsg};
use crate::proto::FleetMsg;

/// A campaign submission pulled off the socket, with the tenant's
/// connection held open so the manager can answer when the campaign
/// finishes.
pub struct Submission {
    /// Normalized `audit generate` argv (flags only).
    pub argv: Vec<String>,
    /// Journal checkpoint path on the manager's filesystem.
    pub checkpoint: String,
    /// Fair-share weight (≥ 1).
    pub weight: u32,
    /// Resume the checkpoint instead of starting fresh.
    pub resume: bool,
    conn: Conn,
}

impl Submission {
    /// Tells the tenant its campaign is registered and running.
    pub fn respond_accepted(&mut self, campaign: u64) {
        write_frame(&mut self.conn, &FleetMsg::Accepted { campaign }.to_json()).ok();
    }

    /// Tells the tenant its campaign completed (or failed) and closes
    /// the connection.
    pub fn finish(mut self, campaign: u64, ok: bool, summary: &str) {
        write_frame(
            &mut self.conn,
            &FleetMsg::Done {
                campaign,
                ok,
                summary: summary.to_string(),
            }
            .to_json(),
        )
        .ok();
        self.conn.shutdown();
    }
}

/// The running campaign manager: listener, accept loop, worker pool.
pub struct Fleet {
    addr: String,
    pool: Pool,
    handle: PoolHandle,
    submissions: Receiver<Submission>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<Conn>>>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Fleet {
    /// Binds `addr` (`host:port` or `unix:/path`) and starts accepting
    /// workers, tenants, and scrapes.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Io`] if the address cannot be bound.
    pub fn bind(addr: &str, cfg: FleetConfig) -> Result<Fleet, AuditError> {
        let listener = Listener::bind(addr).map_err(|e| AuditError::io(addr, &e))?;
        let bound = listener.local_addr_string();
        set_nonblocking(&listener).map_err(|e| AuditError::io(addr, &e))?;
        let pool = Pool::start(cfg);
        let handle = pool.handle();
        let (sub_tx, submissions) = channel();
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conns);
        let accept_pool = handle.clone();
        let accept_thread = std::thread::spawn(move || {
            accept_loop(&listener, &accept_pool, &sub_tx, &accept_stop, &accept_conns);
        });
        Ok(Fleet {
            addr: bound,
            pool,
            handle,
            submissions,
            stop,
            conns,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address in connectable form (`:0` resolved).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// A clonable handle into the worker pool (campaign registration,
    /// dispatchers, metrics).
    pub fn handle(&self) -> PoolHandle {
        self.handle.clone()
    }

    /// Blocks until at least `n` workers are connected.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Io`] if the pool thread has died.
    pub fn wait_for_workers(&self, n: usize) -> Result<(), AuditError> {
        self.handle.wait_for_workers(n)
    }

    /// Waits up to `timeout` for the next campaign submission.
    pub fn next_submission(&self, timeout: Duration) -> Option<Submission> {
        self.submissions.recv_timeout(timeout).ok()
    }

    /// The plain-text metrics scrape (what [`scrape`] returns remotely).
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Io`] if the pool thread has died.
    pub fn metrics_text(&self) -> Result<String, AuditError> {
        self.handle.metrics_text()
    }

    /// The plain-text status report (what [`status`] returns remotely).
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Io`] if the pool thread has died.
    pub fn status_text(&self) -> Result<String, AuditError> {
        self.handle.status_text()
    }

    /// Stops accepting, releases every connection (workers get a
    /// `Shutdown` frame), and joins the pool thread. Called
    /// automatically on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Join the accept loop before draining the registry, so a peer
        // connecting during shutdown is registered and released too.
        if let Some(handle) = self.accept_thread.take() {
            handle.join().ok();
        }
        self.pool.shutdown();
        let shutdown_frame = Msg::Shutdown.to_json();
        if let Ok(mut conns) = self.conns.lock() {
            for conn in conns.iter_mut() {
                write_frame(conn, &shutdown_frame).ok();
                conn.shutdown();
            }
            conns.clear();
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn set_nonblocking(listener: &Listener) -> std::io::Result<()> {
    match listener {
        Listener::Tcp(l) => l.set_nonblocking(true),
        #[cfg(unix)]
        Listener::Unix(l) => l.set_nonblocking(true),
    }
}

/// Polls for connections until told to stop; each accepted socket gets
/// a sniff/session thread.
fn accept_loop(
    listener: &Listener,
    pool: &PoolHandle,
    submissions: &Sender<Submission>,
    stop: &AtomicBool,
    conns: &Mutex<Vec<Conn>>,
) {
    let ids = AtomicUsize::new(0);
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(conn) => {
                if let Ok(clone) = conn.try_clone() {
                    if let Ok(mut registry) = conns.lock() {
                        registry.push(clone);
                    }
                }
                let worker = ids.fetch_add(1, Ordering::SeqCst) as u64;
                let pool = pool.clone();
                let submissions = submissions.clone();
                std::thread::spawn(move || session(conn, worker, &pool, &submissions));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

/// Reads a connection's first frame and routes it: worker handshake,
/// tenant request, or scrape.
fn session(mut conn: Conn, worker: u64, pool: &PoolHandle, submissions: &Sender<Submission>) {
    let first = match read_frame(&mut conn) {
        Ok(FrameOutcome::Frame(v)) => v,
        _ => {
            conn.shutdown();
            return;
        }
    };
    match first.get("kind").and_then(JsonValue::as_str) {
        Some("hello") => worker_session(conn, worker, &first, pool),
        Some("metrics_req") => {
            let (reply, rx) = channel();
            if pool.send(PoolMsg::MetricsText { reply }) {
                if let Ok(text) = rx.recv() {
                    write_frame(&mut conn, &Msg::Metrics { text }.to_json()).ok();
                }
            }
            conn.shutdown();
        }
        Some("status") => {
            let (reply, rx) = channel();
            if pool.send(PoolMsg::StatusText { reply }) {
                if let Ok(text) = rx.recv() {
                    write_frame(&mut conn, &FleetMsg::Status { text }.to_json()).ok();
                }
            }
            conn.shutdown();
        }
        Some("submit") => {
            let Ok(FleetMsg::Submit {
                argv,
                checkpoint,
                weight,
                resume,
            }) = FleetMsg::from_json(&first)
            else {
                conn.shutdown();
                return;
            };
            // The connection rides along: the serve loop answers on it
            // when the campaign is accepted and again when it finishes.
            submissions
                .send(Submission {
                    argv,
                    checkpoint,
                    weight,
                    resume,
                    conn,
                })
                .ok();
        }
        _ => conn.shutdown(),
    }
}

/// Completes a worker handshake and pumps its frames into the pool
/// until the stream ends.
fn worker_session(mut conn: Conn, worker: u64, first: &JsonValue, pool: &PoolHandle) {
    match Msg::from_json(first) {
        Ok(Msg::Hello { protocol }) if protocol == PROTOCOL_VERSION => {}
        _ => {
            conn.shutdown();
            return;
        }
    }
    let Ok(writer) = conn.try_clone() else {
        conn.shutdown();
        return;
    };
    if !pool.send(PoolMsg::Joined { worker, writer }) {
        return;
    }
    // Clean EOF, a torn tail, or a read error ends the session and
    // reports the worker lost; a CRC-rejected frame is dropped and the
    // stream stays alive (the dispatch lease re-issues whatever it
    // carried).
    loop {
        let v = match read_frame(&mut conn) {
            Ok(FrameOutcome::Frame(v)) => v,
            Ok(FrameOutcome::Corrupt) => continue,
            _ => break,
        };
        match Msg::from_json(&v) {
            Ok(Msg::Result {
                id,
                objectives,
                resilience,
                cached,
            }) => {
                if !pool.send(PoolMsg::Result {
                    worker,
                    id,
                    objectives,
                    resilience,
                    cached,
                }) {
                    return;
                }
            }
            Ok(Msg::Pong | Msg::Ping) => {
                if !pool.send(PoolMsg::Pong { worker }) {
                    return;
                }
            }
            _ => break,
        }
    }
    pool.send(PoolMsg::Lost { worker });
}

/// Reads one frame, treating EOF and corruption as errors — the client
/// side of a strictly request/response exchange.
fn expect_frame(conn: &mut Conn, what: &str) -> Result<JsonValue, AuditError> {
    match read_frame(conn)? {
        FrameOutcome::Frame(v) => Ok(v),
        _ => Err(AuditError::journal(0, format!("fleet: {what}: stream ended"))),
    }
}

/// Submits a campaign to the manager at `addr` and blocks until it
/// completes, returning `(campaign id, ok, summary)`.
///
/// # Errors
///
/// Returns [`AuditError::Io`] on connect/write failure and
/// [`AuditError::Journal`] on a malformed or unexpected reply.
pub fn submit(
    addr: &str,
    argv: Vec<String>,
    checkpoint: &str,
    weight: u32,
    resume: bool,
) -> Result<(u64, bool, String), AuditError> {
    let mut conn = connect(addr).map_err(|e| AuditError::io(addr, &e))?;
    write_frame(
        &mut conn,
        &FleetMsg::Submit {
            argv,
            checkpoint: checkpoint.to_string(),
            weight,
            resume,
        }
        .to_json(),
    )?;
    let accepted = expect_frame(&mut conn, "awaiting accept")?;
    let campaign = match FleetMsg::from_json(&accepted)? {
        FleetMsg::Accepted { campaign } => campaign,
        // A submission the manager rejects before registration answers
        // with `done` directly, no `accepted` frame.
        FleetMsg::Done {
            campaign,
            ok,
            summary,
        } => return Ok((campaign, ok, summary)),
        _ => return Err(AuditError::journal(0, "fleet: expected `accepted`")),
    };
    let done = expect_frame(&mut conn, "awaiting completion")?;
    let FleetMsg::Done {
        campaign: done_campaign,
        ok,
        summary,
    } = FleetMsg::from_json(&done)?
    else {
        return Err(AuditError::journal(0, "fleet: expected `done`"));
    };
    if done_campaign != campaign {
        return Err(AuditError::journal(0, "fleet: done for a different campaign"));
    }
    Ok((campaign, ok, summary))
}

/// Fetches the manager's plain-text status report.
///
/// # Errors
///
/// Returns [`AuditError::Io`] on connect/write failure and
/// [`AuditError::Journal`] on a malformed reply.
pub fn status(addr: &str) -> Result<String, AuditError> {
    let mut conn = connect(addr).map_err(|e| AuditError::io(addr, &e))?;
    write_frame(&mut conn, &FleetMsg::StatusReq.to_json())?;
    let reply = expect_frame(&mut conn, "awaiting status")?;
    let FleetMsg::Status { text } = FleetMsg::from_json(&reply)? else {
        return Err(AuditError::journal(0, "fleet: expected `status_text`"));
    };
    Ok(text)
}

/// Fetches the manager's plain-text metrics scrape.
///
/// # Errors
///
/// Returns [`AuditError::Io`] on connect/write failure and
/// [`AuditError::Journal`] on a malformed reply.
pub fn scrape(addr: &str) -> Result<String, AuditError> {
    let mut conn = connect(addr).map_err(|e| AuditError::io(addr, &e))?;
    write_frame(&mut conn, &Msg::MetricsReq.to_json())?;
    let reply = expect_frame(&mut conn, "awaiting metrics")?;
    let Msg::Metrics { text } = Msg::from_json(&reply)? else {
        return Err(AuditError::journal(0, "fleet: expected `metrics`"));
    };
    Ok(text)
}
