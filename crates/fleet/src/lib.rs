//! Multi-tenant campaign service for AUDIT (`audit fleet`).
//!
//! PR 5's broker runs exactly one GA campaign per process. This crate
//! turns that into a long-lived **campaign manager**: many concurrent
//! GA campaigns share one worker fleet, scheduled by a deterministic
//! weighted-round-robin arbiter, with worker-side eval caches that
//! survive across campaigns and a scrapeable metrics endpoint.
//!
//! * [`scheduler`] — the pure fair-share arbiter ([`FairShare`]):
//!   batch weighted round-robin over runnable campaigns, a
//!   deterministic function of registration order, weights, and the
//!   runnable predicate — never of wall-clock timing.
//! * [`proto`] — the fleet control frames ([`FleetMsg`]): campaign
//!   submission, acceptance, completion, and status, riding the same
//!   CRC-checked frame layer as the worker protocol.
//! * [`pool`] — the shared worker pool ([`Pool`]): one event-loop
//!   thread owning every worker connection and every campaign's round
//!   state, replicating the single-campaign broker's full defense
//!   stack (content addressing, in-flight windows, dispatch leases,
//!   retry/quarantine, cross-validation and eviction, per-campaign
//!   write-ahead logs, deterministic chaos injection) per campaign.
//! * [`service`] — the front door ([`Fleet`]): one listening socket
//!   whose accept loop sniffs each connection's first frame — `hello`
//!   is a worker, `submit`/`status` is a tenant client, `metrics_req`
//!   is a scrape — and routes it accordingly.
//!
//! # Multi-tenant determinism contract
//!
//! Each campaign's results — `GaRun`, journal bytes, resilience
//! counters — are **byte-identical to its solo in-process run** no
//! matter how many other campaigns share the fleet, how the arbiter
//! interleaves them, how many workers serve them, or which
//! worker-side cache entries happen to hit. The argument is the same
//! as the single-campaign broker's, per campaign: jobs are
//! content-addressed, evaluation is deterministic per genome, the
//! engine sorts scores into slot order, and resilience deltas merge
//! order-insensitively — so scheduling (now including co-tenant
//! scheduling) provably cannot reach the results. Cross-campaign
//! cache entries are keyed worker-side by the *full* setup encoding
//! (interned byte-for-byte, never a hash), so tenants with differing
//! contexts can never share an entry, and tenants with identical
//! contexts share only values both would have computed identically.
//! See `docs/FLEET.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod proto;
pub mod scheduler;
pub mod service;

pub use pool::{CampaignDispatcher, CampaignSpec, FleetConfig, Pool, PoolHandle};
pub use proto::FleetMsg;
pub use scheduler::FairShare;
pub use service::{scrape, status, submit, Fleet, Submission};
