//! Fleet control frames: how tenants talk to the campaign manager.
//!
//! These ride the same length-prefixed, CRC-trailed frame layer as the
//! worker protocol ([`audit_net::frame`]), on the same listening
//! socket — the accept loop tells the two apart by the first frame's
//! `kind`. A submission carries the campaign's *generate argv* (the
//! normalized flag list the CLI's `generate_meta` round-trips), not a
//! pre-built config: the manager replays the argv through the same
//! code path a solo `audit generate` uses, which is what makes the
//! managed journal byte-identical to the solo one from the
//! `run_start` meta onward.

use audit_error::AuditError;
use audit_measure::json::JsonValue;

/// One fleet control message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetMsg {
    /// Tenant → manager: run this campaign. `argv` is the normalized
    /// `audit generate` flag list; `checkpoint` is where the manager
    /// writes the campaign's journal (and `<checkpoint>.wal`);
    /// `weight` is the fair-share weight; `resume` continues a
    /// half-finished journal instead of starting over.
    Submit {
        /// Normalized generate argv (flags only, no binary name).
        argv: Vec<String>,
        /// Journal checkpoint path on the manager's filesystem.
        checkpoint: String,
        /// Fair-share weight (≥ 1).
        weight: u32,
        /// Resume the checkpoint instead of starting fresh.
        resume: bool,
    },
    /// Manager → tenant: the campaign is registered and running.
    Accepted {
        /// Manager-assigned campaign id.
        campaign: u64,
    },
    /// Manager → tenant: the campaign finished (or failed).
    Done {
        /// The id from [`FleetMsg::Accepted`].
        campaign: u64,
        /// True when the campaign completed; false on error.
        ok: bool,
        /// Human-readable completion summary (or the error text).
        summary: String,
    },
    /// Client → manager: describe every campaign's progress.
    StatusReq,
    /// Manager → client: the plain-text status report.
    Status {
        /// One line per campaign plus pool totals.
        text: String,
    },
}

impl FleetMsg {
    /// Encodes to the wire JSON object.
    pub fn to_json(&self) -> JsonValue {
        let kind = |k: &str| ("kind", JsonValue::String(k.into()));
        match self {
            FleetMsg::Submit {
                argv,
                checkpoint,
                weight,
                resume,
            } => {
                let mut fields = vec![
                    kind("submit"),
                    (
                        "argv",
                        JsonValue::Array(
                            argv.iter()
                                .map(|a| JsonValue::String(a.clone()))
                                .collect(),
                        ),
                    ),
                    ("checkpoint", JsonValue::String(checkpoint.clone())),
                    ("weight", JsonValue::from_u64(u64::from(*weight))),
                ];
                if *resume {
                    fields.push(("resume", JsonValue::Bool(true)));
                }
                JsonValue::object(fields)
            }
            FleetMsg::Accepted { campaign } => JsonValue::object(vec![
                kind("accepted"),
                ("campaign", JsonValue::from_u64(*campaign)),
            ]),
            FleetMsg::Done {
                campaign,
                ok,
                summary,
            } => JsonValue::object(vec![
                kind("done"),
                ("campaign", JsonValue::from_u64(*campaign)),
                ("ok", JsonValue::Bool(*ok)),
                ("summary", JsonValue::String(summary.clone())),
            ]),
            FleetMsg::StatusReq => JsonValue::object(vec![kind("status")]),
            FleetMsg::Status { text } => JsonValue::object(vec![
                kind("status_text"),
                ("text", JsonValue::String(text.clone())),
            ]),
        }
    }

    /// Decodes from the wire JSON object.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Journal`] on an unknown kind or a missing
    /// or mistyped field.
    pub fn from_json(v: &JsonValue) -> Result<FleetMsg, AuditError> {
        let bad = |what: &str| AuditError::journal(0, format!("fleet frame: {what}"));
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("no kind"))?;
        match kind {
            "submit" => {
                let argv = v
                    .get("argv")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| bad("submit has no argv"))?
                    .iter()
                    .map(|a| {
                        a.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| bad("argv entry is not a string"))
                    })
                    .collect::<Result<Vec<String>, AuditError>>()?;
                let checkpoint = v
                    .get("checkpoint")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| bad("submit has no checkpoint"))?
                    .to_string();
                let weight = v
                    .get("weight")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| bad("submit has no weight"))? as u32;
                let resume = v.get("resume").and_then(JsonValue::as_bool).unwrap_or(false);
                Ok(FleetMsg::Submit {
                    argv,
                    checkpoint,
                    weight,
                    resume,
                })
            }
            "accepted" => Ok(FleetMsg::Accepted {
                campaign: v
                    .get("campaign")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| bad("accepted has no campaign"))?,
            }),
            "done" => Ok(FleetMsg::Done {
                campaign: v
                    .get("campaign")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| bad("done has no campaign"))?,
                ok: v
                    .get("ok")
                    .and_then(JsonValue::as_bool)
                    .ok_or_else(|| bad("done has no ok"))?,
                summary: v
                    .get("summary")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string(),
            }),
            "status" => Ok(FleetMsg::StatusReq),
            "status_text" => Ok(FleetMsg::Status {
                text: v
                    .get("text")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string(),
            }),
            other => Err(bad(&format!("unknown kind `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_frames_round_trip() {
        let msgs = [
            FleetMsg::Submit {
                argv: vec!["--seed".into(), "7".into(), "--objective".into(), "droop".into()],
                checkpoint: "/tmp/run.journal".into(),
                weight: 3,
                resume: false,
            },
            FleetMsg::Submit {
                argv: vec![],
                checkpoint: "c".into(),
                weight: 1,
                resume: true,
            },
            FleetMsg::Accepted { campaign: 2 },
            FleetMsg::Done {
                campaign: 2,
                ok: true,
                summary: "best -0.125 after 10 generations".into(),
            },
            FleetMsg::StatusReq,
            FleetMsg::Status {
                text: "campaign 0: generation 4/10\n".into(),
            },
        ];
        for msg in &msgs {
            let encoded = msg.to_json();
            let decoded = FleetMsg::from_json(&encoded).unwrap();
            assert_eq!(&decoded, msg);
            // And through the text layer, like the wire does it.
            let reparsed = JsonValue::parse(&encoded.encode()).unwrap();
            assert_eq!(FleetMsg::from_json(&reparsed).unwrap(), *msg);
        }
    }

    #[test]
    fn resume_flag_is_omitted_when_false() {
        let msg = FleetMsg::Submit {
            argv: vec![],
            checkpoint: "c".into(),
            weight: 1,
            resume: false,
        };
        assert!(msg.to_json().get("resume").is_none());
    }

    #[test]
    fn unknown_kind_is_an_error() {
        let v = JsonValue::parse("{\"kind\":\"warp\"}").unwrap();
        assert!(FleetMsg::from_json(&v).is_err());
    }
}
