//! The fair-share arbiter: deterministic batch weighted round-robin.
//!
//! The pool asks [`FairShare::next`] which campaign gets the next
//! dispatch grant. The answer is a pure function of (a) registration
//! order, (b) weights, and (c) the runnable predicate at each call —
//! never of wall-clock timing — so a fleet re-run with the same
//! submission order makes the same scheduling decisions. (Results
//! never depend on scheduling at all; determinism here is for
//! reproducible *behaviour*: WAL contents, worker assignment, metric
//! trajectories.)
//!
//! The discipline is batch WRR: each refill cycle grants a campaign up
//! to `weight` dispatches before the cursor moves on, and refills every
//! campaign's credit (set, not add — a blocked campaign cannot bank
//! unbounded credit) only when no runnable campaign has any left.
//! Starvation is impossible: a continuously-runnable campaign receives
//! at least one grant per cycle, and a cycle is at most the weight sum
//! long, so its wait between grants is bounded by twice the weight sum
//! regardless of the weight vector — the property the proptests pin.

/// One registered campaign's arbiter state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    id: u64,
    weight: u32,
    credit: u32,
}

/// Deterministic batch-WRR arbiter over registered campaigns. See the
/// module docs.
#[derive(Debug, Default, Clone)]
pub struct FairShare {
    entries: Vec<Entry>,
    cursor: usize,
}

impl FairShare {
    /// An empty arbiter.
    pub fn new() -> FairShare {
        FairShare::default()
    }

    /// Registers a campaign with the given weight (clamped to ≥ 1).
    /// Registration order is part of the schedule: campaigns are
    /// scanned in it.
    pub fn register(&mut self, id: u64, weight: u32) {
        let weight = weight.max(1);
        self.entries.push(Entry {
            id,
            weight,
            credit: weight,
        });
    }

    /// Removes a campaign (a completed or failed tenant).
    pub fn unregister(&mut self, id: u64) {
        if let Some(pos) = self.entries.iter().position(|e| e.id == id) {
            self.entries.remove(pos);
            if pos < self.cursor {
                self.cursor -= 1;
            }
        }
        if self.cursor >= self.entries.len() {
            self.cursor = 0;
        }
    }

    /// Registered campaign ids, in registration order.
    pub fn ids(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.id).collect()
    }

    /// Grants the next dispatch to a runnable campaign, or `None` when
    /// no registered campaign is runnable. `runnable` is consulted for
    /// each candidate; a campaign with queued work and worker capacity
    /// should answer true.
    pub fn next<F: Fn(u64) -> bool>(&mut self, runnable: F) -> Option<u64> {
        if self.entries.is_empty() {
            return None;
        }
        for pass in 0..2 {
            let n = self.entries.len();
            for probe in 0..n {
                let i = (self.cursor + probe) % n;
                let entry = &mut self.entries[i];
                if entry.credit > 0 && runnable(entry.id) {
                    entry.credit -= 1;
                    // The cursor stays on the granted entry: it keeps
                    // draining its batch until its credit runs out.
                    self.cursor = i;
                    return Some(entry.id);
                }
            }
            if pass == 0 {
                // Every runnable campaign is out of credit: start a new
                // cycle. Credits are *set* to the weight, not added, and
                // the rotation resumes past the last-granted entry so the
                // campaign that closed one cycle does not also open the
                // next.
                for entry in &mut self.entries {
                    entry.credit = entry.weight;
                }
                self.cursor = (self.cursor + 1) % n;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_shape_the_grant_ratio() {
        let mut fs = FairShare::new();
        fs.register(1, 3);
        fs.register(2, 1);
        let grants: Vec<u64> = (0..8).map(|_| fs.next(|_| true).unwrap()).collect();
        assert_eq!(grants, [1, 1, 1, 2, 1, 1, 1, 2]);
    }

    #[test]
    fn blocked_campaigns_are_skipped_without_banking_credit() {
        let mut fs = FairShare::new();
        fs.register(1, 2);
        fs.register(2, 2);
        // Campaign 1 blocked: 2 drains alone.
        for _ in 0..5 {
            assert_eq!(fs.next(|id| id == 2), Some(2));
        }
        // Campaign 1 comes back: it gets its weight per cycle, not five
        // cycles of banked credit.
        let grants: Vec<u64> = (0..8).map(|_| fs.next(|_| true).unwrap()).collect();
        let ones = grants.iter().filter(|&&g| g == 1).count();
        assert_eq!(ones, 4, "grants: {grants:?}");
    }

    #[test]
    fn nothing_runnable_means_none() {
        let mut fs = FairShare::new();
        assert_eq!(fs.next(|_| true), None);
        fs.register(1, 1);
        assert_eq!(fs.next(|_| false), None);
        assert_eq!(fs.next(|_| true), Some(1));
    }

    #[test]
    fn unregister_keeps_the_rotation_sane() {
        let mut fs = FairShare::new();
        fs.register(1, 1);
        fs.register(2, 1);
        fs.register(3, 1);
        assert_eq!(fs.next(|_| true), Some(1));
        fs.unregister(1);
        let grants: Vec<u64> = (0..4).map(|_| fs.next(|_| true).unwrap()).collect();
        assert!(grants.iter().all(|g| *g == 2 || *g == 3), "{grants:?}");
        assert!(grants.contains(&2) && grants.contains(&3), "{grants:?}");
    }
}
