//! The shared worker pool: one event-loop thread, many campaigns.
//!
//! The pool thread owns every worker connection and every campaign's
//! round state. Campaign runner threads talk to it through
//! [`PoolHandle`]; each runner hands the GA engine a
//! [`CampaignDispatcher`] (an [`EvalDispatcher`]), whose `evaluate`
//! ships the round to the pool and blocks until every slot is scored.
//! Inside the pool, the single-campaign broker's defense stack is
//! replicated *per campaign*:
//!
//! * content-addressed jobs ([`genome_key`]) with per-campaign
//!   deterministic worker assignment (the campaign's own seed feeds the
//!   FNV hash, so its schedule matches its solo run's),
//! * per-`(worker, campaign)` in-flight windows — one tenant's
//!   backpressure never consumes another's window,
//! * dispatch leases, retry-with-requeue on worker loss, quarantine
//!   after the retry budget,
//! * cross-validation votes with byzantine eviction,
//! * a per-campaign write-ahead log (prefill served before dispatch),
//! * deterministic chaos injection at the wire boundary (the plan
//!   carries its own seed, so per-key fates match a solo run under the
//!   same plan).
//!
//! Which campaign dispatches next is decided by the
//! [`FairShare`](crate::scheduler::FairShare) arbiter — and by
//! construction none of that scheduling can reach any campaign's
//! results (see the crate docs).
//!
//! A worker is bound to one campaign's [`EvalContext`] at a time; the
//! pool re-sends `Setup` lazily, only when the next dispatch for that
//! worker belongs to a campaign whose context differs from the one the
//! worker currently holds. Setup frames are always written cleanly —
//! chaos applies to `Eval` frames only — so a worker's binding is never
//! ambiguous.
//!
//! When every campaign is between rounds the pool thread parks on its
//! event channel (a condvar wait) instead of polling the heartbeat
//! timer; any message wakes it, and on wake it refreshes worker
//! liveness clocks so a long park cannot read as mass worker death.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use audit_core::ga::{EvalDispatcher, Gene, Objectives};
use audit_core::resilient::genome_key;
use audit_core::ResilienceReport;
use audit_error::AuditError;
use audit_measure::fault::{mix, uniform, KeyHasher};
use audit_net::chaos::{Direction, FrameFate, NetFaultPlan};
use audit_net::frame::{write_corrupted_frame, write_frame};
use audit_net::metrics::Scrape;
use audit_net::proto::{EvalContext, Msg};
use audit_net::transport::Conn;
use audit_net::wal::{Prefill, Wal};

/// Stream discriminator for the cross-validation selection hash — the
/// same constant the single-campaign broker uses, so a campaign's
/// verified-job set matches its solo run's.
const STREAM_VERIFY: u64 = 0x5645_5246; // "VERF"

/// Pool tuning knobs: the single-campaign [`audit_net::BrokerConfig`]
/// minus the seed (each campaign brings its own). Results are invariant
/// to every one of them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Maximum in-flight evaluations per `(worker, campaign)` pair.
    pub window: usize,
    /// Idle interval between liveness pings while rounds are active.
    pub heartbeat: Duration,
    /// Worker silence threshold and dispatch lease duration.
    pub dead_after: Duration,
    /// Worker-loss re-dispatches allowed per job before quarantine.
    pub retries: u32,
    /// Fitness assigned to a job that exhausted its re-dispatch budget.
    pub quarantine_fitness: f64,
    /// Fraction of each campaign's jobs cross-validated on two workers.
    pub verify_fraction: f64,
    /// Deterministic network fault injection at the pool's wire
    /// boundary (Eval/Result frames only; Setup is always clean).
    pub chaos: NetFaultPlan,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            window: 2,
            heartbeat: Duration::from_millis(1000),
            dead_after: Duration::from_millis(10_000),
            retries: 4,
            quarantine_fitness: 0.0,
            verify_fraction: 0.0,
            chaos: NetFaultPlan::disabled(),
        }
    }
}

/// Everything the pool needs to run one campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Display name (used in status and metric labels).
    pub name: String,
    /// The evaluation context workers are set up with.
    pub ctx: EvalContext,
    /// The campaign's GA seed — feeds its worker-assignment and
    /// cross-validation hashes, exactly as in its solo run.
    pub seed: u64,
    /// Fair-share weight (≥ 1).
    pub weight: u32,
    /// Dispatch WAL path (`<checkpoint>.wal`); `None` disables
    /// write-ahead logging for this campaign.
    pub wal: Option<PathBuf>,
}

/// What one settled round hands back to the campaign's dispatcher.
pub(crate) struct RoundReply {
    scores: Vec<(usize, Objectives)>,
    report: ResilienceReport,
    workers: usize,
}

/// Messages into the pool thread, from worker connection threads (via
/// the service accept loop) and from campaign runner threads.
pub(crate) enum PoolMsg {
    /// A worker finished its handshake; the pool owns its writer half.
    Joined { worker: u64, writer: Conn },
    /// A result frame arrived from a worker.
    Result {
        worker: u64,
        id: u64,
        objectives: Objectives,
        resilience: ResilienceReport,
        cached: bool,
    },
    /// A liveness reply (or unsolicited ping) from a worker.
    Pong { worker: u64 },
    /// A worker's connection ended.
    Lost { worker: u64 },
    /// Register a campaign; replies with its id.
    Register {
        spec: Box<CampaignSpec>,
        reply: Sender<Result<u64, AuditError>>,
    },
    /// Score one round (generation) for a campaign.
    Evaluate {
        campaign: u64,
        population: Vec<Vec<Gene>>,
        jobs: Vec<usize>,
        reply: Sender<Result<RoundReply, AuditError>>,
    },
    /// Tear down a finished campaign; replies once it is gone.
    Finish {
        campaign: u64,
        discard_wal: bool,
        reply: Sender<ResilienceReport>,
    },
    /// Block the caller until `n` workers are connected.
    WaitWorkers { n: usize, reply: Sender<()> },
    /// Render the metrics scrape text.
    MetricsText { reply: Sender<String> },
    /// Render the status report text.
    StatusText { reply: Sender<String> },
    /// Release every worker and exit the pool thread.
    Shutdown,
}

/// A clonable sender into the pool thread.
#[derive(Clone)]
pub struct PoolHandle {
    tx: Sender<PoolMsg>,
}

impl PoolHandle {
    fn dead() -> AuditError {
        AuditError::io(
            "fleet pool",
            &std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pool thread terminated"),
        )
    }

    pub(crate) fn send(&self, msg: PoolMsg) -> bool {
        self.tx.send(msg).is_ok()
    }

    /// Registers a campaign and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Io`] if the pool thread is gone, or the
    /// campaign's WAL cannot be opened.
    pub fn register(&self, spec: CampaignSpec) -> Result<u64, AuditError> {
        let (reply, rx) = channel();
        self.tx
            .send(PoolMsg::Register {
                spec: Box::new(spec),
                reply,
            })
            .map_err(|_| Self::dead())?;
        rx.recv().map_err(|_| Self::dead())?
    }

    /// Builds the [`EvalDispatcher`] for a registered campaign.
    pub fn dispatcher(&self, campaign: u64) -> CampaignDispatcher {
        CampaignDispatcher {
            pool: self.clone(),
            campaign,
            report: ResilienceReport::default(),
            workers: 1,
        }
    }

    /// Tears down a finished campaign, returning its final resilience
    /// report. With `discard_wal` the campaign's WAL file is deleted
    /// (the run completed; the journal supersedes it) — otherwise it is
    /// kept for a future resume.
    pub fn finish(&self, campaign: u64, discard_wal: bool) -> ResilienceReport {
        let (reply, rx) = channel();
        if self
            .tx
            .send(PoolMsg::Finish {
                campaign,
                discard_wal,
                reply,
            })
            .is_err()
        {
            return ResilienceReport::default();
        }
        rx.recv().unwrap_or_default()
    }

    /// Blocks until at least `n` workers are connected.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Io`] if the pool thread is gone.
    pub fn wait_for_workers(&self, n: usize) -> Result<(), AuditError> {
        let (reply, rx) = channel();
        self.tx
            .send(PoolMsg::WaitWorkers { n, reply })
            .map_err(|_| Self::dead())?;
        rx.recv().map_err(|_| Self::dead())
    }

    /// The plain-text metrics scrape.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Io`] if the pool thread is gone.
    pub fn metrics_text(&self) -> Result<String, AuditError> {
        let (reply, rx) = channel();
        self.tx
            .send(PoolMsg::MetricsText { reply })
            .map_err(|_| Self::dead())?;
        rx.recv().map_err(|_| Self::dead())
    }

    /// The plain-text status report (per-campaign progress).
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Io`] if the pool thread is gone.
    pub fn status_text(&self) -> Result<String, AuditError> {
        let (reply, rx) = channel();
        self.tx
            .send(PoolMsg::StatusText { reply })
            .map_err(|_| Self::dead())?;
        rx.recv().map_err(|_| Self::dead())
    }
}

/// The pool thread's owner handle: spawns on [`Pool::start`], releases
/// workers and joins on [`Pool::shutdown`] (or drop).
pub struct Pool {
    handle: PoolHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawns the pool event-loop thread.
    pub fn start(cfg: FleetConfig) -> Pool {
        let (tx, rx) = channel();
        let thread = std::thread::spawn(move || PoolState::new(cfg, rx).run());
        Pool {
            handle: PoolHandle { tx },
            thread: Some(thread),
        }
    }

    /// A clonable sender into the pool thread.
    pub fn handle(&self) -> PoolHandle {
        self.handle.clone()
    }

    /// Releases every worker (a `Shutdown` frame each) and joins the
    /// pool thread. Idempotent; also called on drop.
    pub fn shutdown(&mut self) {
        self.handle.tx.send(PoolMsg::Shutdown).ok();
        if let Some(thread) = self.thread.take() {
            thread.join().ok();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The per-campaign [`EvalDispatcher`] handed to the GA engine: ships
/// each round to the pool thread and blocks until it settles.
pub struct CampaignDispatcher {
    pool: PoolHandle,
    campaign: u64,
    report: ResilienceReport,
    workers: usize,
}

impl EvalDispatcher for CampaignDispatcher {
    fn evaluate(
        &mut self,
        population: &[Vec<Gene>],
        jobs: &[usize],
    ) -> Result<Vec<(usize, Objectives)>, AuditError> {
        let (reply, rx) = channel();
        self.pool
            .tx
            .send(PoolMsg::Evaluate {
                campaign: self.campaign,
                population: population.to_vec(),
                jobs: jobs.to_vec(),
                reply,
            })
            .map_err(|_| PoolHandle::dead())?;
        let settled = rx.recv().map_err(|_| PoolHandle::dead())??;
        self.report = settled.report;
        self.workers = settled.workers;
        Ok(settled.scores)
    }

    fn workers(&self) -> usize {
        self.workers.max(1)
    }

    fn resilience(&self) -> ResilienceReport {
        self.report
    }
}

/// One connected worker, pool-side.
struct PWorker {
    writer: Conn,
    last_seen: Instant,
    /// In-flight evaluations per campaign (the per-tenant window).
    in_flight: HashMap<u64, usize>,
    /// The campaign context the worker is currently set up with
    /// (interned id), if any.
    ctx: Option<u64>,
    /// Results served (throughput metric).
    results: u64,
}

impl PWorker {
    fn in_flight_total(&self) -> usize {
        self.in_flight.values().sum()
    }
}

/// One queued dispatch copy.
#[derive(Debug, Clone, Copy)]
struct Pending {
    slot: usize,
    key: u64,
    attempt: u32,
    copy: u32,
}

struct InFlight {
    slot: usize,
    key: u64,
    attempt: u32,
    copy: u32,
    worker: u64,
    sent_at: Instant,
}

struct Vote {
    id: u64,
    worker: u64,
    objectives: Objectives,
    resilience: ResilienceReport,
}

struct KeyState {
    slot: usize,
    needed: usize,
    dispatched: u32,
    votes: Vec<Vote>,
}

/// One campaign's open round.
struct ActiveRound {
    population: Vec<Vec<Gene>>,
    target: usize,
    scores: Vec<(usize, Objectives)>,
    pending: VecDeque<Pending>,
    in_flight: HashMap<u64, InFlight>,
    keys: HashMap<u64, KeyState>,
    settled: HashSet<u64>,
    reply: Sender<Result<RoundReply, AuditError>>,
}

impl ActiveRound {
    fn outstanding(&self, key: u64) -> bool {
        self.pending.iter().any(|p| p.key == key)
            || self.in_flight.values().any(|j| j.key == key)
    }
}

/// One registered campaign.
struct Campaign {
    name: String,
    ctx: EvalContext,
    ctx_id: u64,
    fingerprint: u64,
    seed: u64,
    n_objectives: usize,
    wal: Option<Wal>,
    prefill: Prefill,
    report: ResilienceReport,
    round: Option<ActiveRound>,
    rounds_done: u64,
    quarantined: u64,
}

fn objective_bits(objectives: &Objectives) -> Vec<u64> {
    objectives.0.iter().map(|x| x.to_bits()).collect()
}

/// The pool thread's state. Single-threaded by construction: every
/// mutation happens on the event loop, so no counter here needs an
/// atomic and no map needs a lock.
struct PoolState {
    cfg: FleetConfig,
    rx: Receiver<PoolMsg>,
    workers: HashMap<u64, PWorker>,
    campaigns: HashMap<u64, Campaign>,
    scheduler: crate::scheduler::FairShare,
    /// Request id → owning campaign, for result routing.
    owner: HashMap<u64, u64>,
    next_req: u64,
    next_campaign: u64,
    ctx_intern: HashMap<String, u64>,
    waiters: Vec<(usize, Sender<()>)>,
    dispatches: u64,
    results: u64,
    cache_hits: u64,
    quarantined: u64,
    evictions: u64,
}

impl PoolState {
    fn new(cfg: FleetConfig, rx: Receiver<PoolMsg>) -> PoolState {
        PoolState {
            cfg,
            rx,
            workers: HashMap::new(),
            campaigns: HashMap::new(),
            scheduler: crate::scheduler::FairShare::new(),
            owner: HashMap::new(),
            next_req: 0,
            next_campaign: 0,
            ctx_intern: HashMap::new(),
            waiters: Vec::new(),
            dispatches: 0,
            results: 0,
            cache_hits: 0,
            quarantined: 0,
            evictions: 0,
        }
    }

    fn run(mut self) {
        loop {
            self.pump();
            // Idle parking: with every campaign between rounds there is
            // nothing in flight, no lease to expire, and no reason to
            // ping — block on the channel instead of spinning the
            // heartbeat timer.
            let parked = self.campaigns.values().all(|c| c.round.is_none());
            let msg = if parked {
                match self.rx.recv() {
                    Ok(msg) => Some(msg),
                    Err(_) => return,
                }
            } else {
                match self.rx.recv_timeout(self.cfg.heartbeat) {
                    Ok(msg) => Some(msg),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            };
            let Some(msg) = msg else {
                self.heartbeat_tick();
                continue;
            };
            if parked {
                // Waking from a possibly-long park: the liveness clocks
                // are stale, not the workers. Refresh before anything
                // can read the staleness as mass death.
                let now = Instant::now();
                for w in self.workers.values_mut() {
                    w.last_seen = now;
                }
            }
            if !self.handle(msg) {
                return;
            }
        }
    }

    /// Folds one message in; false means shutdown.
    fn handle(&mut self, msg: PoolMsg) -> bool {
        match msg {
            PoolMsg::Joined { worker, writer } => {
                self.workers.insert(
                    worker,
                    PWorker {
                        writer,
                        last_seen: Instant::now(),
                        in_flight: HashMap::new(),
                        ctx: None,
                        results: 0,
                    },
                );
                let live = self.workers.len();
                self.waiters.retain(|(n, reply)| {
                    if live >= *n {
                        reply.send(()).ok();
                        false
                    } else {
                        true
                    }
                });
            }
            PoolMsg::Pong { worker } => {
                if let Some(w) = self.workers.get_mut(&worker) {
                    w.last_seen = Instant::now();
                }
            }
            PoolMsg::Lost { worker } => self.lose_worker(worker),
            PoolMsg::Result {
                worker,
                id,
                objectives,
                resilience,
                cached,
            } => self.admit_result(worker, id, objectives, resilience, cached),
            PoolMsg::Register { spec, reply } => {
                let result = self.register(*spec);
                reply.send(result).ok();
            }
            PoolMsg::Evaluate {
                campaign,
                population,
                jobs,
                reply,
            } => self.start_round(campaign, population, jobs, reply),
            PoolMsg::Finish {
                campaign,
                discard_wal,
                reply,
            } => {
                self.scheduler.unregister(campaign);
                let report = match self.campaigns.remove(&campaign) {
                    Some(mut c) => {
                        if let Some(round) = c.round.take() {
                            round
                                .reply
                                .send(Err(AuditError::journal(
                                    0,
                                    "campaign finished with a round open",
                                )))
                                .ok();
                        }
                        if discard_wal {
                            if let Some(wal) = c.wal.take() {
                                wal.discard();
                            }
                        }
                        c.report
                    }
                    None => ResilienceReport::default(),
                };
                reply.send(report).ok();
            }
            PoolMsg::WaitWorkers { n, reply } => {
                if self.workers.len() >= n {
                    reply.send(()).ok();
                } else {
                    self.waiters.push((n, reply));
                }
            }
            PoolMsg::MetricsText { reply } => {
                let text = self.render_metrics();
                reply.send(text).ok();
            }
            PoolMsg::StatusText { reply } => {
                let text = self.render_status();
                reply.send(text).ok();
            }
            PoolMsg::Shutdown => {
                let frame = Msg::Shutdown.to_json();
                for w in self.workers.values_mut() {
                    write_frame(&mut w.writer, &frame).ok();
                    w.writer.shutdown();
                }
                for (_, c) in self.campaigns.iter_mut() {
                    if let Some(round) = c.round.take() {
                        round
                            .reply
                            .send(Err(AuditError::journal(0, "fleet pool shut down mid-round")))
                            .ok();
                    }
                }
                return false;
            }
        }
        true
    }

    fn register(&mut self, spec: CampaignSpec) -> Result<u64, AuditError> {
        let encoded = spec.ctx.to_json().encode();
        let next_ctx = self.ctx_intern.len() as u64;
        let ctx_id = *self.ctx_intern.entry(encoded).or_insert(next_ctx);
        let (wal, prefill) = match &spec.wal {
            Some(path) => {
                let (wal, prefill) = Wal::open(path)?;
                (Some(wal), prefill)
            }
            None => (None, HashMap::new()),
        };
        let id = self.next_campaign;
        self.next_campaign += 1;
        self.scheduler.register(id, spec.weight);
        self.campaigns.insert(
            id,
            Campaign {
                name: spec.name,
                fingerprint: spec.ctx.fingerprint(),
                n_objectives: spec.ctx.spec.objectives.len(),
                ctx: spec.ctx,
                ctx_id,
                seed: spec.seed,
                wal,
                prefill,
                report: ResilienceReport::default(),
                round: None,
                rounds_done: 0,
                quarantined: 0,
            },
        );
        Ok(id)
    }

    /// Opens a round: prefill is served immediately; the rest queues
    /// for fair-share dispatch. An all-prefilled round settles without
    /// touching a worker.
    fn start_round(
        &mut self,
        campaign: u64,
        population: Vec<Vec<Gene>>,
        jobs: Vec<usize>,
        reply: Sender<Result<RoundReply, AuditError>>,
    ) {
        let Some(c) = self.campaigns.get_mut(&campaign) else {
            reply
                .send(Err(AuditError::journal(0, "evaluate for unknown campaign")))
                .ok();
            return;
        };
        if c.round.is_some() {
            reply
                .send(Err(AuditError::journal(0, "campaign already has a round open")))
                .ok();
            return;
        }
        let verify_fraction = self.cfg.verify_fraction;
        let mut round = ActiveRound {
            target: jobs.len(),
            scores: Vec::with_capacity(jobs.len()),
            pending: VecDeque::new(),
            in_flight: HashMap::new(),
            keys: HashMap::new(),
            settled: HashSet::new(),
            reply,
            population,
        };
        for &slot in &jobs {
            let key = genome_key(&round.population[slot]);
            if let Some((objectives, delta)) = c.prefill.remove(&key) {
                c.report.merge(&delta);
                round.scores.push((slot, objectives));
                continue;
            }
            let needed = if verify_fraction > 0.0
                && uniform(mix(mix(c.seed, STREAM_VERIFY), key)) < verify_fraction
            {
                2
            } else {
                1
            };
            round.keys.insert(
                key,
                KeyState {
                    slot,
                    needed,
                    dispatched: needed as u32,
                    votes: Vec::new(),
                },
            );
            for copy in 0..needed as u32 {
                round.pending.push_back(Pending {
                    slot,
                    key,
                    attempt: 0,
                    copy,
                });
            }
        }
        c.round = Some(round);
        self.maybe_complete(campaign);
    }

    /// Settles a finished round: hands the scores (and the campaign's
    /// running resilience report) back to its dispatcher.
    fn maybe_complete(&mut self, campaign: u64) {
        let workers = self.workers.len().max(1);
        let Some(c) = self.campaigns.get_mut(&campaign) else {
            return;
        };
        if c.round.as_ref().is_some_and(|r| r.scores.len() >= r.target) {
            let round = c.round.take().expect("checked above");
            c.rounds_done += 1;
            round
                .reply
                .send(Ok(RoundReply {
                    scores: round.scores,
                    report: c.report,
                    workers,
                }))
                .ok();
        }
    }

    /// Fails a campaign's open round (WAL write error and the like).
    fn fail_round(&mut self, campaign: u64, err: AuditError) {
        if let Some(c) = self.campaigns.get_mut(&campaign) {
            if let Some(round) = c.round.take() {
                round.reply.send(Err(err)).ok();
            }
        }
    }

    /// Deterministic per-campaign worker choice: FNV over the
    /// campaign's `(seed, key, attempt, copy)` indexes the sorted
    /// live-worker list, probing linearly for a worker with window
    /// slack *for this campaign*.
    fn pick_worker(&self, campaign: u64, seed: u64, key: u64, attempt: u32, copy: u32) -> Option<u64> {
        let mut ids: Vec<u64> = self.workers.keys().copied().collect();
        ids.sort_unstable();
        if ids.is_empty() {
            return None;
        }
        let mut h = KeyHasher::new();
        h.write_u64(seed)
            .write_u64(key)
            .write_u64(u64::from(attempt))
            .write_u64(u64::from(copy));
        let start = (h.finish() % ids.len() as u64) as usize;
        for probe in 0..ids.len() {
            let id = ids[(start + probe) % ids.len()];
            let used = self.workers[&id].in_flight.get(&campaign).copied().unwrap_or(0);
            if used < self.cfg.window.max(1) {
                return Some(id);
            }
        }
        None
    }

    /// True when `campaign` could usefully receive a dispatch grant
    /// right now.
    fn runnable(&self, campaign: u64) -> bool {
        let Some(c) = self.campaigns.get(&campaign) else {
            return false;
        };
        let Some(round) = c.round.as_ref() else {
            return false;
        };
        let Some(front) = round.pending.front() else {
            return false;
        };
        front.attempt > self.cfg.retries
            || self
                .pick_worker(campaign, c.seed, front.key, front.attempt, front.copy)
                .is_some()
    }

    /// The fair-share dispatch loop: grant one dispatch at a time to
    /// the arbiter's pick until nothing is runnable.
    fn pump(&mut self) {
        loop {
            let runnable: HashSet<u64> = self
                .campaigns
                .keys()
                .copied()
                .filter(|&cid| self.runnable(cid))
                .collect();
            if runnable.is_empty() {
                return;
            }
            let mut scheduler = std::mem::take(&mut self.scheduler);
            let grant = scheduler.next(|id| runnable.contains(&id));
            self.scheduler = scheduler;
            let Some(cid) = grant else {
                return;
            };
            if let Err(e) = self.dispatch_one(cid) {
                self.fail_round(cid, e);
            }
        }
    }

    /// Dispatches (or quarantines) one pending copy for `campaign`.
    fn dispatch_one(&mut self, campaign: u64) -> Result<(), AuditError> {
        let (front, seed, ctx_id) = {
            let Some(c) = self.campaigns.get(&campaign) else {
                return Ok(());
            };
            let Some(round) = c.round.as_ref() else {
                return Ok(());
            };
            let Some(&front) = round.pending.front() else {
                return Ok(());
            };
            (front, c.seed, c.ctx_id)
        };
        if front.attempt > self.cfg.retries {
            if let Some(c) = self.campaigns.get_mut(&campaign) {
                if let Some(round) = c.round.as_mut() {
                    round.pending.pop_front();
                }
            }
            self.quarantine_key(campaign, front.slot, front.key)?;
            return Ok(());
        }
        let Some(worker) =
            self.pick_worker(campaign, seed, front.key, front.attempt, front.copy)
        else {
            return Ok(());
        };
        // Lazy setup: bind the worker to this campaign's context if it
        // holds a different one. Setup frames are never chaos-injected;
        // a failed write is a worker loss (nothing dispatched yet).
        if self.workers[&worker].ctx != Some(ctx_id) {
            let ctx = self.campaigns[&campaign].ctx.clone();
            let w = self.workers.get_mut(&worker).expect("picked worker live");
            if write_frame(&mut w.writer, &Msg::Setup { ctx }.to_json()).is_err() {
                self.lose_worker(worker);
                return Ok(());
            }
            w.ctx = Some(ctx_id);
        }
        // Commit: pop the job, log, send.
        let Pending {
            slot,
            key,
            attempt,
            copy,
        } = front;
        let genome = {
            let c = self.campaigns.get_mut(&campaign).expect("campaign live");
            let round = c.round.as_mut().expect("round open");
            round.pending.pop_front();
            let genome = round.population[slot].clone();
            if let Some(wal) = &mut c.wal {
                wal.log_dispatch(key, slot, attempt)?;
            }
            genome
        };
        let id = self.next_req;
        self.next_req += 1;
        self.dispatches += 1;
        let fate = self.cfg.chaos.frame_fate(Direction::Outbound, key, attempt, copy);
        let flip = self.cfg.chaos.corrupt_bit(Direction::Outbound, key, attempt, copy);
        let write = if fate == FrameFate::Drop {
            // The network ate the frame; the dispatch lease recovers
            // the job.
            Ok(())
        } else {
            let frame = Msg::Eval { id, genome }.to_json();
            let w = self.workers.get_mut(&worker).expect("picked worker live");
            match fate {
                FrameFate::Corrupt => write_corrupted_frame(&mut w.writer, &frame, flip),
                FrameFate::Duplicate => write_frame(&mut w.writer, &frame)
                    .and_then(|()| write_frame(&mut w.writer, &frame)),
                _ => write_frame(&mut w.writer, &frame),
            }
        };
        match write {
            Ok(()) => {
                let w = self.workers.get_mut(&worker).expect("live");
                *w.in_flight.entry(campaign).or_insert(0) += 1;
                self.owner.insert(id, campaign);
                let c = self.campaigns.get_mut(&campaign).expect("campaign live");
                let round = c.round.as_mut().expect("round open");
                round.in_flight.insert(
                    id,
                    InFlight {
                        slot,
                        key,
                        attempt,
                        copy,
                        worker,
                        sent_at: Instant::now(),
                    },
                );
            }
            Err(_) => {
                // The write failing IS the loss signal; this job was
                // never sent, so requeue it at the same attempt.
                let c = self.campaigns.get_mut(&campaign).expect("campaign live");
                let round = c.round.as_mut().expect("round open");
                round.pending.push_front(Pending {
                    slot,
                    key,
                    attempt,
                    copy,
                });
                self.lose_worker(worker);
            }
        }
        Ok(())
    }

    /// Admits one result frame: chaos at the inbound boundary, then
    /// vote accounting for the owning campaign.
    fn admit_result(
        &mut self,
        worker: u64,
        id: u64,
        objectives: Objectives,
        resilience: ResilienceReport,
        cached: bool,
    ) {
        if cached {
            self.cache_hits += 1;
        }
        let Some(&campaign) = self.owner.get(&id) else {
            // Retired request id: replay or superseded dispatch. Keep
            // the liveness signal only.
            if let Some(w) = self.workers.get_mut(&worker) {
                w.last_seen = Instant::now();
            }
            return;
        };
        let Some((key, attempt, copy)) = self
            .campaigns
            .get(&campaign)
            .and_then(|c| c.round.as_ref())
            .and_then(|r| r.in_flight.get(&id))
            .map(|j| (j.key, j.attempt, j.copy))
        else {
            self.owner.remove(&id);
            if let Some(w) = self.workers.get_mut(&worker) {
                w.last_seen = Instant::now();
            }
            return;
        };
        // Chaos: the worker stalls instead of answering.
        if self.cfg.chaos.stalls(key, attempt, copy) {
            self.lose_worker(worker);
            return;
        }
        // Chaos: the result frame is lost or CRC-rejected on the wire;
        // the dispatch lease recovers the job.
        let fate = self.cfg.chaos.frame_fate(Direction::Inbound, key, attempt, copy);
        if matches!(fate, FrameFate::Drop | FrameFate::Corrupt) {
            return;
        }
        if let Some(w) = self.workers.get_mut(&worker) {
            w.last_seen = Instant::now();
            w.results += 1;
            if let Some(used) = w.in_flight.get_mut(&campaign) {
                *used = used.saturating_sub(1);
            }
        }
        self.owner.remove(&id);
        let job = {
            let c = self.campaigns.get_mut(&campaign).expect("owner maps live campaign");
            let round = c.round.as_mut().expect("checked above");
            round.in_flight.remove(&id).expect("checked above")
        };
        self.results += 1;
        // Chaos: a byzantine worker's answer is perturbed in the low
        // mantissa bits — plausible but wrong.
        let mut objectives = objectives;
        let mask = self.cfg.chaos.lie_mask(key, attempt, copy);
        if mask != 0 {
            if let Some(primary) = objectives.0.first_mut() {
                *primary = f64::from_bits(primary.to_bits() ^ mask);
            }
        }
        if let Err(e) = self.register_vote(campaign, &job, id, objectives.clone(), resilience) {
            self.fail_round(campaign, e);
            return;
        }
        if fate == FrameFate::Duplicate {
            if let Err(e) = self.register_vote(campaign, &job, id, objectives, resilience) {
                self.fail_round(campaign, e);
                return;
            }
        }
        self.maybe_complete(campaign);
    }

    /// Folds one answer into its job's vote set; settles on enough
    /// bit-identical votes, evicting disagreeing (byzantine) voters.
    fn register_vote(
        &mut self,
        campaign: u64,
        job: &InFlight,
        id: u64,
        objectives: Objectives,
        resilience: ResilienceReport,
    ) -> Result<(), AuditError> {
        let mut evicted: Vec<u64> = Vec::new();
        {
            let Some(c) = self.campaigns.get_mut(&campaign) else {
                return Ok(());
            };
            let Some(round) = c.round.as_mut() else {
                return Ok(());
            };
            if round.settled.contains(&job.key) {
                return Ok(());
            }
            let Some(state) = round.keys.get_mut(&job.key) else {
                return Ok(());
            };
            if state.votes.iter().any(|v| v.id == id) {
                return Ok(());
            }
            state.votes.push(Vote {
                id,
                worker: job.worker,
                objectives,
                resilience,
            });
            let needed = state.needed;
            let winner = state.votes.iter().position(|v| {
                let bits = objective_bits(&v.objectives);
                state
                    .votes
                    .iter()
                    .filter(|o| objective_bits(&o.objectives) == bits)
                    .count()
                    >= needed
            });
            match winner {
                Some(idx) => {
                    let win_bits = objective_bits(&state.votes[idx].objectives);
                    let verdict = state.votes[idx].objectives.clone();
                    let delta = state.votes[idx].resilience;
                    let slot = state.slot;
                    evicted = state
                        .votes
                        .iter()
                        .filter(|v| objective_bits(&v.objectives) != win_bits)
                        .map(|v| v.worker)
                        .collect();
                    evicted.sort_unstable();
                    evicted.dedup();
                    round.keys.remove(&job.key);
                    round.settled.insert(job.key);
                    if let Some(wal) = &mut c.wal {
                        wal.log_result(job.key, &verdict, &delta)?;
                    }
                    c.report.merge(&delta);
                    round
                        .scores
                        .push((slot, verdict));
                }
                None => {
                    // All copies answered and still no agreement: break
                    // the tie with a fresh dispatch.
                    if !round.outstanding(job.key) {
                        let state = round.keys.get_mut(&job.key).expect("no winner, still open");
                        let copy = state.dispatched;
                        state.dispatched += 1;
                        round.pending.push_front(Pending {
                            slot: job.slot,
                            key: job.key,
                            attempt: job.attempt,
                            copy,
                        });
                    }
                }
            }
        }
        for loser in evicted {
            self.evict_worker(campaign, loser, job.key)?;
        }
        Ok(())
    }

    /// Evicts a worker caught lying on `key` (WAL evidence in the
    /// catching campaign, then severed like a lost worker — its
    /// in-flight jobs across *every* campaign are requeued).
    fn evict_worker(&mut self, campaign: u64, worker: u64, key: u64) -> Result<(), AuditError> {
        let quarantined = self
            .campaigns
            .values()
            .filter_map(|c| c.round.as_ref())
            .flat_map(|r| r.in_flight.values())
            .filter(|j| j.worker == worker)
            .count() as u64;
        if let Some(c) = self.campaigns.get_mut(&campaign) {
            if let Some(wal) = &mut c.wal {
                wal.log_worker_evicted(worker, key, quarantined)?;
            }
        }
        self.evictions += 1;
        self.lose_worker(worker);
        Ok(())
    }

    /// Scores a job that exhausted its retry budget like a quarantined
    /// candidate, logging the verdict so a resume does not retry it.
    fn quarantine_key(&mut self, campaign: u64, slot: usize, key: u64) -> Result<(), AuditError> {
        let quarantine_fitness = self.cfg.quarantine_fitness;
        {
            let Some(c) = self.campaigns.get_mut(&campaign) else {
                return Ok(());
            };
            let Some(round) = c.round.as_mut() else {
                return Ok(());
            };
            if round.settled.contains(&key) {
                return Ok(());
            }
            round.settled.insert(key);
            round.keys.remove(&key);
            round.pending.retain(|p| p.key != key);
            let delta = ResilienceReport {
                evaluations: 1,
                retries: 0,
                quarantined: 1,
                backoff_cycles: 0,
            };
            let verdict = Objectives(vec![quarantine_fitness; c.n_objectives.max(1)]);
            if let Some(wal) = &mut c.wal {
                wal.log_result(key, &verdict, &delta)?;
            }
            c.report.merge(&delta);
            c.quarantined += 1;
            round.scores.push((slot, verdict));
        }
        self.quarantined += 1;
        self.maybe_complete(campaign);
        Ok(())
    }

    /// Removes a worker and requeues its in-flight jobs — in every
    /// campaign — at the next attempt.
    fn lose_worker(&mut self, worker: u64) {
        if let Some(w) = self.workers.remove(&worker) {
            w.writer.shutdown();
        }
        for c in self.campaigns.values_mut() {
            let Some(round) = c.round.as_mut() else {
                continue;
            };
            let orphaned: Vec<u64> = round
                .in_flight
                .iter()
                .filter(|(_, j)| j.worker == worker)
                .map(|(&id, _)| id)
                .collect();
            for id in orphaned {
                let job = round.in_flight.remove(&id).expect("orphan id present");
                self.owner.remove(&id);
                round.pending.push_front(Pending {
                    slot: job.slot,
                    key: job.key,
                    attempt: job.attempt + 1,
                    copy: job.copy,
                });
            }
        }
    }

    /// Lease expiry, liveness pings, silent-worker collection.
    fn heartbeat_tick(&mut self) {
        for (&cid, c) in self.campaigns.iter_mut() {
            let Some(round) = c.round.as_mut() else {
                continue;
            };
            let expired: Vec<u64> = round
                .in_flight
                .iter()
                .filter(|(_, j)| j.sent_at.elapsed() >= self.cfg.dead_after)
                .map(|(&id, _)| id)
                .collect();
            for id in expired {
                let job = round.in_flight.remove(&id).expect("expired id present");
                self.owner.remove(&id);
                // Free the lapsed job's window slot: the worker may be
                // alive but slow, and its window must not leak.
                if let Some(w) = self.workers.get_mut(&job.worker) {
                    if let Some(used) = w.in_flight.get_mut(&cid) {
                        *used = used.saturating_sub(1);
                    }
                }
                round.pending.push_front(Pending {
                    slot: job.slot,
                    key: job.key,
                    attempt: job.attempt + 1,
                    copy: job.copy,
                });
            }
        }
        let ping = Msg::Ping.to_json();
        let mut lost: Vec<u64> = Vec::new();
        for (&id, w) in self.workers.iter_mut() {
            if w.last_seen.elapsed() >= self.cfg.dead_after
                || write_frame(&mut w.writer, &ping).is_err()
            {
                lost.push(id);
            }
        }
        for id in lost {
            self.lose_worker(id);
        }
    }

    fn render_metrics(&self) -> String {
        let queue_depth: u64 = self
            .campaigns
            .values()
            .filter_map(|c| c.round.as_ref())
            .map(|r| r.pending.len() as u64)
            .sum();
        let mut s = Scrape::new();
        s.comment("audit fleet metrics");
        s.sample("audit_fleet_workers", self.workers.len() as u64);
        s.sample("audit_fleet_campaigns", self.campaigns.len() as u64);
        s.sample("audit_fleet_dispatches_total", self.dispatches);
        s.sample("audit_fleet_results_total", self.results);
        s.sample("audit_fleet_cache_hits_total", self.cache_hits);
        s.sample("audit_fleet_quarantined_total", self.quarantined);
        s.sample("audit_fleet_worker_evictions_total", self.evictions);
        s.sample("audit_fleet_queue_depth", queue_depth);
        let mut worker_ids: Vec<u64> = self.workers.keys().copied().collect();
        worker_ids.sort_unstable();
        for id in worker_ids {
            let w = &self.workers[&id];
            let label = id.to_string();
            s.labelled(
                "audit_fleet_worker_results_total",
                &[("worker", &label)],
                w.results,
            );
            s.labelled(
                "audit_fleet_worker_in_flight",
                &[("worker", &label)],
                w.in_flight_total() as u64,
            );
        }
        let mut campaign_ids: Vec<u64> = self.campaigns.keys().copied().collect();
        campaign_ids.sort_unstable();
        for id in campaign_ids {
            let c = &self.campaigns[&id];
            let labels = [("campaign", c.name.as_str())];
            s.labelled("audit_fleet_campaign_rounds_total", &labels, c.rounds_done);
            s.labelled(
                "audit_fleet_campaign_queue_depth",
                &labels,
                c.round.as_ref().map_or(0, |r| r.pending.len() as u64),
            );
            s.labelled(
                "audit_fleet_campaign_quarantined_total",
                &labels,
                c.quarantined,
            );
        }
        s.render()
    }

    fn render_status(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet: {} worker(s), {} campaign(s)\n",
            self.workers.len(),
            self.campaigns.len()
        ));
        let mut ids: Vec<u64> = self.campaigns.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let c = &self.campaigns[&id];
            let state = match &c.round {
                Some(r) => format!(
                    "round open ({}/{} scored, {} pending, {} in flight)",
                    r.scores.len(),
                    r.target,
                    r.pending.len(),
                    r.in_flight.len()
                ),
                None => "between rounds".to_string(),
            };
            out.push_str(&format!(
                "campaign {id} `{name}`: {rounds} round(s) done, {state}, ctx {fp:016x}\n",
                name = c.name,
                rounds = c.rounds_done,
                fp = c.fingerprint,
            ));
        }
        out
    }
}
