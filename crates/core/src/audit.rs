//! The top-level AUDIT driver (paper Fig. 5, §3.C).
//!
//! Ties the pieces together exactly as the paper describes:
//!
//! 1. sweep for the platform's resonance frequency,
//! 2. size the stressmark loop to that period, split the high-power
//!    region into `S` replicated sub-blocks of `K` cycles,
//! 3. evolve the sub-block with the GA against the hardware-path
//!    measurement loop (threads spread across modules, aligned as the
//!    dithering algorithm guarantees),
//! 4. emit the winning kernel as a named stressmark (A-Res, A-Ex,
//!    A-Res-8T, A-Res-Th — the name reflects the configuration it was
//!    trained for).

use audit_cpu::{Opcode, Program};
use audit_error::AuditError;
use audit_stressmark::Kernel;
use serde::{Deserialize, Serialize};

use crate::ga::{self, CostFunction, GaConfig, GaRun, Gene, Objective, ObjectiveSet, Objectives};
use crate::harness::{MeasureSpec, Measurement, Rig};
use crate::journal::{Journal, JournalRecord, JournalSink, NullSink};
use crate::resilient::{self, MeasurePolicy, ResilienceLog, ResilienceReport};
use crate::resonance::{self, ResonanceResult};

/// Options for a generation run.
///
/// Prefer [`AuditOptions::builder`] (or the [`AuditOptions::paper`] /
/// [`AuditOptions::fast_demo`] presets) over struct-literal
/// construction: the builder rejects option sets the driver cannot run
/// (an empty resonance sweep, a zero-length sub-block, a degenerate GA
/// configuration), while a hand-rolled literal skips validation
/// entirely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditOptions {
    /// GA hyper-parameters.
    pub ga: GaConfig,
    /// Cost function to maximize.
    pub cost: CostFunction,
    /// Sub-block length `K` in cycles (paper example: K = 6).
    pub sub_block_cycles: u32,
    /// Resonance sweep grid (loop periods in cycles).
    pub resonance_periods: Vec<u32>,
    /// Measurement spec for fitness evaluations.
    pub eval_spec: MeasureSpec,
    /// Quiet region of excitation stressmarks, in cycles.
    pub excitation_quiet_cycles: u32,
    /// Resilience policy for fitness evaluations (fault injection,
    /// repeat-median, retry, watchdog). The default no-op policy keeps
    /// the plain measurement path and bit-identical results.
    pub policy: MeasurePolicy,
    /// Genomes co-simulated per batched sweep of the full simulator
    /// (`1` = the classic one-genome-at-a-time path). When the
    /// resilience policy is the no-op default and this is above 1,
    /// fitness evaluation routes through
    /// [`Rig::measure_batch`](crate::harness::Rig::measure_batch) via a
    /// [`ga::BatchLocalDispatcher`]: each worker pops a chunk of this
    /// many genomes and steps their simulators in lockstep, amortizing
    /// loop bookkeeping across the chunk. Purely a wall-clock knob —
    /// lanes are fully independent, so results, journal bytes, and
    /// cache state are bit-identical to the unbatched path (see
    /// docs/SIMULATION.md).
    #[serde(default = "default_eval_batch")]
    pub eval_batch: usize,
    /// Objective axes the GA optimizes, always evaluated in canonical
    /// droop → power → margin order (see [`ObjectiveSet`]). The default
    /// is the paper's scalar droop objective; selecting more than one
    /// axis is only meaningful together with [`GaConfig::pareto`] —
    /// use [`AuditOptions::with_objectives`], which keeps the two in
    /// sync.
    #[serde(default)]
    pub objectives: ObjectiveSet,
}

/// Serde default for [`AuditOptions::eval_batch`]: options serialized
/// before the batched path existed deserialize to the classic
/// one-genome-at-a-time behavior. (Unreferenced under the offline
/// no-op serde derive stub, hence the allow.)
#[allow(dead_code)]
fn default_eval_batch() -> usize {
    1
}

impl AuditOptions {
    /// Starts a validated builder seeded from
    /// [`AuditOptions::fast_demo`]. See [`AuditOptionsBuilder`].
    pub fn builder() -> AuditOptionsBuilder {
        AuditOptionsBuilder {
            opts: AuditOptions::fast_demo(),
        }
    }

    /// Checks the invariants the driver relies on.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::InvalidConfig`] if the resonance sweep is
    /// empty or contains a period below 2 cycles, the sub-block or
    /// excitation quiet region is zero-length, or the GA configuration
    /// or evaluation spec is itself invalid.
    pub fn validate(&self) -> Result<(), AuditError> {
        self.ga.validate()?;
        self.eval_spec.validate()?;
        self.policy.validate()?;
        if self.sub_block_cycles == 0 {
            return Err(AuditError::invalid(
                "AuditOptions",
                "sub_block_cycles",
                "sub-block length K must be at least one cycle",
            ));
        }
        if self.resonance_periods.is_empty() {
            return Err(AuditError::invalid(
                "AuditOptions",
                "resonance_periods",
                "resonance sweep needs at least one period",
            ));
        }
        if let Some(&p) = self.resonance_periods.iter().find(|&&p| p < 2) {
            return Err(AuditError::invalid(
                "AuditOptions",
                "resonance_periods",
                format!("sweep period must be at least 2 cycles (got {p})"),
            ));
        }
        if self.excitation_quiet_cycles == 0 {
            return Err(AuditError::invalid(
                "AuditOptions",
                "excitation_quiet_cycles",
                "excitation quiet region must be at least one cycle",
            ));
        }
        if self.eval_batch == 0 {
            return Err(AuditError::invalid(
                "AuditOptions",
                "eval_batch",
                "evaluation batch width must be at least 1 (1 = unbatched)",
            ));
        }
        if self.objectives.is_empty() {
            return Err(AuditError::invalid(
                "AuditOptions",
                "objectives",
                "need at least one objective axis",
            ));
        }
        if self.ga.pareto && self.objectives.is_scalar() {
            return Err(AuditError::invalid(
                "AuditOptions",
                "objectives",
                "pareto mode needs at least two objective axes",
            ));
        }
        Ok(())
    }

    /// Paper-scale configuration (hours of simulated search in the
    /// original; minutes here).
    pub fn paper() -> Self {
        AuditOptions {
            ga: GaConfig {
                stall_generations: 12,
                ..GaConfig::default()
            },
            cost: CostFunction::MaxDroop,
            sub_block_cycles: 6,
            resonance_periods: resonance::default_periods().collect(),
            eval_spec: MeasureSpec::ga_eval(),
            excitation_quiet_cycles: 200,
            policy: MeasurePolicy::disabled(),
            eval_batch: 1,
            objectives: ObjectiveSet::scalar_droop(),
        }
    }

    /// A small configuration for tests and examples: converges in
    /// seconds while exercising every code path.
    pub fn fast_demo() -> Self {
        AuditOptions {
            ga: GaConfig {
                population: 8,
                generations: 6,
                stall_generations: 6,
                ..GaConfig::default()
            },
            cost: CostFunction::MaxDroop,
            sub_block_cycles: 6,
            resonance_periods: (16..=48).step_by(8).collect(),
            eval_spec: MeasureSpec::ga_eval(),
            excitation_quiet_cycles: 150,
            policy: MeasurePolicy::disabled(),
            eval_batch: 1,
            objectives: ObjectiveSet::scalar_droop(),
        }
    }

    /// Replaces the cost function.
    pub fn with_cost(mut self, cost: CostFunction) -> Self {
        self.cost = cost;
        self
    }

    /// Replaces the GA seed (for convergence statistics).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.ga.seed = seed;
        self
    }

    /// Sets the GA fitness-evaluation worker count (`0` = all available
    /// cores). Never changes results — see the determinism contract in
    /// [`crate::ga::engine`].
    pub fn with_eval_threads(mut self, threads: usize) -> Self {
        self.ga.threads = threads;
        self
    }

    /// Replaces the resilience policy (fault injection, repeat-median,
    /// retry, watchdog). Never changes results across worker counts —
    /// fault schedules are content-addressed per candidate.
    pub fn with_policy(mut self, policy: MeasurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the batched-evaluation chunk width (`1` = unbatched). Never
    /// changes results — see [`AuditOptions::eval_batch`].
    pub fn with_eval_batch(mut self, batch: usize) -> Self {
        self.eval_batch = batch;
        self
    }

    /// Sets the evaluation cascade's fast-tier budget (`0` = cascade
    /// off): at most this many candidates per generation reach the full
    /// simulator; the rest are pruned by the analytic fast tier. See
    /// [`GaConfig::fast_tier_budget`].
    pub fn with_fast_tier_budget(mut self, budget: usize) -> Self {
        self.ga.fast_tier_budget = budget;
        self
    }

    /// Replaces the objective axes and keeps [`GaConfig::pareto`] in
    /// sync: more than one axis switches the GA into Pareto-front mode,
    /// a single axis switches it back to the scalar engine. Scalar
    /// results are unchanged by this call when the set stays
    /// droop-only.
    pub fn with_objectives(mut self, objectives: ObjectiveSet) -> Self {
        self.objectives = objectives;
        self.ga.pareto = !objectives.is_scalar();
        self
    }
}

/// Validated builder for [`AuditOptions`].
///
/// Starts from the [`AuditOptions::fast_demo`] preset and rejects
/// unrunnable option sets at [`build`](AuditOptionsBuilder::build)
/// time, so an empty resonance sweep or a zero-length sub-block never
/// reaches the driver.
///
/// # Example
///
/// ```
/// use audit_core::audit::AuditOptions;
/// use audit_core::ga::CostFunction;
///
/// let opts = AuditOptions::builder()
///     .cost(CostFunction::MaxDroop)
///     .sub_block_cycles(8)
///     .resonance_periods((16..=48).step_by(8))
///     .build()
///     .unwrap();
/// assert_eq!(opts.sub_block_cycles, 8);
/// assert!(AuditOptions::builder().resonance_periods([]).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct AuditOptionsBuilder {
    opts: AuditOptions,
}

impl AuditOptionsBuilder {
    /// Sets the GA hyper-parameters. Checked by
    /// [`GaConfig::validate`] at build.
    pub fn ga(mut self, ga: GaConfig) -> Self {
        self.opts.ga = ga;
        self
    }

    /// Sets the cost function to maximize.
    pub fn cost(mut self, cost: CostFunction) -> Self {
        self.opts.cost = cost;
        self
    }

    /// Sets the sub-block length `K` in cycles. Must be non-zero at
    /// build.
    pub fn sub_block_cycles(mut self, cycles: u32) -> Self {
        self.opts.sub_block_cycles = cycles;
        self
    }

    /// Sets the resonance sweep grid. Must be non-empty with every
    /// period at least 2 cycles at build.
    pub fn resonance_periods(mut self, periods: impl IntoIterator<Item = u32>) -> Self {
        self.opts.resonance_periods = periods.into_iter().collect();
        self
    }

    /// Sets the measurement spec for fitness evaluations. Checked by
    /// [`MeasureSpec::validate`] at build.
    pub fn eval_spec(mut self, spec: MeasureSpec) -> Self {
        self.opts.eval_spec = spec;
        self
    }

    /// Sets the quiet region of excitation stressmarks, in cycles. Must
    /// be non-zero at build.
    pub fn excitation_quiet_cycles(mut self, cycles: u32) -> Self {
        self.opts.excitation_quiet_cycles = cycles;
        self
    }

    /// Sets the GA seed (convenience mirror of
    /// [`AuditOptions::with_seed`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.opts.ga.seed = seed;
        self
    }

    /// Sets the resilience policy. Checked by
    /// [`MeasurePolicy::validate`] at build.
    pub fn policy(mut self, policy: MeasurePolicy) -> Self {
        self.opts.policy = policy;
        self
    }

    /// Sets the batched-evaluation chunk width. Must be at least 1 at
    /// build (convenience mirror of [`AuditOptions::with_eval_batch`]).
    pub fn eval_batch(mut self, batch: usize) -> Self {
        self.opts.eval_batch = batch;
        self
    }

    /// Sets the cascade's fast-tier budget (convenience mirror of
    /// [`AuditOptions::with_fast_tier_budget`]).
    pub fn fast_tier_budget(mut self, budget: usize) -> Self {
        self.opts.ga.fast_tier_budget = budget;
        self
    }

    /// Sets the objective axes, keeping [`GaConfig::pareto`] in sync
    /// (convenience mirror of [`AuditOptions::with_objectives`]).
    pub fn objectives(mut self, objectives: ObjectiveSet) -> Self {
        self.opts = self.opts.with_objectives(objectives);
        self
    }

    /// Validates and returns the options.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::InvalidConfig`] under the conditions listed
    /// on [`AuditOptions::validate`].
    pub fn build(self) -> Result<AuditOptions, AuditError> {
        self.opts.validate()?;
        Ok(self.opts)
    }
}

/// A generated stressmark plus the evidence trail that produced it.
#[derive(Debug, Clone)]
pub struct StressmarkRun {
    /// Stressmark name ("A-Res", "A-Ex", …).
    pub name: String,
    /// The structured kernel (needed for dithering and NOP analysis).
    pub kernel: Kernel,
    /// The flattened executable program.
    pub program: Program,
    /// Fitness of the winning genome under the configured cost.
    pub best_fitness: f64,
    /// Droop of the winner during its final evaluation, volts.
    pub best_droop: f64,
    /// The resonance sweep used (excitation runs carry one too, for the
    /// record, even though they do not loop at the resonance).
    pub resonance: ResonanceResult,
    /// Full GA convergence record.
    pub ga: GaRun,
    /// Threads the stressmark was trained with.
    pub threads: usize,
    /// Resilience counters for the run's fitness evaluations (all
    /// zeros when the policy is the default no-op).
    pub resilience: ResilienceReport,
}

/// The AUDIT framework bound to a measurement rig.
///
/// # Example
///
/// ```no_run
/// use audit_core::audit::{Audit, AuditOptions};
/// use audit_core::harness::Rig;
///
/// let audit = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
/// let a_res = audit.generate_resonant(4);
/// assert!(a_res.best_droop > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Audit {
    rig: Rig,
    opts: AuditOptions,
}

impl Audit {
    /// Binds AUDIT to a rig.
    pub fn new(rig: Rig, opts: AuditOptions) -> Self {
        Audit { rig, opts }
    }

    /// The measurement rig in use.
    pub fn rig(&self) -> &Rig {
        &self.rig
    }

    /// The options in use.
    pub fn options(&self) -> &AuditOptions {
        &self.opts
    }

    /// The opcode menu offered to the GA: the full stress menu, minus
    /// FMA-class ops when the rig's chip lacks them (§5.C — AUDIT adapts
    /// to the processor automatically).
    pub fn opcode_menu(&self) -> Vec<Opcode> {
        Opcode::stress_menu()
            .into_iter()
            .filter(|op| self.rig.chip.supports_fma || !op.props().needs_fma)
            .collect()
    }

    /// Step 1: find the platform's resonant loop period (§3).
    pub fn find_resonance(&self, threads: usize) -> ResonanceResult {
        resonance::find_resonance(
            &self.rig,
            threads,
            self.opts.resonance_periods.iter().copied(),
            self.opts.eval_spec,
        )
    }

    /// Like [`Audit::generate_resonant`], with the initial population
    /// additionally seeded from existing programs (paper §3: seeding
    /// "with existing benchmarks or stressmarks to improve the
    /// convergence rate"). Each program's leading instructions become
    /// one sub-block genome.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or exceeds the rig's chip.
    pub fn generate_resonant_seeded(
        &self,
        threads: usize,
        seed_programs: &[Program],
    ) -> StressmarkRun {
        let genome_len =
            self.opts.sub_block_cycles as usize * self.rig.chip.core.fetch_width as usize;
        let seeds: Vec<Vec<Gene>> = seed_programs
            .iter()
            .map(|p| ga::genome::from_program(p, genome_len))
            .collect();
        let resonance = self.find_resonance(threads);
        let (s, lp_slots) = self.resonant_shape(resonance.period_cycles);
        let name = format!("A-Res-{threads}T-seeded");
        self.evolve_kernel_with_seeds(&name, threads, s, lp_slots, resonance, false, &seeds)
    }

    /// Generates a first-droop *resonant* stressmark (A-Res family) for
    /// `threads` homogeneous threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or exceeds the rig's chip.
    pub fn generate_resonant(&self, threads: usize) -> StressmarkRun {
        let resonance = self.find_resonance(threads);
        let (s, lp_slots) = self.resonant_shape(resonance.period_cycles);
        let name = format!("A-Res-{threads}T");
        self.evolve_kernel_with(&name, threads, s, lp_slots, resonance, false)
    }

    /// [`Audit::generate_resonant`], checkpointed to a run journal.
    ///
    /// Writes a `resonance` phase (payload: the full sweep) and then the
    /// GA section, one record per generation. Kill the process at any
    /// point and [`Audit::resume_resonant`] finishes the run with a
    /// bit-identical [`StressmarkRun`].
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::InvalidConfig`] for zero `threads` or an
    /// unrunnable [`GaConfig`], and any sink I/O error.
    pub fn generate_resonant_journaled(
        &self,
        threads: usize,
        sink: &mut dyn JournalSink,
    ) -> Result<StressmarkRun, AuditError> {
        let resonance = self.journaled_resonance(threads, sink)?;
        let (s, lp_slots) = self.resonant_shape(resonance.period_cycles);
        let name = format!("A-Res-{threads}T");
        self.evolve_kernel_journaled(
            &name, threads, s, lp_slots, resonance, false, &[], sink, None,
        )
    }

    /// Resumes a run journaled by [`Audit::generate_resonant_journaled`],
    /// producing a [`StressmarkRun`] bit-identical to the uninterrupted
    /// run's.
    ///
    /// Completed phases are reused from the journal: a finished
    /// resonance sweep is decoded from its phase payload rather than
    /// re-swept, and journaled GA generations are replayed without
    /// re-simulation before evolution continues live. A kill *inside*
    /// the resonance phase re-runs the sweep (it is deterministic and
    /// cheap next to the GA); a kill inside the GA resumes
    /// generation-exact. New records are appended to `sink` — pass a
    /// [`crate::journal::JournalWriter`] reopened with
    /// [`crate::journal::JournalWriter::resume`] to continue the same
    /// file.
    ///
    /// # Errors
    ///
    /// Same as [`Audit::generate_resonant_journaled`], plus
    /// [`AuditError::Resume`] for a journal inconsistent with this
    /// configuration.
    pub fn resume_resonant(
        &self,
        journal: &Journal,
        threads: usize,
        sink: &mut dyn JournalSink,
    ) -> Result<StressmarkRun, AuditError> {
        let resonance = match journal.phase_payload("resonance") {
            Some(payload) => ResonanceResult::from_json(payload)?,
            None => self.journaled_resonance(threads, sink)?,
        };
        let (s, lp_slots) = self.resonant_shape(resonance.period_cycles);
        let name = format!("A-Res-{threads}T");
        let resume = journal.last_ga_section().is_some().then_some(journal);
        self.evolve_kernel_journaled(
            &name, threads, s, lp_slots, resonance, false, &[], sink, resume,
        )
    }

    /// The journaled resonance phase: `phase_start`, the sweep,
    /// `phase_end` carrying the result. Public so external drivers
    /// (e.g. the `audit-net` distributed broker, which must run the
    /// resonance sweep locally before it can describe the fitness
    /// function to its workers) can reproduce exactly the phase
    /// structure [`Audit::generate_resonant_journaled`] writes.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::InvalidConfig`] for zero `threads`, and
    /// any sink I/O error.
    pub fn journaled_resonance(
        &self,
        threads: usize,
        sink: &mut dyn JournalSink,
    ) -> Result<ResonanceResult, AuditError> {
        if threads == 0 {
            return Err(AuditError::invalid(
                "Audit",
                "threads",
                "need at least one thread",
            ));
        }
        sink.append(&JournalRecord::PhaseStart {
            name: "resonance".into(),
        })?;
        let resonance = self.find_resonance(threads);
        sink.append(&JournalRecord::PhaseEnd {
            name: "resonance".into(),
            payload: resonance.to_json(),
        })?;
        Ok(resonance)
    }

    /// HP region ≈ half the resonant period, built from S sub-blocks of
    /// K cycles each (hierarchical generation, §3.C); the LP region
    /// absorbs the rounding so the whole loop stays on the detected
    /// period. Returns `(sub_blocks, lp_slots)`.
    fn resonant_shape(&self, period: u32) -> (usize, usize) {
        let k = self.opts.sub_block_cycles;
        let s = ((period as f64 / 2.0 / k as f64).round() as usize).max(1);
        let hp_cycles = s as u32 * k;
        let lp_cycles = period.saturating_sub(hp_cycles).max(k);
        let lp_slots = lp_cycles as usize * self.rig.chip.core.fetch_width as usize;
        (s, lp_slots)
    }

    /// Generates a first-droop *excitation* stressmark (A-Ex): one
    /// abrupt burst after a quiet region far longer than the resonant
    /// period, so bursts do not reinforce.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or exceeds the rig's chip.
    pub fn generate_excitation(&self, threads: usize) -> StressmarkRun {
        let resonance = self.find_resonance(threads);
        let (s, lp_slots) = self.excitation_shape();
        let name = format!("A-Ex-{threads}T");
        self.evolve_kernel_with(&name, threads, s, lp_slots, resonance, true)
    }

    /// [`Audit::generate_excitation`], checkpointed to a run journal —
    /// the excitation counterpart of
    /// [`Audit::generate_resonant_journaled`].
    ///
    /// # Errors
    ///
    /// Same as [`Audit::generate_resonant_journaled`].
    pub fn generate_excitation_journaled(
        &self,
        threads: usize,
        sink: &mut dyn JournalSink,
    ) -> Result<StressmarkRun, AuditError> {
        let resonance = self.journaled_resonance(threads, sink)?;
        let (s, lp_slots) = self.excitation_shape();
        let name = format!("A-Ex-{threads}T");
        self.evolve_kernel_journaled(&name, threads, s, lp_slots, resonance, true, &[], sink, None)
    }

    /// Resumes a run journaled by
    /// [`Audit::generate_excitation_journaled`]. Same semantics as
    /// [`Audit::resume_resonant`]: completed phases are reused, a
    /// mid-GA kill resumes generation-exact, and the result is
    /// bit-identical to the uninterrupted run's.
    ///
    /// # Errors
    ///
    /// Same as [`Audit::resume_resonant`].
    pub fn resume_excitation(
        &self,
        journal: &Journal,
        threads: usize,
        sink: &mut dyn JournalSink,
    ) -> Result<StressmarkRun, AuditError> {
        let resonance = match journal.phase_payload("resonance") {
            Some(payload) => ResonanceResult::from_json(payload)?,
            None => self.journaled_resonance(threads, sink)?,
        };
        let (s, lp_slots) = self.excitation_shape();
        let name = format!("A-Ex-{threads}T");
        let resume = journal.last_ga_section().is_some().then_some(journal);
        self.evolve_kernel_journaled(
            &name, threads, s, lp_slots, resonance, true, &[], sink, resume,
        )
    }

    /// Excitation loop shape: a burst of 4 sub-blocks (≈ 24 cycles at
    /// K = 6) after the configured quiet region. Returns
    /// `(sub_blocks, lp_slots)`.
    fn excitation_shape(&self) -> (usize, usize) {
        let lp_slots =
            self.opts.excitation_quiet_cycles as usize * self.rig.chip.core.fetch_width as usize;
        (4, lp_slots)
    }

    fn evolve_kernel_with(
        &self,
        name: &str,
        threads: usize,
        sub_blocks: usize,
        lp_slots: usize,
        resonance: ResonanceResult,
        seed_miss_load: bool,
    ) -> StressmarkRun {
        self.evolve_kernel_with_seeds(
            name,
            threads,
            sub_blocks,
            lp_slots,
            resonance,
            seed_miss_load,
            &[],
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn evolve_kernel_with_seeds(
        &self,
        name: &str,
        threads: usize,
        sub_blocks: usize,
        lp_slots: usize,
        resonance: ResonanceResult,
        seed_miss_load: bool,
        extra_seeds: &[Vec<Gene>],
    ) -> StressmarkRun {
        self.evolve_kernel_journaled(
            name,
            threads,
            sub_blocks,
            lp_slots,
            resonance,
            seed_miss_load,
            extra_seeds,
            &mut NullSink,
            None,
        )
        .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The GA phase shared by plain, journaled, and resumed generation.
    /// With `resume: Some(journal)`, the journal's recorded GA section
    /// (config, seeds, generations) takes precedence over `self.opts.ga`
    /// so the finished run is bit-identical to the one that was killed.
    #[allow(clippy::too_many_arguments)]
    fn evolve_kernel_journaled(
        &self,
        name: &str,
        threads: usize,
        sub_blocks: usize,
        lp_slots: usize,
        resonance: ResonanceResult,
        seed_miss_load: bool,
        extra_seeds: &[Vec<Gene>],
        sink: &mut dyn JournalSink,
        resume: Option<&Journal>,
    ) -> Result<StressmarkRun, AuditError> {
        if threads == 0 {
            return Err(AuditError::invalid(
                "Audit",
                "threads",
                "need at least one thread",
            ));
        }
        let menu = self.opcode_menu();
        let genome_len =
            self.opts.sub_block_cycles as usize * self.rig.chip.core.fetch_width as usize;
        let fspec = FitnessSpec {
            threads,
            sub_blocks,
            lp_slots,
            cost: self.opts.cost,
            spec: self.opts.eval_spec,
            policy: self.opts.policy,
            objectives: self.opts.objectives,
        };
        let rig = &self.rig;

        // Safe to call from GA worker threads: `measure_aligned` builds
        // every piece of mutable simulator state (ChipSim, OsModel, PDN
        // transient) fresh inside the call, so concurrent evaluations
        // share only `&Rig` immutably. The resilience log is a plain
        // order-insensitive counter behind a mutex.
        let log = ResilienceLog::default();
        let fitness = |genome: &[Gene]| {
            let (objs, delta) = fspec.evaluate_objectives(rig, genome);
            log.fold(&delta);
            objs
        };

        let seeds = self.ga_seeds(genome_len, seed_miss_load, extra_seeds);
        let ga_run = if self.opts.eval_batch > 1 && self.opts.policy.is_noop() {
            // Batched hot loop: chunks of genomes share one lockstep
            // simulator sweep. Bit-identical to the closure path —
            // `Rig::measure_batch` lanes are fully independent and the
            // engine merges results in slot order either way.
            let batch_fitness = |genomes: &[&[Gene]]| {
                fspec
                    .evaluate_objectives_batch(rig, genomes)
                    .into_iter()
                    .map(|(objs, delta)| {
                        log.fold(&delta);
                        objs
                    })
                    .collect()
            };
            let mut dispatcher = ga::BatchLocalDispatcher::new(
                batch_fitness,
                self.opts.eval_batch,
                ga::resolve_workers(self.opts.ga.threads),
            );
            match resume {
                Some(journal) => GaRun::resume_dispatched(journal, &mut dispatcher, sink)?,
                None => ga::evolve_journaled_dispatched(
                    &self.opts.ga,
                    &menu,
                    genome_len,
                    &seeds,
                    &mut dispatcher,
                    sink,
                )?,
            }
        } else {
            match resume {
                // Resume goes through a dispatcher: the closure here
                // computes the full objective vector, so pareto
                // journals resume too (`resume_with_sink` must reject
                // scalar closures, and cannot see past the generic
                // return type to know this one is vector-valued).
                Some(journal) => {
                    let mut dispatcher = ga::LocalDispatcher::new(
                        &fitness,
                        ga::resolve_workers(self.opts.ga.threads),
                    );
                    GaRun::resume_dispatched(journal, &mut dispatcher, sink)?
                }
                None => {
                    ga::evolve_journaled(&self.opts.ga, &menu, genome_len, &seeds, fitness, sink)?
                }
            }
        };
        self.finish_run(name, &fspec, resonance, ga_run, log.snapshot())
    }

    /// The GA phase evaluated through an explicit
    /// [`ga::EvalDispatcher`] — the distributed counterpart of the
    /// closure-based path above, driven by the `audit-net` broker. The
    /// dispatcher's workers must compute
    /// [`FitnessSpec::evaluate_objectives`] for this exact `fspec`
    /// (that is what the broker's setup handshake
    /// ships them); the engine's slot-ordered merge then makes the
    /// resulting [`StressmarkRun`], journal bytes, and cache state
    /// bit-identical to the in-process run for any worker count.
    ///
    /// `seed_miss_load` selects the excitation seeding (as in
    /// [`Audit::generate_excitation`]); `resume` replays a journaled
    /// prefix exactly as [`Audit::resume_resonant`] does.
    ///
    /// # Errors
    ///
    /// Same as [`Audit::generate_resonant_journaled`], plus any
    /// dispatch error.
    #[allow(clippy::too_many_arguments)] // mirrors the journaled path's knobs 1:1
    pub fn evolve_dispatched(
        &self,
        name: &str,
        fspec: &FitnessSpec,
        resonance: ResonanceResult,
        seed_miss_load: bool,
        dispatcher: &mut dyn ga::EvalDispatcher,
        sink: &mut dyn JournalSink,
        resume: Option<&Journal>,
    ) -> Result<StressmarkRun, AuditError> {
        if fspec.threads == 0 {
            return Err(AuditError::invalid(
                "Audit",
                "threads",
                "need at least one thread",
            ));
        }
        let menu = self.opcode_menu();
        let genome_len =
            self.opts.sub_block_cycles as usize * self.rig.chip.core.fetch_width as usize;
        let seeds = self.ga_seeds(genome_len, seed_miss_load, &[]);
        let ga_run = match resume {
            Some(journal) => GaRun::resume_dispatched(journal, dispatcher, sink)?,
            None => ga::evolve_journaled_dispatched(
                &self.opts.ga,
                &menu,
                genome_len,
                &seeds,
                dispatcher,
                sink,
            )?,
        };
        let resilience = dispatcher.resilience();
        self.finish_run(name, fspec, resonance, ga_run, resilience)
    }

    /// Builds the seed genomes every generation run starts from: the
    /// naive high-power pattern (the paper's "initial population …
    /// seeded with existing benchmarks or stressmarks to improve the
    /// convergence rate", §3), any caller-provided extras, and — for
    /// excitation runs — the missing-load variant. Broker and
    /// in-process paths share this so their `ga_start` records are
    /// byte-identical.
    fn ga_seeds(
        &self,
        genome_len: usize,
        seed_miss_load: bool,
        extra_seeds: &[Vec<Gene>],
    ) -> Vec<Vec<Gene>> {
        let seed: Vec<Gene> = (0..genome_len)
            .map(|i| {
                let opcode = match i % 4 {
                    0 | 1 => {
                        if self.rig.chip.supports_fma {
                            Opcode::SimdFma
                        } else {
                            Opcode::SimdFMul
                        }
                    }
                    2 => Opcode::IAdd,
                    _ => Opcode::Nop,
                };
                Gene {
                    opcode,
                    dst: (i % 8) as u8,
                    src1: 12,
                    src2: 13,
                    miss: false,
                }
            })
            .collect();
        let mut seeds = vec![seed];
        seeds.extend(extra_seeds.iter().cloned());
        if seed_miss_load {
            // Excitation hint: a memory-missing load drains the core
            // before the burst — a deeper quiet level than NOPs alone.
            let mut with_miss = seeds[0].clone();
            with_miss[genome_len - 1] = Gene {
                opcode: Opcode::Load,
                dst: 7,
                src1: 14,
                src2: 15,
                miss: true,
            };
            seeds.push(with_miss);
        }
        seeds
    }

    /// Packages a finished GA run: lowers the best genome to its named
    /// kernel, re-measures its droop on the reporting path, and attaches
    /// the resilience counters.
    fn finish_run(
        &self,
        name: &str,
        fspec: &FitnessSpec,
        resonance: ResonanceResult,
        ga_run: GaRun,
        resilience: ResilienceReport,
    ) -> Result<StressmarkRun, AuditError> {
        let kernel = Kernel::from_sub_blocks(
            name,
            &ga::genome::to_sub_block(&ga_run.best),
            fspec.sub_blocks,
            fspec.lp_slots,
        );
        let program = kernel.to_program();
        let best_droop = self
            .rig
            .measure_aligned(&vec![program.clone(); fspec.threads], fspec.spec)
            .max_droop();
        Ok(StressmarkRun {
            name: name.to_string(),
            kernel,
            program,
            best_fitness: ga_run.best_fitness,
            best_droop,
            resonance,
            ga: ga_run,
            threads: fspec.threads,
            resilience,
        })
    }

    /// The [`FitnessSpec`] a resonant (A-Res) run evaluates against,
    /// for a resonance sweep that detected `period` (see
    /// [`ResonanceResult::period_cycles`]). This is the description a
    /// distributed broker ships to its workers.
    pub fn resonant_fitness_spec(&self, threads: usize, period: u32) -> FitnessSpec {
        let (sub_blocks, lp_slots) = self.resonant_shape(period);
        self.fitness_spec(threads, sub_blocks, lp_slots)
    }

    /// The [`FitnessSpec`] an excitation (A-Ex) run evaluates against.
    pub fn excitation_fitness_spec(&self, threads: usize) -> FitnessSpec {
        let (sub_blocks, lp_slots) = self.excitation_shape();
        self.fitness_spec(threads, sub_blocks, lp_slots)
    }

    fn fitness_spec(&self, threads: usize, sub_blocks: usize, lp_slots: usize) -> FitnessSpec {
        FitnessSpec {
            threads,
            sub_blocks,
            lp_slots,
            cost: self.opts.cost,
            spec: self.opts.eval_spec,
            policy: self.opts.policy,
            objectives: self.opts.objectives,
        }
    }
}

/// Everything a fitness evaluator — in-process worker thread or remote
/// `audit work` process — needs to score one genome exactly as the GA
/// driver does: the loop shape the genome is lowered into, the thread
/// count, the measurement window, the objective axes, the cost
/// function, and the resilience policy (whose fault schedule is a pure
/// function of the genome's content key, so any evaluator draws
/// identical faults).
///
/// [`FitnessSpec::evaluate_objectives`] is *the* fitness function: the
/// in-process GA closure and the distributed worker both call it, which
/// is what makes the two paths bit-identical by construction. The
/// scalar [`FitnessSpec::evaluate`] wrapper survives as a deprecated
/// 1-objective special case (the vector's primary axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitnessSpec {
    /// Homogeneous thread count the candidate runs with.
    pub threads: usize,
    /// HP-region sub-block replication factor (S, §3.C).
    pub sub_blocks: usize,
    /// LP-region slot count absorbing the period rounding.
    pub lp_slots: usize,
    /// Cost function scoring each measurement's droop axis.
    pub cost: CostFunction,
    /// Measurement window of each evaluation.
    pub spec: MeasureSpec,
    /// Resilience policy (fault plan, repeats, retries, quarantine).
    pub policy: MeasurePolicy,
    /// Objective axes computed per measurement, in canonical
    /// droop → power → margin order. The droop-only default reproduces
    /// the scalar fitness exactly.
    pub objectives: ObjectiveSet,
}

impl FitnessSpec {
    /// Computes the configured objective vector from one measurement.
    /// Axes, always in canonical droop → power → margin order:
    ///
    /// - **droop** — the configured cost function's score (the paper's
    ///   scalar fitness, so a droop-only set reproduces the scalar API
    ///   bit-for-bit);
    /// - **power** — mean supply power in watts: `mean_amps` × the
    ///   rail's nominal voltage;
    /// - **margin** — proximity to timing failure (paper §5.A.4):
    ///   `v_crit(max_path_seen) − (nominal − max_droop)`, the critical
    ///   voltage of the most sensitive path the workload exercised
    ///   minus the minimum die voltage it reached. Larger means closer
    ///   to (or past) failure — the SM2 insight that sensitive-path
    ///   pressure matters independently of raw droop.
    ///
    /// Every axis is a pure function of the measurement and rig, so the
    /// vector is as deterministic as the scalar score it generalizes.
    pub fn objectives_of(&self, rig: &Rig, m: &Measurement) -> Objectives {
        Objectives(
            self.objectives
                .iter()
                .map(|axis| match axis {
                    Objective::Droop => self.cost.score(m),
                    Objective::Power => m.mean_amps * rig.pdn.nominal_voltage(),
                    Objective::Margin => {
                        let v_min = rig.pdn.nominal_voltage() - m.max_droop();
                        rig.failure.v_crit(m.max_path_seen) - v_min
                    }
                })
                .collect(),
        )
    }

    /// The objective vector of a quarantined candidate: the fallback
    /// fitness splatted across every configured axis, so a quarantined
    /// genome is dominated on (or ties) every axis exactly as it loses
    /// every scalar comparison today.
    fn quarantined_objectives(&self) -> Objectives {
        Objectives(vec![self.policy.quarantine_fitness; self.objectives.len()])
    }

    /// Scores one genome on `rig`, returning the objective vector and
    /// the [`ResilienceReport`] delta this evaluation contributes (all
    /// zeros on the plain path, where the policy is a no-op).
    ///
    /// Deterministic per genome: simulator state is built fresh inside
    /// the call and the fault schedule is content-addressed, so the
    /// same genome scores bit-identically on any thread, process, or
    /// host.
    pub fn evaluate_objectives(&self, rig: &Rig, genome: &[Gene]) -> (Objectives, ResilienceReport) {
        let kernel = Kernel::from_sub_blocks(
            "candidate",
            &ga::genome::to_sub_block(genome),
            self.sub_blocks,
            self.lp_slots,
        );
        let programs = vec![kernel.to_program(); self.threads];
        if self.policy.is_noop() {
            let objs = self.objectives_of(rig, &rig.measure_aligned(&programs, self.spec));
            (objs, ResilienceReport::default())
        } else {
            let offsets = vec![0; self.threads];
            let key = resilient::genome_key(genome);
            let outcome = self.policy.measure(rig, &programs, &offsets, self.spec, key);
            let delta = ResilienceReport::from_outcome(&outcome);
            let objs = match &outcome.measurement {
                Some(m) => self.objectives_of(rig, m),
                None => self.quarantined_objectives(),
            };
            (objs, delta)
        }
    }

    /// Scores a chunk of genomes in one lockstep
    /// [`Rig::measure_batch`] sweep, returning one objective vector per
    /// genome in order. Each vector is bit-identical to
    /// [`FitnessSpec::evaluate_objectives`] on that genome alone —
    /// batching amortizes the hot loop's bookkeeping, never changes
    /// results.
    ///
    /// Falls back to per-genome evaluation when the resilience policy
    /// is not the no-op default (fault schedules are keyed per
    /// evaluation, so the batched path would have to replicate the
    /// retry loop per lane for no gain) or when the chunk has a single
    /// genome.
    pub fn evaluate_objectives_batch(
        &self,
        rig: &Rig,
        genomes: &[&[Gene]],
    ) -> Vec<(Objectives, ResilienceReport)> {
        if !self.policy.is_noop() || genomes.len() <= 1 {
            return genomes
                .iter()
                .map(|g| self.evaluate_objectives(rig, g))
                .collect();
        }
        let lanes: Vec<Vec<Program>> = genomes
            .iter()
            .map(|genome| {
                let kernel = Kernel::from_sub_blocks(
                    "candidate",
                    &ga::genome::to_sub_block(genome),
                    self.sub_blocks,
                    self.lp_slots,
                );
                vec![kernel.to_program(); self.threads]
            })
            .collect();
        rig.measure_batch(&lanes, self.spec)
            .iter()
            .map(|m| (self.objectives_of(rig, m), ResilienceReport::default()))
            .collect()
    }

    /// Scores one genome on `rig` as a single scalar — the primary
    /// (first) axis of [`FitnessSpec::evaluate_objectives`]. With the
    /// default droop-only objective set this is exactly the historical
    /// scalar fitness.
    #[deprecated(
        since = "0.7.0",
        note = "use `evaluate_objectives`; the scalar fitness is its primary axis"
    )]
    pub fn evaluate(&self, rig: &Rig, genome: &[Gene]) -> (f64, ResilienceReport) {
        let (objs, delta) = self.evaluate_objectives(rig, genome);
        (objs.primary(), delta)
    }

    /// Scores a chunk of genomes as scalars — the primary axis of
    /// [`FitnessSpec::evaluate_objectives_batch`] per genome.
    #[deprecated(
        since = "0.7.0",
        note = "use `evaluate_objectives_batch`; the scalar fitness is its primary axis"
    )]
    pub fn evaluate_batch(&self, rig: &Rig, genomes: &[&[Gene]]) -> Vec<(f64, ResilienceReport)> {
        self.evaluate_objectives_batch(rig, genomes)
            .into_iter()
            .map(|(objs, delta)| (objs.primary(), delta))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Rig;

    #[test]
    fn resonant_generation_beats_nop_baseline() {
        let audit = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
        let run = audit.generate_resonant(2);
        let nop_droop = audit
            .rig()
            .measure_aligned(
                &vec![audit_cpu::Program::nops(64); 2],
                AuditOptions::fast_demo().eval_spec,
            )
            .max_droop();
        assert!(
            run.best_droop > 3.0 * nop_droop,
            "GA droop {} vs NOP baseline {nop_droop}",
            run.best_droop
        );
        assert!(run.name.contains("A-Res"));
        assert!(!run.ga.history.is_empty());
    }

    #[test]
    fn batched_evaluation_is_bit_identical_to_unbatched() {
        let rig = Rig::bulldozer();
        let mut plain_sink = crate::journal::MemJournal::default();
        let mut batch_sink = crate::journal::MemJournal::default();
        let plain = Audit::new(rig.clone(), AuditOptions::fast_demo())
            .generate_resonant_journaled(2, &mut plain_sink)
            .unwrap();
        let batched = Audit::new(rig, AuditOptions::fast_demo().with_eval_batch(3))
            .generate_resonant_journaled(2, &mut batch_sink)
            .unwrap();
        assert_eq!(plain.best_fitness.to_bits(), batched.best_fitness.to_bits());
        assert_eq!(plain.ga, batched.ga);
        // Byte-level: the batched run journals the exact same lines,
        // modulo the wall-clock field (the one legitimately
        // nondeterministic value in a generation record).
        let strip_wall = |line: String| -> String {
            match line.find("\"wall_s\":") {
                Some(start) => {
                    let rest = &line[start..];
                    let end = rest.find(',').map(|e| start + e + 1).unwrap_or(line.len());
                    format!("{}{}", &line[..start], &line[end..])
                }
                None => line,
            }
        };
        let encode = |sink: &crate::journal::MemJournal| -> Vec<String> {
            sink.records
                .iter()
                .map(|r| strip_wall(r.to_json().encode()))
                .collect()
        };
        assert_eq!(encode(&plain_sink), encode(&batch_sink));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_scalar_wrappers_pin_the_primary_axis() {
        // The deprecated scalar API must stay exactly the primary axis
        // of the objective vector until it is removed — callers
        // migrating one at a time see bit-identical fitness.
        use crate::ga::{CostFunction, Gene, ObjectiveSet};
        use crate::harness::MeasureSpec;
        use crate::resilient::MeasurePolicy;

        let spec = FitnessSpec {
            threads: 2,
            sub_blocks: 2,
            lp_slots: 2,
            cost: CostFunction::MaxDroop,
            spec: MeasureSpec {
                warmup_cycles: 500,
                record_cycles: 2_000,
                settle_cycles: 30_000,
                ..MeasureSpec::ga_eval()
            },
            policy: MeasurePolicy::disabled(),
            objectives: ObjectiveSet::default(),
        };
        let rig = Rig::bulldozer();
        let genomes: Vec<Vec<Gene>> = (0..3u8)
            .map(|k| {
                (0..8u8)
                    .map(|slot| Gene {
                        opcode: if slot % 2 == 0 {
                            Opcode::SimdFma
                        } else {
                            Opcode::IAdd
                        },
                        dst: (slot + k) % 8,
                        src1: 12,
                        src2: 13,
                        miss: false,
                    })
                    .collect()
            })
            .collect();
        for genome in &genomes {
            let (scalar, _) = spec.evaluate(&rig, genome);
            let (objs, _) = spec.evaluate_objectives(&rig, genome);
            assert_eq!(scalar.to_bits(), objs.primary().to_bits());
        }
        let refs: Vec<&[Gene]> = genomes.iter().map(Vec::as_slice).collect();
        let scalars = spec.evaluate_batch(&rig, &refs);
        let vectors = spec.evaluate_objectives_batch(&rig, &refs);
        assert_eq!(scalars.len(), vectors.len());
        for ((s, _), (v, _)) in scalars.iter().zip(&vectors) {
            assert_eq!(s.to_bits(), v.primary().to_bits());
        }
    }

    #[test]
    fn eval_batch_zero_is_rejected() {
        let err = AuditOptions::builder().eval_batch(0).build().unwrap_err();
        assert!(err.to_string().contains("eval_batch"), "{err}");
    }

    #[test]
    fn menu_adapts_to_chip() {
        let bd = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
        assert!(bd.opcode_menu().contains(&Opcode::SimdFma));
        let ph = Audit::new(Rig::phenom(), AuditOptions::fast_demo());
        assert!(!ph.opcode_menu().contains(&Opcode::SimdFma));
        assert!(ph.opcode_menu().contains(&Opcode::SimdFMul));
    }

    #[test]
    fn excitation_kernel_is_mostly_quiet() {
        let audit = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
        let run = audit.generate_excitation(2);
        let p = &run.program;
        let nops = p.body().iter().filter(|i| i.opcode.is_nop()).count();
        assert!(nops * 2 > p.len(), "{} of {} are NOPs", nops, p.len());
    }

    #[test]
    fn seeding_from_a_stressmark_never_hurts() {
        // Paper §3: seeding improves convergence. With the SM-Res HP
        // block injected, the best fitness must be at least as good as
        // the unseeded demo run (elitism preserves the seed if it wins).
        let audit = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
        let unseeded = audit.generate_resonant(2);
        let seeded = audit.generate_resonant_seeded(2, &[audit_stressmark::manual::sm_res()]);
        assert!(
            seeded.best_fitness >= 0.95 * unseeded.best_fitness,
            "seeded {} vs unseeded {}",
            seeded.best_fitness,
            unseeded.best_fitness
        );
        assert!(seeded.name.contains("seeded"));
    }

    #[test]
    fn generation_is_deterministic() {
        let audit = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
        let a = audit.generate_resonant(2);
        let b = audit.generate_resonant(2);
        assert_eq!(a.ga.best, b.ga.best);
        assert_eq!(a.best_droop, b.best_droop);
    }

    #[test]
    fn journaled_generation_matches_plain() {
        use crate::journal::MemJournal;
        let audit = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
        let plain = audit.generate_resonant(2);
        let mut mem = MemJournal::default();
        let journaled = audit.generate_resonant_journaled(2, &mut mem).unwrap();
        assert_eq!(plain.ga, journaled.ga);
        assert_eq!(plain.best_droop, journaled.best_droop);
        assert_eq!(plain.program, journaled.program);
        // Journal shape: resonance phase, then one GA section.
        let journal = mem.as_journal();
        assert!(journal.phase_payload("resonance").is_some());
        assert!(journal.last_ga_section().is_some_and(|s| s.complete));
    }

    #[test]
    fn audit_killed_anywhere_resumes_bit_identically() {
        use crate::journal::MemJournal;
        let audit = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
        let mut mem = MemJournal::default();
        let full = audit.generate_resonant_journaled(2, &mut mem).unwrap();

        // Cut after every record prefix: inside the resonance phase,
        // between phases, and after each GA generation.
        for cut in 0..mem.records.len() {
            let mut partial = MemJournal {
                records: mem.records[..cut].to_vec(),
            };
            let journal = partial.as_journal();
            let resumed = audit.resume_resonant(&journal, 2, &mut partial).unwrap();
            assert_eq!(full.ga, resumed.ga, "GA diverged when cut at record {cut}");
            assert_eq!(
                full.best_droop, resumed.best_droop,
                "droop diverged when cut at record {cut}"
            );
            assert_eq!(full.program, resumed.program);
            assert_eq!(full.name, resumed.name);
        }
    }

    #[test]
    fn resilient_path_without_faults_matches_plain_bit_identically() {
        // A non-noop policy (watchdog armed) routes every fitness
        // evaluation through the resilient path; with faults disabled
        // the GA must be bit-identical to the plain run — same winner,
        // same convergence curve, same simulation count.
        let plain = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo()).generate_resonant(2);
        let policy = crate::resilient::MeasurePolicy {
            cycle_budget: Some(u64::MAX),
            ..crate::resilient::MeasurePolicy::disabled()
        };
        assert!(!policy.is_noop());
        let resilient = Audit::new(
            Rig::bulldozer(),
            AuditOptions::fast_demo().with_policy(policy),
        )
        .generate_resonant(2);
        assert_eq!(plain.ga, resilient.ga);
        assert_eq!(plain.ga.evaluations, resilient.ga.evaluations);
        assert_eq!(plain.ga.cache_hits, resilient.ga.cache_hits);
        assert_eq!(plain.best_droop.to_bits(), resilient.best_droop.to_bits());
        assert_eq!(plain.program, resilient.program);
        assert_eq!(resilient.resilience.retries, 0);
        assert_eq!(resilient.resilience.quarantined, 0);
        assert!(resilient.resilience.evaluations > 0);
        // The no-op default reports all-zero counters.
        assert_eq!(plain.resilience, crate::resilient::ResilienceReport::default());
    }

    #[test]
    fn faulty_ga_is_identical_across_worker_counts() {
        use audit_measure::{FaultPlan, FaultRates};
        // Fault schedules are content-addressed per candidate, so a
        // noisy, hang-prone run must not depend on evaluation order.
        let policy = crate::resilient::MeasurePolicy {
            faults: FaultPlan::new(
                9,
                FaultRates {
                    noise_sigma: 0.002,
                    hang_rate: 0.05,
                    ..FaultRates::none()
                },
            )
            .unwrap(),
            repeat: 2,
            retries: 3,
            cycle_budget: Some(1 << 22),
            ..crate::resilient::MeasurePolicy::disabled()
        };
        let opts = AuditOptions::fast_demo().with_policy(policy);
        let one = Audit::new(Rig::bulldozer(), opts.clone().with_eval_threads(1))
            .generate_resonant(2);
        let three =
            Audit::new(Rig::bulldozer(), opts.with_eval_threads(3)).generate_resonant(2);
        assert_eq!(one.ga, three.ga);
        assert_eq!(one.best_droop.to_bits(), three.best_droop.to_bits());
        assert_eq!(one.resilience, three.resilience);
    }

    #[test]
    fn zero_threads_is_an_error_not_a_panic() {
        use crate::journal::MemJournal;
        let audit = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
        let mut mem = MemJournal::default();
        let err = audit.generate_resonant_journaled(0, &mut mem).unwrap_err();
        assert!(err.to_string().contains("thread"), "{err}");
    }

    #[test]
    fn options_builder_accepts_valid_combinations() {
        let opts = AuditOptions::builder()
            .cost(CostFunction::DroopPerAmp)
            .sub_block_cycles(8)
            .resonance_periods((16..=48).step_by(8))
            .excitation_quiet_cycles(120)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(opts.cost, CostFunction::DroopPerAmp);
        assert_eq!(opts.sub_block_cycles, 8);
        assert_eq!(opts.ga.seed, 7);
        // The presets themselves pass validation.
        AuditOptions::paper().validate().unwrap();
        AuditOptions::fast_demo().validate().unwrap();
    }

    #[test]
    fn options_builder_rejects_unrunnable_combinations() {
        let err = AuditOptions::builder()
            .resonance_periods([])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("resonance_periods"), "{err}");
        let err = AuditOptions::builder()
            .resonance_periods([16, 1])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("at least 2 cycles"), "{err}");
        let err = AuditOptions::builder()
            .sub_block_cycles(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("sub_block_cycles"), "{err}");
        let err = AuditOptions::builder()
            .excitation_quiet_cycles(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("excitation_quiet_cycles"), "{err}");
        // Nested configs are checked too.
        let err = AuditOptions::builder()
            .ga(GaConfig {
                population: 1,
                ..GaConfig::default()
            })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("population"), "{err}");
        let err = AuditOptions::builder()
            .eval_spec(MeasureSpec {
                record_cycles: 0,
                ..MeasureSpec::ga_eval()
            })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("record_cycles"), "{err}");
    }
}
