//! The top-level AUDIT driver (paper Fig. 5, §3.C).
//!
//! Ties the pieces together exactly as the paper describes:
//!
//! 1. sweep for the platform's resonance frequency,
//! 2. size the stressmark loop to that period, split the high-power
//!    region into `S` replicated sub-blocks of `K` cycles,
//! 3. evolve the sub-block with the GA against the hardware-path
//!    measurement loop (threads spread across modules, aligned as the
//!    dithering algorithm guarantees),
//! 4. emit the winning kernel as a named stressmark (A-Res, A-Ex,
//!    A-Res-8T, A-Res-Th — the name reflects the configuration it was
//!    trained for).

use audit_cpu::{Opcode, Program};
use audit_stressmark::Kernel;
use serde::{Deserialize, Serialize};

use crate::ga::{self, CostFunction, GaConfig, GaRun, Gene};
use crate::harness::{MeasureSpec, Rig};
use crate::resonance::{self, ResonanceResult};

/// Options for a generation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditOptions {
    /// GA hyper-parameters.
    pub ga: GaConfig,
    /// Cost function to maximize.
    pub cost: CostFunction,
    /// Sub-block length `K` in cycles (paper example: K = 6).
    pub sub_block_cycles: u32,
    /// Resonance sweep grid (loop periods in cycles).
    pub resonance_periods: Vec<u32>,
    /// Measurement spec for fitness evaluations.
    pub eval_spec: MeasureSpec,
    /// Quiet region of excitation stressmarks, in cycles.
    pub excitation_quiet_cycles: u32,
}

impl AuditOptions {
    /// Paper-scale configuration (hours of simulated search in the
    /// original; minutes here).
    pub fn paper() -> Self {
        AuditOptions {
            ga: GaConfig {
                stall_generations: 12,
                ..GaConfig::default()
            },
            cost: CostFunction::MaxDroop,
            sub_block_cycles: 6,
            resonance_periods: resonance::default_periods().collect(),
            eval_spec: MeasureSpec::ga_eval(),
            excitation_quiet_cycles: 200,
        }
    }

    /// A small configuration for tests and examples: converges in
    /// seconds while exercising every code path.
    pub fn fast_demo() -> Self {
        AuditOptions {
            ga: GaConfig {
                population: 8,
                generations: 6,
                stall_generations: 6,
                ..GaConfig::default()
            },
            cost: CostFunction::MaxDroop,
            sub_block_cycles: 6,
            resonance_periods: (16..=48).step_by(8).collect(),
            eval_spec: MeasureSpec::ga_eval(),
            excitation_quiet_cycles: 150,
        }
    }

    /// Replaces the cost function.
    pub fn with_cost(mut self, cost: CostFunction) -> Self {
        self.cost = cost;
        self
    }

    /// Replaces the GA seed (for convergence statistics).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.ga.seed = seed;
        self
    }

    /// Sets the GA fitness-evaluation worker count (`0` = all available
    /// cores). Never changes results — see the determinism contract in
    /// [`crate::ga::engine`].
    pub fn with_eval_threads(mut self, threads: usize) -> Self {
        self.ga.threads = threads;
        self
    }
}

/// A generated stressmark plus the evidence trail that produced it.
#[derive(Debug, Clone)]
pub struct StressmarkRun {
    /// Stressmark name ("A-Res", "A-Ex", …).
    pub name: String,
    /// The structured kernel (needed for dithering and NOP analysis).
    pub kernel: Kernel,
    /// The flattened executable program.
    pub program: Program,
    /// Fitness of the winning genome under the configured cost.
    pub best_fitness: f64,
    /// Droop of the winner during its final evaluation, volts.
    pub best_droop: f64,
    /// The resonance sweep used (excitation runs carry one too, for the
    /// record, even though they do not loop at the resonance).
    pub resonance: ResonanceResult,
    /// Full GA convergence record.
    pub ga: GaRun,
    /// Threads the stressmark was trained with.
    pub threads: usize,
}

/// The AUDIT framework bound to a measurement rig.
///
/// # Example
///
/// ```no_run
/// use audit_core::audit::{Audit, AuditOptions};
/// use audit_core::harness::Rig;
///
/// let audit = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
/// let a_res = audit.generate_resonant(4);
/// assert!(a_res.best_droop > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Audit {
    rig: Rig,
    opts: AuditOptions,
}

impl Audit {
    /// Binds AUDIT to a rig.
    pub fn new(rig: Rig, opts: AuditOptions) -> Self {
        Audit { rig, opts }
    }

    /// The measurement rig in use.
    pub fn rig(&self) -> &Rig {
        &self.rig
    }

    /// The options in use.
    pub fn options(&self) -> &AuditOptions {
        &self.opts
    }

    /// The opcode menu offered to the GA: the full stress menu, minus
    /// FMA-class ops when the rig's chip lacks them (§5.C — AUDIT adapts
    /// to the processor automatically).
    pub fn opcode_menu(&self) -> Vec<Opcode> {
        Opcode::stress_menu()
            .into_iter()
            .filter(|op| self.rig.chip.supports_fma || !op.props().needs_fma)
            .collect()
    }

    /// Step 1: find the platform's resonant loop period (§3).
    pub fn find_resonance(&self, threads: usize) -> ResonanceResult {
        resonance::find_resonance(
            &self.rig,
            threads,
            self.opts.resonance_periods.iter().copied(),
            self.opts.eval_spec,
        )
    }

    /// Like [`Audit::generate_resonant`], with the initial population
    /// additionally seeded from existing programs (paper §3: seeding
    /// "with existing benchmarks or stressmarks to improve the
    /// convergence rate"). Each program's leading instructions become
    /// one sub-block genome.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or exceeds the rig's chip.
    pub fn generate_resonant_seeded(
        &self,
        threads: usize,
        seed_programs: &[Program],
    ) -> StressmarkRun {
        let genome_len =
            self.opts.sub_block_cycles as usize * self.rig.chip.core.fetch_width as usize;
        let seeds: Vec<Vec<Gene>> = seed_programs
            .iter()
            .map(|p| ga::genome::from_program(p, genome_len))
            .collect();
        let resonance = self.find_resonance(threads);
        let (s, lp_slots) = self.resonant_shape(resonance.period_cycles);
        let name = format!("A-Res-{threads}T-seeded");
        self.evolve_kernel_with_seeds(&name, threads, s, lp_slots, resonance, false, &seeds)
    }

    /// Generates a first-droop *resonant* stressmark (A-Res family) for
    /// `threads` homogeneous threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or exceeds the rig's chip.
    pub fn generate_resonant(&self, threads: usize) -> StressmarkRun {
        let resonance = self.find_resonance(threads);
        let (s, lp_slots) = self.resonant_shape(resonance.period_cycles);
        let name = format!("A-Res-{threads}T");
        self.evolve_kernel_with(&name, threads, s, lp_slots, resonance, false)
    }

    /// HP region ≈ half the resonant period, built from S sub-blocks of
    /// K cycles each (hierarchical generation, §3.C); the LP region
    /// absorbs the rounding so the whole loop stays on the detected
    /// period. Returns `(sub_blocks, lp_slots)`.
    fn resonant_shape(&self, period: u32) -> (usize, usize) {
        let k = self.opts.sub_block_cycles;
        let s = ((period as f64 / 2.0 / k as f64).round() as usize).max(1);
        let hp_cycles = s as u32 * k;
        let lp_cycles = period.saturating_sub(hp_cycles).max(k);
        let lp_slots = lp_cycles as usize * self.rig.chip.core.fetch_width as usize;
        (s, lp_slots)
    }

    /// Generates a first-droop *excitation* stressmark (A-Ex): one
    /// abrupt burst after a quiet region far longer than the resonant
    /// period, so bursts do not reinforce.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or exceeds the rig's chip.
    pub fn generate_excitation(&self, threads: usize) -> StressmarkRun {
        let resonance = self.find_resonance(threads);
        let s = 4; // a burst of 4 sub-blocks (≈ 24 cycles at K = 6)
        let lp_slots =
            self.opts.excitation_quiet_cycles as usize * self.rig.chip.core.fetch_width as usize;
        let name = format!("A-Ex-{threads}T");
        self.evolve_kernel_with(&name, threads, s, lp_slots, resonance, true)
    }

    fn evolve_kernel_with(
        &self,
        name: &str,
        threads: usize,
        sub_blocks: usize,
        lp_slots: usize,
        resonance: ResonanceResult,
        seed_miss_load: bool,
    ) -> StressmarkRun {
        self.evolve_kernel_with_seeds(
            name,
            threads,
            sub_blocks,
            lp_slots,
            resonance,
            seed_miss_load,
            &[],
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn evolve_kernel_with_seeds(
        &self,
        name: &str,
        threads: usize,
        sub_blocks: usize,
        lp_slots: usize,
        resonance: ResonanceResult,
        seed_miss_load: bool,
        extra_seeds: &[Vec<Gene>],
    ) -> StressmarkRun {
        assert!(threads >= 1, "need at least one thread");
        let menu = self.opcode_menu();
        let genome_len =
            self.opts.sub_block_cycles as usize * self.rig.chip.core.fetch_width as usize;
        let cost = self.opts.cost;
        let spec = self.opts.eval_spec;
        let rig = &self.rig;

        // Safe to call from GA worker threads: `measure_aligned` builds
        // every piece of mutable simulator state (ChipSim, OsModel, PDN
        // transient) fresh inside the call, so concurrent evaluations
        // share only `&Rig` immutably.
        let fitness = |genome: &[Gene]| {
            let kernel = Kernel::from_sub_blocks(
                "candidate",
                &ga::genome::to_sub_block(genome),
                sub_blocks,
                lp_slots,
            );
            let programs = vec![kernel.to_program(); threads];
            cost.score(&rig.measure_aligned(&programs, spec))
        };

        // Seed one individual with a naive high-power pattern — the
        // paper's "initial population … seeded with existing benchmarks
        // or stressmarks to improve the convergence rate" (§3). The GA
        // still has to beat it.
        let seed: Vec<Gene> = (0..genome_len)
            .map(|i| {
                let opcode = match i % 4 {
                    0 | 1 => {
                        if self.rig.chip.supports_fma {
                            Opcode::SimdFma
                        } else {
                            Opcode::SimdFMul
                        }
                    }
                    2 => Opcode::IAdd,
                    _ => Opcode::Nop,
                };
                Gene {
                    opcode,
                    dst: (i % 8) as u8,
                    src1: 12,
                    src2: 13,
                    miss: false,
                }
            })
            .collect();
        let mut seeds = vec![seed];
        seeds.extend(extra_seeds.iter().cloned());
        if seed_miss_load {
            // Excitation hint: a memory-missing load drains the core
            // before the burst — a deeper quiet level than NOPs alone.
            let mut with_miss = seeds[0].clone();
            with_miss[genome_len - 1] = Gene {
                opcode: Opcode::Load,
                dst: 7,
                src1: 14,
                src2: 15,
                miss: true,
            };
            seeds.push(with_miss);
        }
        let ga_run = ga::evolve(&self.opts.ga, &menu, genome_len, &seeds, fitness);

        let kernel = Kernel::from_sub_blocks(
            name,
            &ga::genome::to_sub_block(&ga_run.best),
            sub_blocks,
            lp_slots,
        );
        let program = kernel.to_program();
        let best_droop = rig
            .measure_aligned(&vec![program.clone(); threads], spec)
            .max_droop();
        StressmarkRun {
            name: name.to_string(),
            kernel,
            program,
            best_fitness: ga_run.best_fitness,
            best_droop,
            resonance,
            ga: ga_run,
            threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Rig;

    #[test]
    fn resonant_generation_beats_nop_baseline() {
        let audit = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
        let run = audit.generate_resonant(2);
        let nop_droop = audit
            .rig()
            .measure_aligned(
                &vec![audit_cpu::Program::nops(64); 2],
                AuditOptions::fast_demo().eval_spec,
            )
            .max_droop();
        assert!(
            run.best_droop > 3.0 * nop_droop,
            "GA droop {} vs NOP baseline {nop_droop}",
            run.best_droop
        );
        assert!(run.name.contains("A-Res"));
        assert!(!run.ga.history.is_empty());
    }

    #[test]
    fn menu_adapts_to_chip() {
        let bd = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
        assert!(bd.opcode_menu().contains(&Opcode::SimdFma));
        let ph = Audit::new(Rig::phenom(), AuditOptions::fast_demo());
        assert!(!ph.opcode_menu().contains(&Opcode::SimdFma));
        assert!(ph.opcode_menu().contains(&Opcode::SimdFMul));
    }

    #[test]
    fn excitation_kernel_is_mostly_quiet() {
        let audit = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
        let run = audit.generate_excitation(2);
        let p = &run.program;
        let nops = p.body().iter().filter(|i| i.opcode.is_nop()).count();
        assert!(nops * 2 > p.len(), "{} of {} are NOPs", nops, p.len());
    }

    #[test]
    fn seeding_from_a_stressmark_never_hurts() {
        // Paper §3: seeding improves convergence. With the SM-Res HP
        // block injected, the best fitness must be at least as good as
        // the unseeded demo run (elitism preserves the seed if it wins).
        let audit = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
        let unseeded = audit.generate_resonant(2);
        let seeded = audit.generate_resonant_seeded(2, &[audit_stressmark::manual::sm_res()]);
        assert!(
            seeded.best_fitness >= 0.95 * unseeded.best_fitness,
            "seeded {} vs unseeded {}",
            seeded.best_fitness,
            unseeded.best_fitness
        );
        assert!(seeded.name.contains("seeded"));
    }

    #[test]
    fn generation_is_deterministic() {
        let audit = Audit::new(Rig::bulldozer(), AuditOptions::fast_demo());
        let a = audit.generate_resonant(2);
        let b = audit.generate_resonant(2);
        assert_eq!(a.ga.best, b.ga.best);
        assert_eq!(a.best_droop, b.best_droop);
    }
}
