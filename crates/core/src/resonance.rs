//! Automatic resonance-frequency detection (paper §3).
//!
//! Resonance frequencies vary across boards and even across processors
//! on the same board, so AUDIT "constructs a trivial stressmark
//! consisting of a loop of high-power instructions and NOP instructions
//! \[and\] varies the number of cycles in the loop to determine the length
//! that produces the worst-case droop". That loop length is the resonant
//! period used for all subsequent resonant-stressmark generation.

use audit_error::AuditError;
use audit_measure::json::JsonValue;
use serde::{Deserialize, Serialize};

use crate::harness::{MeasureSpec, Rig};
use crate::patterns::ActivityPattern;

/// Result of a resonance sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResonanceResult {
    /// Loop period (cycles) that produced the worst droop.
    pub period_cycles: u32,
    /// The corresponding loop frequency at the rig's clock.
    pub frequency_hz: f64,
    /// Every `(period, max droop)` sample of the sweep.
    pub samples: Vec<(u32, f64)>,
}

impl ResonanceResult {
    /// Droop at the detected resonance.
    pub fn peak_droop(&self) -> f64 {
        self.samples
            .iter()
            .find(|(p, _)| *p == self.period_cycles)
            .map(|(_, d)| *d)
            .unwrap_or(0.0)
    }

    /// Encodes the sweep for a run-journal phase payload (samples as
    /// `[period, droop]` pairs, droops in shortest-round-trip form).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            (
                "period_cycles",
                JsonValue::from_u64(u64::from(self.period_cycles)),
            ),
            ("frequency_hz", JsonValue::from_f64(self.frequency_hz)),
            (
                "samples",
                JsonValue::Array(
                    self.samples
                        .iter()
                        .map(|&(p, d)| {
                            JsonValue::Array(vec![
                                JsonValue::from_u64(u64::from(p)),
                                JsonValue::from_f64(d),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes a sweep from a run-journal phase payload.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Resume`] if the payload is missing fields
    /// or malformed.
    pub fn from_json(v: &JsonValue) -> Result<Self, AuditError> {
        let missing = |what: &str| AuditError::resume(format!("resonance payload: {what}"));
        let period_cycles = v
            .get("period_cycles")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| missing("no `period_cycles`"))? as u32;
        let frequency_hz = v
            .get("frequency_hz")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| missing("no `frequency_hz`"))?;
        let samples = v
            .get("samples")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| missing("no `samples` array"))?
            .iter()
            .map(|pair| {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| missing("sample is not a [period, droop] pair"))?;
                let p = pair[0]
                    .as_u64()
                    .ok_or_else(|| missing("sample period is not an integer"))?
                    as u32;
                let d = pair[1]
                    .as_f64()
                    .ok_or_else(|| missing("sample droop is not a number"))?;
                Ok((p, d))
            })
            .collect::<Result<Vec<_>, AuditError>>()?;
        Ok(ResonanceResult {
            period_cycles,
            frequency_hz,
            samples,
        })
    }
}

/// Sweeps trivial high/NOP loops of varying period and returns the
/// period with the worst droop.
///
/// # Example
///
/// ```no_run
/// use audit_core::{resonance, harness::{MeasureSpec, Rig}};
///
/// let rig = Rig::bulldozer();
/// let found = resonance::find_resonance(&rig, 4, resonance::default_periods(),
///                                       MeasureSpec::ga_eval());
/// println!("resonance at {:.0} MHz", found.frequency_hz / 1e6);
/// ```
///
/// `threads` homogeneous copies are run, spread across modules, exactly
/// as the later GA evaluation will run them.
///
/// # Panics
///
/// Panics if `periods` is empty or `threads` is zero/too large for the
/// rig's chip.
pub fn find_resonance(
    rig: &Rig,
    threads: usize,
    periods: impl IntoIterator<Item = u32>,
    spec: MeasureSpec,
) -> ResonanceResult {
    let mut samples = Vec::new();
    for period in periods {
        assert!(period >= 2, "period must be at least 2 cycles");
        let kernel = ActivityPattern::square(period, 0).to_kernel(&rig.chip);
        let programs = vec![kernel.to_program(); threads];
        let droop = rig.measure_aligned(&programs, spec).max_droop();
        samples.push((period, droop));
    }
    assert!(
        !samples.is_empty(),
        "resonance sweep needs at least one period"
    );
    let (period_cycles, _) = samples
        .iter()
        .copied()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty samples");
    ResonanceResult {
        period_cycles,
        frequency_hz: rig.chip.clock_hz / period_cycles as f64,
        samples,
    }
}

/// The default sweep grid: 8..=96 cycles in steps of 2 — covers
/// 33–400 MHz at 3.2 GHz, bracketing any plausible first droop with
/// fine enough resolution to land on the resonant period exactly.
pub fn default_periods() -> impl Iterator<Item = u32> {
    (8..=96).step_by(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_finds_first_droop_band() {
        let rig = Rig::bulldozer();
        let result = find_resonance(&rig, 4, default_periods(), MeasureSpec::ga_eval());
        // PDN first droop is ≈106 MHz → period ≈30 cycles at 3.2 GHz.
        // The electrical loop period also depends on pipeline behaviour,
        // so accept the band around it.
        assert!(
            (20..=44).contains(&result.period_cycles),
            "period {} samples {:?}",
            result.period_cycles,
            result.samples
        );
        assert!(
            result.peak_droop() > 0.03,
            "peak droop {}",
            result.peak_droop()
        );
    }

    #[test]
    fn resonant_period_beats_far_off_periods() {
        let rig = Rig::bulldozer();
        let result = find_resonance(&rig, 4, [12, 30, 90], MeasureSpec::ga_eval());
        let droop_at = |p: u32| result.samples.iter().find(|(x, _)| *x == p).unwrap().1;
        assert!(droop_at(30) > droop_at(90), "{:?}", result.samples);
        assert!(droop_at(30) > droop_at(12), "{:?}", result.samples);
    }

    #[test]
    fn phenom_resonance_differs() {
        let b = find_resonance(
            &Rig::bulldozer(),
            4,
            default_periods(),
            MeasureSpec::ga_eval(),
        );
        let p = find_resonance(&Rig::phenom(), 4, default_periods(), MeasureSpec::ga_eval());
        // Different die decap and clock → different measured frequency.
        let rel = (b.frequency_hz - p.frequency_hz).abs() / b.frequency_hz;
        assert!(
            rel > 0.02,
            "b {} Hz vs p {} Hz",
            b.frequency_hz,
            p.frequency_hz
        );
    }

    #[test]
    #[should_panic(expected = "at least one period")]
    fn empty_sweep_panics() {
        let _ = find_resonance(&Rig::bulldozer(), 1, [], MeasureSpec::ga_eval());
    }

    #[test]
    fn json_round_trip_is_exact() {
        let r = ResonanceResult {
            period_cycles: 26,
            frequency_hz: 1.234e8,
            samples: vec![(16, 0.031), (26, 0.08125), (32, 1.0 / 3.0)],
        };
        let back = ResonanceResult::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        for ((_, a), (_, b)) in r.samples.iter().zip(&back.samples) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(ResonanceResult::from_json(&audit_measure::json::JsonValue::Null).is_err());
    }
}
