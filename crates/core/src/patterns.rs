//! The idealized periodic activity pattern of paper Fig. 7, and its
//! compilation into executable kernels.
//!
//! A resonant pattern is `H` cycles of high power followed by `L` cycles
//! of low power, repeated for `M` cycles to build a large resonant
//! droop; a first-droop *excitation* is a low region followed by a high
//! region whose sum is *not* periodic at the resonance (§3.B).

use audit_cpu::{ChipConfig, Inst, Opcode};
use audit_stressmark::Kernel;
use serde::{Deserialize, Serialize};

/// The Fig. 7 waveform parameters, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityPattern {
    /// High-power duration per period.
    pub h: u32,
    /// Low-power duration per period.
    pub l: u32,
    /// Cycles the pattern must repeat to build and sustain resonance.
    pub m: u32,
}

impl ActivityPattern {
    /// Creates a pattern.
    ///
    /// # Panics
    ///
    /// Panics if `h` or `l` is zero.
    pub fn new(h: u32, l: u32, m: u32) -> Self {
        assert!(
            h > 0 && l > 0,
            "pattern needs non-empty high and low regions"
        );
        ActivityPattern { h, l, m }
    }

    /// A 50 % duty-cycle pattern at `period` cycles, sustained for
    /// `periods` repetitions.
    pub fn square(period: u32, periods: u32) -> Self {
        let h = (period / 2).max(1);
        ActivityPattern::new(h, (period - h).max(1), period * periods)
    }

    /// Period `H + L` in cycles.
    pub fn period(&self) -> u32 {
        self.h + self.l
    }

    /// The pattern's fundamental frequency at the given clock.
    pub fn frequency_hz(&self, clock_hz: f64) -> f64 {
        clock_hz / self.period() as f64
    }

    /// The per-cycle activity waveform: `true` = high-power phase.
    /// Useful for driving the PDN directly in idealized experiments
    /// (Fig. 4).
    pub fn is_high(&self, cycle: u64) -> bool {
        (cycle % self.period() as u64) < self.h as u64
    }

    /// Compiles the pattern into an executable kernel for `chip`:
    /// the high phase is filled with a saturating FP/SIMD + integer mix
    /// (the strongest generic filler), the low phase with NOPs, both
    /// sized by the chip's fetch width.
    pub fn to_kernel(&self, chip: &ChipConfig) -> Kernel {
        let w = chip.core.fetch_width as usize;
        let hp_slots = self.h as usize * w;
        let hp: Vec<Inst> = (0..hp_slots)
            .map(|i| match i % 4 {
                0 | 1 => {
                    let op = if chip.supports_fma {
                        Opcode::SimdFma
                    } else {
                        Opcode::SimdFMul
                    };
                    Inst::new(op).fp_dst((i % 8) as u8).fp_srcs(12, 13)
                }
                2 => Inst::new(Opcode::IAdd)
                    .int_dst((i % 6) as u8)
                    .int_srcs(14, 15),
                _ => Inst::new(Opcode::Nop),
            })
            .collect();
        Kernel::new(
            format!("pattern-h{}l{}", self.h, self.l),
            hp,
            self.l as usize * w,
        )
    }
}

/// Builds a first-droop *excitation* kernel: a long quiet region (far
/// longer than the resonant period, so successive bursts do not
/// reinforce) followed by one abrupt full-width burst.
pub fn excitation_kernel(chip: &ChipConfig, burst_cycles: u32, quiet_cycles: u32) -> Kernel {
    let pattern = ActivityPattern::new(burst_cycles, quiet_cycles, 0);
    pattern
        .to_kernel(chip)
        .with_name(format!("excitation-b{burst_cycles}q{quiet_cycles}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_pattern_has_half_duty() {
        let p = ActivityPattern::square(30, 10);
        assert_eq!(p.h, 15);
        assert_eq!(p.l, 15);
        assert_eq!(p.period(), 30);
        assert_eq!(p.m, 300);
    }

    #[test]
    fn frequency_matches_period() {
        let p = ActivityPattern::square(32, 1);
        assert!((p.frequency_hz(3.2e9) - 1e8).abs() < 1.0);
    }

    #[test]
    fn waveform_alternates() {
        let p = ActivityPattern::new(2, 3, 0);
        let wave: Vec<bool> = (0..10).map(|c| p.is_high(c)).collect();
        assert_eq!(
            wave,
            [true, true, false, false, false, true, true, false, false, false]
        );
    }

    #[test]
    fn kernel_sizes_follow_fetch_width() {
        let chip = audit_cpu::ChipConfig::bulldozer();
        let k = ActivityPattern::new(15, 15, 0).to_kernel(&chip);
        assert_eq!(k.hp().len(), 60);
        assert_eq!(k.lp_nops(), 60);
    }

    #[test]
    fn kernel_respects_fma_support() {
        let phenom = audit_cpu::ChipConfig::phenom();
        let k = ActivityPattern::new(8, 8, 0).to_kernel(&phenom);
        assert!(k.to_program().avoids_fma());

        let bd = audit_cpu::ChipConfig::bulldozer();
        let k = ActivityPattern::new(8, 8, 0).to_kernel(&bd);
        assert!(!k.to_program().avoids_fma());
    }

    #[test]
    fn excitation_kernel_is_mostly_quiet() {
        let chip = audit_cpu::ChipConfig::bulldozer();
        let k = excitation_kernel(&chip, 20, 200);
        let p = k.to_program();
        let nops = p.body().iter().filter(|i| i.opcode.is_nop()).count();
        assert!(nops as f64 / p.len() as f64 > 0.8);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_high_region_panics() {
        let _ = ActivityPattern::new(0, 4, 0);
    }
}
