//! The dithering algorithm for guaranteed thread alignment (paper §3.B).
//!
//! With `C` cores each running the periodic high/low pattern of Fig. 7,
//! the misalignment of cores `1..C` relative to core 0 is a point in a
//! `(L+H)^(C−1)` search space. The dithering algorithm walks that space
//! exhaustively: core `c` receives one extra cycle of NOP padding every
//! `M·(L+H)^(c−1)` cycles, so within `M·(L+H)^(C−1)` cycles every
//! alignment — including the constructive worst case — has been held for
//! `M` cycles.
//!
//! The approximate variant tolerates a mismatch of `δ` cycles: pick
//! `L+H` divisible by `δ+1` and pad `δ+1` cycles every `M·k^(c−1)`
//! cycles with `k = (L+H)/(δ+1)`, shrinking the sweep by `(δ+1)^(C−1)` —
//! the paper's example drops an 8-core sweep from 18.35 minutes to 67 ms.
//!
//! [`DitherPlan`] reproduces that cost arithmetic exactly, and
//! [`dithered_droop`] executes the literal padding schedule on the rig.

use serde::{Deserialize, Serialize};

use audit_cpu::Program;

use crate::harness::{MeasureSpec, Measurement, Rig};

/// A dithering schedule for `C` cores running a loop of period `L+H`.
///
/// # Example
///
/// ```
/// use audit_core::dither::DitherPlan;
///
/// // The paper's §3.B example: 4 GHz, L+H = 24, M = 960.
/// let plan = DitherPlan::exact(4, 24, 960);
/// assert!((plan.sweep_seconds(4.0e9) - 3.3e-3).abs() < 2e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DitherPlan {
    cores: u32,
    period: u32,
    m: u64,
    delta: u32,
}

impl DitherPlan {
    /// Exact alignment: full single-cycle resolution (δ = 0).
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`, `period == 0`, or `m == 0`.
    pub fn exact(cores: u32, period: u32, m: u64) -> Self {
        Self::approximate(cores, period, m, 0)
    }

    /// Approximate alignment with maximum mismatch `delta` cycles.
    ///
    /// # Panics
    ///
    /// Panics if the inputs are zero where disallowed or if `period` is
    /// not a multiple of `delta + 1` (the paper's constraint on `L+H`).
    pub fn approximate(cores: u32, period: u32, m: u64, delta: u32) -> Self {
        assert!(cores >= 1, "need at least one core");
        assert!(period >= 1, "need a non-empty loop period");
        assert!(m >= 1, "resonance build-up M must be positive");
        assert!(
            period.is_multiple_of(delta + 1),
            "L+H = {period} must be a multiple of delta+1 = {}",
            delta + 1
        );
        DitherPlan {
            cores,
            period,
            m,
            delta,
        }
    }

    /// Number of cores `C`.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Loop period `L+H` in cycles.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Cycles `M` each alignment is held to build/sustain resonance.
    pub fn m(&self) -> u64 {
        self.m
    }

    /// Allowed mismatch δ in cycles (0 = exact).
    pub fn delta(&self) -> u32 {
        self.delta
    }

    /// Padding quantum in cycles: `δ + 1`.
    pub fn pad_cycles(&self) -> u64 {
        (self.delta + 1) as u64
    }

    /// Alignment steps per core: `k = (L+H)/(δ+1)`.
    pub fn k(&self) -> u64 {
        (self.period / (self.delta + 1)) as u64
    }

    /// Size of the alignment search space: `k^(C−1)`.
    pub fn alignment_count(&self) -> u128 {
        (self.k() as u128).pow(self.cores.saturating_sub(1))
    }

    /// Cycles to traverse the whole space: `M · k^(C−1)`.
    pub fn sweep_cycles(&self) -> u128 {
        self.m as u128 * self.alignment_count()
    }

    /// Wall-clock sweep time at the given core clock.
    pub fn sweep_seconds(&self, clock_hz: f64) -> f64 {
        self.sweep_cycles() as f64 / clock_hz
    }

    /// Padding period of core `c` (`1 ≤ c < C`): core `c` is padded by
    /// `δ+1` cycles every `M · k^(c−1)` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `c` is 0 (the reference core is never padded) or ≥ `C`.
    pub fn padding_period(&self, c: u32) -> u128 {
        assert!(c >= 1 && c < self.cores, "core {c} is not a dithered core");
        self.m as u128 * (self.k() as u128).pow(c - 1)
    }
}

/// Outcome of a literal dithering run.
#[derive(Debug, Clone)]
pub struct DitherOutcome {
    /// The full measurement over the sweep window.
    pub measurement: Measurement,
    /// Cycles actually swept.
    pub cycles: u64,
    /// The plan that was executed.
    pub plan: DitherPlan,
}

impl DitherOutcome {
    /// Worst droop found anywhere in the sweep — by construction, the
    /// aligned worst case is visited.
    pub fn max_droop(&self) -> f64 {
        self.measurement.max_droop()
    }
}

/// Executes the literal dithering schedule: all threads run `program`
/// from arbitrary `initial_offsets`, OS interrupts disabled, and core
/// `c` receives `δ+1` cycles of front-end padding every `M·k^(c−1)`
/// cycles. The recorded window covers one full sweep.
///
/// # Panics
///
/// Panics if `initial_offsets.len()` differs from the plan's core count,
/// if the sweep exceeds `max_cycles` (choose a coarser δ), or if the rig
/// rejects the program.
pub fn dithered_droop(
    rig: &Rig,
    program: &Program,
    plan: DitherPlan,
    initial_offsets: &[u64],
    max_cycles: u64,
) -> DitherOutcome {
    assert_eq!(
        initial_offsets.len(),
        plan.cores() as usize,
        "one initial offset per core"
    );
    let sweep = plan.sweep_cycles();
    assert!(
        sweep <= max_cycles as u128,
        "sweep of {sweep} cycles exceeds cap {max_cycles}; use the approximate plan"
    );
    let rig = Rig {
        os: None,
        ..rig.clone()
    };
    let programs = vec![program.clone(); plan.cores() as usize];
    let spec = MeasureSpec {
        warmup_cycles: 1_000,
        record_cycles: sweep as u64,
        settle_cycles: 200_000,
        check_failure: false,
        trigger_below_nominal: None,
        envelope_decimation: (sweep as u64 / 2_048).max(1),
        keep_traces: false,
    };

    // Next padding deadline per dithered core.
    let mut next_pad: Vec<u128> = (1..plan.cores()).map(|c| plan.padding_period(c)).collect();
    let pad = plan.pad_cycles();
    let mut hook = |now: u64, chip: &mut audit_cpu::ChipSim| {
        for (i, deadline) in next_pad.iter_mut().enumerate() {
            if now as u128 >= *deadline {
                chip.inject_stall(i + 1, pad);
                *deadline += plan.padding_period(i as u32 + 1);
            }
        }
    };
    let measurement = rig.measure_with_hook(&programs, initial_offsets, spec, &mut hook);
    DitherOutcome {
        measurement,
        cycles: sweep as u64,
        plan,
    }
}

/// A static alignment sweep: measures the droop at each relative thread
/// offset.
///
/// Dithering uses constructive alignment to *maximize* droop; a
/// noise-aware scheduler (Reddi et al., discussed in the paper's §6)
/// wants the opposite — the *destructive* alignment that minimizes it.
/// Both are arg-extremes of the same sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentSweep {
    /// `(offset, max droop)` per sampled alignment; thread `i` starts at
    /// `i · offset` cycles.
    pub samples: Vec<(u64, f64)>,
}

impl AlignmentSweep {
    /// Runs the sweep: offsets `0, step, 2·step, …` up to `period`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or the rig rejects the program.
    pub fn run(
        rig: &Rig,
        program: &Program,
        threads: usize,
        period: u64,
        step: u64,
        spec: MeasureSpec,
    ) -> AlignmentSweep {
        assert!(step > 0, "sweep step must be positive");
        let samples = (0..period.max(1))
            .step_by(step as usize)
            .map(|offset| {
                let offsets: Vec<u64> = (0..threads as u64).map(|i| i * offset).collect();
                let droop = rig
                    .measure_with_offsets(&vec![program.clone(); threads], &offsets, spec)
                    .max_droop();
                (offset, droop)
            })
            .collect();
        AlignmentSweep { samples }
    }

    /// The constructive (worst-droop) alignment — what dithering finds.
    pub fn constructive(&self) -> (u64, f64) {
        self.samples
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty sweep")
    }

    /// The destructive (quietest) alignment — what a noise-aware
    /// scheduler would pick.
    pub fn destructive(&self) -> (u64, f64) {
        self.samples
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty sweep")
    }

    /// Droop head-room the scheduler buys: constructive − destructive.
    pub fn scheduling_headroom(&self) -> f64 {
        self.constructive().1 - self.destructive().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audit_stressmark::manual;

    #[test]
    fn paper_cost_numbers_reproduce() {
        // §3.B: 4 GHz, L+H = 24, M = 24×40 = 960.
        let clock = 4.0e9;
        let four = DitherPlan::exact(4, 24, 960);
        assert!(
            (four.sweep_seconds(clock) - 3.3e-3).abs() < 0.2e-3,
            "{}",
            four.sweep_seconds(clock)
        );

        let eight = DitherPlan::exact(8, 24, 960);
        let minutes = eight.sweep_seconds(clock) / 60.0;
        assert!((minutes - 18.35).abs() < 0.3, "{minutes} min");

        let approx = DitherPlan::approximate(8, 24, 960, 3);
        let ms = approx.sweep_seconds(clock) * 1e3;
        assert!((ms - 67.0).abs() < 3.0, "{ms} ms");
    }

    #[test]
    fn approximate_shrinks_search_space() {
        let exact = DitherPlan::exact(4, 24, 960);
        let approx = DitherPlan::approximate(4, 24, 960, 3);
        assert_eq!(exact.alignment_count(), 24u128.pow(3));
        assert_eq!(approx.alignment_count(), 6u128.pow(3));
        assert!(approx.sweep_cycles() < exact.sweep_cycles());
    }

    #[test]
    fn padding_periods_scale_geometrically() {
        let plan = DitherPlan::exact(4, 30, 300);
        assert_eq!(plan.padding_period(1), 300);
        assert_eq!(plan.padding_period(2), 300 * 30);
        assert_eq!(plan.padding_period(3), 300 * 900);
    }

    #[test]
    #[should_panic(expected = "multiple of delta+1")]
    fn approximate_requires_divisible_period() {
        let _ = DitherPlan::approximate(4, 25, 100, 3);
    }

    #[test]
    #[should_panic(expected = "not a dithered core")]
    fn reference_core_is_never_padded() {
        let _ = DitherPlan::exact(4, 24, 100).padding_period(0);
    }

    #[test]
    fn dithering_recovers_aligned_droop_from_misalignment() {
        // 2 threads, arbitrary initial skew. The sweep must come within
        // a few millivolts of the known aligned worst case.
        let rig = Rig::bulldozer();
        let program = manual::sm_res();
        let aligned = rig
            .measure_aligned(&vec![program.clone(); 2], MeasureSpec::ga_eval())
            .max_droop();

        let plan = DitherPlan::exact(2, 30, 600);
        let outcome = dithered_droop(&rig, &program, plan, &[0, 13], 100_000);
        assert!(
            outcome.max_droop() > 0.9 * aligned,
            "dithered {} vs aligned {aligned}",
            outcome.max_droop()
        );
    }

    #[test]
    fn dithered_beats_static_misalignment() {
        let rig = Rig::bulldozer();
        let program = manual::sm_res();
        // A deliberately destructive static alignment…
        let stuck = rig
            .measure_with_offsets(&vec![program.clone(); 2], &[0, 13], MeasureSpec::ga_eval())
            .max_droop();
        // …which the dither sweep must escape.
        let plan = DitherPlan::exact(2, 30, 600);
        let outcome = dithered_droop(&rig, &program, plan, &[0, 13], 100_000);
        assert!(
            outcome.max_droop() > stuck + 0.005,
            "dithered {} vs stuck {stuck}",
            outcome.max_droop()
        );
    }

    #[test]
    fn alignment_sweep_brackets_dithered_droop() {
        let rig = Rig::bulldozer();
        let program = manual::sm_res();
        let sweep = AlignmentSweep::run(
            &rig,
            &program,
            2,
            30,
            3,
            crate::harness::MeasureSpec::ga_eval(),
        );
        let (c_off, c_droop) = sweep.constructive();
        let (d_off, d_droop) = sweep.destructive();
        assert!(c_droop > d_droop, "sweep is flat: {sweep:?}");
        assert_ne!(c_off, d_off);
        // Offset 0 (perfect alignment) should be at or near the top.
        let at_zero = sweep.samples[0].1;
        assert!(
            at_zero > 0.85 * c_droop,
            "aligned {at_zero} vs best {c_droop}"
        );
        assert!(sweep.scheduling_headroom() > 0.01);
    }

    #[test]
    #[should_panic(expected = "exceeds cap")]
    fn oversized_sweep_is_rejected() {
        let rig = Rig::bulldozer();
        let plan = DitherPlan::exact(8, 24, 960);
        let _ = dithered_droop(&rig, &manual::sm_res(), plan, &[0; 8], 1_000_000);
    }
}
