//! AUDIT: AUtomated DI/dT stressmark generation.
//!
//! This crate implements the framework of Kim et al., *AUDIT: Stress
//! Testing the Automatic Way* (MICRO 2012): a genetic algorithm that,
//! given only an opcode menu and a closed measurement loop, evolves
//! instruction sequences that maximize supply-voltage droop on a
//! multi-core processor — no microarchitectural knowledge required.
//!
//! The pieces map one-to-one onto the paper:
//!
//! * [`harness`] — the "Measure HW" box of Fig. 5: chip model + PDN +
//!   oscilloscope + failure model co-simulation,
//! * [`resonance`] — the automatic resonance-frequency sweep (§3),
//! * [`dither`] — the exact and approximate dithering algorithms that
//!   guarantee worst-case thread alignment (§3.B), plus their cost model,
//! * [`ga`] — the hierarchical (sub-blocked) genetic search (§3.C),
//! * [`journal`] — crash-safe checkpoint/resume: the NDJSON run journal
//!   every long search can be killed into and resumed from,
//! * [`resilient`] — the resilience layer for fault-injected runs:
//!   repeat-median measurement, bounded retry, watchdog, quarantine,
//!   and the crash-tolerant journaled Vmin search,
//! * [`audit`] — the top-level [`audit::Audit`] driver producing
//!   the paper's A-Ex, A-Res, A-Res-8T, and A-Res-Th stressmarks,
//! * [`patterns`] — the idealized high/low activity pattern of Fig. 7,
//! * [`report`] — plain-text/CSV table emission for the experiment
//!   binaries,
//! * [`suite`] — §5.A.6 stressmark-*suite* generation: one stressmark
//!   per usage scenario, cross-evaluated,
//! * [`analyze`] — the static stressmark analyzer (re-export of
//!   `audit-analyze`): IR verifier, lint catalog, and the static
//!   pressure model the GA uses as a pre-screen surrogate.
//!
//! # Quickstart
//!
//! ```no_run
//! use audit_core::audit::{Audit, AuditOptions};
//! use audit_core::harness::Rig;
//!
//! let rig = Rig::bulldozer();
//! let audit = Audit::new(rig, AuditOptions::fast_demo());
//! let run = audit.generate_resonant(4);
//! println!("best droop: {:.1} mV", run.best_droop * 1e3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod dither;
pub mod ga;
pub mod harness;
pub mod journal;
pub mod minimize;
pub mod patterns;
pub mod report;
pub mod resilient;
pub mod resonance;
pub mod shmoo;
pub mod suite;

pub use audit::{Audit, AuditOptions, AuditOptionsBuilder, FitnessSpec};
pub use audit_analyze as analyze;
pub use audit_error::{AuditError, AuditResult};
pub use harness::{MeasureSpec, MeasureSpecBuilder, Measurement, Rig};
pub use journal::{Journal, JournalRecord, JournalSink, JournalWriter, MemJournal, NullSink};
pub use minimize::{MinimizeResult, MinimizeSearch};
pub use resilient::{
    MeasurePolicy, ResilienceLog, ResilienceReport, ResilientOutcome, VminResult, VminSearch,
};
pub use shmoo::{ShmooCell, ShmooResult, ShmooSweep, VfPoint};
