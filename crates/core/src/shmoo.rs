//! The automated DVFS shmoo driver: a voltage × frequency sweep of the
//! failure margin.
//!
//! A *shmoo plot* maps the safe operating region of a part: at each
//! (supply voltage, core clock) operating point, how far can the supply
//! sag before the chip malfunctions? The paper measures one column of
//! that plane — the voltage-at-failure search of §5.A.4 at nominal
//! clock. This module automates the whole plane: [`ShmooSweep`] walks a
//! V/F grid in a fixed row-major order, re-running the journaled
//! [`VminSearch`] at every [`VfPoint`] on a rig re-tuned via
//! [`Rig::at_voltage`] + [`Rig::at_clock`], and records the resulting
//! safe-margin surface.
//!
//! # Crash tolerance
//!
//! The sweep inherits the Vmin search's reboot-and-continue contract
//! and extends it one level up. Before a point's search begins, a
//! write-ahead `shmoo_point … pending` record lands in the journal; its
//! `done` record (carrying `v_fail`, `margin`, and the probe count)
//! lands after the search settles. Between the two sit the point's own
//! `vmin_step` records. A process killed anywhere mid-plane therefore
//! resumes exactly where it died ([`ShmooSweep::resume_from`]): done
//! points replay without re-measurement, the in-progress point resumes
//! its own bisection trail, and untouched points run live. A sweep
//! killed at any record boundary whose last record is terminal resumes
//! to a byte-identical journal (the same property `vmin_step` has; a
//! kill mid-probe leaves a benign orphan `pending` line, re-probed
//! deterministically).

use std::collections::HashMap;

use audit_cpu::Program;
use audit_error::{AuditError, AuditResult};

use crate::harness::{MeasureSpec, Rig};
use crate::journal::{Journal, JournalRecord, JournalSink, ShmooPointResult};
use crate::resilient::{MeasurePolicy, VminSearch};

/// One operating point of the sweep: a (supply voltage, core clock)
/// pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VfPoint {
    /// Nominal supply voltage, in volts.
    pub volts: f64,
    /// Core clock, in Hz.
    pub clock_hz: f64,
}

/// A voltage × frequency sweep of the failure margin.
///
/// Points are visited row-major: the outer loop walks `volts`, the
/// inner loop walks `clocks_hz`, so point `i` is
/// `(volts[i / clocks.len()], clocks[i % clocks.len()])`. The order is
/// part of the journal contract — a resumed sweep must enumerate the
/// same grid in the same order.
#[derive(Debug, Clone, PartialEq)]
pub struct ShmooSweep {
    /// Supply voltages of the grid rows, in volts.
    pub volts: Vec<f64>,
    /// Core clocks of the grid columns, in Hz.
    pub clocks_hz: Vec<f64>,
    /// Measurement window each Vmin probe runs.
    pub spec: MeasureSpec,
    /// Retry/watchdog/fault policy for every probe.
    pub policy: MeasurePolicy,
}

impl ShmooSweep {
    /// A sweep over the given grid with the paper's per-point search
    /// parameters (12.5 mV resolution, floor at half the point's
    /// voltage).
    pub fn grid(volts: Vec<f64>, clocks_hz: Vec<f64>, spec: MeasureSpec, policy: MeasurePolicy) -> Self {
        ShmooSweep {
            volts,
            clocks_hz,
            spec,
            policy,
        }
    }

    /// Validates the grid and policy.
    ///
    /// # Errors
    ///
    /// [`AuditError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> AuditResult<()> {
        self.policy.validate()?;
        if self.volts.is_empty() || self.clocks_hz.is_empty() {
            return Err(AuditError::invalid(
                "ShmooSweep",
                "grid",
                "both voltage and clock axes need at least one value",
            ));
        }
        for &v in &self.volts {
            if !(v.is_finite() && v > 0.0) {
                return Err(AuditError::invalid(
                    "ShmooSweep",
                    "volts",
                    format!("voltages must be positive and finite (got {v:?})"),
                ));
            }
        }
        for &f in &self.clocks_hz {
            if !(f.is_finite() && f > 0.0) {
                return Err(AuditError::invalid(
                    "ShmooSweep",
                    "clocks_hz",
                    format!("clocks must be positive and finite (got {f:?})"),
                ));
            }
        }
        Ok(())
    }

    /// The grid in sweep order (row-major, voltage-outer).
    pub fn points(&self) -> Vec<VfPoint> {
        self.volts
            .iter()
            .flat_map(|&volts| {
                self.clocks_hz.iter().map(move |&clock_hz| VfPoint { volts, clock_hz })
            })
            .collect()
    }

    /// Runs the sweep from scratch, journaling every point and probe to
    /// `sink`.
    ///
    /// # Errors
    ///
    /// Propagates validation and journal-append failures.
    pub fn run(
        &self,
        rig: &Rig,
        programs: &[Program],
        offsets: &[u64],
        sink: &mut dyn JournalSink,
    ) -> AuditResult<ShmooResult> {
        self.drive(rig, programs, offsets, sink, &HashMap::new(), None)
    }

    /// Resumes a killed sweep from its journal: points with a `done`
    /// record replay without re-measurement, the point left `pending`
    /// at the kill resumes its own `vmin_step` trail, and the rest of
    /// the plane runs live. New records append to the same `sink`.
    ///
    /// # Errors
    ///
    /// [`AuditError::Resume`] if a journaled point disagrees with the
    /// operating point this sweep would visit at that index (the
    /// journal belongs to a different grid); otherwise as
    /// [`ShmooSweep::run`].
    pub fn resume_from(
        &self,
        journal: &Journal,
        rig: &Rig,
        programs: &[Program],
        offsets: &[u64],
        sink: &mut dyn JournalSink,
    ) -> AuditResult<ShmooResult> {
        let mut done: HashMap<u64, (f64, f64, ShmooPointResult)> = HashMap::new();
        // The point whose pending record has no matching done record,
        // plus the vmin_step trail journaled under it.
        let mut open: Option<(u64, Vec<JournalRecord>)> = None;
        for rec in &journal.records {
            match rec {
                JournalRecord::ShmooPoint {
                    index,
                    volts,
                    clock_hz,
                    result,
                } => match result {
                    Some(r) => {
                        done.insert(*index, (*volts, *clock_hz, r.clone()));
                        open = None;
                    }
                    None => open = Some((*index, Vec::new())),
                },
                other => {
                    if let Some((_, trail)) = open.as_mut() {
                        trail.push(other.clone());
                    }
                }
            }
        }
        self.drive(rig, programs, offsets, sink, &done, open)
    }

    /// The shared driver: every point is replayed, resumed, or probed
    /// live.
    fn drive(
        &self,
        rig: &Rig,
        programs: &[Program],
        offsets: &[u64],
        sink: &mut dyn JournalSink,
        done: &HashMap<u64, (f64, f64, ShmooPointResult)>,
        open: Option<(u64, Vec<JournalRecord>)>,
    ) -> AuditResult<ShmooResult> {
        self.validate()?;
        let mut result = ShmooResult {
            cells: Vec::new(),
            live_points: 0,
            replayed_points: 0,
        };
        for (i, point) in self.points().into_iter().enumerate() {
            let index = i as u64;
            if let Some((volts, clock_hz, settled)) = done.get(&index) {
                if volts.to_bits() != point.volts.to_bits()
                    || clock_hz.to_bits() != point.clock_hz.to_bits()
                {
                    return Err(AuditError::resume(format!(
                        "journal settled {volts} V / {clock_hz} Hz at shmoo point {index}, \
                         but this sweep visits {} V / {} Hz — different grid",
                        point.volts, point.clock_hz
                    )));
                }
                result.replayed_points += 1;
                result.cells.push(ShmooCell {
                    point,
                    v_fail: settled.v_fail,
                    margin: settled.margin,
                    steps: settled.steps,
                });
                continue;
            }
            let target = rig.at_voltage(point.volts).at_clock(point.clock_hz);
            let search = VminSearch::paper(point.volts, self.policy);
            let vres = match &open {
                // The killed run already journaled this point's pending
                // record (write-ahead); re-appending it would diverge
                // the journal from an uninterrupted run's bytes.
                Some((open_index, trail)) if *open_index == index => {
                    let sub = Journal {
                        records: trail.clone(),
                    };
                    search.resume_from(&sub, &target, programs, offsets, self.spec, sink)?
                }
                _ => {
                    sink.append(&JournalRecord::ShmooPoint {
                        index,
                        volts: point.volts,
                        clock_hz: point.clock_hz,
                        result: None,
                    })?;
                    search.run(&target, programs, offsets, self.spec, sink)?
                }
            };
            // A point whose workload never failed above the floor
            // records the floor as its failure bound: the margin column
            // saturates there (a lower bound, not an exact crossing).
            let v_fail = vres.v_fail.unwrap_or(search.v_floor);
            let settled = ShmooPointResult {
                v_fail,
                margin: point.volts - v_fail,
                steps: vres.steps,
            };
            sink.append(&JournalRecord::ShmooPoint {
                index,
                volts: point.volts,
                clock_hz: point.clock_hz,
                result: Some(settled.clone()),
            })?;
            result.live_points += 1;
            result.cells.push(ShmooCell {
                point,
                v_fail: settled.v_fail,
                margin: settled.margin,
                steps: settled.steps,
            });
        }
        Ok(result)
    }
}

/// One settled cell of the margin surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShmooCell {
    /// The operating point.
    pub point: VfPoint,
    /// Highest voltage at which the workload malfunctioned (clamped to
    /// the search floor when it never failed).
    pub v_fail: f64,
    /// Safe margin: the point's nominal voltage minus `v_fail`.
    pub margin: f64,
    /// Vmin probe steps the point's search settled (replayed + live).
    pub steps: u64,
}

/// A finished sweep: the margin surface in sweep order.
#[derive(Debug, Clone, PartialEq)]
pub struct ShmooResult {
    /// Every grid point's settled cell, in sweep order.
    pub cells: Vec<ShmooCell>,
    /// Points this process measured (or finished measuring) live.
    pub live_points: u64,
    /// Points replayed whole from the journal.
    pub replayed_points: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::MemJournal;
    use audit_measure::{FaultPlan, FaultRates};
    use audit_stressmark::manual;

    fn fast_spec() -> MeasureSpec {
        MeasureSpec {
            warmup_cycles: 500,
            record_cycles: 1_500,
            settle_cycles: 20_000,
            ..MeasureSpec::ga_eval()
        }
    }

    fn sweep() -> ShmooSweep {
        ShmooSweep::grid(
            vec![0.95, 1.0],
            vec![2.8e9, 3.2e9],
            fast_spec(),
            MeasurePolicy::disabled(),
        )
    }

    fn programs() -> Vec<Program> {
        vec![manual::sm_res(); 2]
    }

    #[test]
    fn sweep_settles_every_grid_point() {
        let rig = Rig::bulldozer();
        let mut mem = MemJournal::default();
        let result = sweep()
            .run(&rig, &programs(), &[0, 0], &mut mem)
            .expect("sweep runs");
        assert_eq!(result.cells.len(), 4);
        assert_eq!(result.live_points, 4);
        assert_eq!(result.replayed_points, 0);
        for cell in &result.cells {
            assert!(cell.margin >= 0.0, "margin must be non-negative");
            assert!(cell.v_fail <= cell.point.volts);
        }
        // One pending + one done record per point, in sweep order.
        let shmoo: Vec<_> = mem
            .records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::ShmooPoint { index, result, .. } => {
                    Some((*index, result.is_some()))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            shmoo,
            vec![
                (0, false),
                (0, true),
                (1, false),
                (1, true),
                (2, false),
                (2, true),
                (3, false),
                (3, true)
            ]
        );
    }

    #[test]
    fn resume_replays_done_points_without_remeasuring() {
        let rig = Rig::bulldozer();
        let programs = programs();
        let mut reference = MemJournal::default();
        let full = sweep()
            .run(&rig, &programs, &[0, 0], &mut reference)
            .expect("reference sweep");

        // Kill after the second point's done record: keep records up to
        // and including the done record for index 1.
        let cut = reference
            .records
            .iter()
            .position(|r| {
                matches!(
                    r,
                    JournalRecord::ShmooPoint {
                        index: 1,
                        result: Some(_),
                        ..
                    }
                )
            })
            .expect("done record for point 1")
            + 1;
        let mut resumed = MemJournal {
            records: reference.records[..cut].to_vec(),
        };
        let journal = Journal {
            records: resumed.records.clone(),
        };
        let result = sweep()
            .resume_from(&journal, &rig, &programs, &[0, 0], &mut resumed)
            .expect("resumed sweep");
        assert_eq!(result.cells, full.cells);
        assert_eq!(result.replayed_points, 2);
        assert_eq!(result.live_points, 2);
        assert_eq!(
            resumed.records, reference.records,
            "a resume from a terminal boundary must rebuild the journal byte-identically"
        );
    }

    #[test]
    fn resume_finishes_a_point_killed_mid_bisection() {
        let rig = Rig::bulldozer();
        let programs = programs();
        let mut reference = MemJournal::default();
        let full = sweep()
            .run(&rig, &programs, &[0, 0], &mut reference)
            .expect("reference sweep");

        // Kill inside point 2's bisection: keep its pending record and
        // the first two settled vmin steps.
        let pending = reference
            .records
            .iter()
            .position(|r| {
                matches!(
                    r,
                    JournalRecord::ShmooPoint {
                        index: 2,
                        result: None,
                        ..
                    }
                )
            })
            .expect("pending record for point 2");
        let cut = pending + 5; // pending + 2 × (write-ahead + terminal)
        let mut resumed = MemJournal {
            records: reference.records[..cut].to_vec(),
        };
        let journal = Journal {
            records: resumed.records.clone(),
        };
        let result = sweep()
            .resume_from(&journal, &rig, &programs, &[0, 0], &mut resumed)
            .expect("resumed sweep");
        assert_eq!(result.cells, full.cells);
        assert_eq!(result.replayed_points, 2);
        assert_eq!(
            resumed.records, reference.records,
            "mid-bisection resume at a terminal boundary must rebuild the journal"
        );
    }

    #[test]
    fn resume_with_faults_matches_the_uninterrupted_sweep() {
        let rig = Rig::bulldozer();
        let programs = programs();
        let faulty = ShmooSweep {
            policy: MeasurePolicy {
                faults: FaultPlan::new(
                    11,
                    FaultRates {
                        crash_rate: 0.4,
                        ..FaultRates::none()
                    },
                )
                .unwrap(),
                retries: 5,
                ..MeasurePolicy::disabled()
            },
            ..sweep()
        };
        let mut reference = MemJournal::default();
        let full = faulty
            .run(&rig, &programs, &[0, 0], &mut reference)
            .expect("reference sweep");

        let cut = reference.records.len() / 2;
        let mut resumed = MemJournal {
            records: reference.records[..cut].to_vec(),
        };
        let journal = Journal {
            records: resumed.records.clone(),
        };
        let result = faulty
            .resume_from(&journal, &rig, &programs, &[0, 0], &mut resumed)
            .expect("resumed sweep");
        assert_eq!(
            result.cells, full.cells,
            "a fault-injected sweep must resume to the same surface"
        );
    }

    #[test]
    fn resume_rejects_a_journal_from_a_different_grid() {
        let rig = Rig::bulldozer();
        let programs = programs();
        let mut mem = MemJournal::default();
        sweep()
            .run(&rig, &programs, &[0, 0], &mut mem)
            .expect("sweep runs");
        let journal = Journal {
            records: mem.records.clone(),
        };
        let other = ShmooSweep {
            volts: vec![0.90, 1.0],
            ..sweep()
        };
        let err = other
            .resume_from(&journal, &rig, &programs, &[0, 0], &mut MemJournal::default())
            .unwrap_err();
        assert!(
            matches!(err, AuditError::Resume { .. }),
            "grid mismatch must be a resume error, got {err:?}"
        );
    }

    #[test]
    fn validate_rejects_bad_grids() {
        let empty = ShmooSweep {
            volts: vec![],
            ..sweep()
        };
        assert!(empty.validate().is_err());
        let negative = ShmooSweep {
            clocks_hz: vec![-1.0],
            ..sweep()
        };
        assert!(negative.validate().is_err());
    }
}
