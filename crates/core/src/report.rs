//! Plain-text and CSV table emission for the experiment binaries.
//!
//! Every figure/table binary in `audit-bench` prints its rows through
//! this module, so the output format is uniform and machine-readable.
//! [`journal_summary`] renders a run journal's shape as a table — what
//! the CLI prints before resuming a killed run.

use std::fmt;

use crate::journal::{Journal, JournalRecord};

/// A simple column-aligned table with CSV export.
///
/// # Example
///
/// ```
/// use audit_core::report::Table;
///
/// let mut t = Table::new(vec!["workload", "droop_mV"]);
/// t.row(vec!["zeusmp".into(), "41.2".into()]);
/// let text = t.to_string();
/// assert!(text.contains("zeusmp"));
/// assert_eq!(t.to_csv().lines().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// CSV rendering (headers + rows). Cells containing commas or
    /// quotes are quoted.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        for row in &self.rows {
            out.push('\n');
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &rule)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats volts as signed millivolts ("-62.5 mV").
pub fn mv(volts: f64) -> String {
    format!("{:.1} mV", volts * 1e3)
}

/// Formats a ratio relative to a baseline ("1.39").
pub fn rel(value: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.2}", value / baseline)
    }
}

/// Formats a failure point relative to a reference voltage, in the
/// paper's Table I style: "VF" for the reference itself, "VF - 62 mV"
/// below it.
pub fn vf_rel(v: f64, v_ref: f64) -> String {
    let delta_mv = ((v_ref - v) * 1e3).round();
    if delta_mv.abs() < 0.5 {
        "VF".to_string()
    } else if delta_mv > 0.0 {
        format!("VF - {delta_mv:.0} mV")
    } else {
        format!("VF + {:.0} mV", -delta_mv)
    }
}

/// Renders a numeric series as a one-line Unicode sparkline
/// (`▁▂▃▄▅▆▇█`), resampled to at most `width` columns.
///
/// Flat series render as a line of mid-level blocks; empty series as an
/// empty string. Used by the figure binaries to sketch waveforms inline.
///
/// # Example
///
/// ```
/// use audit_core::report::sparkline;
///
/// let s = sparkline(&[0.0, 0.5, 1.0, 0.5, 0.0], 5);
/// assert_eq!(s.chars().count(), 5);
/// assert!(s.contains('█'));
/// ```
pub fn sparkline(values: &[f64], width: usize) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    // Resample by bucket-mean to the requested width.
    let cols = width.min(values.len());
    let resampled: Vec<f64> = (0..cols)
        .map(|c| {
            let lo = c * values.len() / cols;
            let hi = ((c + 1) * values.len() / cols).max(lo + 1);
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect();
    let min = resampled.iter().copied().fold(f64::INFINITY, f64::min);
    let max = resampled.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    resampled
        .iter()
        .map(|v| {
            if span <= 0.0 {
                LEVELS[3]
            } else {
                let idx = ((v - min) / span * 7.0).round() as usize;
                LEVELS[idx.min(7)]
            }
        })
        .collect()
}

/// Summarizes a run journal as a table: one row per phase boundary and
/// GA section, with generation counts and the best fitness recorded so
/// far. This is what `audit-cli --resume` prints so the user can see
/// where the killed run got to before it continues.
pub fn journal_summary(journal: &Journal) -> Table {
    let mut t = Table::new(vec!["record", "detail"]);
    let mut gens = 0usize;
    let mut best = f64::NEG_INFINITY;
    let flush_ga = |t: &mut Table, gens: &mut usize, best: &mut f64| {
        if *gens > 0 {
            t.row(vec![
                "ga".into(),
                format!("{gens} generations, best fitness {best:.6}"),
            ]);
            *gens = 0;
            *best = f64::NEG_INFINITY;
        }
    };
    for rec in &journal.records {
        match rec {
            JournalRecord::RunStart { schema, mode, .. } => {
                t.row(vec![
                    "run_start".into(),
                    format!("mode {mode}, schema v{schema}"),
                ]);
            }
            JournalRecord::PhaseStart { name } => {
                flush_ga(&mut t, &mut gens, &mut best);
                t.row(vec!["phase_start".into(), name.clone()]);
            }
            JournalRecord::PhaseEnd { name, .. } => {
                flush_ga(&mut t, &mut gens, &mut best);
                t.row(vec!["phase_end".into(), name.clone()]);
            }
            JournalRecord::GaStart { cfg, .. } => {
                flush_ga(&mut t, &mut gens, &mut best);
                t.row(vec![
                    "ga_start".into(),
                    format!(
                        "population {}, up to {} generations, seed {:#x}",
                        cfg.population, cfg.generations, cfg.seed
                    ),
                ]);
            }
            JournalRecord::SurrogateBudget { budget } => {
                t.row(vec![
                    "surrogate_budget".into(),
                    format!("top-{budget} measured per generation"),
                ]);
            }
            JournalRecord::Cascade { budget } => {
                t.row(vec![
                    "cascade".into(),
                    format!("top-{budget} fully simulated per generation"),
                ]);
            }
            JournalRecord::Repair { index, rerolls } => {
                t.row(vec![
                    "repair".into(),
                    format!("generation {index}: {rerolls} slot re-rolls"),
                ]);
            }
            JournalRecord::ParetoFront(f) => {
                // The following generation record carries the scores;
                // here only the front size is worth a row.
                t.row(vec![
                    "pareto_front".into(),
                    format!(
                        "generation {}: {} non-dominated of {}",
                        f.index,
                        f.ranks.iter().filter(|&&r| r == 0).count(),
                        f.ranks.len()
                    ),
                ]);
            }
            JournalRecord::Generation(g) => {
                gens += 1;
                best = g.scores.iter().copied().fold(best, f64::max);
            }
            JournalRecord::GaEnd => {
                flush_ga(&mut t, &mut gens, &mut best);
                t.row(vec!["ga_end".into(), "search complete".into()]);
            }
            JournalRecord::VminStep {
                step,
                voltage,
                attempt,
                outcome,
            } => {
                // Every terminal record is preceded by its write-ahead
                // pending shadow; skip the shadows so each probe is one
                // row (a trailing pending row would only repeat what the
                // resume banner already says).
                if *outcome != crate::journal::VminOutcome::Pending {
                    t.row(vec![
                        "vmin_step".into(),
                        format!(
                            "step {step}: {:.4} V {} (attempt {attempt})",
                            voltage,
                            outcome.as_str()
                        ),
                    ]);
                }
            }
            JournalRecord::Retry {
                step,
                attempt,
                reason,
                ..
            } => {
                t.row(vec![
                    "retry".into(),
                    format!("step {step} attempt {attempt}: {reason}"),
                ]);
            }
            JournalRecord::Quarantine {
                step,
                attempts,
                fallback,
            } => {
                t.row(vec![
                    "quarantine".into(),
                    format!("step {step} after {attempts} attempts, fallback {fallback}"),
                ]);
            }
            JournalRecord::ShmooPoint {
                index,
                volts,
                clock_hz,
                result,
            } => {
                // Same write-ahead discipline as vmin_step: skip the
                // pending shadows so each settled point is one row.
                if let Some(r) = result {
                    t.row(vec![
                        "shmoo_point".into(),
                        format!(
                            "point {index}: {volts:.4} V @ {:.0} MHz, margin {:.4} V",
                            clock_hz / 1e6,
                            r.margin
                        ),
                    ]);
                }
            }
            JournalRecord::MinimizeStep {
                step,
                kept,
                outcome,
                droop,
                ..
            } => {
                // Same write-ahead discipline as vmin_step: skip the
                // pending shadows so each settled probe is one row.
                if outcome.is_terminal() {
                    t.row(vec![
                        "minimize_step".into(),
                        format!(
                            "step {step}: {kept} insts {}{}",
                            outcome.as_str(),
                            droop
                                .map(|d| format!(", droop {d:.4} V"))
                                .unwrap_or_default()
                        ),
                    ]);
                }
            }
            JournalRecord::WorkerEvicted {
                worker,
                key,
                quarantined,
            } => {
                t.row(vec![
                    "worker_evicted".into(),
                    format!(
                        "worker {worker} voted wrong on key {key:#x}; \
                         {quarantined} jobs re-dispatched"
                    ),
                ]);
            }
            JournalRecord::RunEnd => {
                flush_ga(&mut t, &mut gens, &mut best);
                t.row(vec!["run_end".into(), "run complete".into()]);
            }
        }
    }
    flush_ga(&mut t, &mut gens, &mut best);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_aligns_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y".into(), "plain".into()]);
        assert_eq!(t.to_csv(), "a,b\n\"x,y\",plain");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mv(0.0625), "62.5 mV");
        assert_eq!(rel(1.39, 1.0), "1.39");
        assert_eq!(rel(1.0, 0.0), "n/a");
        assert_eq!(vf_rel(1.0, 1.0), "VF");
        assert_eq!(vf_rel(0.938, 1.0), "VF - 62 mV");
        assert_eq!(vf_rel(1.05, 1.0), "VF + 50 mV");
    }

    #[test]
    fn sparkline_shapes() {
        // Monotone ramp: first char lowest, last char highest.
        let s: Vec<char> = sparkline(&[0.0, 1.0, 2.0, 3.0], 4).chars().collect();
        assert_eq!(s[0], '▁');
        assert_eq!(s[3], '█');
        // Flat series renders mid-level, not empty.
        let flat = sparkline(&[5.0; 10], 10);
        assert_eq!(flat.chars().count(), 10);
        assert!(flat.chars().all(|c| c == '▄'));
        // Degenerate inputs.
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[1.0], 0), "");
        // Resampling caps width.
        assert_eq!(sparkline(&[0.0, 1.0], 10).chars().count(), 2);
        assert_eq!(sparkline(&vec![1.0; 100], 20).chars().count(), 20);
    }

    #[test]
    fn empty_and_len() {
        let mut t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn journal_summary_compresses_generations() {
        use crate::ga::{evolve_journaled, GaConfig, Gene};
        use crate::journal::MemJournal;
        use audit_cpu::Opcode;

        let cfg = GaConfig {
            population: 6,
            generations: 3,
            stall_generations: 3,
            ..GaConfig::default()
        };
        let mut mem = MemJournal::default();
        let run = evolve_journaled(&cfg, &Opcode::stress_menu(), 4, &[], |g: &[Gene]| {
            g.iter().filter(|x| x.opcode == Opcode::SimdFma).count() as f64
        }, &mut mem)
        .unwrap();
        let summary = journal_summary(&mem.as_journal());
        let text = summary.to_string();
        assert!(text.contains("ga_start"), "{text}");
        assert!(
            text.contains(&format!("{} generations", run.generations_run + 1)),
            "{text}"
        );
        assert!(text.contains("search complete"), "{text}");
    }
}
