//! Multi-seed convergence studies.
//!
//! A single GA run proves existence; claims about the *framework* —
//! "converges in a few hours", "sub-blocking is 19 % better" — need
//! statistics over seeds. This module runs the same search under several
//! seeds and summarizes the distribution of outcomes.

use audit_cpu::Opcode;
use serde::{Deserialize, Serialize};

use super::engine::{evolve, GaConfig, GaRun};
use super::genome::Gene;

/// Summary statistics of a multi-seed study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudySummary {
    /// Seeds used, in run order.
    pub seeds: Vec<u64>,
    /// Best fitness per seed.
    pub best: Vec<f64>,
    /// Generations run per seed (stall exits make these differ).
    pub generations: Vec<usize>,
    /// Simulations actually executed per seed (memo hits excluded).
    pub evaluations: Vec<u64>,
    /// Fitness lookups served by the evaluation cache per seed.
    #[serde(default)]
    pub cache_hits: Vec<u64>,
}

impl StudySummary {
    /// Mean of the per-seed best fitness.
    pub fn mean_best(&self) -> f64 {
        mean(&self.best)
    }

    /// Sample standard deviation of the per-seed best fitness (0 for a
    /// single seed).
    pub fn std_best(&self) -> f64 {
        if self.best.len() < 2 {
            return 0.0;
        }
        let m = self.mean_best();
        let var =
            self.best.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (self.best.len() - 1) as f64;
        var.sqrt()
    }

    /// Worst seed's best fitness — the framework's floor.
    pub fn min_best(&self) -> f64 {
        self.best.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Best seed's best fitness.
    pub fn max_best(&self) -> f64 {
        self.best.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Coefficient of variation (σ/μ) — low means the search is robust
    /// to its random seed.
    pub fn cv(&self) -> f64 {
        let m = self.mean_best();
        if m == 0.0 {
            0.0
        } else {
            self.std_best() / m
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Runs the same evolution under each seed and summarizes.
///
/// `fitness` is shared across runs and worker threads (it must be
/// deterministic per genome, which every AUDIT fitness is — see the
/// [determinism contract](super::engine)). Each per-seed run evaluates
/// with `cfg.threads` workers and its own fitness cache, so the summary
/// is identical no matter the thread count.
///
/// # Panics
///
/// Panics if `seeds` is empty or the underlying engine rejects the
/// configuration.
pub fn run_study(
    cfg: &GaConfig,
    menu: &[Opcode],
    genome_len: usize,
    seeds_list: &[u64],
    seed_genomes: &[Vec<Gene>],
    fitness: impl Fn(&[Gene]) -> f64 + Sync,
) -> StudySummary {
    assert!(!seeds_list.is_empty(), "study needs at least one seed");
    let mut summary = StudySummary {
        seeds: seeds_list.to_vec(),
        best: Vec::new(),
        generations: Vec::new(),
        evaluations: Vec::new(),
        cache_hits: Vec::new(),
    };
    for &seed in seeds_list {
        let cfg = GaConfig {
            seed,
            ..cfg.clone()
        };
        let run: GaRun = evolve(&cfg, menu, genome_len, seed_genomes, &fitness);
        summary.best.push(run.best_fitness);
        summary.generations.push(run.generations_run);
        summary.evaluations.push(run.evaluations);
        summary.cache_hits.push(run.cache_hits);
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fma_count(g: &[Gene]) -> f64 {
        g.iter().filter(|x| x.opcode == Opcode::SimdFma).count() as f64
    }

    fn cfg() -> GaConfig {
        GaConfig {
            population: 12,
            generations: 25,
            stall_generations: 25,
            ..GaConfig::default()
        }
    }

    #[test]
    fn study_runs_every_seed() {
        let s = run_study(
            &cfg(),
            &Opcode::stress_menu(),
            10,
            &[1, 2, 3],
            &[],
            fma_count,
        );
        assert_eq!(s.best.len(), 3);
        assert_eq!(s.generations.len(), 3);
        assert_eq!(s.evaluations.len(), 3);
        assert_eq!(s.cache_hits.len(), 3);
        assert!(s.min_best() <= s.max_best());
    }

    #[test]
    fn synthetic_objective_is_robust_across_seeds() {
        let big = GaConfig {
            population: 24,
            generations: 80,
            stall_generations: 80,
            ..GaConfig::default()
        };
        let s = run_study(
            &big,
            &Opcode::stress_menu(),
            10,
            &[1, 2, 3, 4, 5],
            &[],
            fma_count,
        );
        // Every seed should come close to saturating the 10-slot cap.
        assert!(s.min_best() >= 7.0, "floor {}", s.min_best());
        assert!(s.cv() < 0.25, "cv {}", s.cv());
    }

    #[test]
    fn single_seed_statistics_are_defined() {
        let s = run_study(&cfg(), &Opcode::stress_menu(), 6, &[9], &[], fma_count);
        assert_eq!(s.std_best(), 0.0);
        assert_eq!(s.mean_best(), s.best[0]);
        assert_eq!(s.min_best(), s.max_best());
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seed_list_rejected() {
        let _ = run_study(&cfg(), &Opcode::stress_menu(), 6, &[], &[], fma_count);
    }
}
