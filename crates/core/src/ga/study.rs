//! Multi-seed convergence studies.
//!
//! A single GA run proves existence; claims about the *framework* —
//! "converges in a few hours", "sub-blocking is 19 % better" — need
//! statistics over seeds. This module runs the same search under several
//! seeds and summarizes the distribution of outcomes.

use audit_cpu::Opcode;
use audit_error::AuditError;
use audit_measure::json::JsonValue;
use serde::{Deserialize, Serialize};

use super::engine::{evolve_journaled, try_evolve, GaConfig, GaRun};
use super::genome::Gene;
use crate::journal::{Journal, JournalRecord, JournalSink};

/// Summary statistics of a multi-seed study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudySummary {
    /// Seeds used, in run order.
    pub seeds: Vec<u64>,
    /// Best fitness per seed.
    pub best: Vec<f64>,
    /// Generations run per seed (stall exits make these differ).
    pub generations: Vec<usize>,
    /// Simulations actually executed per seed (memo hits excluded).
    pub evaluations: Vec<u64>,
    /// Fitness lookups served by the evaluation cache per seed.
    #[serde(default)]
    pub cache_hits: Vec<u64>,
}

impl StudySummary {
    /// Mean of the per-seed best fitness.
    pub fn mean_best(&self) -> f64 {
        mean(&self.best)
    }

    /// Sample standard deviation of the per-seed best fitness (0 for a
    /// single seed).
    pub fn std_best(&self) -> f64 {
        if self.best.len() < 2 {
            return 0.0;
        }
        let m = self.mean_best();
        let var =
            self.best.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (self.best.len() - 1) as f64;
        var.sqrt()
    }

    /// Worst seed's best fitness — the framework's floor.
    pub fn min_best(&self) -> f64 {
        self.best.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Best seed's best fitness.
    pub fn max_best(&self) -> f64 {
        self.best.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Coefficient of variation (σ/μ) — low means the search is robust
    /// to its random seed.
    pub fn cv(&self) -> f64 {
        let m = self.mean_best();
        if m == 0.0 {
            0.0
        } else {
            self.std_best() / m
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Runs the same evolution under each seed and summarizes.
///
/// `fitness` is shared across runs and worker threads (it must be
/// deterministic per genome, which every AUDIT fitness is — see the
/// [determinism contract](super::engine)). Each per-seed run evaluates
/// with `cfg.threads` workers and its own fitness cache, so the summary
/// is identical no matter the thread count.
///
/// # Errors
///
/// Returns [`AuditError::InvalidConfig`] if `seeds_list` is empty or
/// the underlying engine rejects the configuration.
pub fn try_run_study(
    cfg: &GaConfig,
    menu: &[Opcode],
    genome_len: usize,
    seeds_list: &[u64],
    seed_genomes: &[Vec<Gene>],
    fitness: impl Fn(&[Gene]) -> f64 + Sync,
) -> Result<StudySummary, AuditError> {
    if seeds_list.is_empty() {
        return Err(AuditError::invalid(
            "study",
            "seeds",
            "a study needs at least one seed",
        ));
    }
    let mut summary = StudySummary {
        seeds: seeds_list.to_vec(),
        best: Vec::new(),
        generations: Vec::new(),
        evaluations: Vec::new(),
        cache_hits: Vec::new(),
    };
    for &seed in seeds_list {
        let cfg = GaConfig {
            seed,
            ..cfg.clone()
        };
        let run: GaRun = try_evolve(&cfg, menu, genome_len, seed_genomes, &fitness)?;
        record_seed(&mut summary, &run);
    }
    Ok(summary)
}

/// Panicking convenience wrapper around [`try_run_study`].
///
/// # Panics
///
/// Panics on any error [`try_run_study`] would return (an empty seed
/// list, an unrunnable [`GaConfig`]).
pub fn run_study(
    cfg: &GaConfig,
    menu: &[Opcode],
    genome_len: usize,
    seeds_list: &[u64],
    seed_genomes: &[Vec<Gene>],
    fitness: impl Fn(&[Gene]) -> f64 + Sync,
) -> StudySummary {
    try_run_study(cfg, menu, genome_len, seeds_list, seed_genomes, fitness)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`try_run_study`], with every seed's search checkpointed to `sink`.
///
/// Each seed becomes one journal phase named `seed-<seed>`: a
/// `phase_start`, the seed's full GA section (`ga_start`, one record per
/// generation, `ga_end`), and a `phase_end` whose payload carries the
/// seed's summary row. A study killed anywhere — between seeds or
/// mid-generation — resumes via [`resume_study`] with a bit-identical
/// [`StudySummary`].
///
/// # Errors
///
/// Same as [`try_run_study`], plus any sink I/O error.
pub fn run_study_journaled(
    cfg: &GaConfig,
    menu: &[Opcode],
    genome_len: usize,
    seeds_list: &[u64],
    seed_genomes: &[Vec<Gene>],
    fitness: impl Fn(&[Gene]) -> f64 + Sync,
    sink: &mut dyn JournalSink,
) -> Result<StudySummary, AuditError> {
    if seeds_list.is_empty() {
        return Err(AuditError::invalid(
            "study",
            "seeds",
            "a study needs at least one seed",
        ));
    }
    let mut summary = StudySummary {
        seeds: seeds_list.to_vec(),
        best: Vec::new(),
        generations: Vec::new(),
        evaluations: Vec::new(),
        cache_hits: Vec::new(),
    };
    for &seed in seeds_list {
        run_one_seed(
            cfg,
            menu,
            genome_len,
            seed,
            seed_genomes,
            &fitness,
            sink,
            &mut summary,
        )?;
    }
    Ok(summary)
}

/// Resumes a study journaled by [`run_study_journaled`], producing a
/// [`StudySummary`] bit-identical to the uninterrupted run's.
///
/// Seeds whose `phase_end` is in the journal are taken from their
/// recorded payload without re-running; a seed killed mid-GA is resumed
/// generation-exact via [`GaRun::resume_with_sink`]; the remaining seeds
/// run fresh. Newly computed records are appended to `sink` (pass a
/// [`crate::journal::JournalWriter`] reopened on the same file to
/// continue it).
///
/// # Errors
///
/// Same as [`run_study_journaled`], plus [`AuditError::Resume`] or
/// [`AuditError::Journal`] for a journal inconsistent with the
/// arguments.
#[allow(clippy::too_many_arguments)]
pub fn resume_study(
    journal: &Journal,
    cfg: &GaConfig,
    menu: &[Opcode],
    genome_len: usize,
    seeds_list: &[u64],
    seed_genomes: &[Vec<Gene>],
    fitness: impl Fn(&[Gene]) -> f64 + Sync,
    sink: &mut dyn JournalSink,
) -> Result<StudySummary, AuditError> {
    if seeds_list.is_empty() {
        return Err(AuditError::invalid(
            "study",
            "seeds",
            "a study needs at least one seed",
        ));
    }
    let mut summary = StudySummary {
        seeds: seeds_list.to_vec(),
        best: Vec::new(),
        generations: Vec::new(),
        evaluations: Vec::new(),
        cache_hits: Vec::new(),
    };
    // The seed of the journal's dangling GA section, if one was cut off
    // mid-search.
    let dangling = journal
        .last_ga_section()
        .filter(|s| !s.complete)
        .map(|s| s.cfg.seed);
    for &seed in seeds_list {
        if let Some(payload) = journal.phase_payload(&format!("seed-{seed}")) {
            // This seed finished before the kill: trust its payload.
            decode_seed_payload(payload, &mut summary)?;
            continue;
        }
        if dangling == Some(seed) {
            // Killed mid-GA on this seed: replay + continue, journaling
            // the remaining generations, then close the phase.
            let run = GaRun::resume_with_sink(journal, &fitness, sink)?;
            sink.append(&JournalRecord::PhaseEnd {
                name: format!("seed-{seed}"),
                payload: encode_seed_payload(&run),
            })?;
            record_seed(&mut summary, &run);
            continue;
        }
        // Not reached before the kill: run it fresh.
        run_one_seed(
            cfg,
            menu,
            genome_len,
            seed,
            seed_genomes,
            &fitness,
            sink,
            &mut summary,
        )?;
    }
    Ok(summary)
}

/// One journaled seed phase: `phase_start`, GA section, `phase_end`.
#[allow(clippy::too_many_arguments)]
fn run_one_seed(
    cfg: &GaConfig,
    menu: &[Opcode],
    genome_len: usize,
    seed: u64,
    seed_genomes: &[Vec<Gene>],
    fitness: &(impl Fn(&[Gene]) -> f64 + Sync),
    sink: &mut dyn JournalSink,
    summary: &mut StudySummary,
) -> Result<(), AuditError> {
    let cfg = GaConfig {
        seed,
        ..cfg.clone()
    };
    sink.append(&JournalRecord::PhaseStart {
        name: format!("seed-{seed}"),
    })?;
    let run = evolve_journaled(&cfg, menu, genome_len, seed_genomes, fitness, sink)?;
    sink.append(&JournalRecord::PhaseEnd {
        name: format!("seed-{seed}"),
        payload: encode_seed_payload(&run),
    })?;
    record_seed(summary, &run);
    Ok(())
}

fn record_seed(summary: &mut StudySummary, run: &GaRun) {
    summary.best.push(run.best_fitness);
    summary.generations.push(run.generations_run);
    summary.evaluations.push(run.evaluations);
    summary.cache_hits.push(run.cache_hits);
}

fn encode_seed_payload(run: &GaRun) -> JsonValue {
    JsonValue::object(vec![
        ("best_fitness", JsonValue::from_f64(run.best_fitness)),
        (
            "generations",
            JsonValue::from_u64(run.generations_run as u64),
        ),
        ("evaluations", JsonValue::from_u64(run.evaluations)),
        ("cache_hits", JsonValue::from_u64(run.cache_hits)),
    ])
}

fn decode_seed_payload(
    payload: &JsonValue,
    summary: &mut StudySummary,
) -> Result<(), AuditError> {
    let num = |field: &str| {
        payload.get(field).and_then(JsonValue::as_u64).ok_or_else(|| {
            AuditError::resume(format!("seed phase payload has no `{field}`"))
        })
    };
    let best = payload
        .get("best_fitness")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| AuditError::resume("seed phase payload has no `best_fitness`"))?;
    summary.best.push(best);
    summary.generations.push(num("generations")? as usize);
    summary.evaluations.push(num("evaluations")?);
    summary.cache_hits.push(num("cache_hits")?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fma_count(g: &[Gene]) -> f64 {
        g.iter().filter(|x| x.opcode == Opcode::SimdFma).count() as f64
    }

    fn cfg() -> GaConfig {
        GaConfig {
            population: 12,
            generations: 25,
            stall_generations: 25,
            ..GaConfig::default()
        }
    }

    #[test]
    fn study_runs_every_seed() {
        let s = run_study(
            &cfg(),
            &Opcode::stress_menu(),
            10,
            &[1, 2, 3],
            &[],
            fma_count,
        );
        assert_eq!(s.best.len(), 3);
        assert_eq!(s.generations.len(), 3);
        assert_eq!(s.evaluations.len(), 3);
        assert_eq!(s.cache_hits.len(), 3);
        assert!(s.min_best() <= s.max_best());
    }

    #[test]
    fn synthetic_objective_is_robust_across_seeds() {
        let big = GaConfig {
            population: 24,
            generations: 80,
            stall_generations: 80,
            ..GaConfig::default()
        };
        let s = run_study(
            &big,
            &Opcode::stress_menu(),
            10,
            &[1, 2, 3, 4, 5],
            &[],
            fma_count,
        );
        // Every seed should come close to saturating the 10-slot cap.
        assert!(s.min_best() >= 7.0, "floor {}", s.min_best());
        assert!(s.cv() < 0.25, "cv {}", s.cv());
    }

    #[test]
    fn single_seed_statistics_are_defined() {
        let s = run_study(&cfg(), &Opcode::stress_menu(), 6, &[9], &[], fma_count);
        assert_eq!(s.std_best(), 0.0);
        assert_eq!(s.mean_best(), s.best[0]);
        assert_eq!(s.min_best(), s.max_best());
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seed_list_rejected() {
        let _ = run_study(&cfg(), &Opcode::stress_menu(), 6, &[], &[], fma_count);
    }

    #[test]
    fn try_run_study_reports_errors_instead_of_panicking() {
        let err = try_run_study(&cfg(), &Opcode::stress_menu(), 6, &[], &[], fma_count)
            .unwrap_err();
        assert!(err.to_string().contains("at least one seed"), "{err}");
        let bad = GaConfig {
            population: 0,
            ..cfg()
        };
        assert!(try_run_study(&bad, &Opcode::stress_menu(), 6, &[1], &[], fma_count).is_err());
    }

    #[test]
    fn journaled_study_matches_plain_study() {
        use crate::journal::MemJournal;
        let small = GaConfig {
            population: 8,
            generations: 4,
            stall_generations: 4,
            ..GaConfig::default()
        };
        let menu = Opcode::stress_menu();
        let plain = run_study(&small, &menu, 6, &[1, 2], &[], fma_count);
        let mut mem = MemJournal::default();
        let journaled =
            run_study_journaled(&small, &menu, 6, &[1, 2], &[], fma_count, &mut mem).unwrap();
        assert_eq!(plain, journaled);
        // Two phases, each bracketing one GA section.
        let journal = mem.as_journal();
        assert!(journal.phase_payload("seed-1").is_some());
        assert!(journal.phase_payload("seed-2").is_some());
    }

    #[test]
    fn study_killed_anywhere_resumes_bit_identically() {
        use crate::journal::MemJournal;
        let small = GaConfig {
            population: 8,
            generations: 3,
            stall_generations: 3,
            ..GaConfig::default()
        };
        let menu = Opcode::stress_menu();
        let mut mem = MemJournal::default();
        let full = run_study_journaled(&small, &menu, 6, &[7, 8, 9], &[], fma_count, &mut mem)
            .unwrap();

        // Cut the journal after every prefix of records: mid-GA, between
        // seeds, before anything — all must resume to the same summary.
        for cut in 0..mem.records.len() {
            let mut partial = MemJournal {
                records: mem.records[..cut].to_vec(),
            };
            let journal = partial.as_journal();
            let resumed = resume_study(
                &journal,
                &small,
                &menu,
                6,
                &[7, 8, 9],
                &[],
                fma_count,
                &mut partial,
            )
            .unwrap();
            assert_eq!(full, resumed, "diverged when cut at record {cut}");
        }
    }
}
