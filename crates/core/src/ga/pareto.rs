//! Multi-objective (Pareto) machinery for the GA engine.
//!
//! AUDIT's historical fitness is a single scalar (voltage droop), but
//! stress generation is inherently multi-objective: the deepest droop,
//! the highest mean power, and the thinnest failure-voltage margin are
//! different corners of the same search space. This module supplies the
//! vocabulary — a typed [`Objective`] axis, an [`Objectives`] score
//! vector, an [`ObjectiveSet`] selection — and the NSGA-II-style
//! non-dominated sort + crowding distance the engine uses when
//! [`super::GaConfig::pareto`] is on.
//!
//! # Determinism contract
//!
//! Every function here is a pure, order-stable function of its inputs:
//!
//! - [`non_dominated_sort`] assigns front ranks by dominance only;
//!   within a front, slot order is preserved.
//! - [`crowding_distance`] breaks objective-value ties by slot index
//!   when sorting along each axis, so equal vectors always produce the
//!   same distances.
//! - [`rank_population`] combines both into one comparison key per
//!   slot; [`PopulationRanking::better`] orders by rank (ascending),
//!   then crowding (descending), then slot index (ascending) — a total
//!   order with no unordered pairs left to scheduling luck.
//!
//! Consequently Pareto selection is bit-identical across thread
//! counts, dispatchers, and kill/resume, exactly like the scalar path
//! (see the engine [module docs](super::engine)).

use audit_error::AuditError;
use serde::{Deserialize, Serialize};

use super::genome::Gene;

/// One objective axis of the multi-objective search.
///
/// All axes are maximized, and all are pure functions of the existing
/// simulator outputs (see `docs/PARETO.md` for the exact formulas):
///
/// | axis | meaning | definition |
/// |---|---|---|
/// | `droop`  | supply-noise amplitude | the configured [`super::CostFunction`] of the measurement |
/// | `power`  | mean power draw | mean current × nominal voltage |
/// | `margin` | failure proximity | critical-voltage ceiling − minimum rail voltage seen |
///
/// The canonical axis order is `droop`, `power`, `margin` — selections
/// are always normalized to it, so CLI flag order and journal replay
/// cannot disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum Objective {
    /// Supply-noise amplitude under the configured cost function.
    Droop,
    /// Mean power draw (mean current × nominal voltage).
    Power,
    /// Proximity of the minimum rail voltage to the failure ceiling.
    Margin,
}

/// Every axis, in canonical order.
pub const ALL_OBJECTIVES: [Objective; 3] = [Objective::Droop, Objective::Power, Objective::Margin];

impl Objective {
    /// The canonical lowercase name (`droop` / `power` / `margin`).
    pub fn as_str(self) -> &'static str {
        match self {
            Objective::Droop => "droop",
            Objective::Power => "power",
            Objective::Margin => "margin",
        }
    }

    /// Parses a canonical name.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::InvalidConfig`] for anything but `droop`,
    /// `power`, or `margin`.
    pub fn parse(name: &str) -> Result<Self, AuditError> {
        match name {
            "droop" => Ok(Objective::Droop),
            "power" => Ok(Objective::Power),
            "margin" => Ok(Objective::Margin),
            other => Err(AuditError::invalid(
                "Objective",
                "name",
                format!("unknown objective `{other}` (droop | power | margin)"),
            )),
        }
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The set of objective axes a run optimizes, in canonical order.
///
/// `Copy` on purpose: it rides inside `FitnessSpec`, which crosses the
/// wire to `audit-net` workers and must stay a plain value type. The
/// default is droop-only — the exact scalar search every pre-Pareto
/// caller ran, which is what keeps legacy journals byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObjectiveSet {
    /// Optimize the droop axis.
    pub droop: bool,
    /// Optimize the power axis.
    pub power: bool,
    /// Optimize the margin axis.
    pub margin: bool,
}

impl Default for ObjectiveSet {
    fn default() -> Self {
        ObjectiveSet {
            droop: true,
            power: false,
            margin: false,
        }
    }
}

impl ObjectiveSet {
    /// The droop-only legacy set (also the [`Default`]).
    pub fn scalar_droop() -> Self {
        ObjectiveSet::default()
    }

    /// Builds a set from individual axes.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::InvalidConfig`] when `axes` is empty.
    pub fn from_axes(axes: &[Objective]) -> Result<Self, AuditError> {
        if axes.is_empty() {
            return Err(AuditError::invalid(
                "ObjectiveSet",
                "axes",
                "at least one objective is required",
            ));
        }
        let mut set = ObjectiveSet {
            droop: false,
            power: false,
            margin: false,
        };
        for axis in axes {
            match axis {
                Objective::Droop => set.droop = true,
                Objective::Power => set.power = true,
                Objective::Margin => set.margin = true,
            }
        }
        Ok(set)
    }

    /// Parses a comma-separated spec (`droop,power`), deduplicating and
    /// normalizing to canonical order.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::InvalidConfig`] for an empty spec or an
    /// unknown axis name.
    pub fn parse(spec: &str) -> Result<Self, AuditError> {
        let axes = spec
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(Objective::parse)
            .collect::<Result<Vec<_>, _>>()?;
        Self::from_axes(&axes)
    }

    /// The canonical comma-separated spec (inverse of
    /// [`ObjectiveSet::parse`]), always in canonical axis order.
    pub fn to_spec(self) -> String {
        self.iter()
            .map(Objective::as_str)
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Selected axes in canonical order.
    pub fn iter(self) -> impl Iterator<Item = Objective> {
        ALL_OBJECTIVES
            .into_iter()
            .filter(move |axis| self.contains(*axis))
    }

    /// Whether `axis` is selected.
    pub fn contains(self, axis: Objective) -> bool {
        match axis {
            Objective::Droop => self.droop,
            Objective::Power => self.power,
            Objective::Margin => self.margin,
        }
    }

    /// Number of selected axes.
    pub fn len(self) -> usize {
        usize::from(self.droop) + usize::from(self.power) + usize::from(self.margin)
    }

    /// True when no axis is selected (an invalid set — constructors
    /// refuse to build one, but `Deserialize` cannot).
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// True for the single-axis sets, whose searches degenerate to the
    /// scalar GA path.
    pub fn is_scalar(self) -> bool {
        self.len() == 1
    }
}

/// One candidate's score vector, ordered like its [`ObjectiveSet`]'s
/// canonical axes. Every axis is maximized.
///
/// The scalar search is the 1-axis special case ([`Objectives::scalar`]);
/// [`Objectives::primary`] recovers the legacy scalar fitness (the first
/// axis), which is what `GaRun::best_fitness`, journaled generation
/// scores, and the wire protocol's `fitness` field carry in every mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Objectives(pub Vec<f64>);

impl Objectives {
    /// Wraps a legacy scalar fitness as a 1-axis vector.
    pub fn scalar(fitness: f64) -> Self {
        Objectives(vec![fitness])
    }

    /// The sentinel for budget-deferred slots: loses every comparison,
    /// is never cached, and is recognized by [`Objectives::is_deferred`]
    /// regardless of the run's axis count.
    pub fn deferred() -> Self {
        Objectives(vec![f64::NEG_INFINITY])
    }

    /// The first axis — the legacy scalar fitness.
    pub fn primary(&self) -> f64 {
        self.0.first().copied().unwrap_or(f64::NEG_INFINITY)
    }

    /// Axis count.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for an axis-less vector (never produced by evaluation).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// True for the budget-deferred sentinel (see the engine's
    /// `surrogate_budget` / `fast_tier_budget` docs).
    pub fn is_deferred(&self) -> bool {
        self.primary() == f64::NEG_INFINITY
    }

    /// Pareto dominance: at least as good on every axis and strictly
    /// better on at least one. Both vectors must have the same axis
    /// count; a deferred sentinel never dominates anything.
    pub fn dominates(&self, other: &Objectives) -> bool {
        if self.is_deferred() {
            return false;
        }
        if other.is_deferred() {
            return true;
        }
        debug_assert_eq!(self.len(), other.len(), "comparing mismatched objective vectors");
        let mut strictly = false;
        for (a, b) in self.0.iter().zip(&other.0) {
            if a < b {
                return false;
            }
            if a > b {
                strictly = true;
            }
        }
        strictly
    }
}

impl From<f64> for Objectives {
    fn from(fitness: f64) -> Self {
        Objectives::scalar(fitness)
    }
}

/// One member of the final non-dominated front a Pareto run reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontMember {
    /// The genome.
    pub genome: Vec<Gene>,
    /// Its objective vector, in canonical axis order.
    pub objectives: Objectives,
}

/// Non-dominated sort: assigns each slot its Pareto front rank (0 =
/// non-dominated). Deferred sentinels always land in the worst front,
/// after every real candidate.
///
/// O(n² · axes) pairwise dominance — population sizes here are tens,
/// not thousands. Rank assignment depends only on the dominance
/// relation, so permuting slots permutes the ranks identically.
pub fn non_dominated_sort(objs: &[Objectives]) -> Vec<usize> {
    let n = objs.len();
    // dominated_by[i] = how many candidates dominate i;
    // dominates[i] = the candidates i dominates.
    let mut dominated_by = vec![0usize; n];
    let mut dominates: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if objs[i].dominates(&objs[j]) {
                dominates[i].push(j);
                dominated_by[j] += 1;
            } else if objs[j].dominates(&objs[i]) {
                dominates[j].push(i);
                dominated_by[i] += 1;
            }
        }
    }
    let mut rank = vec![usize::MAX; n];
    let mut front: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    let mut level = 0;
    while !front.is_empty() {
        let mut next = Vec::new();
        for &i in &front {
            rank[i] = level;
            for &j in &dominates[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        front = next;
        front.sort_unstable();
        level += 1;
    }
    rank
}

/// NSGA-II crowding distance within each front: the sum over axes of
/// the normalized gap between a slot's neighbors when the front is
/// sorted along that axis. Boundary slots get `f64::INFINITY` so the
/// extremes of every front survive selection pressure.
///
/// Sorting along an axis breaks value ties by slot index, which makes
/// the distances a pure function of (vectors, slots) — no unstable-sort
/// luck.
pub fn crowding_distance(objs: &[Objectives], rank: &[usize]) -> Vec<f64> {
    let n = objs.len();
    let mut crowding = vec![0.0f64; n];
    if n == 0 {
        return crowding;
    }
    let fronts = rank.iter().copied().max().unwrap_or(0);
    let axes = objs.iter().map(Objectives::len).max().unwrap_or(0);
    for level in 0..=fronts {
        let members: Vec<usize> = (0..n).filter(|&i| rank[i] == level).collect();
        if members.len() <= 2 {
            for &i in &members {
                crowding[i] = f64::INFINITY;
            }
            continue;
        }
        for axis in 0..axes {
            let value = |i: usize| objs[i].0.get(axis).copied().unwrap_or(f64::NEG_INFINITY);
            let mut order = members.clone();
            order.sort_by(|&a, &b| value(a).total_cmp(&value(b)).then(a.cmp(&b)));
            let lo = value(order[0]);
            let hi = value(order[order.len() - 1]);
            crowding[order[0]] = f64::INFINITY;
            crowding[order[order.len() - 1]] = f64::INFINITY;
            let span = hi - lo;
            if span <= 0.0 || !span.is_finite() {
                continue;
            }
            for w in 1..order.len() - 1 {
                let gap = (value(order[w + 1]) - value(order[w - 1])) / span;
                if crowding[order[w]].is_finite() {
                    crowding[order[w]] += gap;
                }
            }
        }
    }
    crowding
}

/// The combined Pareto ranking of one population: per-slot front rank
/// and crowding distance, plus the total-order comparisons selection
/// uses.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationRanking {
    /// Pareto front rank per slot (0 = non-dominated).
    pub rank: Vec<usize>,
    /// Crowding distance per slot (∞ at front boundaries).
    pub crowding: Vec<f64>,
}

impl PopulationRanking {
    /// Strictly better: lower rank, or same rank and strictly larger
    /// crowding. Full ties (rank and crowding both equal) are **not**
    /// better — the tournament keeps its incumbent, mirroring the
    /// scalar path's strict `>`.
    pub fn better(&self, a: usize, b: usize) -> bool {
        self.rank[a] < self.rank[b]
            || (self.rank[a] == self.rank[b]
                && self.crowding[a].total_cmp(&self.crowding[b]).is_gt())
    }

    /// Better-or-tied: the non-strict counterpart of
    /// [`PopulationRanking::better`], mirroring the scalar path's `>=`
    /// parent pick.
    pub fn better_or_equal(&self, a: usize, b: usize) -> bool {
        !self.better(b, a)
    }

    /// All slots ordered best-first: rank ascending, crowding
    /// descending, slot index ascending. A total order — the elitism
    /// analog of the scalar path's stable sort by descending score.
    pub fn selection_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.rank.len()).collect();
        order.sort_by(|&a, &b| {
            self.rank[a]
                .cmp(&self.rank[b])
                .then(self.crowding[b].total_cmp(&self.crowding[a]))
                .then(a.cmp(&b))
        });
        order
    }
}

/// Ranks a whole population: [`non_dominated_sort`] +
/// [`crowding_distance`] in one call.
pub fn rank_population(objs: &[Objectives]) -> PopulationRanking {
    let rank = non_dominated_sort(objs);
    let crowding = crowding_distance(objs, &rank);
    PopulationRanking { rank, crowding }
}

/// Extracts the deduplicated rank-0 front of a population in slot
/// order — the [`FrontMember`] list a Pareto [`super::GaRun`] reports.
pub fn extract_front(
    population: &[Vec<Gene>],
    objs: &[Objectives],
    ranking: &PopulationRanking,
) -> Vec<FrontMember> {
    let mut seen: std::collections::HashSet<&[Gene]> = std::collections::HashSet::new();
    population
        .iter()
        .zip(objs)
        .zip(&ranking.rank)
        .filter(|((genome, objectives), &rank)| {
            rank == 0 && !objectives.is_deferred() && seen.insert(genome.as_slice())
        })
        .map(|((genome, objectives), _)| FrontMember {
            genome: genome.clone(),
            objectives: objectives.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(values: &[f64]) -> Objectives {
        Objectives(values.to_vec())
    }

    #[test]
    fn objective_names_round_trip() {
        for axis in ALL_OBJECTIVES {
            assert_eq!(Objective::parse(axis.as_str()).unwrap(), axis);
            assert_eq!(format!("{axis}"), axis.as_str());
        }
        assert!(Objective::parse("ipc").is_err());
    }

    #[test]
    fn objective_set_parses_in_any_order() {
        let a = ObjectiveSet::parse("margin,droop").unwrap();
        let b = ObjectiveSet::parse("droop, margin").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_spec(), "droop,margin");
        assert_eq!(a.len(), 2);
        assert!(!a.is_scalar());
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            vec![Objective::Droop, Objective::Margin]
        );
        // Duplicates collapse; empty specs are rejected.
        assert_eq!(ObjectiveSet::parse("power,power").unwrap().len(), 1);
        assert!(ObjectiveSet::parse("").is_err());
        assert!(ObjectiveSet::parse("droop,watts").is_err());
    }

    #[test]
    fn default_set_is_the_legacy_scalar_droop() {
        let set = ObjectiveSet::default();
        assert!(set.is_scalar());
        assert_eq!(set.to_spec(), "droop");
        assert_eq!(set, ObjectiveSet::scalar_droop());
    }

    #[test]
    fn dominance_is_strict_pareto() {
        assert!(v(&[2.0, 2.0]).dominates(&v(&[1.0, 2.0])));
        assert!(!v(&[2.0, 1.0]).dominates(&v(&[1.0, 2.0])));
        assert!(!v(&[1.0, 2.0]).dominates(&v(&[2.0, 1.0])));
        assert!(!v(&[1.0, 1.0]).dominates(&v(&[1.0, 1.0])));
        // The deferred sentinel loses to everything, even across
        // mismatched axis counts.
        assert!(v(&[0.0, 0.0]).dominates(&Objectives::deferred()));
        assert!(!Objectives::deferred().dominates(&v(&[0.0, 0.0])));
        assert!(Objectives::deferred().is_deferred());
        assert!(!v(&[0.0]).is_deferred());
    }

    #[test]
    fn scalar_vector_primary_round_trips() {
        let s = Objectives::scalar(3.5);
        assert_eq!(s.primary(), 3.5);
        assert_eq!(s.len(), 1);
        assert_eq!(Objectives::from(3.5), s);
        // Scalar dominance is plain comparison.
        assert!(v(&[2.0]).dominates(&v(&[1.0])));
        assert!(!v(&[1.0]).dominates(&v(&[1.0])));
    }

    #[test]
    fn non_dominated_sort_layers_fronts() {
        // Slot 0 and 1 trade off (front 0); 2 is dominated by both
        // (front 1); 3 is dominated by 2 (front 2).
        let objs = [
            v(&[3.0, 1.0]),
            v(&[1.0, 3.0]),
            v(&[0.5, 0.5]),
            v(&[0.0, 0.0]),
        ];
        assert_eq!(non_dominated_sort(&objs), vec![0, 0, 1, 2]);
    }

    #[test]
    fn deferred_slots_rank_last() {
        let objs = [v(&[1.0, 1.0]), Objectives::deferred(), v(&[2.0, 0.5])];
        let rank = non_dominated_sort(&objs);
        assert_eq!(rank[0], 0);
        assert_eq!(rank[2], 0);
        assert!(rank[1] > 0, "deferred sentinel must not reach front 0");
    }

    #[test]
    fn crowding_rewards_boundaries_and_gaps() {
        let objs = [
            v(&[0.0, 3.0]),
            v(&[1.0, 2.0]),
            v(&[2.0, 1.0]),
            v(&[3.0, 0.0]),
        ];
        let rank = non_dominated_sort(&objs);
        assert!(rank.iter().all(|&r| r == 0));
        let crowd = crowding_distance(&objs, &rank);
        assert_eq!(crowd[0], f64::INFINITY);
        assert_eq!(crowd[3], f64::INFINITY);
        assert!(crowd[1].is_finite() && crowd[1] > 0.0);
        // The evenly spaced interior points are equally crowded.
        assert!((crowd[1] - crowd[2]).abs() < 1e-12);
    }

    #[test]
    fn ranking_is_a_total_order_with_slot_tiebreak() {
        // Two identical vectors: same rank, same crowding — the order
        // falls back to slot index and `better` reports neither side.
        let objs = [v(&[1.0, 1.0]), v(&[1.0, 1.0]), v(&[2.0, 2.0])];
        let ranking = rank_population(&objs);
        assert!(ranking.better(2, 0));
        assert!(!ranking.better(0, 1));
        assert!(!ranking.better(1, 0));
        assert!(ranking.better_or_equal(0, 1));
        assert!(ranking.better_or_equal(1, 0));
        assert_eq!(ranking.selection_order(), vec![2, 0, 1]);
    }

    #[test]
    fn ranking_is_slot_permutation_equivariant() {
        // Deterministic spot check of the property the proptest in
        // `tests/properties.rs` exercises at scale: permuting slots
        // permutes ranks and crowding identically.
        let objs = [
            v(&[3.0, 1.0]),
            v(&[1.0, 3.0]),
            v(&[0.5, 0.5]),
            v(&[2.0, 2.0]),
        ];
        let perm = [2usize, 0, 3, 1];
        let permuted: Vec<Objectives> = perm.iter().map(|&i| objs[i].clone()).collect();
        let base = rank_population(&objs);
        let shuffled = rank_population(&permuted);
        for (new_slot, &old_slot) in perm.iter().enumerate() {
            assert_eq!(shuffled.rank[new_slot], base.rank[old_slot]);
            assert_eq!(shuffled.crowding[new_slot], base.crowding[old_slot]);
        }
    }

    #[test]
    fn extract_front_dedups_in_slot_order() {
        let g = |tag: u8| {
            vec![Gene {
                opcode: audit_cpu::Opcode::IAdd,
                dst: tag,
                src1: 0,
                src2: 0,
                miss: false,
            }]
        };
        let population = vec![g(0), g(1), g(0), g(2)];
        let objs = vec![v(&[2.0, 1.0]), v(&[1.0, 2.0]), v(&[2.0, 1.0]), v(&[0.0, 0.0])];
        let ranking = rank_population(&objs);
        let front = extract_front(&population, &objs, &ranking);
        assert_eq!(front.len(), 2);
        assert_eq!(front[0].genome, g(0));
        assert_eq!(front[1].genome, g(1));
    }
}
