//! Cost functions (paper §3, footnote 1).
//!
//! AUDIT's default cost maximizes measured droop, but the framework
//! explicitly supports richer objectives: "maximizing the droop while
//! minimizing the average power or maximizing the droop while exercising
//! sensitive paths in the microarchitecture are also feasible and easy
//! to implement". All three are provided.

use serde::{Deserialize, Serialize};

use crate::harness::Measurement;

/// Objective the genetic search maximizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CostFunction {
    /// The paper's default: maximum voltage droop.
    #[default]
    MaxDroop,
    /// Droop per ampere of average current — finds stressmarks that
    /// droop hard *without* high average power (useful when the part
    /// would thermally throttle).
    DroopPerAmp,
    /// Droop weighted by the critical-path sensitivity the stressmark
    /// exercises — steers the search toward patterns that both droop and
    /// sit on timing-critical paths (the property that makes SM2
    /// dangerous, §5.A.4).
    SensitivePathDroop,
}

impl CostFunction {
    /// Scores a measurement; higher is fitter.
    pub fn score(self, m: &Measurement) -> f64 {
        match self {
            CostFunction::MaxDroop => m.max_droop(),
            CostFunction::DroopPerAmp => {
                if m.mean_amps <= 0.0 {
                    0.0
                } else {
                    m.max_droop() / m.mean_amps * 100.0
                }
            }
            CostFunction::SensitivePathDroop => m.max_droop() * (0.25 + 0.75 * m.max_path_seen),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audit_measure::{DroopStats, Histogram};

    fn measurement(v_min: f64, mean_amps: f64, max_path: f64) -> Measurement {
        let mut stats = DroopStats::new(1.2);
        stats.record(v_min);
        stats.record(1.2);
        Measurement {
            stats,
            histogram: Histogram::new(0.9, 1.3, 10),
            envelope: vec![],
            trigger_events: 0,
            mean_amps,
            ipc: 1.0,
            failed: false,
            max_path_seen: max_path,
            current_trace: vec![],
            voltage_trace: vec![],
        }
    }

    #[test]
    fn max_droop_ranks_by_droop() {
        let deep = measurement(1.05, 50.0, 0.5);
        let shallow = measurement(1.15, 50.0, 0.5);
        let c = CostFunction::MaxDroop;
        assert!(c.score(&deep) > c.score(&shallow));
    }

    #[test]
    fn droop_per_amp_penalizes_power() {
        let efficient = measurement(1.10, 20.0, 0.5);
        let hungry = measurement(1.10, 60.0, 0.5);
        let c = CostFunction::DroopPerAmp;
        assert!(c.score(&efficient) > c.score(&hungry));
    }

    #[test]
    fn droop_per_amp_handles_zero_power() {
        assert_eq!(
            CostFunction::DroopPerAmp.score(&measurement(1.1, 0.0, 0.5)),
            0.0
        );
    }

    #[test]
    fn sensitive_cost_rewards_critical_paths() {
        let sensitive = measurement(1.10, 50.0, 0.9);
        let benign = measurement(1.10, 50.0, 0.1);
        let c = CostFunction::SensitivePathDroop;
        assert!(c.score(&sensitive) > c.score(&benign));
    }
}
