//! Lint-driven mutation repair ([`crate::ga::GaConfig::lint_repair`]).
//!
//! Mutation is blind: a re-rolled destination or opcode routinely turns
//! a live value chain into statically-detectable dead work — AUD101
//! (dead value) and AUD104 (serializing divide) — which the GA then
//! pays a full cycle-level simulation to discover is worthless. Repair
//! closes that loop: after breeding, each child is linted under
//! [`repair_lint_config`] and every offending slot is re-rolled from
//! its *own* RNG stream, bounded attempts, with a NOP fallback that
//! provably converges. Populations stay dense in useful instructions
//! (the FIRESTARTER 2 lesson) without a single extra simulation.
//!
//! # Determinism contract
//!
//! Each re-roll draws from a fresh [`SmallRng`] seeded by
//! `reroll_seed(seed, genome_key(child), slot, attempt)` — a pure
//! function of the run seed and the *as-bred* child's content, never of
//! thread interleaving or the generation's breeding stream. Repair runs
//! on the calling thread before fitness dispatch, so results are
//! bit-identical across 1/2/4 worker threads, loopback workers, and
//! kill/resume; and because the breeding stream is never touched,
//! flipping `lint_repair` off reproduces the unrepaired run exactly.

use audit_analyze::{lint, Code, LintConfig, Severity};
use audit_cpu::{Opcode, Program};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use super::engine::stream_seed;
use super::genome::{to_sub_block, Gene};
use crate::resilient::genome_key;

/// Re-roll rounds per child before the NOP fallback takes over. Two
/// rounds clear the overwhelming majority of mutants; more buys little
/// because every round re-rolls *every* still-offending slot.
pub const REPAIR_MAX_ATTEMPTS: u32 = 2;

/// The lint configuration repair enforces: the two codes that mark
/// statically-dead work. Everything else keeps its default level —
/// repair is a density filter, not a style gate.
pub fn repair_lint_config() -> LintConfig {
    LintConfig::new()
        .deny(Code::DeadValue)
        .deny(Code::SerializingDivide)
}

/// Seed for one slot re-roll: a pure function of the run seed, the
/// as-bred child's content key, the slot index, and the attempt number.
fn reroll_seed(seed: u64, child_key: u64, slot: usize, attempt: u32) -> u64 {
    stream_seed(
        stream_seed(seed ^ child_key, slot as u64),
        u64::from(attempt),
    )
}

/// Slots of `genome` carrying a deny-level diagnostic under
/// [`repair_lint_config`], ascending and deduplicated.
pub fn offending_slots(genome: &[Gene]) -> Vec<usize> {
    let program = Program::new("repair", to_sub_block(genome));
    let mut slots: Vec<usize> = lint(&program, &repair_lint_config())
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .filter_map(|d| d.inst_index)
        .collect();
    slots.sort_unstable();
    slots.dedup();
    slots
}

/// Repairs one as-bred child in place, returning the number of slot
/// re-rolls performed (the `repair` journal record's currency).
///
/// Up to [`REPAIR_MAX_ATTEMPTS`] rounds re-roll every offending slot
/// via [`Gene::random`] on its `reroll_seed` stream; a child still
/// offending after that has its offending slots replaced with the
/// canonical NOP gene until the lint is clean. The fallback converges
/// within one pass per remaining slot: NOPs write no destination, so
/// they can never carry AUD101/AUD104, and no repair step un-NOPs a
/// slot.
pub fn repair_genome(genome: &mut [Gene], menu: &[Opcode], seed: u64) -> u64 {
    let child_key = genome_key(genome);
    let mut rerolls = 0u64;
    for attempt in 0..REPAIR_MAX_ATTEMPTS {
        let slots = offending_slots(genome);
        if slots.is_empty() {
            return rerolls;
        }
        for slot in slots {
            let mut rng = SmallRng::seed_from_u64(reroll_seed(seed, child_key, slot, attempt));
            genome[slot] = Gene::random(menu, &mut rng);
            rerolls += 1;
        }
    }
    loop {
        let slots = offending_slots(genome);
        if slots.is_empty() {
            return rerolls;
        }
        for slot in slots {
            genome[slot] = Gene {
                opcode: Opcode::Nop,
                dst: 0,
                src1: 12,
                src2: 13,
                miss: false,
            };
            rerolls += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn menu() -> Vec<Opcode> {
        Opcode::stress_menu()
    }

    fn dead_heavy_genome(len: usize) -> Vec<Gene> {
        // Every slot writes r0 and reads constants: all but the last
        // write (read by nobody either) are dead.
        (0..len)
            .map(|_| Gene {
                opcode: Opcode::IAdd,
                dst: 0,
                src1: 12,
                src2: 13,
                miss: false,
            })
            .collect()
    }

    #[test]
    fn repair_clears_all_deny_diagnostics() {
        let mut g = dead_heavy_genome(16);
        assert!(!offending_slots(&g).is_empty());
        repair_genome(&mut g, &menu(), 0xA0D17);
        assert!(offending_slots(&g).is_empty());
    }

    #[test]
    fn repair_is_deterministic() {
        let mut a = dead_heavy_genome(12);
        let mut b = a.clone();
        let ra = repair_genome(&mut a, &menu(), 7);
        let rb = repair_genome(&mut b, &menu(), 7);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        // A different seed steers the re-rolls elsewhere (still clean).
        let mut c = dead_heavy_genome(12);
        repair_genome(&mut c, &menu(), 8);
        assert!(offending_slots(&c).is_empty());
        assert_ne!(a, c, "distinct seeds should repair differently");
    }

    #[test]
    fn clean_genomes_are_untouched() {
        let mut rng = SmallRng::seed_from_u64(42);
        // Draw random genomes until one lints clean, then repair it.
        loop {
            let g: Vec<Gene> = (0..10).map(|_| Gene::random(&menu(), &mut rng)).collect();
            if offending_slots(&g).is_empty() {
                let mut repaired = g.clone();
                assert_eq!(repair_genome(&mut repaired, &menu(), 0xC1EA), 0);
                assert_eq!(repaired, g);
                return;
            }
        }
    }

    #[test]
    fn nop_fallback_converges_on_a_menu_of_dividers() {
        // A menu of only unpipelined dividers cannot be repaired by
        // re-rolling (every draw is another divide); the NOP fallback
        // must still reach a clean fixpoint.
        let divs = vec![Opcode::IDiv];
        let mut g: Vec<Gene> = (0..8)
            .map(|i| Gene {
                opcode: Opcode::IDiv,
                dst: (i % 2) as u8,
                src1: (i % 2) as u8,
                src2: 13,
                miss: false,
            })
            .collect();
        repair_genome(&mut g, &divs, 1);
        assert!(offending_slots(&g).is_empty());
    }

    #[test]
    fn reroll_seeds_are_distinct_per_slot_and_attempt() {
        let k = genome_key(&dead_heavy_genome(4));
        let mut seen = std::collections::HashSet::new();
        for slot in 0..8 {
            for attempt in 0..3 {
                assert!(seen.insert(reroll_seed(5, k, slot, attempt)));
            }
        }
    }
}
