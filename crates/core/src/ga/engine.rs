//! The generational GA engine: parallel, memoized, bit-reproducible,
//! and crash-resumable.
//!
//! # Determinism contract
//!
//! Every run is a pure function of ([`GaConfig`], menu, genome length,
//! seeds, fitness). Four properties make that hold even with worker
//! threads, the fitness cache, and checkpoint/resume in play:
//!
//! 1. **All randomness is main-thread.** Worker threads never touch an
//!    RNG: the seeded generators drive population init, selection,
//!    crossover, and mutation strictly sequentially.
//! 2. **Per-generation RNG streams.** Generation `g` is bred by a fresh
//!    generator seeded with [`stream_seed`]`(cfg.seed, g)` — a SplitMix64
//!    derivation of the run seed. No RNG state survives a generation, so
//!    a resumed run re-derives exactly the stream the killed run would
//!    have used next; nothing about the generator needs serializing.
//! 3. **Parallel equals sequential.** Fitness results are written into
//!    their population slot by index, and the memo cache is populated in
//!    slot order, so selection *and* cache state are the same no matter
//!    how many workers raced or in which order they finished.
//! 4. **The cache is transparent.** Fitness must be deterministic per
//!    genome (every AUDIT fitness is — see [`crate::harness`]); a cache
//!    hit therefore returns exactly the value a re-simulation would.
//!
//! Consequently `threads: 1` and `threads: N` produce bit-identical
//! [`GaRun`]s (same `best`, `best_fitness`, `history`), and a run killed
//! after any generation and resumed from its journal finishes with a
//! [`GaRun`] bit-identical to the uninterrupted run. Both are asserted
//! by tests.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use audit_cpu::Opcode;
use audit_error::AuditError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use audit_analyze::{swing_score, MachineModel};

use super::genome::{to_sub_block, Gene};
use super::pareto::{extract_front, rank_population, FrontMember, Objectives, PopulationRanking};
use crate::journal::{
    GenerationAnalysis, GenerationRecord, Journal, JournalRecord, JournalSink, NullSink,
    ParetoFrontRecord,
};
use crate::resilient::ResilienceReport;

/// GA hyper-parameters.
///
/// The search is bit-reproducible: for a fixed configuration (including
/// `seed`) the result is identical regardless of `threads` and
/// `cache_capacity`, provided the fitness function is deterministic per
/// genome. See the [module docs](self) for the full contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Population size.
    pub population: usize,
    /// Hard generation cap.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Probability of crossover (vs cloning the fitter parent).
    pub crossover_rate: f64,
    /// Per-slot mutation probability.
    pub mutation_rate: f64,
    /// Individuals copied unchanged into the next generation.
    pub elitism: usize,
    /// Exit early after this many generations without improvement — the
    /// paper's exit condition ("the maximum voltage droop produced by
    /// AUDIT does not increase for several generations").
    pub stall_generations: usize,
    /// RNG seed (runs are fully deterministic).
    pub seed: u64,
    /// Worker threads for fitness evaluation. `0` means "use all
    /// available cores". The value never changes results, only wall
    /// time: scores land in their population slot by index, and the RNG
    /// stays on the calling thread.
    #[serde(default = "default_threads")]
    pub threads: usize,
    /// Capacity bound of the fitness memoization cache, in genomes
    /// (`0` disables caching entirely). When full, the cache is flushed
    /// wholesale — a deterministic policy that keeps lookups transparent.
    #[serde(default = "default_cache_capacity")]
    pub cache_capacity: usize,
    /// Order fitness evaluations by the static analyzer's current-swing
    /// surrogate (`audit_analyze::swing_score`), most promising first.
    /// Purely a *scheduling* hint: every cache miss is still evaluated
    /// exactly once and scores land in their population slot by index,
    /// so results are bit-identical with the flag on or off — it only
    /// changes which candidates reach the measurement harness earliest
    /// (useful when a wall-clock budget may cut a run short).
    #[serde(default)]
    pub surrogate_rank: bool,
    /// Budgeted surrogate early stopping: when non-zero, each
    /// generation measures only the `surrogate_budget` most promising
    /// cache misses (ranked by `audit_analyze::swing_score`, the same
    /// ordering [`GaConfig::surrogate_rank`] uses for dispatch) and
    /// scores the rest at `f64::NEG_INFINITY` so they lose every
    /// tournament. Unlike `surrogate_rank` this **changes results** —
    /// it is off by default (`0`) and excluded from the bit-identity
    /// invariants; journals record the budget in a `surrogate_budget`
    /// marker so resumed runs replay the same truncated evaluations.
    #[serde(default)]
    pub surrogate_budget: usize,
    /// Tier-1 pruning budget of the evaluation cascade: when non-zero,
    /// the cache misses that survive [`GaConfig::surrogate_budget`] are
    /// re-ranked by the fast in-order scoreboard model
    /// (`audit_cpu::tier::estimate_swing`, O(insts) per genome instead
    /// of the full simulator's O(cycles)) and only the top
    /// `fast_tier_budget` reach the full simulation; the rest score
    /// `f64::NEG_INFINITY` like budget-deferred slots and are never
    /// cached. All ranking happens on the calling thread, so pruning is
    /// bit-identical across thread counts, dispatchers, and resume.
    /// Like `surrogate_budget` this **changes results** — it is off by
    /// default (`0`) and excluded from the bit-identity invariants;
    /// journals record the budget in a `cascade` marker. See
    /// docs/SIMULATION.md for the full cascade contract.
    #[serde(default)]
    pub fast_tier_budget: usize,
    /// Multi-objective (Pareto) selection. Off by default: the scalar
    /// search compares raw primary fitness and `GaRun` + journal bytes
    /// are untouched. On, selection orders candidates by NSGA-II
    /// non-dominated rank → crowding distance → slot index (see
    /// [`super::pareto`]), each generation journals a `pareto_front`
    /// record ahead of its `generation` record, and [`GaRun::pareto_front`]
    /// reports the final non-dominated front. The ranking runs on the
    /// calling thread from slot-ordered objective vectors, so Pareto
    /// runs keep the full bit-identity contract: identical across
    /// thread counts, dispatchers, and kill/resume.
    #[serde(default)]
    pub pareto: bool,
    /// Lint-driven mutation repair. Off by default: breeding is
    /// untouched and journal bytes match a config that predates the
    /// flag. On, every as-bred genome (initial population included) is
    /// linted under [`super::repair::repair_lint_config`] and offending
    /// slots are re-rolled deterministically (bounded attempts, NOP
    /// fallback; see [`super::repair`]), so populations reach the
    /// simulator free of deny-level AUD1xx dead work. Repair draws from
    /// per-slot streams keyed by the child's content — never from the
    /// generation's breeding stream — and runs on the calling thread,
    /// preserving bit-identity across thread counts, dispatchers, and
    /// kill/resume. Each generation journals a `repair` record counting
    /// its re-rolls.
    #[serde(default)]
    pub lint_repair: bool,
}

fn default_threads() -> usize {
    0
}

fn default_cache_capacity() -> usize {
    1 << 16
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 24,
            generations: 40,
            tournament: 3,
            crossover_rate: 0.85,
            mutation_rate: 0.08,
            elitism: 2,
            stall_generations: 8,
            seed: 0xA0D17,
            threads: default_threads(),
            cache_capacity: default_cache_capacity(),
            surrogate_rank: false,
            surrogate_budget: 0,
            fast_tier_budget: 0,
            pareto: false,
            lint_repair: false,
        }
    }
}

impl GaConfig {
    /// Checks that the configuration describes a runnable search.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::InvalidConfig`] naming the offending field:
    /// `population` below 2, `tournament` of 0, non-finite or
    /// out-of-`[0, 1]` rates, or `elitism` that fills (or overflows) the
    /// population.
    pub fn validate(&self) -> Result<(), AuditError> {
        if self.population < 2 {
            return Err(AuditError::invalid(
                "GaConfig",
                "population",
                format!("must be at least 2 (got {})", self.population),
            ));
        }
        if self.tournament == 0 {
            return Err(AuditError::invalid(
                "GaConfig",
                "tournament",
                "must be at least 1",
            ));
        }
        for (field, rate) in [
            ("crossover_rate", self.crossover_rate),
            ("mutation_rate", self.mutation_rate),
        ] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(AuditError::invalid(
                    "GaConfig",
                    field,
                    format!("must be a probability in [0, 1] (got {rate})"),
                ));
            }
        }
        if self.elitism >= self.population {
            return Err(AuditError::invalid(
                "GaConfig",
                "elitism",
                format!(
                    "must leave room for offspring ({} elites in a population of {})",
                    self.elitism, self.population
                ),
            ));
        }
        Ok(())
    }
}

/// Derives the RNG seed of one generation's breeding stream from the run
/// seed — a SplitMix64 step keyed by the generation index.
///
/// Stream 0 initializes the population; stream `g` breeds generation
/// `g`. Because every generation starts its own stream, resuming from a
/// journal needs no serialized RNG state: the next generation's stream
/// is a function of (`seed`, `g`) alone.
pub fn stream_seed(seed: u64, generation: u64) -> u64 {
    let mut z = seed ^ generation.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Genome-keyed fitness memoization.
///
/// Elites survive generations unchanged and converged populations are
/// full of duplicates; both would otherwise re-run a full chip + PDN
/// co-simulation per generation. The cache maps a genome to its
/// objective vector (a 1-axis vector in the scalar search) and is
/// consulted before any evaluation is dispatched to a worker.
///
/// Correctness relies on the fitness being deterministic per genome
/// (the [determinism contract](self)): a hit returns exactly what a
/// re-simulation would have produced.
#[derive(Debug, Clone, Default)]
pub struct EvalCache {
    map: HashMap<Vec<Gene>, Objectives>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl EvalCache {
    /// Creates a cache bounded to `capacity` genomes (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        EvalCache {
            map: HashMap::with_capacity(capacity.min(4096)),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Whether caching is active at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Looks up a genome, counting the hit or miss.
    pub fn lookup(&mut self, genome: &[Gene]) -> Option<Objectives> {
        if !self.is_enabled() {
            return None;
        }
        match self.map.get(genome) {
            Some(objectives) => {
                self.hits += 1;
                Some(objectives.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a computed objective vector (a plain `f64` converts to
    /// the 1-axis scalar vector), flushing the cache first if inserting
    /// would exceed the capacity bound.
    pub fn insert(&mut self, genome: &[Gene], objectives: impl Into<Objectives>) {
        if !self.is_enabled() {
            return;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(genome) {
            self.map.clear();
        }
        self.map.insert(genome.to_vec(), objectives.into());
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required a simulation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Genomes currently memoized.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Per-run performance telemetry.
///
/// Collected per generation (index 0 is the initial population). Wall
/// times vary run to run, so telemetry is deliberately **excluded** from
/// [`GaRun`]'s `PartialEq` — equality of runs means equality of results.
/// On a resumed run, entries for replayed generations carry the wall
/// times recorded by the original run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GaTelemetry {
    /// Resolved evaluation worker count (after `threads: 0` auto-detect).
    pub threads: usize,
    /// Wall-clock seconds spent evaluating each generation.
    pub gen_wall_s: Vec<f64>,
    /// Simulations actually executed per generation.
    pub gen_evaluations: Vec<u64>,
    /// Evaluations served by memoization per generation (cache hits plus
    /// within-generation duplicates).
    pub gen_cache_hits: Vec<u64>,
    /// Total wall-clock seconds of the whole run.
    pub total_wall_s: f64,
}

impl GaTelemetry {
    fn record(&mut self, wall_s: f64, executed: u64, cache_hits: u64) {
        self.gen_wall_s.push(wall_s);
        self.gen_evaluations.push(executed);
        self.gen_cache_hits.push(cache_hits);
    }

    /// Total simulations executed.
    pub fn evaluations(&self) -> u64 {
        self.gen_evaluations.iter().sum()
    }

    /// Total evaluations served by memoization.
    pub fn cache_hits(&self) -> u64 {
        self.gen_cache_hits.iter().sum()
    }

    /// Fraction of fitness lookups served without simulating, in [0, 1].
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.evaluations() + self.cache_hits();
        if total == 0 {
            0.0
        } else {
            self.cache_hits() as f64 / total as f64
        }
    }

    /// Executed simulations per wall-clock second of evaluation.
    pub fn evals_per_second(&self) -> f64 {
        let wall: f64 = self.gen_wall_s.iter().sum();
        if wall <= 0.0 {
            0.0
        } else {
            self.evaluations() as f64 / wall
        }
    }
}

/// Result of a GA run.
///
/// Equality compares **results only** (`best`, `best_fitness`,
/// `history`, counts) and ignores [`GaRun::telemetry`], whose wall
/// times legitimately differ between otherwise identical runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaRun {
    /// Fittest genome found.
    pub best: Vec<Gene>,
    /// Its fitness.
    pub best_fitness: f64,
    /// Best fitness after each generation (convergence curve).
    pub history: Vec<f64>,
    /// Generations actually run (≤ the cap when the stall exit fires).
    pub generations_run: usize,
    /// Simulations actually executed — cache hits are **excluded**, so
    /// convergence-cost studies count real work. On a resumed run this
    /// includes the simulations the original run executed (replayed
    /// generations are *not* re-simulated, but their recorded counts
    /// carry over so the total matches the uninterrupted run).
    pub evaluations: u64,
    /// Fitness evaluations served by memoization instead of simulation.
    pub cache_hits: u64,
    /// The deduplicated non-dominated front of the final generation when
    /// [`GaConfig::pareto`] is on; `None` for scalar runs, which keeps
    /// their serialized form byte-identical to pre-Pareto builds.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub pareto_front: Option<Vec<FrontMember>>,
    /// Wall-time and throughput telemetry (ignored by `PartialEq`).
    pub telemetry: GaTelemetry,
}

impl PartialEq for GaRun {
    fn eq(&self, other: &Self) -> bool {
        self.best == other.best
            && self.best_fitness == other.best_fitness
            && self.history == other.history
            && self.generations_run == other.generations_run
            && self.evaluations == other.evaluations
            && self.cache_hits == other.cache_hits
            && self.pareto_front == other.pareto_front
    }
}

impl GaRun {
    /// Resumes the last GA section of `journal`, finishing the search
    /// and returning a [`GaRun`] **bit-identical** to what the
    /// uninterrupted run would have produced.
    ///
    /// Recorded generations are replayed without re-simulation (scores,
    /// cache state, and best-so-far tracking are reconstructed from the
    /// journal); evolution then continues live from the next generation.
    /// `fitness` must be the same deterministic function the original
    /// run used.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Resume`] if the journal has no GA section
    /// or its generation records are inconsistent with the recorded
    /// [`GaConfig`], and any error the underlying search can produce.
    pub fn resume_from<R: Into<Objectives>>(
        journal: &Journal,
        fitness: impl Fn(&[Gene]) -> R + Sync,
    ) -> Result<GaRun, AuditError> {
        Self::resume_with_sink(journal, fitness, &mut NullSink)
    }

    /// [`GaRun::resume_from`], with newly computed generations appended
    /// to `sink` — pass a [`crate::journal::JournalWriter`] reopened with
    /// [`crate::journal::JournalWriter::resume`] to continue the same
    /// journal file. Replayed generations are never re-appended.
    ///
    /// # Errors
    ///
    /// Same as [`GaRun::resume_from`], plus any sink I/O error.
    pub fn resume_with_sink<R: Into<Objectives>>(
        journal: &Journal,
        fitness: impl Fn(&[Gene]) -> R + Sync,
        sink: &mut dyn JournalSink,
    ) -> Result<GaRun, AuditError> {
        let section = journal
            .last_ga_section()
            .ok_or_else(|| AuditError::resume("journal contains no GA section"))?;
        // A scalar closure produces 1-axis vectors; resuming a journal
        // whose fronts carry wider vectors would mix axis counts in the
        // ranking. Multi-objective runs must resume through
        // `resume_dispatched` with a dispatcher computing the same
        // objective vector.
        if section.cfg.pareto
            && section
                .fronts
                .iter()
                .any(|f| f.objectives.iter().any(|o| o.len() > 1))
        {
            return Err(AuditError::resume(
                "journal records a multi-objective pareto run; resume it with \
                 `GaRun::resume_dispatched` and a vector-fitness dispatcher",
            ));
        }
        let mut null = NullSink;
        // A section already closed by `ga_end` is replay-only: recompute
        // the result without appending duplicate records.
        let sink: &mut dyn JournalSink = if section.complete { &mut null } else { sink };
        let mut dispatcher =
            LocalDispatcher::new(fitness, resolve_workers(section.cfg.threads));
        run_ga(
            section.cfg,
            section.menu,
            section.genome_len,
            section.seeds,
            &mut dispatcher,
            sink,
            &section.generations,
            &section.fronts,
        )
    }

    /// [`GaRun::resume_with_sink`], evaluating through an explicit
    /// [`EvalDispatcher`] instead of a local fitness closure — the
    /// resume path of a distributed run (`audit-net` broker). The
    /// dispatcher must compute the same deterministic fitness the
    /// original run used or the replayed prefix will not line up.
    ///
    /// # Errors
    ///
    /// Same as [`GaRun::resume_with_sink`], plus any dispatch error.
    pub fn resume_dispatched(
        journal: &Journal,
        dispatcher: &mut dyn EvalDispatcher,
        sink: &mut dyn JournalSink,
    ) -> Result<GaRun, AuditError> {
        let section = journal
            .last_ga_section()
            .ok_or_else(|| AuditError::resume("journal contains no GA section"))?;
        let mut null = NullSink;
        let sink: &mut dyn JournalSink = if section.complete { &mut null } else { sink };
        run_ga(
            section.cfg,
            section.menu,
            section.genome_len,
            section.seeds,
            dispatcher,
            sink,
            &section.generations,
            &section.fronts,
        )
    }
}

/// Evaluates one generation's cache misses, wherever the compute lives.
///
/// The engine hands a dispatcher the population and the slots that need
/// measuring (`jobs`, already deduplicated, cache-filtered, and — when
/// surrogate ranking is on — ordered most-promising-first) and expects
/// one `(slot, objectives)` pair per job back, **in any order**. The
/// engine sorts results into slot order before touching the cache, so a
/// conforming dispatcher can never perturb results: local thread pools
/// ([`LocalDispatcher`]) and remote broker/worker fleets (`audit-net`)
/// are bit-identical by construction as long as the fitness they compute
/// is the same deterministic function of the genome.
///
/// A scalar dispatcher returns 1-axis vectors ([`Objectives::scalar`]);
/// the engine treats the first axis as the legacy scalar fitness in
/// every mode.
pub trait EvalDispatcher {
    /// Scores `jobs` (slot indices into `population`), returning one
    /// `(slot, objectives)` pair per job in any order. All vectors in
    /// one run must have the same axis count.
    ///
    /// # Errors
    ///
    /// Dispatch is allowed to fail (e.g. a network broker losing its
    /// last worker); the engine aborts the run with the error.
    fn evaluate(
        &mut self,
        population: &[Vec<Gene>],
        jobs: &[usize],
    ) -> Result<Vec<(usize, Objectives)>, AuditError>;

    /// Worker parallelism, for telemetry only (never affects results).
    fn workers(&self) -> usize {
        1
    }

    /// Aggregate resilience counters accumulated by the dispatcher's
    /// evaluations, if it tracks any (a remote broker folds the deltas
    /// its workers report). Order-insensitive sums, so any scheduling
    /// produces the same report.
    fn resilience(&self) -> ResilienceReport {
        ResilienceReport::default()
    }
}

/// The in-process [`EvalDispatcher`]: a `std::thread::scope` work queue
/// over a fitness closure — exactly the engine's historical evaluation
/// path, now behind the trait so local and distributed runs share one
/// merge discipline.
///
/// The closure may return any type converting [`Into<Objectives>`]: the
/// historical `f64` scalar (the 1-axis special case) or a full
/// [`Objectives`] vector for Pareto runs.
pub struct LocalDispatcher<F> {
    fitness: F,
    workers: usize,
}

impl<R: Into<Objectives>, F: Fn(&[Gene]) -> R + Sync> LocalDispatcher<F> {
    /// Wraps `fitness` with a concrete worker count (see
    /// [`resolve_workers`]).
    pub fn new(fitness: F, workers: usize) -> Self {
        LocalDispatcher { fitness, workers }
    }
}

impl<R: Into<Objectives>, F: Fn(&[Gene]) -> R + Sync> EvalDispatcher for LocalDispatcher<F> {
    fn evaluate(
        &mut self,
        population: &[Vec<Gene>],
        jobs: &[usize],
    ) -> Result<Vec<(usize, Objectives)>, AuditError> {
        let fitness = &self.fitness;
        Ok(if self.workers <= 1 || jobs.len() <= 1 {
            jobs.iter()
                .map(|&slot| (slot, fitness(&population[slot]).into()))
                .collect()
        } else {
            let queue = AtomicUsize::new(0);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..self.workers.min(jobs.len()))
                    .map(|_| {
                        s.spawn(|| {
                            let mut out: Vec<(usize, Objectives)> = Vec::new();
                            loop {
                                let k = queue.fetch_add(1, Ordering::Relaxed);
                                let Some(&slot) = jobs.get(k) else { break };
                                out.push((slot, fitness(&population[slot]).into()));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("fitness worker panicked"))
                    .collect()
            })
        })
    }

    fn workers(&self) -> usize {
        self.workers
    }
}

/// The batched in-process [`EvalDispatcher`]: pops fixed-width chunks of
/// jobs off the same atomic work queue [`LocalDispatcher`] uses, and
/// hands each chunk to a *batch* fitness closure (`&[&[Gene]] ->
/// Vec<R>` with `R: Into<Objectives>`, one score per genome, in
/// order). The closure is expected
/// to amortize per-evaluation overhead across the chunk — the audit
/// fitness function routes it through the structure-of-arrays
/// `Rig::measure_batch` sweep (docs/SIMULATION.md).
///
/// Chunking is a scheduling detail, never a results knob: each score is
/// required to be the same deterministic function of its genome alone,
/// so any chunk width and any worker count produce bit-identical runs —
/// the same contract every other dispatcher honors.
pub struct BatchLocalDispatcher<F> {
    fitness: F,
    batch: usize,
    workers: usize,
}

impl<R: Into<Objectives>, F: Fn(&[&[Gene]]) -> Vec<R> + Sync> BatchLocalDispatcher<F> {
    /// Wraps a batch fitness closure with a chunk width (`batch`,
    /// clamped to at least 1) and a concrete worker count (see
    /// [`resolve_workers`]).
    pub fn new(fitness: F, batch: usize, workers: usize) -> Self {
        BatchLocalDispatcher {
            fitness,
            batch: batch.max(1),
            workers,
        }
    }
}

impl<R: Into<Objectives>, F: Fn(&[&[Gene]]) -> Vec<R> + Sync> EvalDispatcher
    for BatchLocalDispatcher<F>
{
    fn evaluate(
        &mut self,
        population: &[Vec<Gene>],
        jobs: &[usize],
    ) -> Result<Vec<(usize, Objectives)>, AuditError> {
        let fitness = &self.fitness;
        let run_chunk = |chunk: &[usize]| -> Vec<(usize, Objectives)> {
            let genomes: Vec<&[Gene]> = chunk
                .iter()
                .map(|&slot| population[slot].as_slice())
                .collect();
            let scores = fitness(&genomes);
            assert_eq!(
                scores.len(),
                chunk.len(),
                "batch fitness returned {} scores for {} genomes",
                scores.len(),
                chunk.len()
            );
            chunk
                .iter()
                .copied()
                .zip(scores.into_iter().map(Into::into))
                .collect()
        };
        let chunks: Vec<&[usize]> = jobs.chunks(self.batch).collect();
        Ok(if self.workers <= 1 || chunks.len() <= 1 {
            chunks.into_iter().flat_map(run_chunk).collect()
        } else {
            let queue = AtomicUsize::new(0);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..self.workers.min(chunks.len()))
                    .map(|_| {
                        s.spawn(|| {
                            let mut out: Vec<(usize, Objectives)> = Vec::new();
                            loop {
                                let k = queue.fetch_add(1, Ordering::Relaxed);
                                let Some(&chunk) = chunks.get(k) else { break };
                                out.extend(run_chunk(chunk));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("batch fitness worker panicked"))
                    .collect()
            })
        })
    }

    fn workers(&self) -> usize {
        self.workers
    }
}

/// Evolves genomes of `genome_len` slots over the opcode `menu`,
/// maximizing `fitness`. Optionally accepts `seeds`: existing genomes
/// injected into the initial population (the paper's "seeded with
/// existing benchmarks or stressmarks to improve the convergence rate").
///
/// `fitness` must be deterministic per genome and is called from
/// `cfg.threads` worker threads (`0` = all cores); it only needs `Sync`,
/// not `Clone` — per-evaluation state such as [`crate::harness::Rig`]
/// simulators is constructed inside the call, never shared.
///
/// # Errors
///
/// Returns [`AuditError::InvalidConfig`] for an unrunnable
/// configuration ([`GaConfig::validate`]), an empty menu, or a zero
/// genome length.
pub fn try_evolve<R: Into<Objectives>>(
    cfg: &GaConfig,
    menu: &[Opcode],
    genome_len: usize,
    seeds: &[Vec<Gene>],
    fitness: impl Fn(&[Gene]) -> R + Sync,
) -> Result<GaRun, AuditError> {
    let mut dispatcher = LocalDispatcher::new(fitness, resolve_workers(cfg.threads));
    run_ga(
        cfg,
        menu,
        genome_len,
        seeds,
        &mut dispatcher,
        &mut NullSink,
        &[],
        &[],
    )
}

/// [`try_evolve`], evaluating through an explicit [`EvalDispatcher`]
/// instead of a local fitness closure — the entry point a distributed
/// broker (`audit-net`) drives. Results are bit-identical to the local
/// path for any conforming dispatcher.
///
/// # Errors
///
/// Same as [`try_evolve`], plus any dispatch error.
pub fn try_evolve_dispatched(
    cfg: &GaConfig,
    menu: &[Opcode],
    genome_len: usize,
    seeds: &[Vec<Gene>],
    dispatcher: &mut dyn EvalDispatcher,
) -> Result<GaRun, AuditError> {
    run_ga(
        cfg,
        menu,
        genome_len,
        seeds,
        dispatcher,
        &mut NullSink,
        &[],
        &[],
    )
}

/// [`try_evolve`], with every generation checkpointed to `sink`.
///
/// Appends a `ga_start` record (config, menu, seeds — everything needed
/// to resume), then one `generation` record per evaluated generation and
/// a final `ga_end`. A run killed between appends is resumable via
/// [`GaRun::resume_from`] with a bit-identical final result.
///
/// # Errors
///
/// Same as [`try_evolve`], plus any sink I/O error.
pub fn evolve_journaled<R: Into<Objectives>>(
    cfg: &GaConfig,
    menu: &[Opcode],
    genome_len: usize,
    seeds: &[Vec<Gene>],
    fitness: impl Fn(&[Gene]) -> R + Sync,
    sink: &mut dyn JournalSink,
) -> Result<GaRun, AuditError> {
    let mut dispatcher = LocalDispatcher::new(fitness, resolve_workers(cfg.threads));
    evolve_journaled_dispatched(cfg, menu, genome_len, seeds, &mut dispatcher, sink)
}

/// [`evolve_journaled`], evaluating through an explicit
/// [`EvalDispatcher`] — see [`try_evolve_dispatched`].
///
/// # Errors
///
/// Same as [`evolve_journaled`], plus any dispatch error.
pub fn evolve_journaled_dispatched(
    cfg: &GaConfig,
    menu: &[Opcode],
    genome_len: usize,
    seeds: &[Vec<Gene>],
    dispatcher: &mut dyn EvalDispatcher,
    sink: &mut dyn JournalSink,
) -> Result<GaRun, AuditError> {
    cfg.validate()?;
    validate_search(menu, genome_len)?;
    sink.append(&JournalRecord::GaStart {
        cfg: cfg.clone(),
        genome_len,
        menu: menu.to_vec(),
        seeds: seeds.to_vec(),
    })?;
    if cfg.surrogate_budget > 0 {
        // Marker record: flags in the journal itself that this run's
        // scores were produced under budgeted early stopping (the
        // config inside `ga_start` is authoritative; the marker makes
        // the non-default mode obvious to `grep`).
        sink.append(&JournalRecord::SurrogateBudget {
            budget: cfg.surrogate_budget as u64,
        })?;
    }
    if cfg.fast_tier_budget > 0 {
        // Same discipline for the tiered cascade: one greppable marker,
        // authoritative copy in `ga_start`.
        sink.append(&JournalRecord::Cascade {
            budget: cfg.fast_tier_budget as u64,
        })?;
    }
    run_ga(cfg, menu, genome_len, seeds, dispatcher, sink, &[], &[])
}

/// Panicking convenience wrapper around [`try_evolve`] for callers that
/// treat an invalid configuration as a bug.
///
/// # Example
///
/// ```
/// use audit_core::ga::{evolve, GaConfig, Gene};
/// use audit_cpu::Opcode;
///
/// // A toy objective: count FMA slots.
/// let cfg = GaConfig { population: 8, generations: 5, ..GaConfig::default() };
/// let run = evolve(&cfg, &Opcode::stress_menu(), 6, &[], |g: &[Gene]| {
///     g.iter().filter(|x| x.opcode == Opcode::SimdFma).count() as f64
/// });
/// assert!(run.best_fitness >= 1.0);
/// ```
///
/// Runs are bit-identical regardless of the worker count — the
/// determinism contract in the [module docs](self):
///
/// ```
/// use audit_core::ga::{evolve, GaConfig, Gene};
/// use audit_cpu::Opcode;
///
/// let menu = Opcode::stress_menu();
/// let fitness = |g: &[Gene]| {
///     g.iter().filter(|x| x.opcode == Opcode::SimdFma).count() as f64
/// };
/// let seq = GaConfig { population: 6, generations: 3, threads: 1, ..GaConfig::default() };
/// let par = GaConfig { threads: 4, ..seq.clone() };
/// let a = evolve(&seq, &menu, 4, &[], &fitness);
/// let b = evolve(&par, &menu, 4, &[], &fitness);
/// assert_eq!(a, b); // same best, best_fitness, and history
/// ```
///
/// # Panics
///
/// Panics on any error [`try_evolve`] would return (e.g. a population
/// smaller than 2, an empty menu, a zero genome length), or if a
/// fitness worker panics.
pub fn evolve<R: Into<Objectives>>(
    cfg: &GaConfig,
    menu: &[Opcode],
    genome_len: usize,
    seeds: &[Vec<Gene>],
    fitness: impl Fn(&[Gene]) -> R + Sync,
) -> GaRun {
    try_evolve(cfg, menu, genome_len, seeds, fitness).unwrap_or_else(|e| panic!("{e}"))
}

fn validate_search(menu: &[Opcode], genome_len: usize) -> Result<(), AuditError> {
    if menu.is_empty() {
        return Err(AuditError::invalid(
            "ga",
            "menu",
            "opcode menu must not be empty",
        ));
    }
    if genome_len == 0 {
        return Err(AuditError::invalid(
            "ga",
            "genome_len",
            "genome length must be positive",
        ));
    }
    Ok(())
}

/// The engine proper, shared by fresh ([`try_evolve`]) and resumed
/// ([`GaRun::resume_from`]) runs: `replay` holds the journaled
/// generations to reconstruct before evolution continues live, and
/// `fronts` the journaled `pareto_front` records that carry their full
/// objective vectors (empty for scalar runs).
#[allow(clippy::too_many_arguments)]
fn run_ga(
    cfg: &GaConfig,
    menu: &[Opcode],
    genome_len: usize,
    seeds: &[Vec<Gene>],
    dispatcher: &mut dyn EvalDispatcher,
    sink: &mut dyn JournalSink,
    replay: &[&GenerationRecord],
    fronts: &[&ParetoFrontRecord],
) -> Result<GaRun, AuditError> {
    cfg.validate()?;
    validate_search(menu, genome_len)?;

    let run_start = Instant::now();
    let mut cache = EvalCache::new(cfg.cache_capacity);
    let mut telemetry = GaTelemetry {
        threads: dispatcher.workers(),
        ..GaTelemetry::default()
    };

    let mut history = Vec::new();
    let mut best: Vec<Gene>;
    let mut best_fitness: f64;
    let mut stalled = 0usize;
    let mut generation = 0usize;
    let mut population: Vec<Vec<Gene>>;
    let mut scores: Vec<f64>;
    let mut objs: Vec<Objectives>;

    if replay.is_empty() {
        // Fresh start: stream 0 breeds the initial population.
        let mut rng = SmallRng::seed_from_u64(stream_seed(cfg.seed, 0));
        population = Vec::with_capacity(cfg.population);
        for seed in seeds.iter().take(cfg.population) {
            let mut g = seed.clone();
            g.resize_with(genome_len, || Gene::random(menu, &mut rng));
            g.truncate(genome_len);
            population.push(g);
        }
        while population.len() < cfg.population {
            population.push(
                (0..genome_len)
                    .map(|_| Gene::random(menu, &mut rng))
                    .collect(),
            );
        }
        let rerolls = repair_population(cfg, menu, &mut population);
        debug_verify_population(&population);
        objs = evaluate_population(&population, dispatcher, &mut cache, cfg, &mut telemetry)?;
        scores = objs.iter().map(Objectives::primary).collect();
        append_generation(sink, cfg, 0, &population, &objs, &scores, &telemetry, rerolls)?;

        let best_idx = argmax(&scores);
        best = population[best_idx].clone();
        best_fitness = scores[best_idx];
        history.push(best_fitness);
    } else {
        // Resume: rebuild population, scores, objective vectors, cache,
        // and best-so-far tracking from the journal. No fitness is
        // re-executed; the cache is repopulated in the same slot order
        // the live run inserted in, so even its deterministic flush
        // timing is reproduced.
        best = Vec::new();
        best_fitness = f64::NEG_INFINITY;
        objs = Vec::new();
        for (k, rec) in replay.iter().enumerate() {
            check_replay_record(cfg, genome_len, k, rec)?;
            objs = replay_objectives(cfg, k, rec, fronts)?;
            replay_into_cache(&mut cache, rec, &objs);
            telemetry.record(rec.wall_s, rec.executed, rec.cache_hits);

            // Same update logic as the live loop below, fed the recorded
            // scores instead of fresh evaluations.
            let best_idx = argmax(&rec.scores);
            if k > 0 {
                generation += 1;
                if rec.scores[best_idx] > best_fitness {
                    stalled = 0;
                } else {
                    stalled += 1;
                }
            }
            if rec.scores[best_idx] > best_fitness {
                best_fitness = rec.scores[best_idx];
                best = rec.population[best_idx].clone();
            }
            history.push(best_fitness);
        }

        let last = replay[replay.len() - 1];
        population = last.population.clone();
        scores = last.scores.clone();
    }

    while generation < cfg.generations && stalled < cfg.stall_generations {
        generation += 1;
        let mut rng = SmallRng::seed_from_u64(stream_seed(cfg.seed, generation as u64));

        // Pareto mode ranks the parent population once per generation on
        // the calling thread; both modes draw the RNG identically, so
        // flipping `pareto` never perturbs the stream.
        let ranking = if cfg.pareto {
            Some(rank_population(&objs))
        } else {
            None
        };

        // Elites survive unchanged.
        let order: Vec<usize> = match &ranking {
            Some(r) => r.selection_order(),
            None => {
                let mut order: Vec<usize> = (0..population.len()).collect();
                order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
                order
            }
        };
        let mut next: Vec<Vec<Gene>> = order
            .iter()
            .take(cfg.elitism)
            .map(|&i| population[i].clone())
            .collect();

        while next.len() < cfg.population {
            let a = tournament(cfg, &scores, ranking.as_ref(), &mut rng);
            let b = tournament(cfg, &scores, ranking.as_ref(), &mut rng);
            let a_wins = match &ranking {
                Some(r) => r.better_or_equal(a, b),
                None => scores[a] >= scores[b],
            };
            let mut child = if rng.gen_bool(cfg.crossover_rate) {
                crossover(&population[a], &population[b], &mut rng)
            } else if a_wins {
                population[a].clone()
            } else {
                population[b].clone()
            };
            for gene in &mut child {
                if rng.gen_bool(cfg.mutation_rate) {
                    gene.mutate(menu, &mut rng);
                }
            }
            next.push(child);
        }

        // Repair runs after the whole brood is bred, on the calling
        // thread, from content-keyed streams — the breeding RNG above
        // is already exhausted, so flipping `lint_repair` cannot
        // perturb it. Elites are already clean and repair no-ops.
        let rerolls = repair_population(cfg, menu, &mut next);
        population = next;
        debug_verify_population(&population);
        objs = evaluate_population(&population, dispatcher, &mut cache, cfg, &mut telemetry)?;
        scores = objs.iter().map(Objectives::primary).collect();
        append_generation(
            sink,
            cfg,
            generation,
            &population,
            &objs,
            &scores,
            &telemetry,
            rerolls,
        )?;

        let best_idx = argmax(&scores);
        if scores[best_idx] > best_fitness {
            best_fitness = scores[best_idx];
            best = population[best_idx].clone();
            stalled = 0;
        } else {
            stalled += 1;
        }
        history.push(best_fitness);
    }
    sink.append(&JournalRecord::GaEnd)?;

    let pareto_front = if cfg.pareto {
        let ranking = rank_population(&objs);
        Some(extract_front(&population, &objs, &ranking))
    } else {
        None
    };

    telemetry.total_wall_s = run_start.elapsed().as_secs_f64();
    Ok(GaRun {
        best,
        best_fitness,
        history,
        generations_run: generation,
        evaluations: telemetry.evaluations(),
        cache_hits: telemetry.cache_hits(),
        pareto_front,
        telemetry,
    })
}

/// Repairs every genome of an as-bred population in place (no-op
/// unless [`GaConfig::lint_repair`]), returning total slot re-rolls.
fn repair_population(cfg: &GaConfig, menu: &[Opcode], population: &mut [Vec<Gene>]) -> u64 {
    if !cfg.lint_repair {
        return 0;
    }
    population
        .iter_mut()
        .map(|g| super::repair::repair_genome(g, menu, cfg.seed))
        .sum()
}

#[allow(clippy::too_many_arguments)]
fn append_generation(
    sink: &mut dyn JournalSink,
    cfg: &GaConfig,
    index: usize,
    population: &[Vec<Gene>],
    objs: &[Objectives],
    scores: &[f64],
    telemetry: &GaTelemetry,
    rerolls: u64,
) -> Result<(), AuditError> {
    if cfg.lint_repair {
        // Repair telemetry rides ahead of the generation it shaped; the
        // section walker skips it like the other GA markers.
        sink.append(&JournalRecord::Repair { index, rerolls })?;
    }
    if cfg.pareto {
        // Write-ahead of the generation record: a crash between the two
        // leaves an orphan front, which replay ignores (it matches
        // fronts to generations by index). The full vectors live here;
        // the generation record keeps carrying only the primary scores,
        // exactly as in scalar mode.
        let ranking = rank_population(objs);
        sink.append(&JournalRecord::ParetoFront(ParetoFrontRecord {
            index,
            objectives: objs.to_vec(),
            ranks: ranking.rank.iter().map(|&r| r as u64).collect(),
        }))?;
    }
    sink.append(&JournalRecord::Generation(GenerationRecord {
        index,
        stream_seed: stream_seed(cfg.seed, index as u64),
        population: population.to_vec(),
        scores: scores.to_vec(),
        executed: telemetry.gen_evaluations.last().copied().unwrap_or(0),
        cache_hits: telemetry.gen_cache_hits.last().copied().unwrap_or(0),
        wall_s: telemetry.gen_wall_s.last().copied().unwrap_or(0.0),
        analysis: Some(analyze_population(population)),
    }))
}

/// Static-analyzer summary of one generation: best/mean surrogate swing
/// score under the generic machine model. Journal-only metadata — never
/// feeds back into selection.
fn analyze_population(population: &[Vec<Gene>]) -> GenerationAnalysis {
    let model = MachineModel::generic();
    let mut best = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for genome in population {
        let s = swing_score(&to_sub_block(genome), &model);
        best = best.max(s);
        sum += s;
    }
    GenerationAnalysis {
        best_swing: if population.is_empty() { 0.0 } else { best },
        mean_swing: if population.is_empty() {
            0.0
        } else {
            sum / population.len() as f64
        },
    }
}

/// Debug-build invariant: everything the breeder produces must pass the
/// structural verifier. `Gene::to_inst` lowers through the same checked
/// builders the verifier models, so a finding here means the GA operators
/// and the verifier have drifted apart — catch it at the source, not at
/// NASM emission time.
fn debug_verify_population(population: &[Vec<Gene>]) {
    #[cfg(debug_assertions)]
    for (i, genome) in population.iter().enumerate() {
        let program = audit_cpu::Program::new("ga-candidate", to_sub_block(genome));
        let diags = audit_analyze::verify(&program, &audit_analyze::VerifyTarget::permissive());
        assert!(
            diags.is_empty(),
            "GA bred an unverifiable genome in slot {i}: {diags:?}"
        );
    }
    #[cfg(not(debug_assertions))]
    let _ = population;
}

fn check_replay_record(
    cfg: &GaConfig,
    genome_len: usize,
    k: usize,
    rec: &GenerationRecord,
) -> Result<(), AuditError> {
    if rec.index != k {
        return Err(AuditError::resume(format!(
            "journal generations are not contiguous (expected index {k}, found {})",
            rec.index
        )));
    }
    let expected = stream_seed(cfg.seed, k as u64);
    if rec.stream_seed != expected {
        return Err(AuditError::resume(format!(
            "generation {k} was bred from stream {:#x}, but this config derives {expected:#x} \
             — the journal belongs to a different run",
            rec.stream_seed
        )));
    }
    if rec.population.len() != cfg.population || rec.scores.len() != cfg.population {
        return Err(AuditError::resume(format!(
            "generation {k} has {} genomes for a population of {}",
            rec.population.len(),
            cfg.population
        )));
    }
    if rec.population.iter().any(|g| g.len() != genome_len) {
        return Err(AuditError::resume(format!(
            "generation {k} contains genomes of the wrong length (expected {genome_len})"
        )));
    }
    Ok(())
}

/// Reconstructs one replayed generation's objective vectors: the
/// recorded primary scores wrapped as 1-axis vectors in scalar mode, or
/// the full vectors from the generation's journaled `pareto_front`
/// record in Pareto mode.
fn replay_objectives(
    cfg: &GaConfig,
    k: usize,
    rec: &GenerationRecord,
    fronts: &[&ParetoFrontRecord],
) -> Result<Vec<Objectives>, AuditError> {
    if !cfg.pareto {
        return Ok(rec.scores.iter().copied().map(Objectives::scalar).collect());
    }
    let front = fronts
        .iter()
        .find(|f| f.index == k)
        .ok_or_else(|| {
            AuditError::resume(format!(
                "pareto run journal is missing the pareto_front record of generation {k}"
            ))
        })?;
    if front.objectives.len() != rec.scores.len() {
        return Err(AuditError::resume(format!(
            "pareto_front {k} carries {} objective vectors for {} population slots",
            front.objectives.len(),
            rec.scores.len()
        )));
    }
    for (i, (objectives, &score)) in front.objectives.iter().zip(&rec.scores).enumerate() {
        if objectives.primary() != score {
            return Err(AuditError::resume(format!(
                "pareto_front {k} slot {i} disagrees with its generation record \
                 (primary {} vs score {score}) — the journal is inconsistent",
                objectives.primary()
            )));
        }
    }
    Ok(front.objectives.clone())
}

/// Re-inserts a replayed generation into the memo cache in exactly the
/// order the live run did: first-occurrence cache misses, in slot order.
/// Hits and within-generation duplicates were never inserted live, so
/// they are skipped here too — this keeps the deterministic
/// flush-at-capacity timing bit-identical across kill/resume.
fn replay_into_cache(cache: &mut EvalCache, rec: &GenerationRecord, objs: &[Objectives]) {
    if !cache.is_enabled() {
        return;
    }
    let mut seen: HashSet<&[Gene]> = HashSet::new();
    for (genome, objectives) in rec.population.iter().zip(objs) {
        // A `surrogate_budget` run records deferred slots as -inf
        // sentinels; the live run never cached those, so replay must
        // not either.
        if objectives.is_deferred() {
            continue;
        }
        if cache.lookup(genome).is_some() {
            continue;
        }
        if !seen.insert(genome.as_slice()) {
            continue;
        }
        cache.insert(genome, objectives.clone());
    }
}

/// Resolves the configured thread knob to a concrete worker count.
pub fn resolve_workers(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Scores one generation: cache lookups and within-generation dedup
/// first, then the remaining genomes through the [`EvalDispatcher`]
/// (a local thread pool or a remote broker). Results land in their
/// population slot by index, and the cache is updated in slot order,
/// keeping both selection order *and* cache state identical to a
/// sequential evaluation.
///
/// `cfg.surrogate_rank` reorders the *dispatch* of cache misses by
/// descending static swing score (ties broken by slot). Because results
/// are sorted back into slot order before any cache insert, dispatch
/// order is unobservable — scores, cache state, and `executed` are
/// bit-identical with the flag on or off; only which genome is measured
/// first changes.
///
/// `cfg.surrogate_budget`, by contrast, *truncates* the ranked job list:
/// only the top `budget` misses are dispatched, and every deferred slot
/// scores `f64::NEG_INFINITY` (never cached, so a later generation that
/// re-breeds the genome measures it for real). This changes results and
/// is excluded from the bit-identity invariants.
///
/// `cfg.fast_tier_budget` adds the cascade's middle tier: the jobs that
/// survive the static stages are re-ranked by the tier-1 scoreboard
/// estimate (`audit_cpu::tier`) and truncated again, under the same
/// deferred-slot rules. Static rank → fast tier → full simulation, each
/// stage cheaper than the next and all of them decided on the calling
/// thread (docs/SIMULATION.md).
fn evaluate_population(
    population: &[Vec<Gene>],
    dispatcher: &mut dyn EvalDispatcher,
    cache: &mut EvalCache,
    cfg: &GaConfig,
    telemetry: &mut GaTelemetry,
) -> Result<Vec<Objectives>, AuditError> {
    let t0 = Instant::now();
    let n = population.len();
    let mut scores: Vec<Option<Objectives>> = vec![None; n];
    let mut dup_of: Vec<Option<usize>> = vec![None; n];
    let mut jobs: Vec<usize> = Vec::new();
    let mut cache_hits = 0u64;

    if cache.is_enabled() {
        let mut first_slot: HashMap<&[Gene], usize> = HashMap::new();
        for (i, genome) in population.iter().enumerate() {
            if let Some(f) = cache.lookup(genome) {
                scores[i] = Some(f);
                cache_hits += 1;
            } else if let Some(&primary) = first_slot.get(genome.as_slice()) {
                dup_of[i] = Some(primary);
                cache_hits += 1;
            } else {
                first_slot.insert(genome.as_slice(), i);
                jobs.push(i);
            }
        }
    } else {
        jobs.extend(0..n);
    }

    let budget = cfg.surrogate_budget;
    if (cfg.surrogate_rank || budget > 0) && jobs.len() > 1 {
        let model = MachineModel::generic();
        let mut keyed: Vec<(usize, f64)> = jobs
            .iter()
            .map(|&slot| (slot, swing_score(&to_sub_block(&population[slot]), &model)))
            .collect();
        keyed.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        jobs = keyed.into_iter().map(|(slot, _)| slot).collect();
    }
    let mut deferred: Vec<usize> = if budget > 0 && jobs.len() > budget {
        jobs.split_off(budget)
    } else {
        Vec::new()
    };

    // Cascade tier 1: re-rank the survivors with the fast in-order
    // scoreboard model and keep only the top `fast_tier_budget` for the
    // full simulation. Runs on the calling thread like the static
    // surrogate above, so the pruning decision is a pure function of
    // (population, config) — identical for any dispatcher, thread
    // count, or resumed run. When the budget is 0 this block is dead
    // and the job list (and every downstream byte) is untouched.
    let tier_budget = cfg.fast_tier_budget;
    if tier_budget > 0 && jobs.len() > tier_budget {
        let model = audit_cpu::tier::TierModel::generic();
        let mut keyed: Vec<(usize, f64)> = jobs
            .iter()
            .map(|&slot| {
                (
                    slot,
                    audit_cpu::tier::estimate_swing(&to_sub_block(&population[slot]), &model),
                )
            })
            .collect();
        keyed.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        jobs = keyed.into_iter().map(|(slot, _)| slot).collect();
        deferred.extend(jobs.split_off(tier_budget));
    }

    let mut results = dispatcher.evaluate(population, &jobs)?;
    if results.len() != jobs.len() {
        return Err(AuditError::invalid(
            "ga",
            "dispatcher",
            format!(
                "dispatcher returned {} results for {} jobs",
                results.len(),
                jobs.len()
            ),
        ));
    }
    // Cache inserts must not depend on worker completion order: the
    // flush-at-capacity policy makes insert *order* observable, and the
    // determinism contract (and journal replay) require slot order.
    results.sort_unstable_by_key(|&(slot, _)| slot);

    let executed = results.len() as u64;
    for (slot, objectives) in results {
        cache.insert(&population[slot], objectives.clone());
        scores[slot] = Some(objectives);
    }
    // Deferred-by-budget slots lose every tournament; they are not
    // cached, so the surrogate's verdict is never mistaken for a
    // measurement by a later generation.
    for slot in deferred {
        scores[slot] = Some(Objectives::deferred());
    }
    for i in 0..n {
        if let Some(primary) = dup_of[i] {
            scores[i] = scores[primary].clone();
        }
    }

    telemetry.record(t0.elapsed().as_secs_f64(), executed, cache_hits);
    Ok(scores
        .into_iter()
        .map(|s| s.expect("every population slot is scored"))
        .collect())
}

fn argmax(scores: &[f64]) -> usize {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty scores")
}

fn tournament(
    cfg: &GaConfig,
    scores: &[f64],
    ranking: Option<&PopulationRanking>,
    rng: &mut SmallRng,
) -> usize {
    let mut winner = rng.gen_range(0..scores.len());
    for _ in 1..cfg.tournament.max(1) {
        let challenger = rng.gen_range(0..scores.len());
        let wins = match ranking {
            Some(r) => r.better(challenger, winner),
            None => scores[challenger] > scores[winner],
        };
        if wins {
            winner = challenger;
        }
    }
    winner
}

fn crossover(a: &[Gene], b: &[Gene], rng: &mut SmallRng) -> Vec<Gene> {
    let cut = rng.gen_range(0..a.len());
    a[..cut].iter().chain(&b[cut..]).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::MemJournal;
    use std::sync::atomic::AtomicU64;

    fn menu() -> Vec<Opcode> {
        Opcode::stress_menu()
    }

    /// A cheap synthetic fitness: count SimdFma slots. The GA must
    /// saturate it.
    fn fma_count(g: &[Gene]) -> f64 {
        g.iter().filter(|x| x.opcode == Opcode::SimdFma).count() as f64
    }

    /// Drops the `wall_s` field from an encoded journal line — the one
    /// legitimately nondeterministic value in a generation record.
    fn strip_wall(line: &str) -> String {
        match line.find("\"wall_s\":") {
            Some(start) => {
                let rest = &line[start..];
                let end = rest.find(',').map(|e| start + e + 1).unwrap_or(line.len());
                format!("{}{}", &line[..start], &line[end..])
            }
            None => line.to_string(),
        }
    }

    #[test]
    fn ga_maximizes_synthetic_objective() {
        let cfg = GaConfig {
            population: 20,
            generations: 60,
            stall_generations: 60,
            ..GaConfig::default()
        };
        let run = evolve(&cfg, &menu(), 12, &[], fma_count);
        assert!(run.best_fitness >= 6.0, "best {}", run.best_fitness);
        assert!(
            run.history.last().unwrap() > run.history.first().unwrap(),
            "no improvement over the initial population"
        );
    }

    #[test]
    fn history_is_monotone_nondecreasing() {
        let cfg = GaConfig {
            population: 10,
            generations: 20,
            ..GaConfig::default()
        };
        let run = evolve(&cfg, &menu(), 8, &[], fma_count);
        assert!(
            run.history.windows(2).all(|w| w[1] >= w[0]),
            "{:?}",
            run.history
        );
    }

    #[test]
    fn stall_exit_fires() {
        // Constant fitness: improvement never happens after gen 0.
        let cfg = GaConfig {
            population: 8,
            generations: 100,
            stall_generations: 4,
            ..GaConfig::default()
        };
        let run = evolve(&cfg, &menu(), 8, &[], |_| 1.0);
        assert_eq!(run.generations_run, 4);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let cfg = GaConfig {
            population: 10,
            generations: 10,
            ..GaConfig::default()
        };
        let a = evolve(&cfg, &menu(), 8, &[], fma_count);
        let b = evolve(&cfg, &menu(), 8, &[], fma_count);
        assert_eq!(a, b);
        let other = GaConfig { seed: 999, ..cfg };
        let c = evolve(&other, &menu(), 8, &[], fma_count);
        assert_ne!(a.best, c.best);
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_sequential() {
        // The determinism guarantee: same best, best_fitness, and
        // history for any worker count, including an oversubscribed one.
        let base = GaConfig {
            population: 12,
            generations: 12,
            stall_generations: 12,
            threads: 1,
            ..GaConfig::default()
        };
        let sequential = evolve(&base, &menu(), 10, &[], fma_count);
        for threads in [2, 4, 7] {
            let cfg = GaConfig {
                threads,
                ..base.clone()
            };
            let parallel = evolve(&cfg, &menu(), 10, &[], fma_count);
            assert_eq!(sequential, parallel, "diverged at {threads} threads");
            assert_eq!(sequential.history, parallel.history);
            assert_eq!(sequential.best, parallel.best);
        }
    }

    #[test]
    fn surrogate_ranking_is_bit_identical_to_plain_order() {
        // The surrogate only reorders dispatch; results, evaluation
        // counts, and cache-hit counts are part of GaRun equality, so
        // this pins the full contract across worker counts.
        let plain = GaConfig {
            population: 12,
            generations: 10,
            stall_generations: 10,
            threads: 1,
            surrogate_rank: false,
            ..GaConfig::default()
        };
        let baseline = evolve(&plain, &menu(), 10, &[], fma_count);
        for threads in [1, 3, 6] {
            let cfg = GaConfig {
                threads,
                surrogate_rank: true,
                ..plain.clone()
            };
            let ranked = evolve(&cfg, &menu(), 10, &[], fma_count);
            assert_eq!(baseline, ranked, "diverged at {threads} threads");
            assert_eq!(baseline.evaluations, ranked.evaluations);
            assert_eq!(baseline.cache_hits, ranked.cache_hits);
        }
    }

    #[test]
    fn surrogate_ranking_never_increases_evaluations() {
        // "Surrogate" means *ordering*, never *skipping*: the cache-miss
        // set is identical, so the simulation count must be too, even on
        // a longer run where populations churn.
        let base = GaConfig {
            population: 16,
            generations: 20,
            stall_generations: 20,
            ..GaConfig::default()
        };
        let off = evolve(&base, &menu(), 8, &[], fma_count);
        let on = evolve(
            &GaConfig {
                surrogate_rank: true,
                ..base
            },
            &menu(),
            8,
            &[],
            fma_count,
        );
        assert_eq!(off.evaluations, on.evaluations);
    }

    #[test]
    fn surrogate_budget_wider_than_population_changes_nothing() {
        // A budget that never truncates the ranked job list must be
        // bit-identical to running with the budget off.
        let base = GaConfig {
            population: 10,
            generations: 8,
            stall_generations: 8,
            ..GaConfig::default()
        };
        let off = evolve(&base, &menu(), 8, &[], fma_count);
        let on = evolve(
            &GaConfig {
                surrogate_budget: base.population,
                ..base
            },
            &menu(),
            8,
            &[],
            fma_count,
        );
        assert_eq!(off, on);
        assert_eq!(off.evaluations, on.evaluations);
    }

    #[test]
    fn surrogate_budget_caps_measurements_per_generation() {
        let mut mem = crate::journal::MemJournal::default();
        let cfg = GaConfig {
            population: 12,
            generations: 6,
            stall_generations: 6,
            surrogate_budget: 3,
            ..GaConfig::default()
        };
        let run = evolve_journaled(&cfg, &menu(), 8, &[], fma_count, &mut mem).unwrap();

        let mut saw_marker = false;
        let mut saw_deferred = false;
        let mut executed_total = 0;
        for rec in &mem.records {
            match rec {
                JournalRecord::SurrogateBudget { budget } => {
                    saw_marker = true;
                    assert_eq!(*budget, 3);
                }
                JournalRecord::Generation(g) => {
                    assert!(g.executed <= 3, "generation measured past the budget");
                    executed_total += g.executed;
                    saw_deferred |= g.scores.contains(&f64::NEG_INFINITY);
                }
                _ => {}
            }
        }
        assert_eq!(run.evaluations, executed_total);
        assert!(saw_marker, "journal must carry the surrogate_budget marker");
        assert!(
            saw_deferred,
            "a 3-of-12 budget must defer slots as -inf sentinels"
        );
    }

    #[test]
    fn surrogate_budget_resume_replays_bit_identically() {
        // Deferred slots are journaled as -inf and were never cached, so
        // resume must skip them during cache replay or kill/resume would
        // diverge from an uninterrupted run.
        let mut mem = crate::journal::MemJournal::default();
        let cfg = GaConfig {
            population: 12,
            generations: 6,
            stall_generations: 6,
            surrogate_budget: 4,
            ..GaConfig::default()
        };
        let full = evolve_journaled(&cfg, &menu(), 8, &[], fma_count, &mut mem).unwrap();

        // Cut the journal right after the second generation record, as a
        // crash would.
        let mut prefix = Vec::new();
        let mut gens = 0;
        for rec in &mem.records {
            prefix.push(rec.clone());
            if matches!(rec, JournalRecord::Generation(_)) {
                gens += 1;
                if gens == 2 {
                    break;
                }
            }
        }
        let journal = crate::journal::Journal { records: prefix };
        let resumed = GaRun::resume_from(&journal, fma_count).unwrap();
        assert_eq!(full, resumed);
        assert_eq!(full.history, resumed.history);
    }

    #[test]
    fn cascade_off_leaves_journal_bytes_untouched() {
        // `fast_tier_budget: 0` must leave both results and the exact
        // journal byte stream identical to a config that predates the
        // cascade — the regression gate for the disabled path.
        let cfg = GaConfig {
            population: 10,
            generations: 6,
            stall_generations: 6,
            ..GaConfig::default()
        };
        let mut a = MemJournal::default();
        let mut b = MemJournal::default();
        let off = evolve_journaled(&cfg, &menu(), 8, &[], fma_count, &mut a).unwrap();
        let zero = evolve_journaled(
            &GaConfig {
                fast_tier_budget: 0,
                ..cfg
            },
            &menu(),
            8,
            &[],
            fma_count,
            &mut b,
        )
        .unwrap();
        assert_eq!(off, zero);
        // Byte-compare modulo the wall-clock field, the one legitimately
        // nondeterministic value in a generation record.
        let lines = |m: &MemJournal| -> Vec<String> {
            m.records
                .iter()
                .map(|r| strip_wall(&r.to_json().encode()))
                .collect()
        };
        assert_eq!(lines(&a), lines(&b));
        assert!(
            !lines(&a).iter().any(|l| l.contains("fast_tier_budget")),
            "disabled cascade must not appear in ga_start config bytes"
        );
        assert!(!a
            .records
            .iter()
            .any(|r| matches!(r, JournalRecord::Cascade { .. })));
    }

    #[test]
    fn lint_repair_off_leaves_journal_bytes_untouched() {
        // `lint_repair: false` must leave both results and the exact
        // journal byte stream identical to a config that predates the
        // field — the regression gate for the disabled path.
        let cfg = GaConfig {
            population: 10,
            generations: 6,
            stall_generations: 6,
            ..GaConfig::default()
        };
        let mut a = MemJournal::default();
        let mut b = MemJournal::default();
        let off = evolve_journaled(&cfg, &menu(), 8, &[], fma_count, &mut a).unwrap();
        let explicit = evolve_journaled(
            &GaConfig {
                lint_repair: false,
                ..cfg
            },
            &menu(),
            8,
            &[],
            fma_count,
            &mut b,
        )
        .unwrap();
        assert_eq!(off, explicit);
        let lines = |m: &MemJournal| -> Vec<String> {
            m.records
                .iter()
                .map(|r| strip_wall(&r.to_json().encode()))
                .collect()
        };
        assert_eq!(lines(&a), lines(&b));
        assert!(
            !lines(&a).iter().any(|l| l.contains("lint_repair")),
            "disabled repair must not appear in ga_start config bytes"
        );
        assert!(!a
            .records
            .iter()
            .any(|r| matches!(r, JournalRecord::Repair { .. })));
    }

    #[test]
    fn lint_repair_populations_lint_clean() {
        // With repair on, every journaled population — initial and
        // bred — must be free of deny-level AUD1xx findings, and each
        // generation record must be preceded by its repair marker.
        let cfg = GaConfig {
            population: 12,
            generations: 5,
            stall_generations: 5,
            lint_repair: true,
            ..GaConfig::default()
        };
        let mut mem = MemJournal::default();
        evolve_journaled(&cfg, &menu(), 10, &[], fma_count, &mut mem).unwrap();

        let mut pending_repair: Option<usize> = None;
        let mut total_rerolls = 0u64;
        let mut generations = 0usize;
        for rec in &mem.records {
            match rec {
                JournalRecord::Repair { index, rerolls } => {
                    assert!(pending_repair.is_none(), "two repair markers in a row");
                    pending_repair = Some(*index);
                    total_rerolls += rerolls;
                }
                JournalRecord::Generation(g) => {
                    assert_eq!(
                        pending_repair.take(),
                        Some(g.index),
                        "generation {} missing its repair marker",
                        g.index
                    );
                    generations += 1;
                    for genome in &g.population {
                        assert!(
                            crate::ga::repair::offending_slots(genome).is_empty(),
                            "repaired population still lints dirty"
                        );
                    }
                }
                _ => {}
            }
        }
        assert!(generations > 0);
        assert!(
            total_rerolls > 0,
            "a random initial population should need at least one re-roll"
        );
    }

    #[test]
    fn lint_repair_is_bit_identical_across_worker_counts() {
        let base = GaConfig {
            population: 12,
            generations: 8,
            stall_generations: 8,
            lint_repair: true,
            threads: 1,
            ..GaConfig::default()
        };
        let one = evolve(&base, &menu(), 8, &[], fma_count);
        for threads in [2, 4] {
            let n = evolve(&GaConfig { threads, ..base }, &menu(), 8, &[], fma_count);
            assert_eq!(one, n, "diverged at {threads} threads");
        }
    }

    #[test]
    fn lint_repair_kill_and_resume_is_bit_identical() {
        let cfg = GaConfig {
            population: 8,
            generations: 6,
            stall_generations: 6,
            lint_repair: true,
            ..GaConfig::default()
        };
        let mut mem = MemJournal::default();
        let full = evolve_journaled(&cfg, &menu(), 6, &[], fma_count, &mut mem).unwrap();

        // Kill right after each generation record (the repair marker
        // rides ahead of it, so every cut keeps matched pairs); resume
        // while appending to the truncated journal.
        let cuts: Vec<usize> = mem
            .records
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, JournalRecord::Generation(_)))
            .map(|(i, _)| i + 1)
            .collect();
        for cut in cuts {
            let mut partial = MemJournal {
                records: mem.records[..cut].to_vec(),
            };
            let journal = partial.as_journal();
            let resumed = GaRun::resume_with_sink(&journal, fma_count, &mut partial).unwrap();
            assert_eq!(full, resumed, "diverged when cut at record {cut}");
            assert_eq!(
                mem.records, partial.records,
                "journal shape diverged when cut at record {cut}"
            );
        }
    }

    #[test]
    fn cascade_wider_than_population_changes_results_nothing() {
        // A budget the job list never exceeds prunes nothing: same
        // GaRun, and the journal differs only by the cascade marker and
        // the config field announcing it.
        let base = GaConfig {
            population: 10,
            generations: 8,
            stall_generations: 8,
            ..GaConfig::default()
        };
        let off = evolve(&base, &menu(), 8, &[], fma_count);
        let on = evolve(
            &GaConfig {
                fast_tier_budget: base.population,
                ..base
            },
            &menu(),
            8,
            &[],
            fma_count,
        );
        assert_eq!(off, on);
        assert_eq!(off.evaluations, on.evaluations);
    }

    #[test]
    fn cascade_caps_full_simulations_per_generation() {
        let mut mem = MemJournal::default();
        let cfg = GaConfig {
            population: 12,
            generations: 6,
            stall_generations: 6,
            fast_tier_budget: 3,
            ..GaConfig::default()
        };
        let run = evolve_journaled(&cfg, &menu(), 8, &[], fma_count, &mut mem).unwrap();

        let mut saw_marker = false;
        let mut saw_deferred = false;
        let mut executed_total = 0;
        for rec in &mem.records {
            match rec {
                JournalRecord::Cascade { budget } => {
                    saw_marker = true;
                    assert_eq!(*budget, 3);
                }
                JournalRecord::Generation(g) => {
                    assert!(g.executed <= 3, "generation simulated past the budget");
                    executed_total += g.executed;
                    saw_deferred |= g.scores.contains(&f64::NEG_INFINITY);
                }
                _ => {}
            }
        }
        assert_eq!(run.evaluations, executed_total);
        assert!(saw_marker, "journal must carry the cascade marker");
        assert!(
            saw_deferred,
            "a 3-of-12 cascade budget must defer slots as -inf sentinels"
        );
    }

    #[test]
    fn cascade_is_bit_identical_across_worker_counts() {
        // Pruning happens on the calling thread before dispatch, so the
        // surviving job set — and therefore the whole run — is the same
        // for any worker count.
        let base = GaConfig {
            population: 12,
            generations: 10,
            stall_generations: 10,
            fast_tier_budget: 4,
            threads: 1,
            ..GaConfig::default()
        };
        let sequential = evolve(&base, &menu(), 10, &[], fma_count);
        for threads in [2, 4] {
            let cfg = GaConfig {
                threads,
                ..base.clone()
            };
            let parallel = evolve(&cfg, &menu(), 10, &[], fma_count);
            assert_eq!(sequential, parallel, "diverged at {threads} threads");
        }
    }

    #[test]
    fn cascade_stacks_on_surrogate_budget() {
        // Both stages active: the static budget truncates first, then
        // the fast tier narrows the survivors further. The per-
        // generation simulation count honors the tighter (cascade)
        // budget.
        let mut mem = MemJournal::default();
        let cfg = GaConfig {
            population: 12,
            generations: 6,
            stall_generations: 6,
            surrogate_budget: 8,
            fast_tier_budget: 3,
            ..GaConfig::default()
        };
        let run = evolve_journaled(&cfg, &menu(), 8, &[], fma_count, &mut mem).unwrap();
        let mut executed_total = 0;
        for rec in &mem.records {
            if let JournalRecord::Generation(g) = rec {
                assert!(g.executed <= 3, "cascade budget exceeded");
                executed_total += g.executed;
            }
        }
        assert_eq!(run.evaluations, executed_total);
        assert!(mem
            .records
            .iter()
            .any(|r| matches!(r, JournalRecord::SurrogateBudget { budget: 8 })));
        assert!(mem
            .records
            .iter()
            .any(|r| matches!(r, JournalRecord::Cascade { budget: 3 })));
    }

    #[test]
    fn cascade_resume_replays_bit_identically() {
        // Cascade-deferred slots are journaled as -inf and never cached,
        // so a mid-run kill/resume must reconverge on the identical run.
        let mut mem = MemJournal::default();
        let cfg = GaConfig {
            population: 12,
            generations: 6,
            stall_generations: 6,
            fast_tier_budget: 4,
            ..GaConfig::default()
        };
        let full = evolve_journaled(&cfg, &menu(), 8, &[], fma_count, &mut mem).unwrap();

        let mut prefix = Vec::new();
        let mut gens = 0;
        for rec in &mem.records {
            prefix.push(rec.clone());
            if matches!(rec, JournalRecord::Generation(_)) {
                gens += 1;
                if gens == 2 {
                    break;
                }
            }
        }
        let journal = crate::journal::Journal { records: prefix };
        let resumed = GaRun::resume_from(&journal, fma_count).unwrap();
        assert_eq!(full, resumed);
        assert_eq!(full.history, resumed.history);
    }

    #[test]
    fn cascade_never_caches_tier_estimates() {
        // The fast tier orders and defers; it must never stand in for a
        // measurement. Every fitness the run accounts for has to come
        // from an actual fitness call, and the winner's score must be
        // the true objective, not an analytic swing estimate.
        let calls = AtomicU64::new(0);
        let counted = |g: &[Gene]| {
            calls.fetch_add(1, Ordering::Relaxed);
            fma_count(g)
        };
        let cfg = GaConfig {
            population: 12,
            generations: 8,
            stall_generations: 8,
            fast_tier_budget: 3,
            ..GaConfig::default()
        };
        let run = evolve(&cfg, &menu(), 8, &[], counted);
        assert_eq!(run.evaluations, calls.load(Ordering::Relaxed));
        assert_eq!(run.best_fitness, fma_count(&run.best));
    }

    #[test]
    fn batch_dispatcher_is_bit_identical_to_local() {
        // Chunk width is a scheduling knob: any batch size and worker
        // count must reproduce the LocalDispatcher run exactly.
        let cfg = GaConfig {
            population: 12,
            generations: 10,
            stall_generations: 10,
            ..GaConfig::default()
        };
        let baseline = evolve(&cfg, &menu(), 10, &[], fma_count);
        for (batch, workers) in [(2, 1), (3, 2), (5, 4), (64, 2)] {
            let batch_fitness =
                |genomes: &[&[Gene]]| genomes.iter().map(|g| fma_count(g)).collect::<Vec<f64>>();
            let mut dispatcher = BatchLocalDispatcher::new(batch_fitness, batch, workers);
            let run = try_evolve_dispatched(&cfg, &menu(), 10, &[], &mut dispatcher).unwrap();
            assert_eq!(baseline, run, "diverged at batch {batch} workers {workers}");
        }
    }

    #[test]
    fn generation_records_carry_analysis_summaries() {
        let mut mem = crate::journal::MemJournal::default();
        let cfg = GaConfig {
            population: 6,
            generations: 3,
            stall_generations: 3,
            ..GaConfig::default()
        };
        evolve_journaled(&cfg, &menu(), 6, &[], fma_count, &mut mem).unwrap();
        let gens: Vec<_> = mem
            .records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Generation(g) => Some(g),
                _ => None,
            })
            .collect();
        assert!(!gens.is_empty());
        for g in gens {
            let a = g.analysis.expect("live runs always attach analysis");
            assert!(a.best_swing.is_finite() && a.mean_swing.is_finite());
            assert!(a.best_swing >= a.mean_swing);
        }
    }

    #[test]
    fn cache_hits_never_change_results() {
        let cached = GaConfig {
            population: 10,
            generations: 15,
            stall_generations: 15,
            ..GaConfig::default()
        };
        let uncached = GaConfig {
            cache_capacity: 0,
            ..cached.clone()
        };
        let a = evolve(&cached, &menu(), 8, &[], fma_count);
        let b = evolve(&uncached, &menu(), 8, &[], fma_count);
        // Same search outcome…
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_fitness, b.best_fitness);
        assert_eq!(a.history, b.history);
        // …but the cached run did strictly less simulation work: the two
        // elites alone are re-scored from memo every generation.
        assert!(a.cache_hits > 0, "elites must hit the cache");
        assert!(a.evaluations < b.evaluations);
        assert_eq!(b.cache_hits, 0);
        assert_eq!(
            a.evaluations + a.cache_hits,
            b.evaluations,
            "every lookup is either a simulation or a memo hit"
        );
    }

    #[test]
    fn cache_skips_resimulation_of_elites() {
        // Count actual fitness invocations independently of the engine's
        // bookkeeping; memoization must keep them equal to `evaluations`.
        let calls = AtomicU64::new(0);
        let cfg = GaConfig {
            population: 10,
            generations: 8,
            stall_generations: 8,
            ..GaConfig::default()
        };
        let run = evolve(&cfg, &menu(), 8, &[], |g: &[Gene]| {
            calls.fetch_add(1, Ordering::Relaxed);
            fma_count(g)
        });
        let lookups = (cfg.generations as u64 + 1) * cfg.population as u64;
        assert_eq!(calls.load(Ordering::Relaxed), run.evaluations);
        assert_eq!(run.evaluations + run.cache_hits, lookups);
        assert!(
            run.evaluations < lookups,
            "elites should never be re-simulated"
        );
    }

    #[test]
    fn evaluation_accounting_is_honest() {
        let cfg = GaConfig {
            population: 10,
            generations: 5,
            stall_generations: 100,
            ..GaConfig::default()
        };
        let run = evolve(&cfg, &menu(), 8, &[], fma_count);
        // 6 generations × 10 lookups, split between real simulations and
        // memo hits; at least the 2 elites hit per post-initial generation.
        assert_eq!(run.evaluations + run.cache_hits, 10 * 6);
        assert!(run.cache_hits >= 2 * 5, "hits {}", run.cache_hits);
        // Telemetry agrees with the headline counters.
        assert_eq!(run.telemetry.evaluations(), run.evaluations);
        assert_eq!(run.telemetry.cache_hits(), run.cache_hits);
        assert_eq!(run.telemetry.gen_evaluations.len(), 6);
        assert_eq!(run.telemetry.gen_wall_s.len(), 6);
        assert!(run.telemetry.threads >= 1);
        assert!(run.telemetry.cache_hit_rate() > 0.0);
        assert!(run.telemetry.total_wall_s >= 0.0);
    }

    #[test]
    fn zero_threads_auto_detects() {
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(3), 3);
    }

    #[test]
    fn eval_cache_flushes_at_capacity() {
        let mut cache = EvalCache::new(2);
        let menu = menu();
        let mut rng = SmallRng::seed_from_u64(1);
        let genomes: Vec<Vec<Gene>> = (0..3)
            .map(|_| (0..4).map(|_| Gene::random(&menu, &mut rng)).collect())
            .collect();
        cache.insert(&genomes[0], 1.0);
        cache.insert(&genomes[1], 2.0);
        assert_eq!(cache.len(), 2);
        cache.insert(&genomes[2], 3.0); // exceeds capacity → flush
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&genomes[2]), Some(Objectives::scalar(3.0)));
        assert_eq!(cache.lookup(&genomes[0]), None);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn disabled_cache_is_inert() {
        let mut cache = EvalCache::new(0);
        let menu = menu();
        let mut rng = SmallRng::seed_from_u64(2);
        let genome: Vec<Gene> = (0..4).map(|_| Gene::random(&menu, &mut rng)).collect();
        cache.insert(&genome, 1.0);
        assert!(!cache.is_enabled());
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(&genome), None);
    }

    #[test]
    fn seeded_population_starts_ahead() {
        let perfect: Vec<Gene> = (0..8)
            .map(|i| Gene {
                opcode: Opcode::SimdFma,
                dst: i,
                src1: 8,
                src2: 9,
                miss: false,
            })
            .collect();
        let cfg = GaConfig {
            population: 10,
            generations: 0,
            ..GaConfig::default()
        };
        let run = evolve(&cfg, &menu(), 8, &[perfect], fma_count);
        assert_eq!(run.best_fitness, 8.0);
        assert_eq!(run.generations_run, 0);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn tiny_population_rejected() {
        let cfg = GaConfig {
            population: 1,
            ..GaConfig::default()
        };
        let _ = evolve(&cfg, &menu(), 8, &[], fma_count);
    }

    #[test]
    fn validate_rejects_bad_configs_without_panicking() {
        let bad = [
            GaConfig {
                population: 1,
                ..GaConfig::default()
            },
            GaConfig {
                tournament: 0,
                ..GaConfig::default()
            },
            GaConfig {
                crossover_rate: 1.5,
                ..GaConfig::default()
            },
            GaConfig {
                mutation_rate: f64::NAN,
                ..GaConfig::default()
            },
            GaConfig {
                elitism: 24,
                ..GaConfig::default()
            },
        ];
        for cfg in &bad {
            let err = cfg.validate().unwrap_err();
            assert!(matches!(err, AuditError::InvalidConfig { .. }), "{err}");
            let run = try_evolve(cfg, &menu(), 8, &[], fma_count);
            assert!(run.is_err());
        }
        assert!(GaConfig::default().validate().is_ok());
    }

    #[test]
    fn try_evolve_rejects_degenerate_searches() {
        let cfg = GaConfig::default();
        let err = try_evolve(&cfg, &[], 8, &[], fma_count).unwrap_err();
        assert!(err.to_string().contains("menu"), "{err}");
        let err = try_evolve(&cfg, &menu(), 0, &[], fma_count).unwrap_err();
        assert!(err.to_string().contains("genome"), "{err}");
    }

    #[test]
    fn stream_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..64).map(|g| stream_seed(0xA0D17, g)).collect();
        let unique: HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), seeds.len(), "stream collision");
        // Pinned: resume depends on this derivation never changing.
        assert_eq!(stream_seed(0, 0), stream_seed(0, 0));
        assert_ne!(stream_seed(0, 0), stream_seed(0, 1));
        assert_ne!(stream_seed(0, 0), stream_seed(1, 0));
    }

    #[test]
    fn journaled_run_matches_plain_run() {
        let cfg = GaConfig {
            population: 8,
            generations: 6,
            stall_generations: 6,
            ..GaConfig::default()
        };
        let plain = evolve(&cfg, &menu(), 6, &[], fma_count);
        let mut mem = MemJournal::default();
        let journaled =
            evolve_journaled(&cfg, &menu(), 6, &[], fma_count, &mut mem).unwrap();
        assert_eq!(plain, journaled);
        // ga_start + one record per generation (incl. gen 0) + ga_end.
        assert_eq!(
            mem.records.len(),
            1 + (journaled.generations_run + 1) + 1,
            "unexpected journal shape"
        );
        let JournalRecord::GaStart { cfg: jcfg, .. } = &mem.records[0] else {
            panic!("first record must be ga_start");
        };
        assert_eq!(jcfg, &cfg);
        assert!(matches!(mem.records.last(), Some(JournalRecord::GaEnd)));
    }

    #[test]
    fn kill_and_resume_is_bit_identical_at_every_cut() {
        let cfg = GaConfig {
            population: 8,
            generations: 8,
            stall_generations: 8,
            ..GaConfig::default()
        };
        let mut mem = MemJournal::default();
        let full = evolve_journaled(&cfg, &menu(), 6, &[], fma_count, &mut mem).unwrap();
        let gens = full.generations_run + 1;

        for cut in 1..=gens {
            // Simulate a kill after `cut` generation records: keep the
            // ga_start plus the first `cut` generations.
            let truncated = MemJournal {
                records: mem.records[..1 + cut].to_vec(),
            };
            let resumed = GaRun::resume_from(&truncated.as_journal(), fma_count).unwrap();
            assert_eq!(full, resumed, "diverged when cut after {cut} records");
        }
    }

    #[test]
    fn resume_reproduces_cache_flush_timing() {
        // A cache small enough to flush mid-run: resume must reproduce
        // the flush schedule exactly or counters (and potentially
        // results) drift.
        let cfg = GaConfig {
            population: 10,
            generations: 10,
            stall_generations: 10,
            cache_capacity: 12,
            ..GaConfig::default()
        };
        let mut mem = MemJournal::default();
        let full = evolve_journaled(&cfg, &menu(), 8, &[], fma_count, &mut mem).unwrap();
        let cut = 1 + full.generations_run.div_ceil(2);
        let truncated = MemJournal {
            records: mem.records[..cut].to_vec(),
        };
        let resumed = GaRun::resume_from(&truncated.as_journal(), fma_count).unwrap();
        assert_eq!(full, resumed);
        assert_eq!(full.cache_hits, resumed.cache_hits);
        assert_eq!(full.evaluations, resumed.evaluations);
    }

    #[test]
    fn resume_continues_journaling_to_the_same_shape() {
        let cfg = GaConfig {
            population: 8,
            generations: 5,
            stall_generations: 5,
            ..GaConfig::default()
        };
        let mut mem = MemJournal::default();
        let full = evolve_journaled(&cfg, &menu(), 6, &[], fma_count, &mut mem).unwrap();

        // Kill after two generation records; resume while appending to
        // the truncated journal. The rebuilt journal must equal the
        // uninterrupted one record-for-record.
        let mut partial = MemJournal {
            records: mem.records[..3].to_vec(),
        };
        let journal = partial.as_journal();
        let resumed = GaRun::resume_with_sink(&journal, fma_count, &mut partial).unwrap();
        assert_eq!(full, resumed);
        assert_eq!(mem.records, partial.records);
    }

    #[test]
    fn resume_of_a_complete_section_appends_nothing() {
        let cfg = GaConfig {
            population: 6,
            generations: 3,
            stall_generations: 3,
            ..GaConfig::default()
        };
        let mut mem = MemJournal::default();
        let full = evolve_journaled(&cfg, &menu(), 4, &[], fma_count, &mut mem).unwrap();
        let before = mem.records.len();
        let journal = mem.as_journal();
        let resumed = GaRun::resume_with_sink(&journal, fma_count, &mut mem).unwrap();
        assert_eq!(full, resumed);
        assert_eq!(mem.records.len(), before, "complete section re-appended");
    }

    #[test]
    fn resume_rejects_foreign_journals() {
        let cfg = GaConfig {
            population: 6,
            generations: 2,
            stall_generations: 2,
            ..GaConfig::default()
        };
        let mut mem = MemJournal::default();
        evolve_journaled(&cfg, &menu(), 4, &[], fma_count, &mut mem).unwrap();

        // Tamper with the recorded seed: stream seeds no longer match.
        let mut records = mem.records.clone();
        if let JournalRecord::GaStart { cfg, .. } = &mut records[0] {
            cfg.seed ^= 1;
        }
        let tampered = MemJournal { records };
        let err = GaRun::resume_from(&tampered.as_journal(), fma_count).unwrap_err();
        assert!(matches!(err, AuditError::Resume { .. }), "{err}");

        // And an empty journal has nothing to resume.
        let empty = MemJournal::default();
        let err = GaRun::resume_from(&empty.as_journal(), fma_count).unwrap_err();
        assert!(err.to_string().contains("no GA section"), "{err}");
    }

    /// A synthetic two-axis objective with a genuine trade-off: FMA
    /// slots and IAdd slots compete for the same genome positions, so no
    /// single genome maximizes both.
    fn mo_fitness(g: &[Gene]) -> Objectives {
        let iadd = g.iter().filter(|x| x.opcode == Opcode::IAdd).count() as f64;
        Objectives(vec![fma_count(g), iadd])
    }

    #[test]
    fn pareto_off_leaves_journal_bytes_untouched() {
        // `pareto: false` must leave both results and the exact journal
        // byte stream identical to a config that predates the field —
        // the regression gate for the disabled path.
        let cfg = GaConfig {
            population: 10,
            generations: 6,
            stall_generations: 6,
            ..GaConfig::default()
        };
        let mut a = MemJournal::default();
        let mut b = MemJournal::default();
        let legacy = evolve_journaled(&cfg, &menu(), 8, &[], fma_count, &mut a).unwrap();
        let explicit = evolve_journaled(
            &GaConfig {
                pareto: false,
                ..cfg
            },
            &menu(),
            8,
            &[],
            fma_count,
            &mut b,
        )
        .unwrap();
        assert_eq!(legacy, explicit);
        assert!(legacy.pareto_front.is_none());
        let lines = |m: &MemJournal| -> Vec<String> {
            m.records
                .iter()
                .map(|r| strip_wall(&r.to_json().encode()))
                .collect()
        };
        assert_eq!(lines(&a), lines(&b));
        assert!(
            !lines(&a).iter().any(|l| l.contains("pareto")),
            "disabled pareto must not appear in journal bytes"
        );
        assert!(!a
            .records
            .iter()
            .any(|r| matches!(r, JournalRecord::ParetoFront(_))));
    }

    #[test]
    fn pareto_is_bit_identical_across_worker_counts() {
        let base = GaConfig {
            population: 12,
            generations: 10,
            stall_generations: 10,
            pareto: true,
            ..GaConfig::default()
        };
        let mut sequential_dispatcher = LocalDispatcher::new(mo_fitness, 1);
        let sequential =
            try_evolve_dispatched(&base, &menu(), 10, &[], &mut sequential_dispatcher).unwrap();
        let front = sequential
            .pareto_front
            .as_ref()
            .expect("pareto runs report a front");
        assert!(!front.is_empty());
        for m in front {
            assert_eq!(m.objectives.len(), 2);
            assert_eq!(m.objectives, mo_fitness(&m.genome));
        }
        // Front members are mutually non-dominated.
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    assert!(!a.objectives.dominates(&b.objectives));
                }
            }
        }
        for threads in [2, 4, 7] {
            let mut dispatcher = LocalDispatcher::new(mo_fitness, threads);
            let parallel =
                try_evolve_dispatched(&base, &menu(), 10, &[], &mut dispatcher).unwrap();
            assert_eq!(sequential, parallel, "diverged at {threads} threads");
        }
    }

    #[test]
    fn pareto_front_records_precede_their_generations() {
        let cfg = GaConfig {
            population: 8,
            generations: 5,
            stall_generations: 5,
            pareto: true,
            ..GaConfig::default()
        };
        let mut mem = MemJournal::default();
        let mut dispatcher = LocalDispatcher::new(mo_fitness, 1);
        let run =
            evolve_journaled_dispatched(&cfg, &menu(), 6, &[], &mut dispatcher, &mut mem)
                .unwrap();
        let mut pending_front: Option<&ParetoFrontRecord> = None;
        let mut generations = 0usize;
        for rec in &mem.records {
            match rec {
                JournalRecord::ParetoFront(f) => {
                    assert!(pending_front.is_none(), "two fronts without a generation");
                    assert_eq!(f.objectives.len(), cfg.population);
                    assert_eq!(f.ranks.len(), cfg.population);
                    assert!(f.ranks.contains(&0), "every generation has a rank-0 front");
                    pending_front = Some(f);
                }
                JournalRecord::Generation(g) => {
                    let f = pending_front.take().expect("generation without its front");
                    assert_eq!(f.index, g.index);
                    for (objectives, &score) in f.objectives.iter().zip(&g.scores) {
                        assert_eq!(objectives.primary(), score);
                    }
                    generations += 1;
                }
                _ => {}
            }
        }
        assert!(pending_front.is_none());
        assert_eq!(generations, run.generations_run + 1);
    }

    #[test]
    fn pareto_kill_and_resume_is_bit_identical_at_every_cut() {
        // Cut after *every* record — including between a pareto_front
        // and its generation, where the orphan front must be ignored.
        let cfg = GaConfig {
            population: 8,
            generations: 6,
            stall_generations: 6,
            pareto: true,
            ..GaConfig::default()
        };
        let mut mem = MemJournal::default();
        let mut dispatcher = LocalDispatcher::new(mo_fitness, 2);
        let full =
            evolve_journaled_dispatched(&cfg, &menu(), 6, &[], &mut dispatcher, &mut mem)
                .unwrap();
        for cut in 1..mem.records.len() {
            let truncated = MemJournal {
                records: mem.records[..cut].to_vec(),
            };
            let mut dispatcher = LocalDispatcher::new(mo_fitness, 2);
            let resumed = GaRun::resume_dispatched(
                &truncated.as_journal(),
                &mut dispatcher,
                &mut NullSink,
            )
            .unwrap();
            assert_eq!(full, resumed, "diverged when cut after {cut} records");
        }
    }

    #[test]
    fn pareto_resume_rejects_scalar_closures() {
        let cfg = GaConfig {
            population: 6,
            generations: 3,
            stall_generations: 3,
            pareto: true,
            ..GaConfig::default()
        };
        let mut mem = MemJournal::default();
        let mut dispatcher = LocalDispatcher::new(mo_fitness, 1);
        evolve_journaled_dispatched(&cfg, &menu(), 4, &[], &mut dispatcher, &mut mem).unwrap();
        let err = GaRun::resume_from(&mem.as_journal(), fma_count).unwrap_err();
        assert!(err.to_string().contains("resume_dispatched"), "{err}");
    }
}
